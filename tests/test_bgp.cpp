#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "bgp/bgp_sim.hpp"
#include "bgp/messages.hpp"
#include "bgp/policy.hpp"
#include "bgp/speaker.hpp"
#include "faults/fault_plan.hpp"
#include "simnet/simulator.hpp"
#include "topology/generator.hpp"

namespace scion::bgp {
namespace {

using util::Duration;

// --- Message sizes ---------------------------------------------------------------

TEST(Messages, BgpUpdateSizeFollowsRfc4271) {
  // Header 19 + lengths 4 + origin 4 + next-hop 7 + extra attrs + as-path
  // header 5 + one NLRI.
  EXPECT_EQ(bgp_update_size(0, 1, 0),
            util::Bytes{19u + 4 + 4 + 7 + kBgpExtraAttrBytes + 5 + 5});
  EXPECT_EQ(bgp_update_size(3, 1, 0),
            bgp_update_size(0, 1, 0) + util::Bytes{3 * 4});
  EXPECT_EQ(bgp_update_size(3, 4, 0),
            bgp_update_size(3, 1, 0) + util::Bytes{3 * 5});
  // Pure withdrawal has no path attributes.
  EXPECT_EQ(bgp_update_size(0, 0, 2), util::Bytes{19u + 4 + 2 * 5});
}

TEST(Messages, BgpsecPerHopCostDominates) {
  const std::size_t one_hop = bgpsec_update_size(1).value();
  const std::size_t two_hop = bgpsec_update_size(2).value();
  EXPECT_EQ(two_hop - one_hop, 6u + 118u);
  EXPECT_GT(one_hop, bgp_update_size(1, 1, 0).value() * 2)
      << "BGPsec updates are far larger than BGP";
  EXPECT_GT(bgpsec_update_size(4).value(),
            bgp_update_size(4, 1, 0).value() * 5);
}

TEST(Messages, AggregationOnlyHelpsBgp) {
  // 10 prefixes, 4-hop path: one BGP update vs 10 BGPsec updates.
  const std::size_t bgp_bytes = bgp_update_size(4, 10, 0).value();
  const std::size_t bgpsec_bytes = 10 * bgpsec_update_size(4).value();
  EXPECT_GT(bgpsec_bytes, 10 * bgp_bytes / 2);
}

TEST(Messages, UpdateWireSizeUsesContents) {
  BgpUpdateMsg msg;
  msg.announced = {1, 2};
  msg.path = std::make_shared<std::vector<topo::AsIndex>>(
      std::vector<topo::AsIndex>{7, 8, 9});
  msg.withdrawn = {3};
  EXPECT_EQ(update_wire_size(msg), bgp_update_size(3, 2, 1));
}

// --- Policy ----------------------------------------------------------------------

TEST(Policy, ClassifyFromLinkTypes) {
  topo::Topology t;
  const auto p = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto c = t.add_as(topo::IsdAsId::make(1, 2), false);
  const auto x = t.add_as(topo::IsdAsId::make(1, 3), false);
  t.add_link(p, c, topo::LinkType::kProviderCustomer);  // 0
  t.add_link(c, x, topo::LinkType::kPeer);              // 1
  t.add_link(p, x, topo::LinkType::kCore);              // 2
  EXPECT_EQ(classify(t, 0, p), Relationship::kCustomer);
  EXPECT_EQ(classify(t, 0, c), Relationship::kProvider);
  EXPECT_EQ(classify(t, 1, c), Relationship::kPeer);
  EXPECT_EQ(classify(t, 2, p), Relationship::kPeer);
}

TEST(Policy, GaoRexfordExportMatrix) {
  using R = Relationship;
  // Customer routes go everywhere.
  EXPECT_TRUE(may_export(R::kCustomer, R::kCustomer));
  EXPECT_TRUE(may_export(R::kCustomer, R::kPeer));
  EXPECT_TRUE(may_export(R::kCustomer, R::kProvider));
  // Peer/provider routes only to customers.
  EXPECT_TRUE(may_export(R::kPeer, R::kCustomer));
  EXPECT_FALSE(may_export(R::kPeer, R::kPeer));
  EXPECT_FALSE(may_export(R::kPeer, R::kProvider));
  EXPECT_TRUE(may_export(R::kProvider, R::kCustomer));
  EXPECT_FALSE(may_export(R::kProvider, R::kPeer));
  EXPECT_FALSE(may_export(R::kProvider, R::kProvider));
}

TEST(Policy, LocalPrefOrdering) {
  EXPECT_GT(local_pref(Relationship::kCustomer), local_pref(Relationship::kPeer));
  EXPECT_GT(local_pref(Relationship::kPeer), local_pref(Relationship::kProvider));
}

// --- Full simulation --------------------------------------------------------------

/// Chain: 0 --pc--> 1 --pc--> 2 (0 is 1's provider, 1 is 2's provider).
topo::Topology chain3() {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), false);
  const auto c = t.add_as(topo::IsdAsId::make(1, 3), false);
  t.add_link(a, b, topo::LinkType::kProviderCustomer);
  t.add_link(b, c, topo::LinkType::kProviderCustomer);
  return t;
}

BgpSimConfig quick_bgp_config() {
  BgpSimConfig config;
  config.convergence_window = Duration::minutes(10);
  config.churn_window = Duration::minutes(10);
  config.flaps_per_adjacency_per_day = 0.0;
  config.seed = 3;
  return config;
}

TEST(BgpSim, ChainConverges) {
  const topo::Topology t = chain3();
  BgpSim sim{t, quick_bgp_config()};
  sim.run();
  // Everyone reaches everyone in a chain (customer routes go up, provider
  // routes go down).
  for (topo::AsIndex a = 0; a < 3; ++a) {
    for (topo::AsIndex b = 0; b < 3; ++b) {
      if (a == b) continue;
      const auto best = sim.speaker(a).best(b);
      ASSERT_TRUE(best.has_value()) << a << " cannot reach " << b;
      EXPECT_EQ(best->path->back(), b);
    }
  }
}

TEST(BgpSim, ValleyFreePathsOnly) {
  // Two customers of different providers, providers peer:
  //   p1 --peer-- p2, p1 -> c1, p2 -> c2. c1 must reach c2 via p1-p2.
  topo::Topology t;
  const auto p1 = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto p2 = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto c1 = t.add_as(topo::IsdAsId::make(1, 3), false);
  const auto c2 = t.add_as(topo::IsdAsId::make(1, 4), false);
  t.add_link(p1, p2, topo::LinkType::kPeer);
  t.add_link(p1, c1, topo::LinkType::kProviderCustomer);
  t.add_link(p2, c2, topo::LinkType::kProviderCustomer);
  BgpSim sim{t, quick_bgp_config()};
  sim.run();

  const auto route = sim.speaker(c1).best(c2);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route->path, (std::vector<topo::AsIndex>{p1, p2, c2}));
  // But p1 must NOT reach c2's sibling prefix via a peer-peer-peer valley:
  // c1's prefix is not exported from p1 to p2 (peer route via customer is
  // fine — customer routes go everywhere).
  const auto p2_to_c1 = sim.speaker(p2).best(c1);
  ASSERT_TRUE(p2_to_c1.has_value());
  EXPECT_EQ(*p2_to_c1->path, (std::vector<topo::AsIndex>{p1, c1}));
}

TEST(BgpSim, PeerRoutesNotReExportedToPeers) {
  // Triangle of peers plus a stub: peer routes must not transit.
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto c = t.add_as(topo::IsdAsId::make(1, 3), true);
  t.add_link(a, b, topo::LinkType::kPeer);
  t.add_link(b, c, topo::LinkType::kPeer);
  // No a-c link: a cannot reach c (b will not re-export a peer route).
  BgpSim sim{t, quick_bgp_config()};
  sim.run();
  EXPECT_FALSE(sim.speaker(a).best(c).has_value());
  EXPECT_TRUE(sim.speaker(a).best(b).has_value());
}

TEST(BgpSim, PrefersCustomerRoute) {
  // dst reachable from src both via a provider and via a customer; the
  // customer route must win even if longer.
  topo::Topology t;
  const auto src = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto prov = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto cust = t.add_as(topo::IsdAsId::make(1, 3), false);
  const auto mid = t.add_as(topo::IsdAsId::make(1, 4), false);
  const auto dst = t.add_as(topo::IsdAsId::make(1, 5), false);
  t.add_link(prov, src, topo::LinkType::kProviderCustomer);   // prov -> src
  t.add_link(src, cust, topo::LinkType::kProviderCustomer);   // src -> cust
  t.add_link(prov, dst, topo::LinkType::kProviderCustomer);   // short: via prov
  t.add_link(cust, mid, topo::LinkType::kProviderCustomer);   // long: via cust
  t.add_link(mid, dst, topo::LinkType::kProviderCustomer);
  BgpSim sim{t, quick_bgp_config()};
  sim.run();
  const auto best = sim.speaker(src).best(dst);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->learned_from, Relationship::kCustomer);
  EXPECT_EQ(best->path->front(), cust);
}

TEST(BgpSim, MultipathReturnsEqualBestSet) {
  // Two disjoint equal-length provider paths to dst.
  topo::Topology t;
  const auto src = t.add_as(topo::IsdAsId::make(1, 1), false);
  const auto m1 = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto m2 = t.add_as(topo::IsdAsId::make(1, 3), true);
  const auto dst = t.add_as(topo::IsdAsId::make(1, 4), false);
  t.add_link(m1, src, topo::LinkType::kProviderCustomer);
  t.add_link(m2, src, topo::LinkType::kProviderCustomer);
  t.add_link(m1, dst, topo::LinkType::kProviderCustomer);
  t.add_link(m2, dst, topo::LinkType::kProviderCustomer);
  BgpSim sim{t, quick_bgp_config()};
  sim.run();
  EXPECT_EQ(sim.speaker(src).multipath(dst).size(), 2u);
  const auto link_paths = sim.bgp_link_paths(src, dst);
  EXPECT_EQ(link_paths.size(), 2u);
  for (const auto& links : link_paths) EXPECT_EQ(links.size(), 2u);
}

TEST(BgpSim, LinkPathsIncludeParallelLinks) {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), false);
  t.add_link(a, b, topo::LinkType::kProviderCustomer);
  t.add_link(a, b, topo::LinkType::kProviderCustomer);
  BgpSim sim{t, quick_bgp_config()};
  sim.run();
  const auto paths = sim.bgp_link_paths(a, b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 2u) << "multipath rides both parallel links";
}

TEST(BgpSim, SessionFlapWithdrawsAndRecovers) {
  const topo::Topology t = chain3();
  BgpSimConfig config = quick_bgp_config();
  BgpSim sim{t, config};
  sim.run();
  ASSERT_TRUE(sim.speaker(0).best(2).has_value());

  // Manually bounce the 1-2 session.
  auto& sim_ref = sim;
  const_cast<Speaker&>(sim_ref.speaker(1)).session_down(2);
  const_cast<Speaker&>(sim_ref.speaker(2)).session_down(1);
  EXPECT_FALSE(sim.speaker(2).best(0).has_value())
      << "withdrawal cascades locally at 2";
  const_cast<Speaker&>(sim_ref.speaker(1)).session_up(2);
  const_cast<Speaker&>(sim_ref.speaker(2)).session_up(1);
  sim.simulator().run();
  EXPECT_TRUE(sim.speaker(2).best(0).has_value());
  EXPECT_TRUE(sim.speaker(0).best(2).has_value());
}

// --- Churn-survival mechanisms (flap damping, graceful restart) -------------

/// Direct Speaker harness: a simulator backs the clock and every deferred
/// timer (MRAI, damping reuse, GR sweeps); sends are recorded.
struct SpeakerFixture : ::testing::Test {
  sim::Simulator simulator;
  std::vector<std::pair<topo::AsIndex, BgpUpdateMsg>> sent;
  std::unique_ptr<Speaker> speaker;

  void make(SpeakerOptions options) {
    std::vector<Speaker::NeighborInfo> nbrs{
        {1, Relationship::kCustomer}, {2, Relationship::kCustomer}};
    speaker = std::make_unique<Speaker>(
        0, nbrs, options,
        [this](topo::AsIndex n, BgpUpdateMsg m) {
          sent.emplace_back(n, std::move(m));
        },
        [this](util::Duration d, TimerKind, std::function<void()> fn) {
          simulator.schedule_after(d, std::move(fn));
        },
        [this] { return simulator.now(); }, /*seed=*/7);
  }

  void announce(topo::AsIndex from, Prefix p,
                std::initializer_list<topo::AsIndex> path) {
    BgpUpdateMsg msg;
    msg.announced = {p};
    msg.path = std::make_shared<std::vector<topo::AsIndex>>(path);
    speaker->handle_update(from, msg);
  }

  void withdraw(topo::AsIndex from, Prefix p) {
    BgpUpdateMsg msg;
    msg.withdrawn = {p};
    speaker->handle_update(from, msg);
  }

  void run_until(util::Duration since_origin) {
    simulator.run_until(util::TimePoint::origin() + since_origin);
  }
};

TEST_F(SpeakerFixture, DampingSuppressesAndReusesAfterDecay) {
  SpeakerOptions options;
  options.damping.enabled = true;
  options.damping.half_life = Duration::minutes(1);
  options.damping.max_suppress = Duration::minutes(10);
  make(options);

  announce(1, 5, {1, 5});
  withdraw(1, 5);  // one flap: penalty 1000, below the 2000 threshold
  EXPECT_FALSE(speaker->is_suppressed(1, 5));
  announce(1, 5, {1, 5});
  withdraw(1, 5);  // second flap with no decay between: suppressed
  EXPECT_TRUE(speaker->is_suppressed(1, 5));
  EXPECT_EQ(speaker->routes_suppressed(), 1u);

  // Suppression removes the adjacency from the decision process; an
  // alternative via neighbor 2 wins even though it is longer.
  announce(1, 5, {1, 5});
  EXPECT_FALSE(speaker->best(5).has_value());
  announce(2, 5, {2, 9, 5});
  ASSERT_TRUE(speaker->best(5).has_value());
  EXPECT_EQ(speaker->best(5)->neighbor, 2u);

  // Penalty 2000 decays to the 750 reuse threshold after log2(2000/750)
  // half-lives (~85 s): still suppressed at 60 s, reusable by 120 s, and
  // the re-decision promotes the shorter path again.
  run_until(Duration::seconds(60));
  EXPECT_TRUE(speaker->is_suppressed(1, 5));
  run_until(Duration::seconds(120));
  EXPECT_FALSE(speaker->is_suppressed(1, 5));
  EXPECT_EQ(speaker->routes_reused(), 1u);
  ASSERT_TRUE(speaker->best(5).has_value());
  EXPECT_EQ(speaker->best(5)->neighbor, 1u);
}

TEST_F(SpeakerFixture, DampingPenaltyCapBoundsSuppression) {
  SpeakerOptions options;
  options.damping.enabled = true;
  options.damping.half_life = Duration::minutes(1);
  options.damping.max_suppress = Duration::minutes(2);
  make(options);

  // Hammer the adjacency far past the suppress threshold: the RFC 2439
  // penalty ceiling caps it so decaying back to reuse never takes longer
  // than max_suppress.
  for (int i = 0; i < 10; ++i) {
    announce(1, 5, {1, 5});
    withdraw(1, 5);
  }
  EXPECT_TRUE(speaker->is_suppressed(1, 5));
  EXPECT_EQ(speaker->routes_suppressed(), 1u) << "one suppression episode";
  run_until(options.damping.max_suppress + Duration::seconds(5));
  EXPECT_FALSE(speaker->is_suppressed(1, 5));
  EXPECT_EQ(speaker->routes_reused(), 1u);
}

TEST_F(SpeakerFixture, DampingOffMeansNoSuppression) {
  make(SpeakerOptions{});
  for (int i = 0; i < 10; ++i) {
    announce(1, 5, {1, 5});
    withdraw(1, 5);
  }
  EXPECT_EQ(speaker->routes_suppressed(), 0u);
  EXPECT_FALSE(speaker->is_suppressed(1, 5));
  announce(1, 5, {1, 5});
  EXPECT_TRUE(speaker->best(5).has_value());
}

TEST_F(SpeakerFixture, GracefulRestartRetainsOnlyWhenForwardingPreserved) {
  SpeakerOptions options;
  options.graceful_restart.enabled = true;
  make(options);

  // A physical link loss flushes even with GR enabled: a stale route
  // through a dead link would mask live alternatives.
  announce(1, 5, {1, 5});
  speaker->session_down(1, /*forwarding_preserved=*/false);
  EXPECT_FALSE(speaker->best(5).has_value());
  EXPECT_EQ(speaker->stale_retained(), 0u);

  // A process restart preserves the data plane: routes stay in the
  // decision process as stale survivors.
  speaker->session_up(1);
  simulator.run();
  announce(1, 5, {1, 5});
  speaker->session_down(1, /*forwarding_preserved=*/true);
  ASSERT_TRUE(speaker->best(5).has_value());
  EXPECT_EQ(speaker->best(5)->neighbor, 1u);
  EXPECT_EQ(speaker->stale_retained(), 1u);
}

TEST_F(SpeakerFixture, GracefulRestartStaleTimerFlushes) {
  SpeakerOptions options;
  options.graceful_restart.enabled = true;
  options.graceful_restart.stale_timer = Duration::minutes(3);
  make(options);

  announce(1, 5, {1, 5});
  speaker->session_down(1, /*forwarding_preserved=*/true);
  run_until(Duration::minutes(2));
  EXPECT_TRUE(speaker->best(5).has_value()) << "stale but still forwarding";
  run_until(Duration::minutes(4));
  EXPECT_FALSE(speaker->best(5).has_value())
      << "the session never returned; the stale timer flushed";
  EXPECT_EQ(speaker->stale_expired(), 1u);
}

TEST_F(SpeakerFixture, GracefulRestartResyncSweepsUnrefreshedRoutes) {
  SpeakerOptions options;
  options.graceful_restart.enabled = true;
  options.graceful_restart.stale_timer = Duration::minutes(3);
  options.graceful_restart.resync_flush_delay = Duration::minutes(1);
  make(options);

  announce(1, 5, {1, 5});
  announce(1, 6, {1, 6});
  speaker->session_down(1, /*forwarding_preserved=*/true);
  EXPECT_EQ(speaker->stale_retained(), 2u);

  // Session returns; the epoch bump voids the pending stale timer. The
  // peer's replay refreshes prefix 5 but never re-announces 6, so the
  // re-sync sweep (the End-of-RIB substitute) flushes only 6.
  speaker->session_up(1);
  announce(1, 5, {1, 5});
  run_until(Duration::minutes(5));  // past both the sweep and the old timer
  EXPECT_TRUE(speaker->best(5).has_value()) << "refreshed by the replay";
  EXPECT_FALSE(speaker->best(6).has_value()) << "swept by the re-sync";
  EXPECT_EQ(speaker->stale_expired(), 1u);
}

TEST(BgpSim, SessionRestartEngagesGracefulRestart) {
  const topo::Topology t = chain3();
  BgpSimConfig config = quick_bgp_config();
  config.graceful_restart.enabled = true;
  faults::Event ev;
  ev.kind = faults::Event::Kind::kSessionRestart;
  ev.target = 1;  // the 1-2 link
  ev.at = Duration::minutes(1);
  ev.duration = Duration::seconds(90);
  config.faults.events.push_back(ev);
  BgpSim sim{t, config};
  sim.run();
  EXPECT_GT(sim.total_stale_retained(), 0u)
      << "a session restart preserves forwarding, so GR retains routes";
  EXPECT_TRUE(sim.speaker(0).best(2).has_value());
  EXPECT_TRUE(sim.speaker(2).best(0).has_value());
}

TEST(BgpSim, DampingCountersEngageUnderChurn) {
  const topo::Topology t = chain3();
  BgpSimConfig config = quick_bgp_config();
  config.damping.enabled = true;
  config.flaps_per_adjacency_per_day = 2000.0;  // several flaps per 15 min
  config.churn_window = Duration::hours(1);
  BgpSim sim{t, config};
  sim.run();
  EXPECT_GT(sim.total_routes_suppressed(), 0u);
}

TEST(BgpSim, MonitorsAccountPerOrigin) {
  topo::HierarchyConfig h;
  h.n_ases = 60;
  h.n_roots = 4;
  h.seed = 6;
  const topo::Topology t = topo::generate_hierarchy(h);
  BgpSimConfig config = quick_bgp_config();
  config.flaps_per_adjacency_per_day = 50.0;  // force churn
  config.churn_window = Duration::minutes(30);
  BgpSim sim{t, config};
  const topo::AsIndex monitor = 0;
  sim.add_monitor(monitor);
  sim.run();
  const MonitorAccount& acc = sim.monitor(monitor);
  EXPECT_GT(acc.raw_messages, 0u) << "churn must reach the monitor";
  EXPECT_GT(acc.per_origin.size(), 0u);

  const std::vector<std::uint32_t> ones(t.as_count(), 1);
  const double bgp_bytes = sim.monthly_bgp_bytes(monitor, ones);
  const double bgpsec_bytes = sim.monthly_bgpsec_bytes(monitor, ones);
  EXPECT_GT(bgp_bytes, 0.0);
  EXPECT_GT(bgpsec_bytes, bgp_bytes)
      << "BGPsec must cost more than BGP at the same monitor";
}

TEST(BgpSim, PrefixCountsScaleAccounting) {
  const topo::Topology t = chain3();
  BgpSimConfig config = quick_bgp_config();
  config.flaps_per_adjacency_per_day = 200.0;
  config.churn_window = Duration::hours(1);
  BgpSim sim{t, config};
  sim.add_monitor(0);
  sim.run();
  const std::vector<std::uint32_t> ones(3, 1);
  const std::vector<std::uint32_t> tens(3, 10);
  EXPECT_NEAR(sim.monthly_bgpsec_bytes(0, tens),
              10.0 * sim.monthly_bgpsec_bytes(0, ones), 1e-6);
  EXPECT_NEAR(sim.monthly_bgp_bytes(0, tens),
              10.0 * sim.monthly_bgp_bytes(0, ones), 1e-6);
  // Per prefix, BGPsec costs roughly an order of magnitude more than BGP
  // (per-hop signatures, no aggregation) — the Fig. 5 gap.
  const double ratio =
      sim.monthly_bgpsec_bytes(0, ones) / sim.monthly_bgp_bytes(0, ones);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 40.0);
}

}  // namespace
}  // namespace scion::bgp
