#include <gtest/gtest.h>

#include "core/pcb.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;
using util::TimePoint;

constexpr std::uint64_t kDomain = 77;

struct PcbFixture : ::testing::Test {
  crypto::KeyStore keys{kDomain};
  IsdAsId origin = IsdAsId::make(1, 10);
  IsdAsId middle = IsdAsId::make(1, 20);
  IsdAsId last = IsdAsId::make(2, 30);
  TimePoint t0 = TimePoint::origin() + Duration::minutes(5);
  Duration lifetime = Duration::hours(6);

  crypto::SigningKey sk(IsdAsId as) { return keys.key_for(as.value()); }
  crypto::ForwardingKey fk(IsdAsId as) {
    return crypto::ForwardingKey::derive(as.value(), kDomain);
  }

  Pcb make_chain() {
    const Pcb p0 = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
    const Pcb p1 = p0.extend_signed(middle, IfId{1}, IfId{2}, {}, sk(middle), fk(middle));
    return p1.extend_signed(last, IfId{4}, IfId{5}, {}, sk(last), fk(last));
  }
};

TEST_F(PcbFixture, OriginateFields) {
  const Pcb pcb = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  EXPECT_EQ(pcb.origin(), origin);
  EXPECT_EQ(pcb.timestamp(), t0);
  EXPECT_EQ(pcb.expiry(), t0 + lifetime);
  EXPECT_EQ(pcb.lifetime(), lifetime);
  EXPECT_EQ(pcb.hops(), 1u);
  ASSERT_EQ(pcb.entries().size(), 1u);
  EXPECT_EQ(pcb.entries()[0].in_if, topo::kNoInterface);
  EXPECT_EQ(pcb.entries()[0].out_if, IfId{3});
}

TEST_F(PcbFixture, AgeAndExpiry) {
  const Pcb pcb = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  const TimePoint later = t0 + Duration::hours(2);
  EXPECT_EQ(pcb.age(later), Duration::hours(2));
  EXPECT_EQ(pcb.remaining_lifetime(later), Duration::hours(4));
  EXPECT_FALSE(pcb.expired(later));
  EXPECT_TRUE(pcb.expired(t0 + lifetime));
}

TEST_F(PcbFixture, ExtendAppendsAndPreservesTimestamps) {
  const Pcb pcb = make_chain();
  EXPECT_EQ(pcb.hops(), 3u);
  EXPECT_EQ(pcb.origin(), origin);
  EXPECT_EQ(pcb.timestamp(), t0);
  EXPECT_EQ(pcb.entries()[1].isd_as, middle);
  EXPECT_EQ(pcb.entries()[2].out_if, IfId{5});
}

TEST_F(PcbFixture, ContainsAs) {
  const Pcb pcb = make_chain();
  EXPECT_TRUE(pcb.contains_as(origin));
  EXPECT_TRUE(pcb.contains_as(middle));
  EXPECT_FALSE(pcb.contains_as(IsdAsId::make(9, 9)));
}

TEST_F(PcbFixture, WireSizeFollowsLayout) {
  const Pcb p0 = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  EXPECT_EQ(p0.wire_size(),
            util::Bytes{kPcbHeaderBytes + kAsEntryFixedBytes +
                        crypto::kSignatureBytes});
  const Pcb p1 = p0.extend_signed(middle, IfId{1}, IfId{2}, {}, sk(middle), fk(middle));
  EXPECT_EQ(p1.wire_size(),
            p0.wire_size() + util::Bytes{kAsEntryFixedBytes +
                                         crypto::kSignatureBytes});

  std::vector<PeerEntry> peers(2);
  peers[0].peer_as = last;
  peers[1].peer_as = origin;
  const Pcb p2 = p1.extend_signed(last, IfId{4}, IfId{5}, peers, sk(last), fk(last));
  EXPECT_EQ(p2.wire_size(),
            p1.wire_size() + util::Bytes{kAsEntryFixedBytes +
                                         crypto::kSignatureBytes +
                                         2 * kPeerEntryBytes});
}

TEST_F(PcbFixture, VerifyAcceptsChain) {
  EXPECT_TRUE(make_chain().verify(keys));
}

TEST_F(PcbFixture, VerifyRejectsWrongKeyDomain) {
  const Pcb pcb = make_chain();
  crypto::KeyStore other{kDomain + 1};
  EXPECT_FALSE(pcb.verify(other));
}

TEST_F(PcbFixture, VerifyRejectsTamperedInterface) {
  Pcb pcb = make_chain();
  // Re-extend with a modified middle entry: simulate tampering by building
  // a PCB whose middle interface was altered after signing.
  const Pcb p0 = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  AsEntry forged;
  forged.isd_as = middle;
  forged.in_if = IfId{1};
  forged.out_if = IfId{99};  // altered
  // Copy the legitimate signature from the honest chain.
  forged.signature = pcb.entries()[1].signature;
  forged.hop_mac = pcb.entries()[1].hop_mac;
  const Pcb tampered = p0.extend(forged);
  EXPECT_FALSE(tampered.verify(keys));
}

TEST_F(PcbFixture, VerifyRejectsRemovedMiddleEntry) {
  const Pcb pcb = make_chain();
  const Pcb p0 = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  // Splice the last entry directly after the origin (cutting out middle).
  const Pcb spliced = p0.extend(pcb.entries()[2]);
  EXPECT_FALSE(spliced.verify(keys));
}

TEST_F(PcbFixture, PathKeyIgnoresTimestamps) {
  const Pcb a = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  const Pcb b = Pcb::originate(origin, IfId{3}, t0 + Duration::minutes(10), lifetime,
                               sk(origin), fk(origin));
  EXPECT_EQ(a.path_key(), b.path_key());
}

TEST_F(PcbFixture, PathKeyDistinguishesPathsAndInterfaces) {
  const Pcb a = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  const Pcb b = Pcb::originate(origin, IfId{4}, t0, lifetime, sk(origin), fk(origin));
  EXPECT_NE(a.path_key(), b.path_key());
  const Pcb c = a.extend_signed(middle, IfId{1}, IfId{2}, {}, sk(middle), fk(middle));
  EXPECT_NE(a.path_key(), c.path_key());
}

TEST_F(PcbFixture, UnsignedVariantsMatchWireSizeOfSigned) {
  const Pcb signed_pcb = make_chain();
  const Pcb u0 = Pcb::originate_unsigned(origin, IfId{3}, t0, lifetime);
  const Pcb u1 = u0.extend_unsigned(middle, IfId{1}, IfId{2}, {});
  const Pcb u2 = u1.extend_unsigned(last, IfId{4}, IfId{5}, {});
  EXPECT_EQ(u2.wire_size(), signed_pcb.wire_size());
  EXPECT_EQ(u2.path_key(), signed_pcb.path_key());
  EXPECT_FALSE(u2.verify(keys)) << "zeroed signatures must not verify";
}

TEST_F(PcbFixture, PeerEntryMacsChainFromPredecessor) {
  const Pcb p0 = Pcb::originate(origin, IfId{3}, t0, lifetime, sk(origin), fk(origin));
  std::vector<PeerEntry> peers(1);
  peers[0].peer_as = last;
  peers[0].peer_if = IfId{9};
  const Pcb p1 = p0.extend_signed(middle, IfId{1}, IfId{2}, peers, sk(middle), fk(middle));
  const auto& entry = p1.entries()[1];
  ASSERT_EQ(entry.peers.size(), 1u);
  const crypto::HopMac expected = crypto::hop_mac(
      fk(middle), 9, 2,
      static_cast<std::uint32_t>(p1.expiry().ns() / 1'000'000'000),
      p0.entries()[0].hop_mac);
  EXPECT_EQ(entry.peers[0].hop_mac, expected);
}

}  // namespace
}  // namespace scion::ctrl
