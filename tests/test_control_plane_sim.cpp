#include <gtest/gtest.h>

#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"

namespace scion::svc {
namespace {

using util::Duration;

topo::Topology small_world() {
  topo::MultiIsdConfig config;
  config.n_isds = 3;
  config.cores_per_isd = 2;
  config.ases_per_isd = 10;
  config.seed = 21;
  return topo::generate_multi_isd(config);
}

ControlPlaneSimConfig quick_config() {
  ControlPlaneSimConfig config;
  config.sim_duration = Duration::minutes(45);
  config.lookups_per_second = 0.5;
  config.link_failures_per_hour = 6.0;
  config.registration_interval = Duration::minutes(15);
  config.seed = 8;
  return config;
}

struct ControlPlaneFixture : ::testing::Test {
  topo::Topology world = small_world();
  ControlPlaneSim sim{world, quick_config()};

  void run() { sim.run(); }
};

TEST_F(ControlPlaneFixture, AllTableOneComponentsObserved) {
  run();
  const auto rows = sim.ledger().rows();
  std::set<std::string> components;
  for (const auto& row : rows) components.insert(row.component);
  for (const char* expected :
       {component::kCoreBeaconing, component::kIntraIsdBeaconing,
        component::kDownSegmentLookup, component::kCoreSegmentLookup,
        component::kEndpointLookup, component::kRegistration,
        component::kRevocation}) {
    EXPECT_TRUE(components.contains(expected)) << "missing " << expected;
  }
}

TEST_F(ControlPlaneFixture, ScopesMatchTableOne) {
  run();
  std::map<std::string, analysis::Scope> scopes;
  for (const auto& row : sim.ledger().rows()) {
    scopes[row.component] = row.scope();
  }
  EXPECT_EQ(scopes[component::kCoreBeaconing], analysis::Scope::kGlobal);
  EXPECT_EQ(scopes[component::kIntraIsdBeaconing], analysis::Scope::kIntraIsd);
  EXPECT_EQ(scopes[component::kDownSegmentLookup], analysis::Scope::kGlobal);
  EXPECT_EQ(scopes[component::kCoreSegmentLookup], analysis::Scope::kIntraIsd);
  EXPECT_EQ(scopes[component::kEndpointLookup], analysis::Scope::kIntraAs);
  EXPECT_EQ(scopes[component::kRegistration], analysis::Scope::kIntraIsd);
  EXPECT_EQ(scopes[component::kRevocation], analysis::Scope::kIntraIsd);
}

TEST_F(ControlPlaneFixture, BeaconingDominatesPushTraffic) {
  run();
  util::Bytes beaconing{}, registrations{}, revocations{};
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kCoreBeaconing ||
        row.component == component::kIntraIsdBeaconing) {
      beaconing += row.bytes;
    }
    if (row.component == component::kRegistration) registrations = row.bytes;
    if (row.component == component::kRevocation) revocations = row.bytes;
  }
  // Section 4: among the push-based components, topology exploration has by
  // far the highest overhead. (Pull-based lookup traffic is workload-
  // proportional and amortized by data traffic + caching, so it is not a
  // scalability driver — see the caching test below.)
  EXPECT_GT(beaconing, registrations);
  EXPECT_GT(beaconing, revocations * 10u);
}

TEST_F(ControlPlaneFixture, ResolvePathsReturnsForwardablePaths) {
  run();
  // Find a leaf pair in different ISDs with resolvable paths.
  std::size_t verified = 0;
  const auto& leaves = sim.leaves();
  for (std::size_t i = 0; i < leaves.size() && verified < 3; ++i) {
    for (std::size_t j = 0; j < leaves.size() && verified < 3; ++j) {
      if (i == j) continue;
      const auto paths = sim.resolve_paths(leaves[i], leaves[j]);
      for (const auto& p : paths) {
        EXPECT_EQ(p.ases.front(), leaves[i]);
        EXPECT_EQ(p.ases.back(), leaves[j]);
        std::string error;
        EXPECT_TRUE(sim.dataplane().verify(p, &error)) << error;
        ++verified;
      }
    }
  }
  EXPECT_GE(verified, 3u) << "the control plane must resolve usable paths";
}

TEST_F(ControlPlaneFixture, CachingCutsRepeatLookups) {
  run();
  const auto& leaves = sim.leaves();
  ASSERT_GE(leaves.size(), 2u);
  topo::AsIndex src = leaves[0], dst = leaves[1];
  // Pick a cross-ISD pair for a global lookup.
  for (const topo::AsIndex candidate : leaves) {
    if (world.as_id(candidate).isd() != world.as_id(src).isd()) {
      dst = candidate;
      break;
    }
  }
  std::uint64_t down_before = 0;
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kDownSegmentLookup) down_before = row.messages;
  }
  sim.resolve_paths(src, dst);
  std::uint64_t down_mid = 0;
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kDownSegmentLookup) down_mid = row.messages;
  }
  sim.resolve_paths(src, dst);  // cached now
  std::uint64_t down_after = 0;
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kDownSegmentLookup) down_after = row.messages;
  }
  EXPECT_EQ(down_after, down_mid) << "second lookup must hit the cache";
  EXPECT_GE(down_mid, down_before);
}

TEST_F(ControlPlaneFixture, FailedLinkTriggersRevocationAndRecovery) {
  run();
  // Pick a provider-customer link and fail it explicitly.
  topo::LinkIndex victim = topo::kInvalidLinkIndex;
  for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
    if (world.link(l).type == topo::LinkType::kProviderCustomer &&
        sim.link_up(l)) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, topo::kInvalidLinkIndex);
  std::uint64_t revocations_before = 0;
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kRevocation) {
      revocations_before = row.messages;
    }
  }
  sim.fail_link(victim, Duration::minutes(1));
  EXPECT_FALSE(sim.link_up(victim));
  std::uint64_t revocations_after = 0;
  for (const auto& row : sim.ledger().rows()) {
    if (row.component == component::kRevocation) {
      revocations_after = row.messages;
    }
  }
  EXPECT_GT(revocations_after, revocations_before);
  sim.simulator().run_until(sim.simulator().now() + Duration::minutes(2));
  EXPECT_TRUE(sim.link_up(victim));
}

TEST_F(ControlPlaneFixture, BothEndpointsRevokeAtTheirIsdCores) {
  run();
  // A cross-ISD link: the two endpoints live in different ISDs, so a
  // one-sided reaction would only ever reach one ISD's core path servers.
  topo::LinkIndex victim = topo::kInvalidLinkIndex;
  for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
    const topo::Link& link = world.link(l);
    if (world.as_id(link.a).isd() != world.as_id(link.b).isd() &&
        sim.link_up(l)) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, topo::kInvalidLinkIndex);

  const auto revocation_messages = [&] {
    for (const auto& row : sim.ledger().rows()) {
      if (row.component == component::kRevocation) return row.messages;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t before = revocation_messages();
  sim.fail_link(victim, Duration::minutes(1));

  // Each endpoint notifies every core path server of its own ISD.
  const topo::Link& link = world.link(victim);
  std::uint64_t expected = 0;
  for (const topo::AsIndex observer : {link.a, link.b}) {
    const topo::IsdId isd = world.as_id(observer).isd();
    for (const topo::AsIndex core : world.core_ases()) {
      if (world.as_id(core).isd() == isd) ++expected;
    }
  }
  EXPECT_EQ(revocation_messages() - before, expected)
      << "both ISDs' cores must hear about a cross-ISD link failure";
}

TEST_F(ControlPlaneFixture, LookupWorkloadRan) {
  run();
  EXPECT_GT(sim.lookups_performed(), 0u);
  EXPECT_GT(sim.paths_resolved(), 0u);
}

}  // namespace
}  // namespace scion::svc
