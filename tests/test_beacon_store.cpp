#include <gtest/gtest.h>

#include "core/beacon_store.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;
using util::TimePoint;

const Duration kLifetime = Duration::hours(6);

/// Builds a stored PCB whose entry chain is synthesized from the link ids
/// (so different link sequences give different path keys).
StoredPcb make_stored(IsdAsId origin, std::vector<topo::LinkIndex> links,
                      TimePoint timestamp) {
  Pcb pcb = Pcb::originate_unsigned(
      origin, static_cast<topo::IfId>(links.front() + 1), timestamp, kLifetime);
  for (std::size_t i = 1; i < links.size(); ++i) {
    pcb = pcb.extend_unsigned(
        IsdAsId::make(9, 100 + links[i - 1]),
        static_cast<topo::IfId>(links[i - 1] + 1),
        static_cast<topo::IfId>(links[i] + 1), {});
  }
  StoredPcb stored;
  stored.pcb = std::make_shared<const Pcb>(std::move(pcb));
  stored.links = std::move(links);
  stored.received_at = timestamp;
  stored.path_key = stored.pcb->path_key();
  return stored;
}

const IsdAsId kOrigin = IsdAsId::make(1, 1);

TEST(BeaconStore, InsertAndQuery) {
  BeaconStore store{10};
  EXPECT_EQ(store.insert(make_stored(kOrigin, {1}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kInserted);
  EXPECT_EQ(store.for_origin(kOrigin).size(), 1u);
  EXPECT_EQ(store.total_stored(), 1u);
  EXPECT_TRUE(store.for_origin(IsdAsId::make(2, 2)).empty());
}

TEST(BeaconStore, RefreshReplacesOlderInstance) {
  BeaconStore store{10};
  store.insert(make_stored(kOrigin, {1, 2}, TimePoint::origin()));
  const TimePoint newer = TimePoint::origin() + Duration::minutes(10);
  EXPECT_EQ(store.insert(make_stored(kOrigin, {1, 2}, newer)),
            BeaconStore::InsertOutcome::kRefreshed);
  ASSERT_EQ(store.for_origin(kOrigin).size(), 1u);
  EXPECT_EQ(store.for_origin(kOrigin)[0].pcb->timestamp(), newer);
}

TEST(BeaconStore, StaleInstanceIgnored) {
  BeaconStore store{10};
  const TimePoint newer = TimePoint::origin() + Duration::minutes(10);
  store.insert(make_stored(kOrigin, {1, 2}, newer));
  EXPECT_EQ(store.insert(make_stored(kOrigin, {1, 2}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kStale);
  EXPECT_EQ(store.for_origin(kOrigin)[0].pcb->timestamp(), newer);
}

TEST(BeaconStore, RespectsPerOriginLimit) {
  BeaconStore store{2};
  store.insert(make_stored(kOrigin, {1}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {2}, TimePoint::origin()));
  // Worse (longer) candidate is rejected when full.
  EXPECT_EQ(store.insert(make_stored(kOrigin, {3, 4}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kRejected);
  EXPECT_EQ(store.total_stored(), 2u);
}

TEST(BeaconStore, ShortestFreshEvictsLongerPath) {
  BeaconStore store{2, StorePolicy::kShortestFresh};
  store.insert(make_stored(kOrigin, {1, 2, 3}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {4}, TimePoint::origin()));
  // A 2-hop path beats the 3-hop one.
  EXPECT_EQ(store.insert(make_stored(kOrigin, {5, 6}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kReplaced);
  for (const StoredPcb& s : store.for_origin(kOrigin)) {
    EXPECT_LE(s.links.size(), 2u);
  }
}

TEST(BeaconStore, UnlimitedStorage) {
  BeaconStore store{0};
  for (topo::LinkIndex l = 0; l < 100; ++l) {
    store.insert(make_stored(kOrigin, {l}, TimePoint::origin()));
  }
  EXPECT_EQ(store.total_stored(), 100u);
}

TEST(BeaconStore, DiversityAwareEvictsRedundantPath) {
  BeaconStore store{3, StorePolicy::kDiversityAware};
  // Three paths, two of which share links {1,2}.
  store.insert(make_stored(kOrigin, {1, 2, 3}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {1, 2, 4}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {7, 8}, TimePoint::origin()));
  // A fully fresh path should replace one of the overlapping pair, not the
  // disjoint {7,8} one.
  EXPECT_EQ(store.insert(make_stored(kOrigin, {10, 11}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kReplaced);
  bool kept_disjoint = false;
  int overlapping = 0;
  for (const StoredPcb& s : store.for_origin(kOrigin)) {
    if (s.links == std::vector<topo::LinkIndex>{7, 8}) kept_disjoint = true;
    if (s.links.size() == 3) ++overlapping;
  }
  EXPECT_TRUE(kept_disjoint);
  EXPECT_EQ(overlapping, 1);
}

TEST(BeaconStore, DiversityAwareRejectsRedundantCandidate) {
  BeaconStore store{2, StorePolicy::kDiversityAware};
  store.insert(make_stored(kOrigin, {1, 2}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {3, 4}, TimePoint::origin()));
  // Candidate overlapping both stored paths is worse than either.
  EXPECT_EQ(store.insert(make_stored(kOrigin, {1, 3}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kRejected);
}

TEST(BeaconStore, ExpireDropsOnlyExpired) {
  BeaconStore store{10};
  store.insert(make_stored(kOrigin, {1}, TimePoint::origin()));
  store.insert(
      make_stored(kOrigin, {2}, TimePoint::origin() + Duration::hours(3)));
  store.expire(TimePoint::origin() + kLifetime);
  ASSERT_EQ(store.for_origin(kOrigin).size(), 1u);
  EXPECT_EQ(store.for_origin(kOrigin)[0].links, std::vector<topo::LinkIndex>{2});
}

TEST(BeaconStore, OriginsSortedAndLive) {
  BeaconStore store{10};
  const IsdAsId o2 = IsdAsId::make(2, 5);
  store.insert(make_stored(o2, {1}, TimePoint::origin()));
  store.insert(make_stored(kOrigin, {2}, TimePoint::origin()));
  EXPECT_EQ(store.origins(), (std::vector<IsdAsId>{kOrigin, o2}));
  store.expire(TimePoint::origin() + kLifetime);
  EXPECT_TRUE(store.origins().empty());
}

TEST(BeaconStore, SeparateBucketsPerOrigin) {
  BeaconStore store{1};
  const IsdAsId o2 = IsdAsId::make(2, 5);
  EXPECT_EQ(store.insert(make_stored(kOrigin, {1}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kInserted);
  EXPECT_EQ(store.insert(make_stored(o2, {2}, TimePoint::origin())),
            BeaconStore::InsertOutcome::kInserted);
  EXPECT_EQ(store.total_stored(), 2u);
}

}  // namespace
}  // namespace scion::ctrl
