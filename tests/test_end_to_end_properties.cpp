// Parameterized end-to-end property tests: across random multi-ISD worlds
// and both path construction algorithms, every path the control plane
// resolves must be loop-free, topologically consistent, cryptographically
// verifiable, and forwardable — and the control plane must stay internally
// consistent (accounting, caching, revocation).
#include <gtest/gtest.h>

#include <set>

#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"

namespace scion::svc {
namespace {

using util::Duration;

struct WorldParams {
  std::uint64_t seed;
  std::size_t isds;
  std::size_t ases_per_isd;
  ctrl::AlgorithmKind algorithm;
};

class EndToEndProperties : public ::testing::TestWithParam<WorldParams> {};

TEST_P(EndToEndProperties, ResolvedPathsAreSoundEverywhere) {
  const WorldParams p = GetParam();
  topo::MultiIsdConfig config;
  config.n_isds = p.isds;
  config.cores_per_isd = 2;
  config.ases_per_isd = p.ases_per_isd;
  config.seed = p.seed;
  const topo::Topology world = topo::generate_multi_isd(config);

  ControlPlaneSimConfig sim_config;
  sim_config.sim_duration = Duration::minutes(25);
  sim_config.lookups_per_second = 0;
  sim_config.link_failures_per_hour = 0;
  sim_config.algorithm = p.algorithm;
  sim_config.seed = p.seed ^ 0x99;
  ControlPlaneSim sim{world, sim_config};
  sim.run();

  const auto& leaves = sim.leaves();
  std::size_t resolved_pairs = 0;
  std::size_t checked_paths = 0;
  for (std::size_t i = 0; i < leaves.size(); i += 3) {
    for (std::size_t j = 1; j < leaves.size(); j += 4) {
      if (leaves[i] == leaves[j]) continue;
      const auto paths = sim.resolve_paths(leaves[i], leaves[j]);
      if (!paths.empty()) ++resolved_pairs;
      for (const EndToEndPath& path : paths) {
        ++checked_paths;
        // Endpoints and shape.
        ASSERT_EQ(path.ases.front(), leaves[i]);
        ASSERT_EQ(path.ases.back(), leaves[j]);
        ASSERT_EQ(path.ases.size(), path.links.size() + 1);
        // Loop freedom.
        std::set<topo::AsIndex> seen(path.ases.begin(), path.ases.end());
        EXPECT_EQ(seen.size(), path.ases.size())
            << "AS repeated on a combined path";
        // Topological consistency: every link connects its neighbors.
        for (std::size_t k = 0; k < path.links.size(); ++k) {
          const topo::Link& link = world.link(path.links[k]);
          const bool ok =
              (link.a == path.ases[k] && link.b == path.ases[k + 1]) ||
              (link.b == path.ases[k] && link.a == path.ases[k + 1]);
          ASSERT_TRUE(ok) << "link does not match the AS sequence";
        }
        // Crypto + forwarding.
        std::string error;
        EXPECT_TRUE(sim.dataplane().verify(path, &error)) << error;
        const ForwardResult result = sim.dataplane().forward(path);
        EXPECT_TRUE(result.delivered) << result.error;
      }
    }
  }
  EXPECT_GT(resolved_pairs, 0u) << "no connectivity resolved at all";
  EXPECT_GT(checked_paths, resolved_pairs)
      << "multi-path: more paths than pairs";
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, EndToEndProperties,
    ::testing::Values(
        WorldParams{11, 2, 10, ctrl::AlgorithmKind::kBaseline},
        WorldParams{11, 2, 10, ctrl::AlgorithmKind::kDiversity},
        WorldParams{23, 3, 8, ctrl::AlgorithmKind::kBaseline},
        WorldParams{23, 3, 8, ctrl::AlgorithmKind::kDiversity},
        WorldParams{37, 4, 7, ctrl::AlgorithmKind::kBaseline},
        WorldParams{51, 2, 14, ctrl::AlgorithmKind::kDiversity}),
    [](const ::testing::TestParamInfo<WorldParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::to_string(info.param.isds) + "isds_" +
             ctrl::to_string(info.param.algorithm);
    });

}  // namespace
}  // namespace scion::svc
