// Unit tests for the simlint rule engine (tools/simlint_core.hpp): each
// rule's positive case, the idiomatic patterns that must stay clean, and
// the simlint:allow escape hatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/simlint_core.hpp"
#include "tools/simlint_includes.hpp"

namespace scion::lint {
namespace {

std::vector<Finding> lint_one(const std::string& content,
                              const std::string& name = "src/x.cpp") {
  Linter linter;
  linter.add_file(name, content);
  return linter.run();
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// --- wall-clock --------------------------------------------------------------

TEST(SimlintWallClock, FlagsChronoClocks) {
  const auto f = lint_one("auto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(lint_one("auto t = std::chrono::steady_clock::now();")[0].rule,
            "wall-clock");
  EXPECT_EQ(
      lint_one("auto t = std::chrono::high_resolution_clock::now();")[0].rule,
      "wall-clock");
}

TEST(SimlintWallClock, FlagsCTimeSources) {
  EXPECT_EQ(rules_of(lint_one("time_t t = time(nullptr);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("time_t t = time(NULL);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("gettimeofday(&tv, nullptr);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("clock_gettime(CLOCK_MONOTONIC, &ts);")),
            std::vector<std::string>{"wall-clock"});
}

TEST(SimlintWallClock, SimulationTimeIsClean) {
  EXPECT_TRUE(lint_one("util::TimePoint now = sim.now();\n"
                       "auto later = now + util::Duration::seconds(5);\n")
                  .empty());
  // chrono duration arithmetic without a clock is fine.
  EXPECT_TRUE(lint_one("std::chrono::nanoseconds d{5};").empty());
  // An identifier merely containing "time" is not the C time() call.
  EXPECT_TRUE(lint_one("auto x = runtime();").empty());
}

// --- std-rng -----------------------------------------------------------------

TEST(SimlintStdRng, FlagsStandardEngines) {
  EXPECT_EQ(rules_of(lint_one("std::mt19937 gen;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::mt19937_64 gen{seed};")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::default_random_engine e;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::random_device rd;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("int x = std::rand();")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("srand(42);")),
            std::vector<std::string>{"std-rng"});
}

TEST(SimlintStdRng, SeededUtilRngIsClean) {
  EXPECT_TRUE(lint_one("util::Rng rng{config.seed};\n"
                       "double u = rng.uniform();\n")
                  .empty());
}

// --- unordered-iter ----------------------------------------------------------

TEST(SimlintUnorderedIter, FlagsRangeForOverUnordered) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  out << k << v;\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 2);
}

TEST(SimlintUnorderedIter, FlagsIteratorWalk) {
  const auto f = lint_one(
      "std::unordered_set<int> seen;\n"
      "for (auto it = seen.begin(); it != seen.end(); ++it) {}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
}

TEST(SimlintUnorderedIter, LookupsAreClean) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "auto it = counts.find(k);\n"
               "if (it != counts.end()) use(it->second);\n"
               "counts[k] = 3;\n"
               "counts.erase(k);\n")
          .empty());
}

TEST(SimlintUnorderedIter, OrderedContainersAreClean) {
  EXPECT_TRUE(lint_one("std::map<int, int> counts;\n"
                       "for (const auto& [k, v] : counts) use(k, v);\n")
                  .empty());
}

TEST(SimlintUnorderedIter, ResolvesDeclarationsAcrossStemGroup) {
  // Member declared in the header, iterated in the companion .cpp.
  Linter linter;
  linter.add_file("src/foo.hpp",
                  "struct S { std::unordered_map<int, int> table; };\n");
  linter.add_file("src/foo.cpp", "for (const auto& [k, v] : table) use(k);\n");
  // Same local name in an unrelated file must NOT inherit the type.
  linter.add_file("src/bar.cpp", "for (const auto& e : table) use(e);\n");
  const auto f = linter.run();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/foo.cpp");
}

TEST(SimlintUnorderedIter, TrailingUnderscoreMembersAreGlobal) {
  Linter linter;
  linter.add_file("src/foo.hpp",
                  "class C { std::unordered_map<int, int> cache_; };\n");
  linter.add_file("src/other.cpp",
                  "for (const auto& [k, v] : cache_) use(k);\n");
  const auto f = linter.run();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/other.cpp");
}

TEST(SimlintUnorderedIter, ResolvesUnorderedTypeAliases) {
  const auto f = lint_one(
      "using Table = std::unordered_map<int, int>;\n"
      "Table table;\n"
      "for (const auto& [k, v] : table) use(k);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 3);
}

TEST(SimlintUnorderedIter, MultilineDeclarationIsResolved) {
  const auto f = lint_one(
      "std::unordered_map<std::string,\n"
      "                   std::vector<int>>\n"
      "    buckets;\n"
      "for (auto& [k, v] : buckets) use(v);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

// --- float-accum -------------------------------------------------------------

TEST(SimlintFloatAccum, FlagsAccumulateWithFloatInit) {
  const auto f = lint_one(
      "double mean = std::accumulate(v.begin(), v.end(), 0.0) / n;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "float-accum");
}

TEST(SimlintFloatAccum, IntegerAccumulateIsClean) {
  EXPECT_TRUE(
      lint_one("long total = std::accumulate(v.begin(), v.end(), 0L);\n")
          .empty());
}

TEST(SimlintFloatAccum, FlagsFloatSumInsideUnorderedLoop) {
  const auto f = lint_one(
      "std::unordered_map<int, double> weights;\n"
      "double total = 0.0;\n"
      "for (const auto& [k, w] : weights) {\n"
      "  total += w;\n"
      "}\n");
  ASSERT_EQ(f.size(), 2u);  // the loop itself + the accumulation
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[1].rule, "float-accum");
  EXPECT_EQ(f[1].line, 4);
}

TEST(SimlintFloatAccum, IntegerSumInsideUnorderedLoopIsOnlyIterFlagged) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "std::size_t n = 0;\n"
      "for (const auto& [k, c] : counts) {\n"
      "  n += c;\n"
      "}\n");
  EXPECT_EQ(rules_of(f), std::vector<std::string>{"unordered-iter"});
}

TEST(SimlintFloatAccum, LoopBodyContextEndsAtCloseBrace) {
  const auto f = lint_one(
      "std::unordered_map<int, double> weights;\n"
      "double total = 0.0;\n"
      "for (const auto& [k, w] : weights) {\n"  // flagged
      "  use(k);\n"
      "}\n"
      "total += 1.0;\n");  // outside the loop: clean
  EXPECT_EQ(rules_of(f), std::vector<std::string>{"unordered-iter"});
}

// --- allow directive ---------------------------------------------------------

TEST(SimlintAllow, SameLineDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "for (const auto& [k, v] : counts) {}  "
               "// simlint:allow(unordered-iter)\n")
          .empty());
}

TEST(SimlintAllow, PreviousLineDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "// commutative count, order-insensitive. "
               "simlint:allow(unordered-iter)\n"
               "for (const auto& [k, v] : counts) {}\n")
          .empty());
}

TEST(SimlintAllow, DirectiveDoesNotReachFurtherLines) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "// simlint:allow(unordered-iter)\n"
      "use(counts.size());\n"
      "for (const auto& [k, v] : counts) {}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

TEST(SimlintAllow, OnlySuppressesTheNamedRule) {
  const auto f = lint_one(
      "// simlint:allow(wall-clock)\n"
      "std::random_device rd;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "std-rng");
}

TEST(SimlintAllow, SuppressesMultipleCommaSeparatedRules) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, double> w;\n"
               "double t = 0.0;\n"
               "// simlint:allow(unordered-iter)\n"
               "for (const auto& [k, v] : w) {\n"
               "  t += v;  // simlint:allow(float-accum)\n"
               "}\n")
          .empty());
}

// --- raw-output --------------------------------------------------------------

TEST(SimlintRawOutput, FlagsDirectStdoutWrites) {
  EXPECT_EQ(rules_of(lint_one("std::cout << result << '\\n';")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("std::printf(\"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("printf(\"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("puts(\"done\");")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("fprintf(stdout, \"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
}

TEST(SimlintRawOutput, NonStdoutIoIsClean) {
  // Diagnostics on stderr and in-memory formatting are not result output.
  EXPECT_TRUE(lint_one("std::fprintf(stderr, \"oops\\n\");").empty());
  EXPECT_TRUE(
      lint_one("std::snprintf(buf, sizeof buf, \"%d\", x);").empty());
  EXPECT_TRUE(lint_one("std::fputs(\"x\", f);").empty());
  EXPECT_TRUE(lint_one("out << \"pair \" << src << '\\n';").empty());
}

TEST(SimlintRawOutput, ObsRendererFilesAreExempt) {
  // The renderer itself is the sanctioned stdout site.
  EXPECT_TRUE(
      lint_one("std::cout << text;", "src/obs/report.cpp").empty());
  EXPECT_TRUE(lint_one("std::cout << text;", "obs/report.cpp").empty());
  // Non-obs files stay covered.
  EXPECT_EQ(rules_of(lint_one("std::cout << text;", "src/core/scoring.cpp")),
            std::vector<std::string>{"raw-output"});
}

TEST(SimlintRawOutput, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::cout << banner;  // simlint:allow(raw-output)\n")
          .empty());
}

// --- raw-thread --------------------------------------------------------------

TEST(SimlintRawThread, FlagsThreadSpawningPrimitives) {
  EXPECT_EQ(rules_of(lint_one("std::thread t{[] { work(); }};")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("std::jthread t{[] { work(); }};")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("auto f = std::async(std::launch::async, g);")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("pthread_create(&tid, nullptr, fn, arg);")),
            std::vector<std::string>{"raw-thread"});
}

TEST(SimlintRawThread, SynchronizationPrimitivesAreClean) {
  // Mutexes/atomics coordinate pool workers; only spawning is flagged.
  EXPECT_TRUE(lint_one("std::mutex mu;").empty());
  EXPECT_TRUE(lint_one("std::condition_variable cv;").empty());
  EXPECT_TRUE(lint_one("std::atomic<std::size_t> next{0};").empty());
  EXPECT_TRUE(lint_one("thread_local MetricShard* t_shard = nullptr;").empty());
  // An identifier merely containing "thread" is not a spawn.
  EXPECT_TRUE(lint_one("pool.threads_.reserve(n);").empty());
}

TEST(SimlintRawThread, TaskPoolFilesAreExempt) {
  // The pool is the sanctioned owner of worker threads.
  EXPECT_TRUE(lint_one("std::thread t{[] { loop(); }};",
                       "src/exec/task_pool.cpp")
                  .empty());
  EXPECT_TRUE(lint_one("std::vector<std::thread> threads_;",
                       "src/exec/task_pool.hpp")
                  .empty());
  // Everything else stays covered.
  EXPECT_EQ(rules_of(lint_one("std::thread t{[] { loop(); }};",
                              "src/experiments/quality_experiment.cpp")),
            std::vector<std::string>{"raw-thread"});
}

TEST(SimlintRawThread, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::thread watchdog{[] {}};  // simlint:allow(raw-thread)\n")
          .empty());
}

// --- comment handling --------------------------------------------------------

TEST(SimlintAllow, DirectiveToleratesWhitespaceInsideParens) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, double> w;\n"
               "double t = 0.0;\n"
               "// simlint:allow( unordered-iter , float-accum )\n"
               "for (const auto& [k, v] : w) {\n"
               "  t += v;  // simlint:allow( float-accum )\n"
               "}\n")
          .empty());
}

TEST(SimlintComments, HazardsInCommentsAreIgnored) {
  EXPECT_TRUE(
      lint_one("// std::rand() would break reproducibility here\n"
               "/* std::chrono::system_clock is also banned */\n"
               "int x = 1;\n")
          .empty());
  EXPECT_TRUE(
      lint_one("/*\n"
               " * for (auto& e : some_unordered_thing) — example only\n"
               " * std::mt19937 gen;\n"
               " */\n"
               "int y = 2;\n")
          .empty());
}

// --- include graph (architecture lint) ---------------------------------------

std::vector<Finding> graph_one(const std::string& content,
                               const std::string& name = "src/util/x.hpp") {
  IncludeGraph graph;
  graph.add_file(name, content);
  return graph.check();
}

TEST(SimlintLayering, UpwardIncludeIsFlagged) {
  // util is the bottom layer: reaching up into simnet violates the DAG.
  const auto f = graph_one("#include \"simnet/simulator.hpp\"\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("'util'"), std::string::npos);
  EXPECT_NE(f[0].message.find("'simnet'"), std::string::npos);
}

TEST(SimlintLayering, DeclaredDependenciesAreClean) {
  EXPECT_TRUE(graph_one("#include <vector>\n"
                        "#include \"simnet/network.hpp\"\n"
                        "#include \"topology/topology.hpp\"\n"
                        "#include \"util/rng.hpp\"\n",
                        "src/faults/injector.hpp")
                  .empty());
}

TEST(SimlintLayering, IntraModuleAndSystemIncludesAreIgnored) {
  EXPECT_TRUE(graph_one("#include <chrono>\n"
                        "#include \"util/time.hpp\"\n"   // intra-module
                        "#include \"local_helper.hpp\"\n")  // no slash
                  .empty());
}

TEST(SimlintLayering, FilesOutsideSrcAreNotPartOfTheLayeredWorld) {
  // bench/tools/tests consume every layer; they carry no layering info.
  EXPECT_TRUE(graph_one("#include \"scion/sig.hpp\"\n"
                        "#include \"util/rng.hpp\"\n",
                        "bench/bench_micro.cpp")
                  .empty());
  EXPECT_TRUE(graph_one("#include \"scion/sig.hpp\"\n", "src/version.hpp")
                  .empty());  // directly under src/: no module directory
}

TEST(SimlintLayering, UndeclaredModuleIsFlagged) {
  const auto f =
      graph_one("#include \"util/rng.hpp\"\n", "src/newmod/thing.hpp");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_NE(f[0].message.find("not declared"), std::string::npos);
}

TEST(SimlintLayering, IncludeInBlockCommentCreatesNoEdge) {
  EXPECT_TRUE(graph_one("/* historical note:\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "was removed when util stopped timing itself. */\n")
                  .empty());
  EXPECT_TRUE(
      graph_one("// #include \"simnet/simulator.hpp\"\n").empty());
}

TEST(SimlintLayering, IncludeInDisabledRegionCreatesNoEdge) {
  EXPECT_TRUE(graph_one("#if 0\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n")
                  .empty());
  EXPECT_TRUE(graph_one("#if false\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n")
                  .empty());
  // Inner conditional blocks nest within the disabled region.
  EXPECT_TRUE(graph_one("#if 0\n"
                        "#ifdef SOMETHING\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n"
                        "#include \"simnet/network.hpp\"\n"
                        "#endif\n")
                  .empty());
}

TEST(SimlintLayering, ElseOfDisabledRegionIsActive) {
  const auto f = graph_one("#if 0\n"
                           "#include \"simnet/network.hpp\"\n"
                           "#else\n"
                           "#include \"simnet/simulator.hpp\"\n"
                           "#endif\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

TEST(SimlintLayering, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      graph_one("#include \"simnet/simulator.hpp\"  "
                "// simlint:allow(layering)\n")
          .empty());
  EXPECT_TRUE(
      graph_one("// transitional shim, tracked in DESIGN.md. "
                "simlint:allow(layering)\n"
                "#include \"simnet/simulator.hpp\"\n")
          .empty());
}

TEST(SimlintCycle, ObservedCycleIsReported) {
  IncludeGraph graph;
  // A synthetic two-module DAG where both directions are declared legal —
  // the per-edge check stays quiet, so only cycle detection can catch it.
  graph.set_rules({{"a", {"b"}}, {"b", {"a"}}});
  graph.add_file("src/a/a.hpp", "#include \"b/b.hpp\"\n");
  graph.add_file("src/b/b.hpp", "#include \"a/a.hpp\"\n");
  const auto f = graph.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "module-cycle");
  EXPECT_NE(f[0].message.find("a -> b -> a"), std::string::npos);
}

TEST(SimlintCycle, RealTreeShapedGraphHasNoCycle) {
  IncludeGraph graph;
  graph.add_file("src/scion/sig.hpp", "#include \"core/pcb.hpp\"\n");
  graph.add_file("src/core/pcb.hpp", "#include \"crypto/mac.hpp\"\n");
  EXPECT_TRUE(graph.check().empty());
}

TEST(SimlintDot, OutputIsDeterministicAndSorted) {
  const auto build = [] {
    IncludeGraph graph;
    graph.set_rules({{"a", {"b"}}, {"b", {}}});
    graph.add_file("src/a/x.hpp", "#include \"b/y.hpp\"\n"
                                  "#include \"b/z.hpp\"\n");
    return graph.to_dot();
  };
  const std::string dot = build();
  EXPECT_EQ(dot, build());
  EXPECT_NE(dot.find("\"a\" -> \"b\" [label=\"2\"]"), std::string::npos);
  // Declared-but-unobserved modules still appear as nodes.
  EXPECT_NE(dot.find("\"b\";"), std::string::npos);
}

}  // namespace
}  // namespace scion::lint
