// Unit tests for the simlint rule engine (tools/simlint_core.hpp): each
// rule's positive case, the idiomatic patterns that must stay clean, and
// the simlint:allow escape hatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/simlint_core.hpp"
#include "tools/simlint_hotpath.hpp"
#include "tools/simlint_includes.hpp"
#include "tools/simlint_state.hpp"

namespace scion::lint {
namespace {

std::vector<Finding> lint_one(const std::string& content,
                              const std::string& name = "src/x.cpp") {
  Linter linter;
  linter.add_file(name, content);
  return linter.run();
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// --- wall-clock --------------------------------------------------------------

TEST(SimlintWallClock, FlagsChronoClocks) {
  const auto f = lint_one("auto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(lint_one("auto t = std::chrono::steady_clock::now();")[0].rule,
            "wall-clock");
  EXPECT_EQ(
      lint_one("auto t = std::chrono::high_resolution_clock::now();")[0].rule,
      "wall-clock");
}

TEST(SimlintWallClock, FlagsCTimeSources) {
  EXPECT_EQ(rules_of(lint_one("time_t t = time(nullptr);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("time_t t = time(NULL);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("gettimeofday(&tv, nullptr);")),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of(lint_one("clock_gettime(CLOCK_MONOTONIC, &ts);")),
            std::vector<std::string>{"wall-clock"});
}

TEST(SimlintWallClock, SimulationTimeIsClean) {
  EXPECT_TRUE(lint_one("util::TimePoint now = sim.now();\n"
                       "auto later = now + util::Duration::seconds(5);\n")
                  .empty());
  // chrono duration arithmetic without a clock is fine.
  EXPECT_TRUE(lint_one("std::chrono::nanoseconds d{5};").empty());
  // An identifier merely containing "time" is not the C time() call.
  EXPECT_TRUE(lint_one("auto x = runtime();").empty());
}

// --- std-rng -----------------------------------------------------------------

TEST(SimlintStdRng, FlagsStandardEngines) {
  EXPECT_EQ(rules_of(lint_one("std::mt19937 gen;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::mt19937_64 gen{seed};")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::default_random_engine e;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("std::random_device rd;")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("int x = std::rand();")),
            std::vector<std::string>{"std-rng"});
  EXPECT_EQ(rules_of(lint_one("srand(42);")),
            std::vector<std::string>{"std-rng"});
}

TEST(SimlintStdRng, SeededUtilRngIsClean) {
  EXPECT_TRUE(lint_one("util::Rng rng{config.seed};\n"
                       "double u = rng.uniform();\n")
                  .empty());
}

// --- unordered-iter ----------------------------------------------------------

TEST(SimlintUnorderedIter, FlagsRangeForOverUnordered) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  out << k << v;\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 2);
}

TEST(SimlintUnorderedIter, FlagsIteratorWalk) {
  const auto f = lint_one(
      "std::unordered_set<int> seen;\n"
      "for (auto it = seen.begin(); it != seen.end(); ++it) {}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
}

TEST(SimlintUnorderedIter, LookupsAreClean) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "auto it = counts.find(k);\n"
               "if (it != counts.end()) use(it->second);\n"
               "counts[k] = 3;\n"
               "counts.erase(k);\n")
          .empty());
}

TEST(SimlintUnorderedIter, OrderedContainersAreClean) {
  EXPECT_TRUE(lint_one("std::map<int, int> counts;\n"
                       "for (const auto& [k, v] : counts) use(k, v);\n")
                  .empty());
}

TEST(SimlintUnorderedIter, ResolvesDeclarationsAcrossStemGroup) {
  // Member declared in the header, iterated in the companion .cpp.
  Linter linter;
  linter.add_file("src/foo.hpp",
                  "struct S { std::unordered_map<int, int> table; };\n");
  linter.add_file("src/foo.cpp", "for (const auto& [k, v] : table) use(k);\n");
  // Same local name in an unrelated file must NOT inherit the type.
  linter.add_file("src/bar.cpp", "for (const auto& e : table) use(e);\n");
  const auto f = linter.run();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/foo.cpp");
}

TEST(SimlintUnorderedIter, TrailingUnderscoreMembersAreGlobal) {
  Linter linter;
  linter.add_file("src/foo.hpp",
                  "class C { std::unordered_map<int, int> cache_; };\n");
  linter.add_file("src/other.cpp",
                  "for (const auto& [k, v] : cache_) use(k);\n");
  const auto f = linter.run();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/other.cpp");
}

TEST(SimlintUnorderedIter, ResolvesUnorderedTypeAliases) {
  const auto f = lint_one(
      "using Table = std::unordered_map<int, int>;\n"
      "Table table;\n"
      "for (const auto& [k, v] : table) use(k);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 3);
}

TEST(SimlintUnorderedIter, MultilineDeclarationIsResolved) {
  const auto f = lint_one(
      "std::unordered_map<std::string,\n"
      "                   std::vector<int>>\n"
      "    buckets;\n"
      "for (auto& [k, v] : buckets) use(v);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

// --- float-accum -------------------------------------------------------------

TEST(SimlintFloatAccum, FlagsAccumulateWithFloatInit) {
  const auto f = lint_one(
      "double mean = std::accumulate(v.begin(), v.end(), 0.0) / n;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "float-accum");
}

TEST(SimlintFloatAccum, IntegerAccumulateIsClean) {
  EXPECT_TRUE(
      lint_one("long total = std::accumulate(v.begin(), v.end(), 0L);\n")
          .empty());
}

TEST(SimlintFloatAccum, FlagsFloatSumInsideUnorderedLoop) {
  const auto f = lint_one(
      "std::unordered_map<int, double> weights;\n"
      "double total = 0.0;\n"
      "for (const auto& [k, w] : weights) {\n"
      "  total += w;\n"
      "}\n");
  ASSERT_EQ(f.size(), 2u);  // the loop itself + the accumulation
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[1].rule, "float-accum");
  EXPECT_EQ(f[1].line, 4);
}

TEST(SimlintFloatAccum, IntegerSumInsideUnorderedLoopIsOnlyIterFlagged) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "std::size_t n = 0;\n"
      "for (const auto& [k, c] : counts) {\n"
      "  n += c;\n"
      "}\n");
  EXPECT_EQ(rules_of(f), std::vector<std::string>{"unordered-iter"});
}

TEST(SimlintFloatAccum, LoopBodyContextEndsAtCloseBrace) {
  const auto f = lint_one(
      "std::unordered_map<int, double> weights;\n"
      "double total = 0.0;\n"
      "for (const auto& [k, w] : weights) {\n"  // flagged
      "  use(k);\n"
      "}\n"
      "total += 1.0;\n");  // outside the loop: clean
  EXPECT_EQ(rules_of(f), std::vector<std::string>{"unordered-iter"});
}

// --- allow directive ---------------------------------------------------------

TEST(SimlintAllow, SameLineDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "for (const auto& [k, v] : counts) {}  "
               "// simlint:allow(unordered-iter)\n")
          .empty());
}

TEST(SimlintAllow, PreviousLineDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, int> counts;\n"
               "// commutative count, order-insensitive. "
               "simlint:allow(unordered-iter)\n"
               "for (const auto& [k, v] : counts) {}\n")
          .empty());
}

TEST(SimlintAllow, DirectiveDoesNotReachFurtherLines) {
  const auto f = lint_one(
      "std::unordered_map<int, int> counts;\n"
      "// simlint:allow(unordered-iter)\n"
      "use(counts.size());\n"
      "for (const auto& [k, v] : counts) {}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

TEST(SimlintAllow, OnlySuppressesTheNamedRule) {
  const auto f = lint_one(
      "// simlint:allow(wall-clock)\n"
      "std::random_device rd;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "std-rng");
}

TEST(SimlintAllow, SuppressesMultipleCommaSeparatedRules) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, double> w;\n"
               "double t = 0.0;\n"
               "// simlint:allow(unordered-iter)\n"
               "for (const auto& [k, v] : w) {\n"
               "  t += v;  // simlint:allow(float-accum)\n"
               "}\n")
          .empty());
}

// --- raw-output --------------------------------------------------------------

TEST(SimlintRawOutput, FlagsDirectStdoutWrites) {
  EXPECT_EQ(rules_of(lint_one("std::cout << result << '\\n';")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("std::printf(\"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("printf(\"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("puts(\"done\");")),
            std::vector<std::string>{"raw-output"});
  EXPECT_EQ(rules_of(lint_one("fprintf(stdout, \"%d\\n\", x);")),
            std::vector<std::string>{"raw-output"});
}

TEST(SimlintRawOutput, NonStdoutIoIsClean) {
  // Diagnostics on stderr and in-memory formatting are not result output.
  EXPECT_TRUE(lint_one("std::fprintf(stderr, \"oops\\n\");").empty());
  EXPECT_TRUE(
      lint_one("std::snprintf(buf, sizeof buf, \"%d\", x);").empty());
  EXPECT_TRUE(lint_one("std::fputs(\"x\", f);").empty());
  EXPECT_TRUE(lint_one("out << \"pair \" << src << '\\n';").empty());
}

TEST(SimlintRawOutput, ObsRendererFilesAreExempt) {
  // The renderer itself is the sanctioned stdout site.
  EXPECT_TRUE(
      lint_one("std::cout << text;", "src/obs/report.cpp").empty());
  EXPECT_TRUE(lint_one("std::cout << text;", "obs/report.cpp").empty());
  // Non-obs files stay covered.
  EXPECT_EQ(rules_of(lint_one("std::cout << text;", "src/core/scoring.cpp")),
            std::vector<std::string>{"raw-output"});
}

TEST(SimlintRawOutput, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::cout << banner;  // simlint:allow(raw-output)\n")
          .empty());
}

// --- raw-thread --------------------------------------------------------------

TEST(SimlintRawThread, FlagsThreadSpawningPrimitives) {
  EXPECT_EQ(rules_of(lint_one("std::thread t{[] { work(); }};")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("std::jthread t{[] { work(); }};")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("auto f = std::async(std::launch::async, g);")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(rules_of(lint_one("pthread_create(&tid, nullptr, fn, arg);")),
            std::vector<std::string>{"raw-thread"});
}

TEST(SimlintRawThread, SynchronizationPrimitivesAreClean) {
  // Mutexes/atomics coordinate pool workers; only spawning is flagged.
  EXPECT_TRUE(lint_one("std::mutex mu;").empty());
  EXPECT_TRUE(lint_one("std::condition_variable cv;").empty());
  EXPECT_TRUE(lint_one("std::atomic<std::size_t> next{0};").empty());
  EXPECT_TRUE(lint_one("thread_local MetricShard* t_shard = nullptr;").empty());
  // An identifier merely containing "thread" is not a spawn.
  EXPECT_TRUE(lint_one("pool.threads_.reserve(n);").empty());
}

TEST(SimlintRawThread, TaskPoolFilesAreExempt) {
  // The pool is the sanctioned owner of worker threads.
  EXPECT_TRUE(lint_one("std::thread t{[] { loop(); }};",
                       "src/exec/task_pool.cpp")
                  .empty());
  EXPECT_TRUE(lint_one("std::vector<std::thread> threads_;",
                       "src/exec/task_pool.hpp")
                  .empty());
  // Everything else stays covered.
  EXPECT_EQ(rules_of(lint_one("std::thread t{[] { loop(); }};",
                              "src/experiments/quality_experiment.cpp")),
            std::vector<std::string>{"raw-thread"});
}

TEST(SimlintRawThread, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      lint_one("std::thread watchdog{[] {}};  // simlint:allow(raw-thread)\n")
          .empty());
}

// --- comment handling --------------------------------------------------------

TEST(SimlintAllow, DirectiveToleratesWhitespaceInsideParens) {
  EXPECT_TRUE(
      lint_one("std::unordered_map<int, double> w;\n"
               "double t = 0.0;\n"
               "// simlint:allow( unordered-iter , float-accum )\n"
               "for (const auto& [k, v] : w) {\n"
               "  t += v;  // simlint:allow( float-accum )\n"
               "}\n")
          .empty());
}

TEST(SimlintComments, HazardsInCommentsAreIgnored) {
  EXPECT_TRUE(
      lint_one("// std::rand() would break reproducibility here\n"
               "/* std::chrono::system_clock is also banned */\n"
               "int x = 1;\n")
          .empty());
  EXPECT_TRUE(
      lint_one("/*\n"
               " * for (auto& e : some_unordered_thing) — example only\n"
               " * std::mt19937 gen;\n"
               " */\n"
               "int y = 2;\n")
          .empty());
}

// --- include graph (architecture lint) ---------------------------------------

std::vector<Finding> graph_one(const std::string& content,
                               const std::string& name = "src/util/x.hpp") {
  IncludeGraph graph;
  graph.add_file(name, content);
  return graph.check();
}

TEST(SimlintLayering, UpwardIncludeIsFlagged) {
  // util is the bottom layer: reaching up into simnet violates the DAG.
  const auto f = graph_one("#include \"simnet/simulator.hpp\"\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("'util'"), std::string::npos);
  EXPECT_NE(f[0].message.find("'simnet'"), std::string::npos);
}

TEST(SimlintLayering, DeclaredDependenciesAreClean) {
  EXPECT_TRUE(graph_one("#include <vector>\n"
                        "#include \"simnet/network.hpp\"\n"
                        "#include \"topology/topology.hpp\"\n"
                        "#include \"util/rng.hpp\"\n",
                        "src/faults/injector.hpp")
                  .empty());
}

TEST(SimlintLayering, IntraModuleAndSystemIncludesAreIgnored) {
  EXPECT_TRUE(graph_one("#include <chrono>\n"
                        "#include \"util/time.hpp\"\n"   // intra-module
                        "#include \"local_helper.hpp\"\n")  // no slash
                  .empty());
}

TEST(SimlintLayering, FilesOutsideSrcAreNotPartOfTheLayeredWorld) {
  // bench/tools/tests consume every layer; they carry no layering info.
  EXPECT_TRUE(graph_one("#include \"scion/sig.hpp\"\n"
                        "#include \"util/rng.hpp\"\n",
                        "bench/bench_micro.cpp")
                  .empty());
  EXPECT_TRUE(graph_one("#include \"scion/sig.hpp\"\n", "src/version.hpp")
                  .empty());  // directly under src/: no module directory
}

TEST(SimlintLayering, UndeclaredModuleIsFlagged) {
  const auto f =
      graph_one("#include \"util/rng.hpp\"\n", "src/newmod/thing.hpp");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_NE(f[0].message.find("not declared"), std::string::npos);
}

TEST(SimlintLayering, IncludeInBlockCommentCreatesNoEdge) {
  EXPECT_TRUE(graph_one("/* historical note:\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "was removed when util stopped timing itself. */\n")
                  .empty());
  EXPECT_TRUE(
      graph_one("// #include \"simnet/simulator.hpp\"\n").empty());
}

TEST(SimlintLayering, IncludeInDisabledRegionCreatesNoEdge) {
  EXPECT_TRUE(graph_one("#if 0\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n")
                  .empty());
  EXPECT_TRUE(graph_one("#if false\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n")
                  .empty());
  // Inner conditional blocks nest within the disabled region.
  EXPECT_TRUE(graph_one("#if 0\n"
                        "#ifdef SOMETHING\n"
                        "#include \"simnet/simulator.hpp\"\n"
                        "#endif\n"
                        "#include \"simnet/network.hpp\"\n"
                        "#endif\n")
                  .empty());
}

TEST(SimlintLayering, ElseOfDisabledRegionIsActive) {
  const auto f = graph_one("#if 0\n"
                           "#include \"simnet/network.hpp\"\n"
                           "#else\n"
                           "#include \"simnet/simulator.hpp\"\n"
                           "#endif\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

TEST(SimlintLayering, AllowDirectiveSuppresses) {
  EXPECT_TRUE(
      graph_one("#include \"simnet/simulator.hpp\"  "
                "// simlint:allow(layering)\n")
          .empty());
  EXPECT_TRUE(
      graph_one("// transitional shim, tracked in DESIGN.md. "
                "simlint:allow(layering)\n"
                "#include \"simnet/simulator.hpp\"\n")
          .empty());
}

TEST(SimlintCycle, ObservedCycleIsReported) {
  IncludeGraph graph;
  // A synthetic two-module DAG where both directions are declared legal —
  // the per-edge check stays quiet, so only cycle detection can catch it.
  graph.set_rules({{"a", {"b"}}, {"b", {"a"}}});
  graph.add_file("src/a/a.hpp", "#include \"b/b.hpp\"\n");
  graph.add_file("src/b/b.hpp", "#include \"a/a.hpp\"\n");
  const auto f = graph.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "module-cycle");
  EXPECT_NE(f[0].message.find("a -> b -> a"), std::string::npos);
}

TEST(SimlintCycle, RealTreeShapedGraphHasNoCycle) {
  IncludeGraph graph;
  graph.add_file("src/scion/sig.hpp", "#include \"core/pcb.hpp\"\n");
  graph.add_file("src/core/pcb.hpp", "#include \"crypto/mac.hpp\"\n");
  EXPECT_TRUE(graph.check().empty());
}

// --- hot-path-cost analyzer --------------------------------------------------

std::vector<Finding> hot_one(const std::string& content,
                             const std::string& name = "src/core/x.cpp") {
  HotPathAnalyzer a;
  a.add_file(name, content);
  return a.check();
}

TEST(SimlintHotPath, AllocInHotFnIsFlagged) {
  const auto f = hot_one(
      "SCION_HOT_FN\n"
      "void handle(int n) {\n"
      "  auto* p = new int{n};\n"
      "  use(p);\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-alloc");
  EXPECT_EQ(f[0].line, 3);
}

TEST(SimlintHotPath, MakeSharedAndGrowthAreFlagged) {
  EXPECT_EQ(rules_of(hot_one("SCION_HOT_FN\n"
                             "void f() {\n"
                             "  auto p = std::make_shared<Pcb>(pcb);\n"
                             "}\n")),
            std::vector<std::string>{"hot-alloc"});
  EXPECT_EQ(rules_of(hot_one("SCION_HOT_FN\n"
                             "void f() {\n"
                             "  links.push_back(l);\n"
                             "}\n")),
            std::vector<std::string>{"hot-alloc"});
  EXPECT_EQ(rules_of(hot_one("SCION_HOT_FN\n"
                             "void f() {\n"
                             "  std::vector<int> scratch;\n"
                             "}\n")),
            std::vector<std::string>{"hot-alloc"});
}

TEST(SimlintHotPath, CodeOutsideRegionsIsClean) {
  EXPECT_TRUE(hot_one("void cold() {\n"
                      "  auto* p = new int{1};\n"
                      "  std::string s = to_string(2);\n"
                      "}\n")
                  .empty());
}

TEST(SimlintHotPath, HotFnRegionEndsAtClosingBrace) {
  const auto f = hot_one(
      "SCION_HOT_FN\n"
      "void hot() {\n"
      "  use(1);\n"
      "}\n"
      "void cold() {\n"
      "  auto* p = new int{1};\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(SimlintHotPath, ExplicitRegionFlagsAndEnds) {
  const auto f = hot_one(
      "void setup() {\n"
      "  SCION_HOT_PATH_BEGIN(dispatch);\n"
      "  auto* p = new int{1};\n"
      "  SCION_HOT_PATH_END();\n"
      "  auto* q = new int{2};\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-alloc");
  EXPECT_EQ(f[0].line, 3);
}

TEST(SimlintHotPath, StringCreationAndFormattingAreFlagged) {
  EXPECT_EQ(rules_of(hot_one("SCION_HOT_FN\n"
                             "void f() {\n"
                             "  std::string label = name();\n"
                             "}\n")),
            std::vector<std::string>{"hot-string"});
  EXPECT_EQ(rules_of(hot_one("SCION_HOT_FN\n"
                             "void f() {\n"
                             "  log(std::to_string(seq));\n"
                             "}\n")),
            std::vector<std::string>{"hot-string"});
  // string_view is the sanctioned zero-copy type.
  EXPECT_TRUE(hot_one("SCION_HOT_FN\n"
                      "void f(std::string_view name) {\n"
                      "  use(name);\n"
                      "}\n")
                  .empty());
  // const std::string& does not construct.
  EXPECT_TRUE(hot_one("SCION_HOT_FN\n"
                      "void f(const std::string& name) {\n"
                      "  use(name);\n"
                      "}\n")
                  .empty());
}

TEST(SimlintHotPath, ByValueLargeTypeIsFlaggedWithSize) {
  const auto f = hot_one(
      "SCION_HOT_FN\n"
      "void admit(Pcb pcb) {\n"
      "  use(pcb);\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-copy-arg");
  EXPECT_NE(f[0].message.find("Pcb"), std::string::npos);
  EXPECT_NE(f[0].message.find("48"), std::string::npos);  // table size
  // Const reference is clean.
  EXPECT_TRUE(hot_one("SCION_HOT_FN\n"
                      "void admit(const Pcb& pcb) {\n"
                      "  use(pcb);\n"
                      "}\n")
                  .empty());
  // PcbRef (shared handle) is not the Pcb value type.
  EXPECT_TRUE(hot_one("SCION_HOT_FN\n"
                      "void admit(const PcbRef& pcb) {\n"
                      "  PcbRef copy = pcb;\n"
                      "}\n")
                  .empty());
}

TEST(SimlintHotPath, ByValueAnyCastIsFlagged) {
  const auto f = hot_one(
      "SCION_HOT_FN\n"
      "void deliver(const Message& msg) {\n"
      "  const auto update = std::any_cast<BgpUpdateMsg>(msg.payload);\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-copy-arg");
  EXPECT_NE(f[0].message.find("any_cast"), std::string::npos);
  // Reference cast is clean.
  EXPECT_TRUE(
      hot_one("SCION_HOT_FN\n"
              "void deliver(const Message& msg) {\n"
              "  const auto& u = std::any_cast<const BgpUpdateMsg&>(msg.p);\n"
              "}\n")
          .empty());
}

TEST(SimlintHotPath, TypeTableIsConfigurable) {
  HotPathAnalyzer a;
  a.set_hot_types({{"Huge", 4096}});
  a.add_file("src/core/x.cpp",
             "SCION_HOT_FN\n"
             "void f(Huge h) {\n"
             "  Pcb pcb = other;\n"  // no longer in the table
             "}\n");
  const auto f = a.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("4096"), std::string::npos);
}

TEST(SimlintHotPath, MapLookupOnDeclaredMapIsFlagged) {
  const auto f = hot_one(
      "std::unordered_map<int, int> scores_;\n"
      "SCION_HOT_FN\n"
      "int score(int k) {\n"
      "  const auto it = scores_.find(k);\n"
      "  return it == scores_.end() ? 0 : it->second;\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-map-lookup");
  EXPECT_EQ(f[0].line, 4);
}

TEST(SimlintHotPath, MapMembersResolveAcrossFiles) {
  HotPathAnalyzer a;
  a.add_file("src/core/store.hpp",
             "class S { std::map<int, int> buckets_; };\n");
  a.add_file("src/core/admission.cpp",
             "SCION_HOT_FN\n"
             "void admit(int k) {\n"
             "  use(buckets_[k]);\n"
             "}\n");
  const auto f = a.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "hot-map-lookup");
  EXPECT_EQ(f[0].file, "src/core/admission.cpp");
}

TEST(SimlintHotPath, VectorIndexingIsClean) {
  EXPECT_TRUE(hot_one("std::vector<int> dense_;\n"
                      "SCION_HOT_FN\n"
                      "int score(int k) {\n"
                      "  return dense_[k];\n"
                      "}\n")
                  .empty());
}

TEST(SimlintHotPath, AllowSuppressesButStillCounts) {
  HotPathAnalyzer a;
  a.add_file("src/core/x.cpp",
             "SCION_HOT_FN\n"
             "void f() {\n"
             "  // startup only, once per AS. simlint:allow(hot-alloc)\n"
             "  auto* p = new int{1};\n"
             "}\n");
  EXPECT_TRUE(a.check().empty());
  // The suppressed site still appears in the cost report — that is what
  // the checked-in baseline budgets.
  const std::string report = a.cost_report_json();
  EXPECT_NE(report.find("\"hot-alloc\": 1"), std::string::npos);
}

TEST(SimlintHotPath, CostReportIsDeterministic) {
  const auto build = [] {
    HotPathAnalyzer a;
    a.add_file("src/core/b.cpp",
               "SCION_HOT_FN\nvoid f() {\n  x.push_back(1);\n}\n");
    a.add_file("src/core/a.cpp",
               "SCION_HOT_FN\nvoid g() {\n  auto* p = new int{1};\n}\n");
    a.check();
    return a.cost_report_json();
  };
  const std::string report = build();
  EXPECT_EQ(report, build());
  // Files sorted by name regardless of registration order.
  EXPECT_LT(report.find("src/core/a.cpp"), report.find("src/core/b.cpp"));
}

TEST(SimlintHotPath, BaselineDiffFlagsRegressionsOnly) {
  const std::string source =
      "SCION_HOT_FN\n"
      "void f() {\n"
      "  auto* p = new int{1};  // simlint:allow(hot-alloc)\n"
      "}\n";
  HotPathAnalyzer a;
  a.add_file("src/core/x.cpp", source);
  a.check();
  const std::string baseline = a.cost_report_json();

  // Same counts: clean.
  EXPECT_TRUE(a.diff_baseline(baseline).empty());

  // One more allowed allocation than the baseline: regression.
  HotPathAnalyzer b;
  b.add_file("src/core/x.cpp",
             "SCION_HOT_FN\n"
             "void f() {\n"
             "  auto* p = new int{1};  // simlint:allow(hot-alloc)\n"
             "  auto* q = new int{2};  // simlint:allow(hot-alloc)\n"
             "}\n");
  b.check();
  const auto regress = b.diff_baseline(baseline);
  ASSERT_EQ(regress.size(), 1u);
  EXPECT_EQ(regress[0].rule, "hot-cost-regression");
  EXPECT_NE(regress[0].message.find("hot-alloc"), std::string::npos);
  EXPECT_NE(regress[0].message.find("2"), std::string::npos);
  EXPECT_NE(regress[0].message.find("1"), std::string::npos);

  // Fewer counts than the baseline (an improvement): clean.
  HotPathAnalyzer c;
  c.add_file("src/core/x.cpp",
             "SCION_HOT_FN\n"
             "void f() {\n"
             "  use(1);\n"
             "}\n");
  c.check();
  EXPECT_TRUE(c.diff_baseline(baseline).empty());

  // A brand-new hot file is a regression against an empty baseline slot.
  HotPathAnalyzer d;
  d.add_file("src/core/fresh.cpp", source);
  d.check();
  EXPECT_EQ(d.diff_baseline(baseline).size(), 1u);
}

TEST(SimlintDot, OutputIsDeterministicAndSorted) {
  const auto build = [] {
    IncludeGraph graph;
    graph.set_rules({{"a", {"b"}}, {"b", {}}});
    graph.add_file("src/a/x.hpp", "#include \"b/y.hpp\"\n"
                                  "#include \"b/z.hpp\"\n");
    return graph.to_dot();
  };
  const std::string dot = build();
  EXPECT_EQ(dot, build());
  EXPECT_NE(dot.find("\"a\" -> \"b\" [label=\"2\"]"), std::string::npos);
  // Declared-but-unobserved modules still appear as nodes.
  EXPECT_NE(dot.find("\"b\";"), std::string::npos);
}


// --- shared-state analyzer (simlint_state.hpp) -------------------------------

std::vector<Finding> state_lint_one(const std::string& content,
                                    const std::string& name = "src/x.cpp") {
  StateAnalyzer a;
  a.set_allowlist({});  // exercise the rules, not the built-in registry list
  a.add_file(name, content);
  return a.check();
}

TEST(SimlintState, NamespaceScopeGlobalIsFlagged) {
  const auto f = state_lint_one("namespace scion {\n"
                                "int g_count = 0;\n"
                                "}  // namespace scion\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "mutable-global");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("g_count"), std::string::npos);
  // Top of file counts as namespace scope even without a namespace keyword.
  EXPECT_EQ(rules_of(state_lint_one("std::vector<int> g_rows;\n")),
            std::vector<std::string>{"mutable-global"});
}

TEST(SimlintState, FunctionLocalStaticAndThreadLocalAreFlagged) {
  EXPECT_EQ(rules_of(state_lint_one("int f() {\n"
                                    "  static int calls = 0;\n"
                                    "  return ++calls;\n"
                                    "}\n")),
            std::vector<std::string>{"mutable-global"});
  EXPECT_EQ(rules_of(state_lint_one("thread_local int t_depth = 0;\n")),
            std::vector<std::string>{"mutable-global"});
}

TEST(SimlintState, ConstAndConstexprAreClean) {
  EXPECT_TRUE(state_lint_one("static constexpr int kMax = 4;\n").empty());
  EXPECT_TRUE(state_lint_one("const std::string kName = \"x\";\n").empty());
  EXPECT_TRUE(
      state_lint_one("static const std::regex kRe{\"a\"};\n").empty());
  // constinit promises constant initialization, not immutability.
  EXPECT_EQ(rules_of(state_lint_one("constinit int g_mode = 0;\n")),
            std::vector<std::string>{"mutable-global"});
}

TEST(SimlintState, FunctionsAndLocalsAreClean) {
  EXPECT_TRUE(state_lint_one("int parse(const char* s);\n").empty());
  EXPECT_TRUE(state_lint_one("static int helper() { return 1; }\n").empty());
  // A plain local inside a function body is block scope, not namespace.
  EXPECT_TRUE(state_lint_one("void f() {\n"
                             "  int local = 0;\n"
                             "  use(local);\n"
                             "}\n")
                  .empty());
  // Continuation lines of a wrapped parameter list are not declarations.
  EXPECT_TRUE(state_lint_one("void record(int a,\n"
                             "            int allocs = 0, int bytes = 0);\n")
                  .empty());
}

TEST(SimlintState, AllowDirectivePlacementAndWhitespace) {
  // Same line.
  EXPECT_TRUE(
      state_lint_one("int g_x = 0;  // simlint:allow(mutable-global)\n")
          .empty());
  // Line directly above.
  EXPECT_TRUE(state_lint_one("// why it is safe. simlint:allow(mutable-global)\n"
                             "int g_x = 0;\n")
                  .empty());
  // Whitespace inside the directive's rule list is ignored.
  EXPECT_TRUE(
      state_lint_one("int g_x = 0;  // simlint:allow( mutable-global )\n")
          .empty());
  // Two lines above is too far: the directive must touch the declaration.
  EXPECT_EQ(state_lint_one("// simlint:allow(mutable-global)\n"
                           "\n"
                           "int g_x = 0;\n")
                .size(),
            1u);
}

TEST(SimlintState, CommentedAndDisabledRegionsAreClean) {
  // Inside a block comment.
  EXPECT_TRUE(state_lint_one("/*\n"
                             "static int g_old = 0;\n"
                             "*/\n")
                  .empty());
  // Inside #if 0, including nested conditional blocks.
  EXPECT_TRUE(state_lint_one("#if 0\n"
                             "static int g_dead = 0;\n"
                             "#ifdef FOO\n"
                             "static int g_deader = 0;\n"
                             "#endif\n"
                             "#endif\n")
                  .empty());
  // The #else of a disabled region is live again.
  EXPECT_EQ(state_lint_one("#if 0\n"
                           "static int g_dead = 0;\n"
                           "#else\n"
                           "static int g_live = 0;\n"
                           "#endif\n")
                .size(),
            1u);
  // Inside a string literal (the JSON emitters spell such text).
  EXPECT_TRUE(
      state_lint_one("const char* kMsg = \"static int g_fake = 0;\";\n")
          .empty());
}

TEST(SimlintState, MacroGeneratedStaticIsFlagged) {
  EXPECT_EQ(rules_of(state_lint_one(
                "#define DEFINE_COUNTER(name) static int name = 0;\n")),
            std::vector<std::string>{"mutable-global"});
}

TEST(SimlintState, UnguardedMemberOfMutexOwningClassIsFlagged) {
  const auto f = state_lint_one("class C {\n"
                                " private:\n"
                                "  std::mutex mu_;\n"
                                "  int total_ = 0;\n"
                                "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unguarded-shared");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].message.find("total_"), std::string::npos);
  // util::Mutex declares a lock protocol just like std::mutex.
  EXPECT_EQ(rules_of(state_lint_one("class C {\n"
                                    "  util::Mutex mu_;\n"
                                    "  int n_ = 0;\n"
                                    "};\n")),
            std::vector<std::string>{"unguarded-shared"});
}

TEST(SimlintState, GuardedAndExemptMembersAreClean) {
  EXPECT_TRUE(state_lint_one("class C {\n"
                             "  mutable util::Mutex mu_;\n"
                             "  int total_ SCION_GUARDED_BY(mu_) = 0;\n"
                             "  std::vector<int> rows_ SCION_GUARDED_BY(mu_);\n"
                             "  util::CondVar cv_;\n"
                             "  const int limit_ = 4;\n"
                             "  static constexpr int kCap = 8;\n"
                             "};\n")
                  .empty());
  // A wrapped declaration with the annotation on its continuation line.
  EXPECT_TRUE(state_lint_one("class C {\n"
                             "  std::mutex mu_;\n"
                             "  std::map<std::string, int> by_name_\n"
                             "      SCION_GUARDED_BY(mu_);\n"
                             "};\n")
                  .empty());
}

TEST(SimlintState, AnnotationInsideCommentDoesNotCount) {
  EXPECT_EQ(rules_of(state_lint_one("class C {\n"
                                    "  std::mutex mu_;\n"
                                    "  int n_ = 0;  // SCION_GUARDED_BY(mu_)\n"
                                    "};\n")),
            std::vector<std::string>{"unguarded-shared"});
}

TEST(SimlintState, MutexFreeClassIsClean) {
  EXPECT_TRUE(state_lint_one("class PlainCounter {\n"
                             "  int total_ = 0;\n"
                             "  std::vector<int> rows_;\n"
                             "};\n")
                  .empty());
  // A mutex *reference* is not ownership: no lock protocol declared here.
  EXPECT_TRUE(state_lint_one("class Lock {\n"
                             "  util::Mutex& mu_;\n"
                             "};\n")
                  .empty());
}

TEST(SimlintState, AllowOnMemberSuppresses) {
  EXPECT_TRUE(state_lint_one(
                  "class C {\n"
                  "  std::mutex mu_;\n"
                  "  // Set once in the constructor. "
                  "simlint:allow(unguarded-shared)\n"
                  "  std::vector<std::thread> threads_;\n"
                  "};\n")
                  .empty());
}

TEST(SimlintState, AllowlistSuppressesByFileAndName) {
  StateAnalyzer a;
  a.set_allowlist({{"src/obs/metrics.cpp", "registry"}});
  a.add_file("src/obs/metrics.cpp",
             "static MetricsRegistry registry;\n"
             "static int g_other = 0;\n");
  const auto f = a.check();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("g_other"), std::string::npos);
}

TEST(SimlintState, ReportCountsAllowedSitesAndIsDeterministic) {
  const auto build = [] {
    StateAnalyzer a;
    a.set_allowlist({});
    a.add_file("src/x.cpp",
               "int g_a = 0;  // simlint:allow(mutable-global)\n"
               "int g_b = 0;\n");
    a.add_file("src/y.hpp",
               "class C {\n"
               "  std::mutex mu_;\n"
               "  int n_ SCION_GUARDED_BY(mu_) = 0;\n"
               "};\n");
    a.check();
    return a.state_report_json();
  };
  const std::string report = build();
  EXPECT_EQ(report, build());
  // Allowed sites still count: the report is the budget, lint is the gate.
  EXPECT_NE(report.find("\"src/x.cpp\", \"counts\": {\"guarded-member\": 0, "
                        "\"mutable-global\": 2, \"unguarded-shared\": 0}"),
            std::string::npos);
  EXPECT_NE(report.find("\"src/y.hpp\", \"counts\": {\"guarded-member\": 1, "
                        "\"mutable-global\": 0, \"unguarded-shared\": 0}"),
            std::string::npos);
}

TEST(SimlintState, BaselineDiffFlagsIncreasesOnly) {
  StateAnalyzer a;
  a.set_allowlist({});
  a.add_file("src/x.cpp", "int g_a = 0;  // simlint:allow(mutable-global)\n");
  a.check();
  const std::string baseline = a.state_report_json();

  // Same counts: clean.
  EXPECT_TRUE(a.diff_baseline(baseline).empty());

  // One more global in the same file: exactly one regression finding that
  // names the file and the rule.
  StateAnalyzer b;
  b.set_allowlist({});
  b.add_file("src/x.cpp",
             "int g_a = 0;  // simlint:allow(mutable-global)\n"
             "int g_b = 0;  // simlint:allow(mutable-global)\n");
  b.check();
  const auto regressions = b.diff_baseline(baseline);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].rule, "state-regression");
  EXPECT_EQ(regressions[0].file, "src/x.cpp");
  EXPECT_NE(regressions[0].message.find("mutable-global"), std::string::npos);

  // A file absent from the baseline counts as zero everywhere.
  StateAnalyzer c;
  c.set_allowlist({});
  c.add_file("src/fresh.cpp",
             "int g_new = 0;  // simlint:allow(mutable-global)\n");
  c.check();
  EXPECT_EQ(c.diff_baseline(baseline).size(), 1u);

  // Fewer findings than baseline is fine (progress, not regression).
  StateAnalyzer d;
  d.set_allowlist({});
  d.add_file("src/x.cpp", "void f();\n");
  d.check();
  EXPECT_TRUE(d.diff_baseline(baseline).empty());
}

}  // namespace
}  // namespace scion::lint
