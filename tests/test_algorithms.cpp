#include <gtest/gtest.h>

#include "core/algorithms.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;
using util::TimePoint;

const Duration kLifetime = Duration::hours(6);
const IsdAsId kOrigin = IsdAsId::make(1, 1);
const IsdAsId kNeighbor = IsdAsId::make(1, 99);

StoredPcb make_stored(std::vector<topo::LinkIndex> links, TimePoint timestamp,
                      IsdAsId origin = kOrigin) {
  Pcb pcb = Pcb::originate_unsigned(
      origin, static_cast<topo::IfId>(links.front() + 1), timestamp, kLifetime);
  for (std::size_t i = 1; i < links.size(); ++i) {
    pcb = pcb.extend_unsigned(IsdAsId::make(9, 100 + links[i - 1]),
                              static_cast<topo::IfId>(links[i - 1] + 1),
                              static_cast<topo::IfId>(links[i] + 1), {});
  }
  StoredPcb stored;
  stored.pcb = std::make_shared<const Pcb>(std::move(pcb));
  stored.links = std::move(links);
  stored.received_at = timestamp;
  stored.path_key = stored.pcb->path_key();
  return stored;
}

StoredPcb make_stored_through(IsdAsId via, std::vector<topo::LinkIndex> links,
                              TimePoint timestamp) {
  Pcb pcb = Pcb::originate_unsigned(
      kOrigin, static_cast<topo::IfId>(links.front() + 1), timestamp, kLifetime);
  for (std::size_t i = 1; i < links.size(); ++i) {
    pcb = pcb.extend_unsigned(via, static_cast<topo::IfId>(links[i - 1] + 1),
                              static_cast<topo::IfId>(links[i] + 1), {});
  }
  StoredPcb stored;
  stored.pcb = std::make_shared<const Pcb>(std::move(pcb));
  stored.links = std::move(links);
  stored.received_at = timestamp;
  stored.path_key = stored.pcb->path_key();
  return stored;
}

// --- Baseline -------------------------------------------------------------------

TEST(BaselineSelect, ShortestFirstUpToLimit) {
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2, 3}, TimePoint::origin()));
  bucket.push_back(make_stored({4}, TimePoint::origin()));
  bucket.push_back(make_stored({5, 6}, TimePoint::origin()));
  const auto selected =
      baseline_select(bucket, kNeighbor, 77, 2, TimePoint::origin());
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].stored->links.size(), 1u);
  EXPECT_EQ(selected[1].stored->links.size(), 2u);
  EXPECT_EQ(selected[0].egress, 77u);
}

TEST(BaselineSelect, FresherInstanceBreaksTies) {
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1}, TimePoint::origin()));
  bucket.push_back(
      make_stored({2}, TimePoint::origin() + Duration::minutes(10)));
  const auto selected = baseline_select(bucket, kNeighbor, 7, 1,
                                        TimePoint::origin() + Duration::minutes(10));
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].stored->links, std::vector<topo::LinkIndex>{2});
}

TEST(BaselineSelect, SkipsExpiredAndLooping) {
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1}, TimePoint::origin()));
  bucket.push_back(make_stored_through(kNeighbor, {2, 3}, TimePoint::origin()));
  const TimePoint later = TimePoint::origin() + kLifetime + Duration::seconds(1);
  // First PCB expired by `later`; second contains the neighbor.
  bucket[0] = make_stored({1}, TimePoint::origin());
  const auto selected = baseline_select(bucket, kNeighbor, 7, 5, later);
  EXPECT_TRUE(selected.empty());
}

TEST(BaselineSelect, ResendsEveryCall) {
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1}, TimePoint::origin()));
  const auto first = baseline_select(bucket, kNeighbor, 7, 5, TimePoint::origin());
  const auto second = baseline_select(bucket, kNeighbor, 7, 5, TimePoint::origin());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u) << "baseline has no memory of prior sends";
}

// --- Diversity (Algorithm 1) ------------------------------------------------------

TEST(DiversitySelect, RespectsDisseminationLimit) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  for (topo::LinkIndex l = 0; l < 10; ++l) {
    bucket.push_back(make_stored({l}, TimePoint::origin()));
  }
  const std::vector<topo::LinkIndex> egress{100, 101};
  const auto selected = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                                egress, 5, TimePoint::origin());
  EXPECT_EQ(selected.size(), 5u);
}

TEST(DiversitySelect, PrefersDisjointPaths) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  bucket.push_back(make_stored({1, 3}, TimePoint::origin()));
  bucket.push_back(make_stored({4, 5}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  const auto selected = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                                egress, 2, TimePoint::origin());
  ASSERT_EQ(selected.size(), 2u);
  // Whatever is picked first, the second pick must not overlap it on
  // non-egress links (both fully disjoint options exist).
  const auto& first = selected[0].stored->links;
  const auto& second = selected[1].stored->links;
  for (topo::LinkIndex l : first) {
    EXPECT_EQ(std::count(second.begin(), second.end(), l), 0)
        << "greedy pick must prefer the disjoint alternative";
  }
}

TEST(DiversitySelect, NoDuplicateSelectionWithinInterval) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100, 101};
  const auto selected = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                                egress, 5, TimePoint::origin());
  // One stored path x two egress links = at most 2 distinct combinations.
  EXPECT_LE(selected.size(), 2u);
  std::set<std::pair<std::uint64_t, topo::LinkIndex>> seen;
  for (const Candidate& c : selected) {
    EXPECT_TRUE(seen.insert({c.stored->path_key, c.egress}).second);
  }
}

TEST(DiversitySelect, SuppressesResendNextInterval) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  const auto first = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                             egress, 5, TimePoint::origin());
  EXPECT_EQ(first.size(), 1u);

  // Next interval: a fresh instance of the same path arrives.
  const TimePoint next = TimePoint::origin() + Duration::minutes(10);
  bucket[0] = make_stored({1, 2}, next);
  const auto second =
      state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5, next);
  EXPECT_TRUE(second.empty()) << "freshly sent path must be suppressed";
  EXPECT_GT(state.suppressed(), 0u);
}

TEST(DiversitySelect, ResendsWhenSentInstanceNearsExpiry) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5,
                          TimePoint::origin());

  // 5.5 hours later the sent instance is close to its 6-hour expiry; a
  // fresh instance of the same path must be re-disseminated.
  const TimePoint later = TimePoint::origin() + Duration::minutes(330);
  bucket[0] = make_stored({1, 2}, later);
  const auto again =
      state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5, later);
  EXPECT_EQ(again.size(), 1u)
      << "connectivity preservation: resend before expiry";
}

TEST(DiversitySelect, ExpiredSentRecordsRollBackCountersWhenConfigured) {
  DiversityParams params;
  params.decrement_on_expiry = true;  // the ablation variant
  DiversityState state{params};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5,
                          TimePoint::origin());
  EXPECT_EQ(state.history(kOrigin, kNeighbor).counter(1), 1);

  state.expire(TimePoint::origin() + kLifetime + Duration::seconds(1));
  EXPECT_EQ(state.history(kOrigin, kNeighbor).counter(1), 0);
  EXPECT_TRUE(state.sent().empty());
}

TEST(DiversitySelect, CumulativeCountersSurviveExpiryByDefault) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5,
                          TimePoint::origin());
  state.expire(TimePoint::origin() + kLifetime + Duration::seconds(1));
  EXPECT_EQ(state.history(kOrigin, kNeighbor).counter(1), 1)
      << "default Link History counters are cumulative";
  EXPECT_TRUE(state.sent().empty());
}

TEST(DiversitySelect, RefreshKeepsOriginalDiversityScore) {
  DiversityState state{DiversityParams{}};
  const SentKey key{99, 5};
  const std::vector<topo::LinkIndex> links{1, 5};
  state.commit_send(key, kOrigin, kNeighbor, links, TimePoint::origin(),
                    TimePoint::origin() + kLifetime, TimePoint::origin());
  const double original = state.sent().at(key).diversity;
  EXPECT_GT(original, 0.0);

  // Other sends crowd the same links; a later refresh of the original path
  // must keep its original score (only timers update).
  const SentKey other{42, 5};
  state.commit_send(other, kOrigin, kNeighbor, links, TimePoint::origin(),
                    TimePoint::origin() + kLifetime, TimePoint::origin());
  const TimePoint later = TimePoint::origin() + Duration::hours(4);
  state.commit_send(key, kOrigin, kNeighbor, links, later, later + kLifetime,
                    later);
  EXPECT_DOUBLE_EQ(state.sent().at(key).diversity, original);
  EXPECT_EQ(state.sent().at(key).instance_timestamp, later);
}

TEST(DiversitySelect, LoopPreventionSkipsNeighborPaths) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored_through(kNeighbor, {1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  const auto selected = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                                egress, 5, TimePoint::origin());
  EXPECT_TRUE(selected.empty());
}

TEST(DiversitySelect, ThresholdStopsSelectionEarly) {
  DiversityParams params;
  params.max_geometric_mean = 1.0;  // any reuse saturates
  DiversityState state{params};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  bucket.push_back(make_stored({1, 3}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  const auto selected = state.select_and_commit(bucket, kOrigin, kNeighbor,
                                                egress, 5, TimePoint::origin());
  // After the first pick, link 1 and the egress link are saturated; the
  // second path shares link 1 but has fresh link 3 — its geometric mean is
  // 0, so it still scores 1. Then nothing is left above threshold.
  EXPECT_LE(selected.size(), 2u);
  EXPECT_GE(selected.size(), 1u);
}

TEST(DiversitySelect, PerNeighborHistoryIsolated) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1, 2}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5,
                          TimePoint::origin());
  const IsdAsId other = IsdAsId::make(3, 3);
  const std::vector<topo::LinkIndex> egress2{200};
  const auto selected = state.select_and_commit(bucket, kOrigin, other,
                                                egress2, 5, TimePoint::origin());
  EXPECT_EQ(selected.size(), 1u)
      << "sending to one neighbor must not suppress another";
}

TEST(DiversitySelect, CommitSendIdempotentWhileValid) {
  DiversityState state{DiversityParams{}};
  const SentKey key{1234, 7};
  const std::vector<topo::LinkIndex> links{1, 2, 7};
  state.commit_send(key, kOrigin, kNeighbor, links, TimePoint::origin(),
                    TimePoint::origin() + kLifetime, TimePoint::origin());
  EXPECT_EQ(state.history(kOrigin, kNeighbor).counter(1), 1);
  // Re-sending the same valid path updates timers but not counters.
  state.commit_send(key, kOrigin, kNeighbor, links,
                    TimePoint::origin() + Duration::minutes(10),
                    TimePoint::origin() + Duration::minutes(10) + kLifetime,
                    TimePoint::origin() + Duration::minutes(10));
  EXPECT_EQ(state.history(kOrigin, kNeighbor).counter(1), 1);
}

TEST(DiversitySelect, EvaluationCounterAdvances) {
  DiversityState state{DiversityParams{}};
  std::vector<StoredPcb> bucket;
  bucket.push_back(make_stored({1}, TimePoint::origin()));
  const std::vector<topo::LinkIndex> egress{100};
  state.select_and_commit(bucket, kOrigin, kNeighbor, egress, 5,
                          TimePoint::origin());
  EXPECT_GT(state.evaluations(), 0u);
}

}  // namespace
}  // namespace scion::ctrl
