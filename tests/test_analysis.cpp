#include <gtest/gtest.h>

#include "analysis/maxflow.hpp"
#include "analysis/overhead.hpp"
#include "analysis/path_quality.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace scion::analysis {
namespace {

TEST(FlowGraph, SingleEdge) {
  FlowGraph g{2};
  g.add_undirected_unit_edge(0, 1);
  EXPECT_EQ(g.max_flow(0, 1), 1);
  EXPECT_EQ(g.max_flow(1, 0), 1);
}

TEST(FlowGraph, ParallelEdgesAddCapacity) {
  FlowGraph g{2};
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(0, 1);
  EXPECT_EQ(g.max_flow(0, 1), 3);
}

TEST(FlowGraph, SeriesBottleneck) {
  FlowGraph g{3};
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(1, 2);
  EXPECT_EQ(g.max_flow(0, 2), 1);
}

TEST(FlowGraph, DisconnectedIsZero) {
  FlowGraph g{4};
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(2, 3);
  EXPECT_EQ(g.max_flow(0, 3), 0);
}

TEST(FlowGraph, DiamondHasTwoDisjointPaths) {
  FlowGraph g{4};
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(0, 2);
  g.add_undirected_unit_edge(1, 3);
  g.add_undirected_unit_edge(2, 3);
  EXPECT_EQ(g.max_flow(0, 3), 2);
}

TEST(FlowGraph, RepeatableAcrossTerminalPairs) {
  FlowGraph g{4};
  g.add_undirected_unit_edge(0, 1);
  g.add_undirected_unit_edge(1, 2);
  g.add_undirected_unit_edge(2, 3);
  g.add_undirected_unit_edge(3, 0);
  EXPECT_EQ(g.max_flow(0, 2), 2);
  EXPECT_EQ(g.max_flow(1, 3), 2);
  EXPECT_EQ(g.max_flow(0, 2), 2) << "capacities reset between queries";
}

TEST(FlowGraph, DirectedEdgeOnlyForward) {
  FlowGraph g{2};
  g.add_directed_unit_edge(0, 1);
  EXPECT_EQ(g.max_flow(0, 1), 1);
  EXPECT_EQ(g.max_flow(1, 0), 0);
}

TEST(FlowGraph, SelfFlowIsZero) {
  FlowGraph g{2};
  g.add_undirected_unit_edge(0, 1);
  EXPECT_EQ(g.max_flow(0, 0), 0);
}

/// Brute-force min-cut by enumerating edge subsets (<= 12 edges):
/// reachability after removing the subset.
int brute_force_min_cut(std::size_t nodes,
                        const std::vector<std::pair<int, int>>& edges,
                        std::uint32_t s, std::uint32_t t) {
  const std::size_t m = edges.size();
  for (std::size_t k = 0; k <= m; ++k) {
    for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
      if (static_cast<std::size_t>(__builtin_popcount(mask)) != k) continue;
      // BFS ignoring removed edges.
      std::vector<std::vector<std::uint32_t>> adjacency(nodes);
      for (std::size_t e = 0; e < m; ++e) {
        if (mask & (1u << e)) continue;
        adjacency[static_cast<std::size_t>(edges[e].first)].push_back(
            static_cast<std::uint32_t>(edges[e].second));
        adjacency[static_cast<std::size_t>(edges[e].second)].push_back(
            static_cast<std::uint32_t>(edges[e].first));
      }
      std::vector<bool> visited(nodes, false);
      std::vector<std::uint32_t> stack{s};
      visited[s] = true;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        for (std::uint32_t v : adjacency[u]) {
          if (!visited[v]) {
            visited[v] = true;
            stack.push_back(v);
          }
        }
      }
      if (!visited[t]) return static_cast<int>(k);
    }
  }
  return static_cast<int>(m);
}

TEST(FlowGraph, MatchesBruteForceOnRandomGraphs) {
  util::Rng rng{99};
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t nodes = 4 + rng.index(3);       // 4..6
    const std::size_t n_edges = 5 + rng.index(6);     // 5..10
    std::vector<std::pair<int, int>> edges;
    FlowGraph g{nodes};
    for (std::size_t e = 0; e < n_edges; ++e) {
      const auto u = static_cast<std::uint32_t>(rng.index(nodes));
      auto v = static_cast<std::uint32_t>(rng.index(nodes));
      if (u == v) v = (v + 1) % nodes;
      edges.emplace_back(u, v);
      g.add_undirected_unit_edge(u, v);
    }
    const std::uint32_t s = 0;
    const auto t = static_cast<std::uint32_t>(1 + rng.index(nodes - 1));
    EXPECT_EQ(g.max_flow(s, t), brute_force_min_cut(nodes, edges, s, t))
        << "trial " << trial;
  }
}

TEST(FlowGraph, FromTopologyCountsParallelLinks) {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), true);
  t.add_link(a, b, topo::LinkType::kCore);
  t.add_link(a, b, topo::LinkType::kCore);
  FlowGraph g = FlowGraph::from_topology(t);
  EXPECT_EQ(g.max_flow(0, 1), 2);
}

TEST(FlowGraph, FromLinkPathsDeduplicatesLinks) {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto c = t.add_as(topo::IsdAsId::make(1, 3), true);
  t.add_link(a, b, topo::LinkType::kCore);  // 0
  t.add_link(b, c, topo::LinkType::kCore);  // 1
  t.add_link(a, c, topo::LinkType::kCore);  // 2
  const std::vector<std::vector<topo::LinkIndex>> paths{{0, 1}, {0, 1}, {2}};
  FlowGraph g = FlowGraph::from_link_paths(t, paths);
  // Link 0/1 counted once despite two paths using them.
  EXPECT_EQ(g.max_flow(0, 2), 2);
}

TEST(QualityEvaluator, PathSetNeverBeatsOptimum) {
  topo::ScionLabConfig config;
  config.n_cores = 10;
  config.extra_edge_fraction = 0.5;
  const topo::Topology t = topo::generate_scionlab(config);
  QualityEvaluator evaluator{t};
  // Single direct path between any adjacent pair.
  for (topo::LinkIndex l = 0; l < t.link_count(); ++l) {
    const topo::Link& link = t.link(l);
    const std::vector<std::vector<topo::LinkIndex>> paths{{l}};
    const int value = evaluator.of_paths(paths, link.a, link.b);
    EXPECT_EQ(value, 1);
    EXPECT_LE(value, evaluator.optimal(link.a, link.b));
  }
}

TEST(QualityEvaluator, GreedyDisjointLowerBoundsFlow) {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto c = t.add_as(topo::IsdAsId::make(1, 3), true);
  t.add_link(a, b, topo::LinkType::kCore);  // 0
  t.add_link(b, c, topo::LinkType::kCore);  // 1
  t.add_link(a, c, topo::LinkType::kCore);  // 2
  t.add_link(a, c, topo::LinkType::kCore);  // 3
  const std::vector<std::vector<topo::LinkIndex>> paths{{0, 1}, {2}, {3}};
  QualityEvaluator evaluator{t};
  const int greedy = QualityEvaluator::disjoint_paths_greedy(paths);
  EXPECT_EQ(greedy, 3);
  EXPECT_LE(greedy, evaluator.of_paths(paths, a, c));
}

// --- Overhead ledger -------------------------------------------------------------

TEST(OverheadLedger, AccumulatesPerComponent) {
  OverheadLedger ledger;
  ledger.record("Beaconing", Scope::kIntraIsd, util::Bytes{100});
  ledger.record("Beaconing", Scope::kGlobal, util::Bytes{50});
  ledger.record("Lookup", Scope::kIntraAs, util::Bytes{10});
  const auto rows = ledger.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].component, "Beaconing");
  EXPECT_EQ(rows[0].messages, 2u);
  EXPECT_EQ(rows[0].bytes, util::Bytes{150});
  EXPECT_EQ(rows[0].scope(), Scope::kGlobal) << "widest scope wins";
  EXPECT_EQ(rows[1].scope(), Scope::kIntraAs);
  EXPECT_EQ(ledger.total_bytes(), util::Bytes{160});
}

TEST(OverheadLedger, FrequencyClasses) {
  OverheadLedger ledger;
  for (int i = 0; i < 3600; ++i) ledger.record("fast", Scope::kIntraAs, util::Bytes{1});
  for (int i = 0; i < 10; ++i) ledger.record("medium", Scope::kIntraAs, util::Bytes{1});
  ledger.record("slow", Scope::kIntraAs, util::Bytes{1});
  const auto rows = ledger.rows();
  const util::Duration hour = util::Duration::hours(1);
  for (const auto& row : rows) {
    if (row.component == "fast") {
      EXPECT_EQ(row.frequency(hour, 1), Frequency::kSeconds);
    } else if (row.component == "medium") {
      EXPECT_EQ(row.frequency(hour, 1), Frequency::kMinutes);
    } else {
      EXPECT_EQ(row.frequency(hour, 1), Frequency::kHours);
    }
  }
}

TEST(ExtrapolateToMonth, ScalesLinearly) {
  EXPECT_DOUBLE_EQ(extrapolate_to_month(util::Bytes{100}, util::Duration::hours(6)),
                   100.0 * (30.0 * 24.0 / 6.0));
  EXPECT_DOUBLE_EQ(extrapolate_to_month(util::Bytes{7}, util::Duration::days(30)), 7.0);
}

}  // namespace
}  // namespace scion::analysis
