// Allocation budgets for the hot simulation loops (the dynamic half of the
// hot-path cost layer; the static half is the simlint hot-path-cost
// analyzer).
//
// Each gate runs a small fixed-seed micro-run of one simulation pipeline,
// measures operator-new calls with the SCION_MPR_ALLOC_TRACK counting
// allocator, and divides by the run's event count (PCBs received, BGP
// updates sent, ...). Allocation counts — unlike wall times — are
// deterministic for a fixed seed, so the budgets below gate hard: a change
// that adds per-event allocations to a hot loop fails here with the exact
// per-event figure in the message.
//
// The budget constants are calibrated from measured values after this
// layer's offender fixes, with ~25% headroom for cross-compiler libstdc++
// variation. If a legitimate change raises a count, re-measure (the failure
// message prints the observed allocs/event) and justify the new budget in
// the commit; do not blindly bump.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "faults/fault_plan.hpp"
#include "obs/alloc_track.hpp"
#include "obs/event_profile.hpp"
#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"

namespace scion {
namespace {

using util::Duration;

// --- Budgets (allocs per event) --------------------------------------------------
//
// Calibrated from measured runs at the fixed seeds below (allocation counts
// are deterministic per seed, so the headroom only absorbs stdlib-version
// drift). Each budget sits under the pre-optimization cost of the same run,
// so reintroducing the per-event copies these gates were built to catch
// (per-message std::function / std::any heap fallback, full-PCB by-value
// storage, per-UPDATE message copies) fails the gate. Measured history is
// tracked in BENCH_fig5_overhead.json.

// Beaconing: per PCB received at a beacon server (receive -> verify ->
// resolve -> score -> store admission). Measured 7.47; pre-PR 10.28.
constexpr double kBeaconingBudget = 9.0;
// Control plane: per control-plane event (PCBs received by core+intra
// servers plus endpoint lookups, which dominate the run's hot work).
// Measured 141.48; pre-PR 142.29 (lookup-side path assembly dominates).
constexpr double kControlPlaneBudget = 160.0;
// BGP: per update sent (handle_update -> reevaluate -> flush -> deliver).
// Measured 10.59; pre-PR 16.59.
constexpr double kBgpBudget = 13.0;
// BGP under sustained churn with flap damping + graceful restart enabled:
// the survival bookkeeping (lazy penalty decay, reuse timers, stale
// marking/sweeps) must stay O(1) amortized per UPDATE — damping state nodes
// appear once per flapped adjacency and reuse/GR timers once per episode,
// not per update. Measured 10.49 (vs 10.59 for the plain-BGP gate above).
constexpr double kChurnBgpBudget = 13.0;

// --- Micro-runs ------------------------------------------------------------------

template <typename Fn>
std::pair<std::uint64_t, std::uint64_t> count_allocs(Fn&& fn) {
  const std::uint64_t a0 = obs::thread_allocs();
  const std::uint64_t b0 = obs::thread_alloc_bytes();
  fn();
  return {obs::thread_allocs() - a0, obs::thread_alloc_bytes() - b0};
}

topo::Topology beaconing_world() {
  topo::ScionLabConfig config;
  config.n_cores = 10;
  config.extra_edge_fraction = 0.3;
  config.seed = 5;
  return topo::generate_scionlab(config);
}

topo::Topology multi_isd_world() {
  topo::MultiIsdConfig config;
  config.n_isds = 2;
  config.cores_per_isd = 2;
  config.ases_per_isd = 8;
  config.seed = 77;
  return topo::generate_multi_isd(config);
}

// --- Gates -----------------------------------------------------------------------

TEST(AllocBudget, CountingAllocatorSeesThisThreadsAllocations) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  const auto [allocs, bytes] = count_allocs([] {
    auto block = std::make_unique<char[]>(4096);
    // Defeat any heroic dead-allocation elimination.
    block[0] = 1;
    ASSERT_EQ(block[0], 1);
  });
  EXPECT_GE(allocs, 1u);
  EXPECT_GE(bytes, 4096u);
}

TEST(AllocBudget, BeaconingStaysWithinBudget) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  const topo::Topology world = beaconing_world();
  ctrl::BeaconingSimConfig config;
  config.server.interval = Duration::minutes(10);
  config.server.pcb_lifetime = Duration::hours(6);
  config.sim_duration = Duration::hours(1);
  config.seed = 42;

  ctrl::BeaconingSim sim{world, config};
  const auto [allocs, bytes] = count_allocs([&] { sim.run(); });
  const std::uint64_t events = sim.aggregate_stats().pcbs_received;
  ASSERT_GT(events, 0u);

  const auto r = obs::check_alloc_budget("beaconing", allocs, events,
                                         kBeaconingBudget);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AllocBudget, ControlPlaneStaysWithinBudget) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  const topo::Topology world = multi_isd_world();
  svc::ControlPlaneSimConfig config;
  config.sim_duration = Duration::minutes(30);
  config.lookups_per_second = 0.5;
  config.link_failures_per_hour = 4.0;
  config.registration_interval = Duration::minutes(15);
  config.seed = 5;

  svc::ControlPlaneSim sim{world, config};
  const auto [allocs, bytes] = count_allocs([&] { sim.run(); });
  std::uint64_t events = sim.lookups_performed();
  for (topo::AsIndex as = 0; as < world.as_count(); ++as) {
    if (const auto* s = sim.core_server(as)) events += s->stats().pcbs_received;
    if (const auto* s = sim.intra_server(as)) {
      events += s->stats().pcbs_received;
    }
  }
  ASSERT_GT(events, 0u);

  const auto r = obs::check_alloc_budget("control-plane", allocs, events,
                                         kControlPlaneBudget);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AllocBudget, BgpStaysWithinBudget) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  const topo::Topology world = multi_isd_world();
  bgp::BgpSimConfig config;
  config.convergence_window = Duration::minutes(10);
  config.churn_window = Duration::minutes(30);
  config.flaps_per_adjacency_per_day = 4.0;
  config.seed = 9;

  bgp::BgpSim sim{world, config};
  sim.add_monitor(0);
  const auto [allocs, bytes] = count_allocs([&] { sim.run(); });
  const std::uint64_t events = sim.total_updates_sent();
  ASSERT_GT(events, 0u);

  const auto r = obs::check_alloc_budget("bgp", allocs, events, kBgpBudget);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(AllocBudget, ChurnSurvivalMechanismsStayWithinBudget) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  const topo::Topology world = multi_isd_world();
  bgp::BgpSimConfig config;
  config.convergence_window = Duration::minutes(10);
  config.churn_window = Duration::minutes(30);
  config.flaps_per_adjacency_per_day = 0.0;  // churn comes from the plan
  config.seed = 9;
  config.damping.enabled = true;
  config.graceful_restart.enabled = true;
  config.faults.seed = 11;
  faults::ChurnSpec spec;
  spec.up_min = Duration::minutes(1);
  spec.up_max = Duration::minutes(5);
  spec.down_min = Duration::seconds(30);
  spec.down_max = Duration::minutes(2);
  spec.duration = Duration::minutes(30);
  // Churn only the provider-customer edges and restart sessions on the
  // (never-churned) core links 0 and 1, so the restarted adjacency is
  // deterministically up — a restart landing on a churned-down session is
  // a no-op and would leave the GR path unexercised.
  spec.links = faults::LinkClass::kProviderCustomer;
  config.faults.churn.push_back(spec);
  config.faults.events.push_back(faults::Event{
      faults::Event::Kind::kSessionRestart, 0, Duration::minutes(5),
      Duration::seconds(90)});
  config.faults.events.push_back(faults::Event{
      faults::Event::Kind::kSessionRestart, 1, Duration::minutes(15),
      Duration::seconds(90)});

  bgp::BgpSim sim{world, config};
  const auto [allocs, bytes] = count_allocs([&] { sim.run(); });
  const std::uint64_t events = sim.total_updates_sent();
  ASSERT_GT(events, 0u);
  // The gate is about the mechanisms, so they must actually have engaged.
  EXPECT_GT(sim.total_routes_suppressed(), 0u);
  EXPECT_GT(sim.total_stale_retained(), 0u);

  const auto r = obs::check_alloc_budget("bgp-churn-survival", allocs, events,
                                         kChurnBgpBudget);
  EXPECT_TRUE(r.ok) << r.message;
}

// --- Failure-message contract ----------------------------------------------------

// A deliberately-exceeded budget must name the phase and the per-event
// count — that message is all a CI log shows, so its contents are part of
// the gate's contract.
TEST(AllocBudget, ExceededBudgetNamesPhaseAndPerEventCount) {
  const auto r = obs::check_alloc_budget("beaconing", 1000, 100, 2.0);
  ASSERT_FALSE(r.ok);
  EXPECT_DOUBLE_EQ(r.per_event, 10.0);
  EXPECT_NE(r.message.find("beaconing"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("10.000 allocs/event"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("budget 2.000"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("1000 allocs"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("100 events"), std::string::npos) << r.message;
}

// A breach must also point at its handler: the message names the top-3
// allocating event labels (from the event profiler) in allocs-descending
// order, so a CI log alone is enough to locate the offending event kind.
TEST(AllocBudget, ExceededBudgetNamesTopAllocatingEventLabels) {
  auto& profiler = obs::EventProfiler::global();
  profiler.reset_counters();
  const obs::EventLabel heavy = profiler.intern("test.budget_heavy");
  const obs::EventLabel mid = profiler.intern("test.budget_mid");
  const obs::EventLabel light = profiler.intern("test.budget_light");
  const obs::EventLabel spare = profiler.intern("test.budget_spare");
  std::vector<obs::LabelStats> stats(profiler.label_count());
  stats[heavy.id()] = obs::LabelStats{10, 500, 8000, 0};
  stats[mid.id()] = obs::LabelStats{10, 200, 3200, 0};
  stats[light.id()] = obs::LabelStats{10, 100, 1600, 0};
  stats[spare.id()] = obs::LabelStats{10, 7, 112, 0};
  profiler.merge(stats, {});

  const auto r = obs::check_alloc_budget("label-contract", 1000, 100, 2.0);
  profiler.reset_counters();
  ASSERT_FALSE(r.ok);
  const std::string& msg = r.message;
  ASSERT_NE(msg.find("top allocating event labels:"), std::string::npos)
      << msg;
#ifdef SCION_MPR_OBS_ENABLED
  const auto heavy_at = msg.find("test.budget_heavy (500 allocs)");
  const auto mid_at = msg.find("test.budget_mid (200 allocs)");
  const auto light_at = msg.find("test.budget_light (100 allocs)");
  ASSERT_NE(heavy_at, std::string::npos) << msg;
  ASSERT_NE(mid_at, std::string::npos) << msg;
  ASSERT_NE(light_at, std::string::npos) << msg;
  EXPECT_LT(heavy_at, mid_at) << msg;
  EXPECT_LT(mid_at, light_at) << msg;
  // Top-3 means the fourth-heaviest label stays out of the message.
  EXPECT_EQ(msg.find("test.budget_spare"), std::string::npos) << msg;
#endif
}

TEST(AllocBudget, RealRunExceedsZeroBudget) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  // An impossible budget of 0 allocs/event must trip on any real run,
  // proving the gate is live (not vacuously green).
  const auto [allocs, bytes] = count_allocs([] {
    auto v = std::make_unique<int>(7);
    ASSERT_EQ(*v, 7);
  });
  const auto r = obs::check_alloc_budget("deliberate-exceed", allocs, 1, 0.0);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("deliberate-exceed"), std::string::npos)
      << r.message;
}

TEST(AllocBudget, ZeroEventsGatesAbsoluteAllocs) {
  EXPECT_TRUE(obs::check_alloc_budget("idle", 0, 0, 0.0).ok);
  EXPECT_FALSE(obs::check_alloc_budget("idle", 3, 0, 0.0).ok);
}

}  // namespace
}  // namespace scion
