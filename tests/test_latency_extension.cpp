#include <gtest/gtest.h>

#include "core/beaconing_sim.hpp"
#include "core/scoring.hpp"
#include "topology/generator.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;

TEST(LatencyFactor, DisabledIsNeutral) {
  DiversityParams params;
  params.latency_weight = 0.0;
  EXPECT_DOUBLE_EQ(latency_factor(1'000'000, params), 1.0);
}

TEST(LatencyFactor, HalvesPerFiftyMilliseconds) {
  DiversityParams params;
  params.latency_weight = 1.0;
  EXPECT_DOUBLE_EQ(latency_factor(0, params), 1.0);
  EXPECT_DOUBLE_EQ(latency_factor(50'000, params), 0.5);
  EXPECT_DOUBLE_EQ(latency_factor(100'000, params), 0.25);
}

TEST(LatencyFactor, WeightSharpensPenalty) {
  DiversityParams strong;
  strong.latency_weight = 2.0;
  DiversityParams weak;
  weak.latency_weight = 0.5;
  EXPECT_LT(latency_factor(50'000, strong), latency_factor(50'000, weak));
}

TEST(LatencyExtension, WireSizeGrowsOnlyWhenCarried) {
  const Pcb plain = Pcb::originate_unsigned(topo::IsdAsId::make(1, 1), topo::IfId{3},
                                            util::TimePoint::origin(),
                                            Duration::hours(6));
  Pcb with = Pcb::originate_unsigned(topo::IsdAsId::make(1, 1), topo::IfId{3},
                                     util::TimePoint::origin(),
                                     Duration::hours(6));
  with.enable_latency_extension();
  EXPECT_EQ(with.wire_size(),
            plain.wire_size() + util::Bytes{kLatencyMetadataBytes});
  // The flag survives extension.
  const Pcb extended = with.extend_unsigned(topo::IsdAsId::make(1, 2), topo::IfId{1}, topo::IfId{2},
                                            {}, 12'000);
  EXPECT_EQ(extended.wire_size(),
            plain
                    .extend_unsigned(topo::IsdAsId::make(1, 2), topo::IfId{1},
                                     topo::IfId{2}, {})
                    .wire_size() +
                util::Bytes{2 * kLatencyMetadataBytes});
}

TEST(LatencyExtension, TotalLatencyAccumulates) {
  Pcb pcb = Pcb::originate_unsigned(topo::IsdAsId::make(1, 1), topo::IfId{3},
                                    util::TimePoint::origin(),
                                    Duration::hours(6));
  pcb = pcb.extend_unsigned(topo::IsdAsId::make(1, 2), topo::IfId{1}, topo::IfId{2}, {}, 10'000);
  pcb = pcb.extend_unsigned(topo::IsdAsId::make(1, 3), topo::IfId{1}, topo::IfId{2}, {}, 20'000);
  EXPECT_EQ(pcb.total_latency_us(), 30'000u);
}

TEST(LatencyExtension, LatencyIsSigned) {
  // Tampering with the advertised latency must break the signature.
  crypto::KeyStore keys{7};
  const auto origin = topo::IsdAsId::make(1, 1);
  const auto mid = topo::IsdAsId::make(1, 2);
  const Pcb p0 =
      Pcb::originate(origin, topo::IfId{3}, util::TimePoint::origin(),
                     Duration::hours(6),
                     keys.key_for(origin.value()),
                     crypto::ForwardingKey::derive(origin.value(), 7));
  const Pcb p1 = p0.extend_signed(mid, topo::IfId{1}, topo::IfId{2}, {},
                                  keys.key_for(mid.value()),
                                  crypto::ForwardingKey::derive(mid.value(), 7),
                                  10'000);
  ASSERT_TRUE(p1.verify(keys));
  AsEntry forged = p1.entries()[1];
  forged.ingress_latency_us = 1;  // claim a better latency
  const Pcb tampered = p0.extend(forged);
  EXPECT_FALSE(tampered.verify(keys));
}

TEST(LatencyExtension, SimPropagatesMeasuredLatencies) {
  topo::ScionLabConfig config;
  config.n_cores = 8;
  config.extra_edge_fraction = 0.4;
  config.seed = 6;
  const topo::Topology core = topo::generate_scionlab(config);

  BeaconingSimConfig c;
  c.server.algorithm = AlgorithmKind::kDiversity;
  c.server.include_latency_metadata = true;
  c.server.compute_crypto = false;
  c.sim_duration = Duration::hours(1);
  c.min_latency = Duration::milliseconds(5);
  c.max_latency = Duration::milliseconds(20);
  BeaconingSim sim{core, c};
  sim.run();

  // Multi-hop stored PCBs must carry nonzero accumulated latency, roughly
  // consistent with per-link latencies (5..20 ms per intermediate link).
  std::size_t multi_hop = 0;
  for (topo::AsIndex a = 0; a < core.as_count(); ++a) {
    for (topo::AsIndex b = 0; b < core.as_count(); ++b) {
      if (a == b) continue;
      for (const StoredPcb& s :
           sim.server(a).store().for_origin(core.as_id(b))) {
        if (s.pcb->hops() < 2) continue;
        ++multi_hop;
        const auto latency = s.pcb->total_latency_us();
        const std::uint64_t intermediate_links = s.pcb->hops() - 1;
        EXPECT_GE(latency, intermediate_links * 5'000);
        EXPECT_LE(latency, intermediate_links * 20'000);
      }
    }
  }
  EXPECT_GT(multi_hop, 0u);
}

TEST(LatencyExtension, OptimizationPrefersLowLatency) {
  // Two parallel two-hop routes with very different latencies: the
  // latency-aware selection must still disseminate (weight shifts scores
  // but the scale is small here), and scoring must rank the fast path
  // higher at equal diversity.
  DiversityParams params;
  params.latency_weight = 1.0;
  const double fast = score_fresh(0.8, Duration::minutes(30),
                                  Duration::hours(6), params) *
                      latency_factor(5'000, params);
  const double slow = score_fresh(0.8, Duration::minutes(30),
                                  Duration::hours(6), params) *
                      latency_factor(120'000, params);
  EXPECT_GT(fast, slow);
  EXPECT_LT(slow / fast, 0.5);
}

}  // namespace
}  // namespace scion::ctrl
