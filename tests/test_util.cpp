#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace scion::util {
namespace {

// --- Duration / TimePoint ---------------------------------------------------

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1500), Duration::microseconds(1'500'000));
  EXPECT_EQ(Duration::minutes(10), Duration::seconds(600));
  EXPECT_EQ(Duration::hours(6), Duration::minutes(360));
  EXPECT_EQ(Duration::days(1), Duration::hours(24));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(90);
  const Duration b = Duration::seconds(30);
  EXPECT_EQ(a + b, Duration::minutes(2));
  EXPECT_EQ(a - b, Duration::minutes(1));
  EXPECT_EQ(b * 3, a);
  EXPECT_EQ(a / 3, b);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_EQ(-b, Duration::seconds(-30));
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::minutes(90).as_hours(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(250).as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::seconds(90).as_minutes(), 1.5);
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::seconds(1), Duration::seconds(2));
  EXPECT_GE(Duration::minutes(1), Duration::seconds(60));
  EXPECT_EQ(Duration::zero(), Duration::nanoseconds(0));
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::hours(6).to_string(), "6h");
  EXPECT_EQ(Duration::minutes(10).to_string(), "10m");
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::milliseconds(5).to_string(), "5ms");
  EXPECT_EQ(Duration::nanoseconds(-1'000'000).to_string(), "-1ms");
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::origin() + Duration::seconds(10);
  EXPECT_EQ(t - TimePoint::origin(), Duration::seconds(10));
  EXPECT_EQ(t + Duration::seconds(5), TimePoint::from_ns(15'000'000'000));
  EXPECT_LT(TimePoint::origin(), t);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng{7};
  std::map<std::int64_t, int> histogram;
  for (int i = 0; i < 2000; ++i) ++histogram[rng.uniform_int(0, 9)];
  EXPECT_EQ(histogram.size(), 10u);
  for (const auto& [value, count] : histogram) EXPECT_GT(count, 100);
}

TEST(Rng, UniformDoubleInHalfOpenInterval) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{11};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(1.5, 1.2), 1.5);
}

TEST(Rng, ZipfBoundsAndSkew) {
  Rng rng{19};
  std::map<std::uint64_t, int> histogram;
  const std::uint64_t n = 100;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.zipf(n, 1.1);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    ++histogram[k];
  }
  // Rank 1 must dominate rank 50 heavily.
  EXPECT_GT(histogram[1], 10 * std::max(histogram[50], 1));
}

TEST(Rng, ZipfDegeneratesToSingleton) {
  Rng rng{23};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.0), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{29};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a{31};
  Rng b{31};
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, SubstreamIsPureFunctionOfSeedAndStream) {
  // Pure: no hidden state, so worker threads can derive their stream from
  // the task index alone and the result never depends on execution order.
  Rng a = Rng::substream(99, 4);
  Rng b = Rng::substream(99, 4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamsAreMutuallyIndependent) {
  // Adjacent streams (the common task-index case) must not correlate.
  Rng a = Rng::substream(99, 0);
  Rng b = Rng::substream(99, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
  // Same stream index under different seeds differs too.
  Rng c = Rng::substream(1, 3);
  Rng d = Rng::substream(2, 3);
  same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c() == d()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntHasNoModuloBias) {
  // uniform_int uses rejection sampling (see rng.cpp): every residue class
  // below the rejection limit is represented exactly floor(2^64/range)
  // times, so the distribution is exactly uniform. Chi-square over a range
  // that does not divide 2^64: for 7 bins and 70000 draws, the 99.9%
  // critical value at 6 degrees of freedom is 22.46.
  Rng rng{123};
  constexpr int kBins = 7;
  constexpr int kDraws = 70000;
  std::array<int, kBins> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, kBins - 1))];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 22.46);
}

// --- Stats --------------------------------------------------------------------

TEST(OnlineStats, Moments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(EmpiricalCdf, QuantilesInterpolate) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 5; ++i) cdf.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
}

TEST(EmpiricalCdf, FractionAtMost) {
  EmpiricalCdf cdf;
  cdf.add_all({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(100.0), 1.0);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf;
  Rng rng{5};
  for (int i = 0; i < 500; ++i) cdf.add(rng.uniform(0, 100));
  const auto curve = cdf.curve(16);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, MeanMatches) {
  EmpiricalCdf cdf;
  cdf.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.5);
}

TEST(EmpiricalCdf, EmptyCdfDegradesGracefully) {
  // quantile/min/max/median require samples (SCION_CHECK); everything a
  // renderer calls on a possibly-empty series must not.
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.count(), 0u);
  EXPECT_EQ(cdf.summary(), "(empty)");
  EXPECT_DOUBLE_EQ(cdf.mean(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(16).empty());
}

TEST(GeometricMean, BasicAndZero) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(GeometricMean, NoOverflowOnLargeValues) {
  std::vector<double> big(64, 1e100);
  EXPECT_NEAR(geometric_mean(big), 1e100, 1e90);
}

// --- Flags --------------------------------------------------------------------

TEST(Flags, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--scale=2.5", "--paper", "ignored",
                        "--name=abc"};
  Flags flags{5, const_cast<char**>(argv)};
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 2.5);
  EXPECT_TRUE(flags.get_bool("paper", false));
  EXPECT_EQ(flags.get("name", ""), "abc");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("REPRO_TEST_KNOB", "123", 1);
  Flags flags;
  EXPECT_EQ(flags.get_int("test-knob", 0), 123);
  ::unsetenv("REPRO_TEST_KNOB");
}

TEST(Flags, FlagBeatsEnvironment) {
  ::setenv("REPRO_WIDTH", "1", 1);
  const char* argv[] = {"prog", "--width=2"};
  Flags flags{2, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("width", 0), 2);
  ::unsetenv("REPRO_WIDTH");
}

}  // namespace
}  // namespace scion::util
