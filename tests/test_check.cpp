// Tests for the SCION_CHECK / SCION_DCHECK invariant macros: pass-through
// on success, abort with a diagnostic on failure (death test, only when the
// build enables the check), and compiled-out-but-type-checked behavior in
// builds where a tier is disabled.
#include <gtest/gtest.h>

#include "util/check.hpp"

namespace {

TEST(Check, TrueConditionPasses) {
  SCION_CHECK(1 + 1 == 2, "arithmetic holds");
  SCION_DCHECK(true, "trivially true");
  SUCCEED();
}

TEST(Check, ConditionEvaluationMatchesBuildMode) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  SCION_CHECK(probe(), "probe");
#if SCION_CHECK_ENABLED
  EXPECT_EQ(evaluations, 1);
#else
  // Disabled checks must not evaluate their condition...
  EXPECT_EQ(evaluations, 0);
#endif
  // ...but the expression stays type-checked either way (this file
  // compiling with the lambda above is the test).
}

TEST(Check, DcheckEvaluationMatchesBuildMode) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  SCION_DCHECK(probe(), "probe");
#if SCION_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

#if SCION_CHECK_ENABLED
TEST(CheckDeathTest, FailureAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SCION_CHECK(2 + 2 == 5, "arithmetic is broken"),
               "CHECK failed: 2 \\+ 2 == 5.*arithmetic is broken");
}
#endif

#if SCION_DCHECK_ENABLED
TEST(CheckDeathTest, DcheckFailureAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SCION_DCHECK(false, "invariant violated"),
               "CHECK failed: false.*invariant violated");
}
#endif

}  // namespace
