// Unit tests for the bench regression comparator (tools/bench_diff_core.hpp).
//
// The comparator is the brain of tools/bench_diff, the gate ci.sh runs
// against the checked-in smoke baseline. Its verdict semantics are a
// contract: deterministic fields (figure scalars, counters, phase calls,
// per-label event counts) fail on ANY drift; allocation counters fail only
// beyond the tolerance band; wall time warns unless a wall tolerance is
// explicitly requested. These tests pin each verdict on small handwritten
// scion-mpr-bench-v1 documents.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "tools/bench_diff_core.hpp"

namespace scion::tools {
namespace {

// A minimal but fully-populated bench report. Tests derive variants by
// textual substitution so every case reads as "baseline vs baseline with
// one value changed".
constexpr const char* kBaseDoc = R"({
  "name": "fig5_overhead",
  "manifest": {"obs_enabled": true, "jobs": 1},
  "scalars": {"beacons": 120, "lookups": 7235},
  "metrics": {"counters": {"pcbs_received": 500, "updates_sent": 80}},
  "phases": [
    {"phase": "beaconing", "calls": 10, "wall_ns": 5000,
     "allocs": 100, "alloc_bytes": 4000}
  ],
  "event_profile": {
    "enabled": true,
    "total_events": 600,
    "attributed_events": 590,
    "queue_samples": [{"t_ns": 100000000, "depth": 4}],
    "labels": [
      {"label": "beacon.propagate", "events": 400, "allocs": 80,
       "alloc_bytes": 3000, "wall_ns": 1000, "wall_s": 0.000001}
    ]
  }
})";

obs::JsonValue parse(const std::string& text) {
  std::string error;
  auto doc = obs::parse_json(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.has_value() ? *doc : obs::JsonValue{};
}

// Replaces the first occurrence of `from` (which must exist — tests break
// loudly if the base doc drifts away from a substitution).
std::string replaced(std::string text, const std::string& from,
                     const std::string& to) {
  const auto at = text.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

const DiffEntry* find_metric(const DiffReport& r, const std::string& metric) {
  for (const DiffEntry& e : r.entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

TEST(BenchDiff, IdenticalDocsHaveNoFindings) {
  const obs::JsonValue doc = parse(kBaseDoc);
  const DiffReport r = diff_bench_docs(doc, doc);
  EXPECT_EQ(r.name, "fig5_overhead");
  EXPECT_GT(r.compared, 0u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_TRUE(r.entries.empty());
  EXPECT_FALSE(r.failed());
}

TEST(BenchDiff, ScalarDriftFailsNamingTheMetric) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"lookups\": 7235", "\"lookups\": 7236"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "scalars.lookups");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kFail);
  EXPECT_EQ(e->baseline, "7235");
  EXPECT_EQ(e->current, "7236");
  EXPECT_EQ(e->note, "deterministic field changed");
}

TEST(BenchDiff, CounterDriftFails) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur = parse(
      replaced(kBaseDoc, "\"pcbs_received\": 500", "\"pcbs_received\": 499"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "counters.pcbs_received");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kFail);
}

TEST(BenchDiff, MissingScalarFailsAndNewScalarWarns) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"lookups\": 7235", "\"probes\": 7"));
  const DiffReport r = diff_bench_docs(base, cur);
  const DiffEntry* missing = find_metric(r, "scalars.lookups");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->severity, DiffSeverity::kFail);
  EXPECT_EQ(missing->current, "-");
  const DiffEntry* added = find_metric(r, "scalars.probes");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->severity, DiffSeverity::kWarn);
}

TEST(BenchDiff, PhaseCallDriftFails) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"calls\": 10", "\"calls\": 11"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "phases.beaconing.calls");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kFail);
}

TEST(BenchDiff, PhaseWallIncreaseOnlyWarnsByDefault) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"wall_ns\": 5000", "\"wall_ns\": 50000"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_FALSE(r.failed());
  const DiffEntry* e = find_metric(r, "phases.beaconing.wall_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kWarn);
  EXPECT_NE(e->note.find("wall time: warn only"), std::string::npos);

  // An explicit wall tolerance turns the same regression into a failure.
  DiffOptions opts;
  opts.wall_tolerance = 0.5;
  const DiffReport gated = diff_bench_docs(base, cur, opts);
  EXPECT_TRUE(gated.failed());
  const DiffEntry* g = find_metric(gated, "phases.beaconing.wall_ns");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, DiffSeverity::kFail);
}

TEST(BenchDiff, PhaseAllocIncreaseGatesOnToleranceBand) {
  const obs::JsonValue base = parse(kBaseDoc);
  // +25% of 100 plus the 16-alloc slack allows up to 141.
  const obs::JsonValue within =
      parse(replaced(kBaseDoc, "\"allocs\": 100", "\"allocs\": 141"));
  EXPECT_FALSE(diff_bench_docs(base, within).failed());

  const obs::JsonValue beyond =
      parse(replaced(kBaseDoc, "\"allocs\": 100", "\"allocs\": 142"));
  const DiffReport r = diff_bench_docs(base, beyond);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "phases.beaconing.allocs");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kFail);
  EXPECT_NE(e->note.find("alloc regression"), std::string::npos);

  // Decreases always pass, however large.
  const obs::JsonValue fewer =
      parse(replaced(kBaseDoc, "\"allocs\": 100", "\"allocs\": 1"));
  EXPECT_FALSE(diff_bench_docs(base, fewer).failed());
}

TEST(BenchDiff, LabelEventCountDriftFails) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"events\": 400", "\"events\": 401"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "events.beacon.propagate.events");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, DiffSeverity::kFail);
}

TEST(BenchDiff, EventProfileTotalsGateExactly) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur = parse(
      replaced(kBaseDoc, "\"total_events\": 600", "\"total_events\": 601"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  EXPECT_NE(find_metric(r, "event_profile.total_events"), nullptr);
}

TEST(BenchDiff, MissingLabelFailsNewLabelWarns) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur = parse(replaced(
      kBaseDoc, "\"label\": \"beacon.propagate\"", "\"label\": \"bgp.flap\""));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* missing = find_metric(r, "events.beacon.propagate.events");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->severity, DiffSeverity::kFail);
  EXPECT_NE(missing->note.find("missing"), std::string::npos);
  const DiffEntry* added = find_metric(r, "events.bgp.flap");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->severity, DiffSeverity::kWarn);
}

TEST(BenchDiff, ObsDisabledSkipsObsSectionsWithWarning) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur = parse(
      replaced(kBaseDoc, "\"obs_enabled\": true", "\"obs_enabled\": false"));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.warnings, 1u);
  const DiffEntry* e = find_metric(r, "metrics");
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->note.find("skipping"), std::string::npos);
  // Scalars still compared exactly; obs-gated sections were not.
  EXPECT_EQ(find_metric(r, "counters.pcbs_received"), nullptr);
}

TEST(BenchDiff, DifferentBenchNamesRefuseToCompare) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur = parse(replaced(
      kBaseDoc, "\"name\": \"fig5_overhead\"", "\"name\": \"fig6a\""));
  const DiffReport r = diff_bench_docs(base, cur);
  EXPECT_TRUE(r.failed());
  const DiffEntry* e = find_metric(r, "name");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->note, "comparing different benches");
}

TEST(BenchDiff, ReportTableRendersFindingsAndCleanRuns) {
  const obs::JsonValue base = parse(kBaseDoc);
  const obs::JsonValue cur =
      parse(replaced(kBaseDoc, "\"lookups\": 7235", "\"lookups\": 9999"));
  DiffReport clean = diff_bench_docs(base, base);
  DiffReport dirty = diff_bench_docs(base, cur);
  const std::string text = diff_report_table({clean, dirty}).to_text();
  EXPECT_NE(text.find("no regressions"), std::string::npos) << text;
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
  EXPECT_NE(text.find("scalars.lookups"), std::string::npos) << text;
  EXPECT_NE(text.find("9999"), std::string::npos) << text;
}

}  // namespace
}  // namespace scion::tools
