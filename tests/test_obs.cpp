// Telemetry layer tests: metrics registry semantics, JSONL trace
// round-trips and category filters, run-manifest completeness, the
// recording macros (including argument evaluation when compiled out), phase
// profiling, and the shared result renderer.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/beaconing_sim.hpp"
#include "obs/alloc_track.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/event_profile.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "simnet/simulator.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"

namespace scion::obs {
namespace {

using util::TimePoint;

// --- JSON writer / parser ----------------------------------------------------

TEST(ObsJson, WriterProducesParseableDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "a \"quoted\"\nstring");
  w.kv("count", std::uint64_t{42});
  w.kv("delta", std::int64_t{-7});
  w.kv("ratio", 0.5);
  w.kv("on", true);
  w.key("list").begin_array();
  w.value(1);
  w.value_null();
  w.end_array();
  w.end_object();

  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("name")->as_string(), "a \"quoted\"\nstring");
  EXPECT_EQ(doc->find("count")->as_number(), 42.0);
  EXPECT_EQ(doc->find("delta")->as_number(), -7.0);
  EXPECT_EQ(doc->find("ratio")->as_number(), 0.5);
  EXPECT_TRUE(doc->find("on")->as_bool());
  ASSERT_TRUE(doc->find("list")->is_array());
  EXPECT_EQ(doc->find("list")->as_array().size(), 2u);
  EXPECT_TRUE(doc->find("list")->as_array()[1].is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(parse_json("").has_value());
}

// --- metrics registry --------------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramSemantics) {
  Counter c;
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);

  Gauge g;
  g.set(10);
  g.set_max(5);
  EXPECT_EQ(g.value(), 10);
  g.set_max(12);
  EXPECT_EQ(g.value(), 12);

  Histogram h{{1.0, 10.0}};
  h.observe(0.5);   // bucket 0
  h.observe(10.0);  // <= 10: bucket 1
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 109.5);
}

TEST(ObsMetrics, RegistryFindsOrCreatesStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.a");
  a.add(1);
  // Same name -> same handle; creating others must not invalidate it.
  for (int i = 0; i < 100; ++i) {
    registry.counter("test.fill" + std::to_string(i));
  }
  EXPECT_EQ(&registry.counter("test.a"), &a);
  EXPECT_EQ(a.value(), 1u);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.c");
  Gauge& g = registry.gauge("test.g");
  Histogram& h = registry.histogram("test.h");
  c.add(5);
  g.set(5);
  h.observe(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // The handles are still the registered objects.
  EXPECT_EQ(&registry.counter("test.c"), &c);
  c.add(2);
  EXPECT_EQ(registry.counter("test.c").value(), 2u);
}

TEST(ObsMetrics, ToJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n.events").add(3);
  registry.gauge("n.depth").set(9);
  registry.histogram("n.sizes", {8.0, 64.0}).observe(100.0);

  std::string error;
  const auto doc = parse_json(registry.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("counters")->find("n.events")->as_number(), 3.0);
  EXPECT_EQ(doc->find("gauges")->find("n.depth")->as_number(), 9.0);
  const JsonValue* h = doc->find("histograms")->find("n.sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 1.0);
  EXPECT_EQ(h->find("bucket_counts")->as_array().back().as_number(), 1.0);
}

// --- recording macros --------------------------------------------------------

TEST(ObsMetrics, MacrosRecordIntoTheGlobalRegistry) {
  MetricsRegistry::global().reset();
  int evaluations = 0;
  const auto delta = [&] {
    ++evaluations;
    return 2;
  };
  SCION_METRIC_COUNT("test.macro_counter", delta());
  SCION_METRIC_GAUGE_MAX("test.macro_gauge", 11);
  SCION_METRIC_OBSERVE("test.macro_hist", 3.0);
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(MetricsRegistry::global().counter("test.macro_counter").value(),
            2u);
  EXPECT_EQ(MetricsRegistry::global().gauge("test.macro_gauge").value(), 11);
  EXPECT_EQ(MetricsRegistry::global().histogram("test.macro_hist").count(),
            1u);
#else
  // Compiled out: the argument expression must not have been evaluated.
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(MetricsRegistry::global().counters().empty());
#endif
  MetricsRegistry::global().reset();
}

// --- tracing -----------------------------------------------------------------

TEST(ObsTrace, EventsRoundTripThroughJsonl) {
  std::ostringstream out;
  TraceSink sink{out};
  sink.event(TimePoint::origin() + util::Duration::seconds(2),
             Category::kBeacon, "originate",
             {{"as", "1-17"}, {"egress", 42u}, {"depth", -3}, {"ok", true},
              {"ratio", 0.25}});
  sink.event(TimePoint::origin(), Category::kBgp, "update", {});
  EXPECT_EQ(sink.events_written(), 2u);

  std::istringstream lines{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  std::string error;
  auto doc = parse_json(line, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("t")->as_number(), 2e9);
  EXPECT_EQ(doc->find("cat")->as_string(), "beacon");
  EXPECT_EQ(doc->find("ev")->as_string(), "originate");
  EXPECT_EQ(doc->find("as")->as_string(), "1-17");
  EXPECT_EQ(doc->find("egress")->as_number(), 42.0);
  EXPECT_EQ(doc->find("depth")->as_number(), -3.0);
  EXPECT_TRUE(doc->find("ok")->as_bool());
  EXPECT_EQ(doc->find("ratio")->as_number(), 0.25);

  ASSERT_TRUE(std::getline(lines, line));
  doc = parse_json(line, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("cat")->as_string(), "bgp");
  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

TEST(ObsTrace, CategoryFiltersDropDisabledEvents) {
  std::ostringstream out;
  TraceSink sink{out};
  ASSERT_TRUE(sink.set_filter("beacon,bgp"));
  EXPECT_TRUE(sink.enabled(Category::kBeacon));
  EXPECT_TRUE(sink.enabled(Category::kBgp));
  EXPECT_FALSE(sink.enabled(Category::kSimnet));
  sink.event(TimePoint::origin(), Category::kSimnet, "drop", {});
  EXPECT_EQ(sink.events_written(), 0u);
  EXPECT_TRUE(out.str().empty());
  sink.event(TimePoint::origin(), Category::kBeacon, "keep", {});
  EXPECT_EQ(sink.events_written(), 1u);
}

TEST(ObsTrace, FilterRejectsUnknownCategories) {
  std::ostringstream out;
  TraceSink sink{out};
  sink.disable_all();
  EXPECT_FALSE(sink.set_filter("beacon,nonsense"));
  // Unknown name changes nothing.
  EXPECT_FALSE(sink.enabled(Category::kBeacon));
  EXPECT_TRUE(sink.set_filter("all"));
  EXPECT_TRUE(sink.enabled(Category::kSig));
  EXPECT_TRUE(sink.set_filter(""));
  EXPECT_TRUE(sink.enabled(Category::kExperiment));
}

TEST(ObsTrace, CategoryNamesRoundTrip) {
  for (unsigned c = 0; c < static_cast<unsigned>(Category::kCount); ++c) {
    const auto category = static_cast<Category>(c);
    const auto parsed = category_from_string(to_string(category));
    ASSERT_TRUE(parsed.has_value()) << to_string(category);
    EXPECT_EQ(*parsed, category);
  }
  EXPECT_FALSE(category_from_string("bogus").has_value());
}

TEST(ObsTrace, EventCategoryFilterCombos) {
  std::ostringstream out;
  TraceSink sink{out};
  // The event category alone.
  ASSERT_TRUE(sink.set_filter("event"));
  EXPECT_TRUE(sink.enabled(Category::kEvent));
  EXPECT_FALSE(sink.enabled(Category::kBeacon));
  EXPECT_FALSE(sink.enabled(Category::kFault));
  // Combined with others.
  ASSERT_TRUE(sink.set_filter("event,fault,simnet"));
  EXPECT_TRUE(sink.enabled(Category::kEvent));
  EXPECT_TRUE(sink.enabled(Category::kFault));
  EXPECT_TRUE(sink.enabled(Category::kSimnet));
  EXPECT_FALSE(sink.enabled(Category::kBgp));
  // "all" must include the new category (kAllMask tracks kCount).
  ASSERT_TRUE(sink.set_filter("all"));
  EXPECT_TRUE(sink.enabled(Category::kEvent));
  // Filtered writes: only the enabled category lands in the stream.
  ASSERT_TRUE(sink.set_filter("event"));
  sink.event(TimePoint::origin(), Category::kBeacon, "dropped", {});
  sink.event(TimePoint::origin(), Category::kEvent, "kept", {});
  EXPECT_EQ(sink.events_written(), 1u);
  EXPECT_NE(out.str().find("\"cat\":\"event\""), std::string::npos);
  EXPECT_EQ(to_string(Category::kEvent), std::string{"event"});
  ASSERT_TRUE(category_from_string("event").has_value());
  EXPECT_EQ(*category_from_string("event"), Category::kEvent);
}

TEST(ObsTrace, MacroSkipsFieldEvaluationWhenOff) {
  set_trace_sink(nullptr);
  int evaluations = 0;
  // maybe_unused: the OFF expansion of SCION_TRACE drops the field list.
  [[maybe_unused]] const auto field_value = [&] {
    ++evaluations;
    return 1;
  };
  // No sink installed: fields must not be evaluated.
  SCION_TRACE(Category::kBeacon, TimePoint::origin(), "e",
              {"v", field_value()});
  EXPECT_EQ(evaluations, 0);

  std::ostringstream out;
  TraceSink sink{out};
  sink.set_filter("bgp");
  set_trace_sink(&sink);
  // Sink installed but category disabled: still not evaluated.
  SCION_TRACE(Category::kBeacon, TimePoint::origin(), "e",
              {"v", field_value()});
  EXPECT_EQ(evaluations, 0);
  SCION_TRACE(Category::kBgp, TimePoint::origin(), "e", {"v", field_value()});
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(sink.events_written(), 1u);
#else
  EXPECT_EQ(evaluations, 0);
#endif
  set_trace_sink(nullptr);
}

// --- phase profiling ---------------------------------------------------------

TEST(ObsProfile, PhasesAccumulateAndStopIsIdempotent) {
  PhaseProfiler::global().reset();
  {
    ProfilePhase phase{"test.phase"};
    phase.stop();
    phase.stop();  // idempotent: records exactly once
  }                // destructor after stop(): still once
  { ProfilePhase phase{"test.phase"}; }
#ifdef SCION_MPR_OBS_ENABLED
  const auto& phases = PhaseProfiler::global().phases();
  const auto it = phases.find("test.phase");
  ASSERT_NE(it, phases.end());
  EXPECT_EQ(it->second.calls, 2u);
  EXPECT_GE(it->second.wall_ns, 0);
#else
  EXPECT_TRUE(PhaseProfiler::global().phases().empty());
#endif
  PhaseProfiler::global().reset();
}

TEST(ObsProfile, ToJsonParses) {
  PhaseProfiler profiler;
  profiler.record("alpha", 1500000000);
  profiler.record("alpha", 500000000);
  std::string error;
  const auto doc = parse_json(profiler.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->as_array().size(), 1u);
  const JsonValue& p = doc->as_array()[0];
  EXPECT_EQ(p.find("phase")->as_string(), "alpha");
  EXPECT_EQ(p.find("calls")->as_number(), 2.0);
  EXPECT_EQ(p.find("wall_s")->as_number(), 2.0);
}

// --- run manifest ------------------------------------------------------------

TEST(ObsManifest, CaptureRecordsRunAndBuildContext) {
  util::Flags flags;
  flags.set("minutes", "10");
  flags.set("isds", "2");
  const RunManifest m = RunManifest::capture("bench_x", flags, 1234);
  EXPECT_EQ(m.binary, "bench_x");
  EXPECT_EQ(m.seed, 1234u);
  EXPECT_EQ(m.flags.at("minutes"), "10");
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.sanitizers.empty());

  std::string error;
  const auto doc = parse_json(m.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  for (const char* key : {"binary", "seed", "flags", "build_type", "git_sha",
                          "sanitizers", "checked", "obs_enabled"}) {
    EXPECT_NE(doc->find(key), nullptr) << key;
  }
  EXPECT_EQ(doc->find("seed")->as_number(), 1234.0);
  EXPECT_EQ(doc->find("flags")->find("isds")->as_string(), "2");
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_TRUE(doc->find("obs_enabled")->as_bool());
#else
  EXPECT_FALSE(doc->find("obs_enabled")->as_bool());
#endif
}

// --- session -----------------------------------------------------------------

TEST(ObsSessionTest, MetricsDocumentHasTheFullSchema) {
  util::Flags flags;
  flags.set("seed", "7");
  ObsSession session{"test_obs", flags, 7};
  SCION_METRIC_COUNT("test.session_counter", 1);
  { ProfilePhase phase{"test.session_phase"}; }

  std::string error;
  const auto doc = parse_json(session.metrics_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->as_string(), "scion-mpr-metrics-v1");
  EXPECT_EQ(doc->find("manifest")->find("binary")->as_string(), "test_obs");
  ASSERT_TRUE(doc->find("metrics")->is_object());
  ASSERT_TRUE(doc->find("phases")->is_array());
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(doc->find("metrics")
                ->find("counters")
                ->find("test.session_counter")
                ->as_number(),
            1.0);
#endif
  session.finish();
  MetricsRegistry::global().reset();
  PhaseProfiler::global().reset();
}

// --- nested phase attribution ------------------------------------------------

TEST(ObsProfile, NestedPhasesAttributeAllocsToInnermost) {
#ifdef SCION_MPR_OBS_ENABLED
  if (!alloc_tracking_enabled()) {
    GTEST_SKIP() << "SCION_MPR_ALLOC_TRACK is off";
  }
  PhaseProfiler::global().reset();
  // Warm pass: both phase slots exist afterwards, so the measured pass does
  // not see the profiler's own map-insertion allocations.
  {
    ProfilePhase outer{"test.nested_outer"};
    ProfilePhase inner{"test.nested_inner"};
  }
  const auto snapshot = PhaseProfiler::global().phases();  // copy
  {
    ProfilePhase outer{"test.nested_outer"};
    {
      ProfilePhase inner{"test.nested_inner"};
      for (int i = 0; i < 32; ++i) {
        auto block = std::make_unique<char[]>(64);
        block[0] = static_cast<char>(i);
        ASSERT_EQ(block[0], static_cast<char>(i));
      }
    }
  }
  const auto& phases = PhaseProfiler::global().phases();
  const std::uint64_t inner_delta =
      phases.at("test.nested_inner").allocs -
      snapshot.at("test.nested_inner").allocs;
  const std::uint64_t outer_delta =
      phases.at("test.nested_outer").allocs -
      snapshot.at("test.nested_outer").allocs;
  // The 32 block allocations belong to the innermost phase; the parent may
  // only see the profiler's own bookkeeping (span log growth), never the
  // child's workload.
  EXPECT_GE(inner_delta, 32u);
  EXPECT_LE(outer_delta, 8u);
  PhaseProfiler::global().reset();
#else
  GTEST_SKIP() << "SCION_MPR_OBS is off";
#endif
}

// --- event profiling ---------------------------------------------------------

TEST(ObsEventProfile, InternReturnsStableIdsAndKeepsTableAcrossReset) {
#ifdef SCION_MPR_OBS_ENABLED
  const EventLabel a = event_label("test.intern_a");
  const EventLabel b = event_label("test.intern_b");
  EXPECT_FALSE(a.is_default());
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(event_label("test.intern_a").id(), a.id());
  EventProfiler::global().reset_counters();
  // reset_counters clears stats, not the table: cached handles stay valid.
  EXPECT_EQ(event_label("test.intern_a").id(), a.id());
  EXPECT_EQ(EventProfiler::global().label_name(a.id()), "test.intern_a");
  EXPECT_EQ(EventProfiler::global().label_name(0), "(unlabeled)");
#else
  EXPECT_TRUE(event_label("test.intern_a").is_default());
  EXPECT_EQ(event_label("anything").id(), 0u);
#endif
}

#ifdef SCION_MPR_OBS_ENABLED

TEST(ObsEventProfile, MergeIsCommutativeAndJsonSortsLabels) {
  EventProfiler profiler;
  const EventLabel beta = profiler.intern("test.beta");
  const EventLabel alpha = profiler.intern("test.alpha");
  std::vector<LabelStats> shard_a(profiler.label_count());
  shard_a[beta.id()] = LabelStats{3, 6, 600, 30};
  std::vector<LabelStats> shard_b(profiler.label_count());
  shard_b[alpha.id()] = LabelStats{2, 10, 100, 20};
  shard_b[beta.id()] = LabelStats{1, 1, 1, 1};
  const std::vector<QueueSample> samples_a{{0, 4}, {100, 2}};
  const std::vector<QueueSample> samples_b{{0, 1}, {100, 9}};

  EventProfiler forward;
  forward.intern("test.beta");
  forward.intern("test.alpha");
  forward.merge(shard_a, samples_a);
  forward.merge(shard_b, samples_b);

  EventProfiler reverse;
  reverse.intern("test.beta");
  reverse.intern("test.alpha");
  reverse.merge(shard_b, samples_b);
  reverse.merge(shard_a, samples_a);

  // Merge order (i.e. --jobs scheduling) cannot change the result.
  EXPECT_EQ(forward.to_json(), reverse.to_json());
  EXPECT_EQ(forward.total_events(), 6u);
  EXPECT_EQ(forward.attributed_events(), 6u);

  std::string error;
  const auto doc = parse_json(forward.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto& labels = doc->find("labels")->as_array();
  ASSERT_EQ(labels.size(), 2u);
  // Sorted by name despite reversed intern order.
  EXPECT_EQ(labels[0].find("label")->as_string(), "test.alpha");
  EXPECT_EQ(labels[1].find("label")->as_string(), "test.beta");
  EXPECT_EQ(labels[1].find("events")->as_number(), 4.0);
  EXPECT_EQ(labels[1].find("allocs")->as_number(), 7.0);
  // Queue samples merge per-timestamp max.
  const auto& samples = doc->find("queue_samples")->as_array();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].find("depth")->as_number(), 4.0);
  EXPECT_EQ(samples[1].find("depth")->as_number(), 9.0);
}

TEST(ObsEventProfile, TopAllocatingLabelsOrderByAllocsThenName) {
  EventProfiler profiler;
  const EventLabel a = profiler.intern("test.a");
  const EventLabel b = profiler.intern("test.b");
  const EventLabel c = profiler.intern("test.c");
  std::vector<LabelStats> stats(profiler.label_count());
  stats[a.id()] = LabelStats{1, 5, 0, 0};
  stats[b.id()] = LabelStats{1, 9, 0, 0};
  stats[c.id()] = LabelStats{1, 5, 0, 0};
  profiler.merge(stats, {});
  const auto top = profiler.top_allocating_labels(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "test.b");
  EXPECT_EQ(top[0].second, 9u);
  EXPECT_EQ(top[1].first, "test.a");  // tie with test.c: name order
}

TEST(ObsEventProfile, ShardSamplesQueueOnGridAndDecimatesWhenFull) {
  EventProfiler::global().reset_counters();
  {
    EventShard shard;
    // 600 grid crossings at 100ms: forces at least one decimation (cap 512),
    // after which surviving timestamps are multiples of the doubled interval.
    for (std::int64_t i = 0; i < 600; ++i) {
      shard.maybe_sample_queue(i * 100'000'000, static_cast<std::uint64_t>(i));
    }
  }  // destructor flushes into the global profiler
  const auto timeline = EventProfiler::global().queue_timeline();
  ASSERT_FALSE(timeline.empty());
  EXPECT_LE(timeline.size(), 512u);
  for (const QueueSample& s : timeline) {
    EXPECT_EQ(s.t_ns % 200'000'000, 0) << s.t_ns;
  }
  EventProfiler::global().reset_counters();
}

#endif  // SCION_MPR_OBS_ENABLED

TEST(ObsEventProfile, SimulatorAttributesLabeledEvents) {
  EventProfiler::global().reset_counters();
  EventProfiler::global().set_enabled(true);
  static const EventLabel kTick = event_label("test.sim_tick");
  {
    sim::Simulator simulator;
    simulator.schedule_at(TimePoint::origin() + util::Duration::seconds(1),
                          kTick, [] {});
    simulator.schedule_at(TimePoint::origin() + util::Duration::seconds(2),
                          kTick, [] {});
    simulator.schedule_at(TimePoint::origin() + util::Duration::seconds(3),
                          [] {});  // unlabeled on purpose
    simulator.run();
  }
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(EventProfiler::global().total_events(), 3u);
  EXPECT_EQ(EventProfiler::global().attributed_events(), 2u);
  const auto labels = EventProfiler::global().label_snapshot();
  bool found = false;
  for (const auto& [name, stats] : labels) {
    if (name == "test.sim_tick") {
      found = true;
      EXPECT_EQ(stats.events, 2u);
    }
  }
  EXPECT_TRUE(found);
#else
  // Record path compiled out: nothing accumulates.
  EXPECT_EQ(EventProfiler::global().total_events(), 0u);
#endif
  EventProfiler::global().reset_counters();
}

TEST(ObsEventProfile, DisabledProfilerRecordsNothing) {
  EventProfiler::global().reset_counters();
  EventProfiler::global().set_enabled(false);
  {
    sim::Simulator simulator;
    simulator.schedule_at(TimePoint::origin() + util::Duration::seconds(1),
                          event_label("test.disabled_tick"), [] {});
    simulator.run();
  }
  EXPECT_EQ(EventProfiler::global().total_events(), 0u);
  EventProfiler::global().set_enabled(true);
  EventProfiler::global().reset_counters();
}

// The acceptance bar for the labeling sweep: a real simulation pipeline
// must attribute (nearly) all its events to non-default labels. A new
// unlabeled schedule site in a hot loop drags this ratio down.
TEST(ObsEventProfile, BeaconingRunAttributesAtLeast95PercentOfEvents) {
#ifdef SCION_MPR_OBS_ENABLED
  EventProfiler::global().reset_counters();
  EventProfiler::global().set_enabled(true);
  topo::ScionLabConfig topo_config;
  topo_config.n_cores = 8;
  topo_config.seed = 5;
  const topo::Topology world = topo::generate_scionlab(topo_config);
  ctrl::BeaconingSimConfig config;
  config.sim_duration = util::Duration::minutes(30);
  config.seed = 42;
  ctrl::BeaconingSim sim{world, config};
  sim.run();
  const std::uint64_t total = EventProfiler::global().total_events();
  const std::uint64_t attributed = EventProfiler::global().attributed_events();
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(attributed),
            0.95 * static_cast<double>(total))
      << attributed << " of " << total << " events attributed";
  EventProfiler::global().reset_counters();
#else
  GTEST_SKIP() << "SCION_MPR_OBS is off";
#endif
}

// --- chrome trace export -----------------------------------------------------

TEST(ObsChromeTrace, RendersPhasesLabelSlicesAndQueueCounters) {
  PhaseProfiler phases;
  phases.record("stage.one", 1'000'000);
  phases.record_span("stage.one", 500, 1'000'500, 0);

  EventProfiler events;
#ifdef SCION_MPR_OBS_ENABLED
  const EventLabel lbl = events.intern("test.chrome_label");
  std::vector<LabelStats> stats(events.label_count());
  stats[lbl.id()] = LabelStats{4, 2, 128, 2'000};
  events.merge(stats, {{0, 3}, {100'000'000, 7}});
#endif

  const std::string json = chrome_trace_json(phases, events);
  std::string error;
  const auto doc = parse_json(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("displayTimeUnit")->as_string(), "ms");
  const auto& trace_events = doc->find("traceEvents")->as_array();
  bool saw_phase_slice = false;
  bool saw_label_slice = false;
  bool saw_counter = false;
  bool saw_metadata = false;
  for (const JsonValue& e : trace_events) {
    const std::string& ph = e.find("ph")->as_string();
    const std::string& name = e.find("name")->as_string();
    if (ph == "M") saw_metadata = true;
    if (ph == "X" && name == "stage.one") {
      saw_phase_slice = true;
      EXPECT_EQ(e.find("dur")->as_number(), 1000.0);  // 1ms in µs
    }
    if (ph == "X" && name == "test.chrome_label") {
      saw_label_slice = true;
      EXPECT_EQ(e.find("args")->find("events")->as_number(), 4.0);
      EXPECT_EQ(e.find("args")->find("allocs")->as_number(), 2.0);
    }
    if (ph == "C" && name == "queue_depth") saw_counter = true;
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_phase_slice);
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_TRUE(saw_label_slice);
  EXPECT_TRUE(saw_counter);
#endif
}

// --- result renderer ---------------------------------------------------------

TEST(ObsReport, TableAlignsAndTrims) {
  Table t{"Title",
          {Column{"name", Align::kLeft, 6}, Column{"n", Align::kRight, 4}}};
  t.row({"a", "1"});
  t.row({"longer", "1000"});
  EXPECT_EQ(t.to_text(),
            "Title\n"
            "  name      n\n"
            "  a         1\n"
            "  longer 1000\n");
}

TEST(ObsReport, TableJsonKeysRowsByHeader) {
  Table t{"T", {Column{"k", Align::kLeft, 0}, Column{"v", Align::kRight, 0}}};
  t.row({"x", "1"});
  JsonWriter w;
  t.append_json(w);
  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("title")->as_string(), "T");
  ASSERT_EQ(doc->find("rows")->as_array().size(), 1u);
  EXPECT_EQ(doc->find("rows")->as_array()[0].find("k")->as_string(), "x");
  EXPECT_EQ(doc->find("rows")->as_array()[0].find("v")->as_string(), "1");
}

TEST(ObsReport, CdfJsonMatchesCurve) {
  util::EmpiricalCdf cdf;
  for (int i = 1; i <= 4; ++i) cdf.add(i);
  JsonWriter w;
  append_cdf_json(w, cdf, 4);
  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(doc->find("summary")->as_string().empty());
  const auto& curve = doc->find("curve")->as_array();
  ASSERT_EQ(curve.size(), cdf.curve(4).size());
  EXPECT_EQ(curve.back().as_array()[1].as_number(), 1.0);
}

}  // namespace
}  // namespace scion::obs
