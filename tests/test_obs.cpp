// Telemetry layer tests: metrics registry semantics, JSONL trace
// round-trips and category filters, run-manifest completeness, the
// recording macros (including argument evaluation when compiled out), phase
// profiling, and the shared result renderer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"

namespace scion::obs {
namespace {

using util::TimePoint;

// --- JSON writer / parser ----------------------------------------------------

TEST(ObsJson, WriterProducesParseableDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "a \"quoted\"\nstring");
  w.kv("count", std::uint64_t{42});
  w.kv("delta", std::int64_t{-7});
  w.kv("ratio", 0.5);
  w.kv("on", true);
  w.key("list").begin_array();
  w.value(1);
  w.value_null();
  w.end_array();
  w.end_object();

  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("name")->as_string(), "a \"quoted\"\nstring");
  EXPECT_EQ(doc->find("count")->as_number(), 42.0);
  EXPECT_EQ(doc->find("delta")->as_number(), -7.0);
  EXPECT_EQ(doc->find("ratio")->as_number(), 0.5);
  EXPECT_TRUE(doc->find("on")->as_bool());
  ASSERT_TRUE(doc->find("list")->is_array());
  EXPECT_EQ(doc->find("list")->as_array().size(), 2u);
  EXPECT_TRUE(doc->find("list")->as_array()[1].is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(parse_json("").has_value());
}

// --- metrics registry --------------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramSemantics) {
  Counter c;
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);

  Gauge g;
  g.set(10);
  g.set_max(5);
  EXPECT_EQ(g.value(), 10);
  g.set_max(12);
  EXPECT_EQ(g.value(), 12);

  Histogram h{{1.0, 10.0}};
  h.observe(0.5);   // bucket 0
  h.observe(10.0);  // <= 10: bucket 1
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 109.5);
}

TEST(ObsMetrics, RegistryFindsOrCreatesStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.a");
  a.add(1);
  // Same name -> same handle; creating others must not invalidate it.
  for (int i = 0; i < 100; ++i) {
    registry.counter("test.fill" + std::to_string(i));
  }
  EXPECT_EQ(&registry.counter("test.a"), &a);
  EXPECT_EQ(a.value(), 1u);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.c");
  Gauge& g = registry.gauge("test.g");
  Histogram& h = registry.histogram("test.h");
  c.add(5);
  g.set(5);
  h.observe(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // The handles are still the registered objects.
  EXPECT_EQ(&registry.counter("test.c"), &c);
  c.add(2);
  EXPECT_EQ(registry.counter("test.c").value(), 2u);
}

TEST(ObsMetrics, ToJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n.events").add(3);
  registry.gauge("n.depth").set(9);
  registry.histogram("n.sizes", {8.0, 64.0}).observe(100.0);

  std::string error;
  const auto doc = parse_json(registry.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("counters")->find("n.events")->as_number(), 3.0);
  EXPECT_EQ(doc->find("gauges")->find("n.depth")->as_number(), 9.0);
  const JsonValue* h = doc->find("histograms")->find("n.sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 1.0);
  EXPECT_EQ(h->find("bucket_counts")->as_array().back().as_number(), 1.0);
}

// --- recording macros --------------------------------------------------------

TEST(ObsMetrics, MacrosRecordIntoTheGlobalRegistry) {
  MetricsRegistry::global().reset();
  int evaluations = 0;
  const auto delta = [&] {
    ++evaluations;
    return 2;
  };
  SCION_METRIC_COUNT("test.macro_counter", delta());
  SCION_METRIC_GAUGE_MAX("test.macro_gauge", 11);
  SCION_METRIC_OBSERVE("test.macro_hist", 3.0);
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(MetricsRegistry::global().counter("test.macro_counter").value(),
            2u);
  EXPECT_EQ(MetricsRegistry::global().gauge("test.macro_gauge").value(), 11);
  EXPECT_EQ(MetricsRegistry::global().histogram("test.macro_hist").count(),
            1u);
#else
  // Compiled out: the argument expression must not have been evaluated.
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(MetricsRegistry::global().counters().empty());
#endif
  MetricsRegistry::global().reset();
}

// --- tracing -----------------------------------------------------------------

TEST(ObsTrace, EventsRoundTripThroughJsonl) {
  std::ostringstream out;
  TraceSink sink{out};
  sink.event(TimePoint::origin() + util::Duration::seconds(2),
             Category::kBeacon, "originate",
             {{"as", "1-17"}, {"egress", 42u}, {"depth", -3}, {"ok", true},
              {"ratio", 0.25}});
  sink.event(TimePoint::origin(), Category::kBgp, "update", {});
  EXPECT_EQ(sink.events_written(), 2u);

  std::istringstream lines{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  std::string error;
  auto doc = parse_json(line, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("t")->as_number(), 2e9);
  EXPECT_EQ(doc->find("cat")->as_string(), "beacon");
  EXPECT_EQ(doc->find("ev")->as_string(), "originate");
  EXPECT_EQ(doc->find("as")->as_string(), "1-17");
  EXPECT_EQ(doc->find("egress")->as_number(), 42.0);
  EXPECT_EQ(doc->find("depth")->as_number(), -3.0);
  EXPECT_TRUE(doc->find("ok")->as_bool());
  EXPECT_EQ(doc->find("ratio")->as_number(), 0.25);

  ASSERT_TRUE(std::getline(lines, line));
  doc = parse_json(line, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("cat")->as_string(), "bgp");
  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

TEST(ObsTrace, CategoryFiltersDropDisabledEvents) {
  std::ostringstream out;
  TraceSink sink{out};
  ASSERT_TRUE(sink.set_filter("beacon,bgp"));
  EXPECT_TRUE(sink.enabled(Category::kBeacon));
  EXPECT_TRUE(sink.enabled(Category::kBgp));
  EXPECT_FALSE(sink.enabled(Category::kSimnet));
  sink.event(TimePoint::origin(), Category::kSimnet, "drop", {});
  EXPECT_EQ(sink.events_written(), 0u);
  EXPECT_TRUE(out.str().empty());
  sink.event(TimePoint::origin(), Category::kBeacon, "keep", {});
  EXPECT_EQ(sink.events_written(), 1u);
}

TEST(ObsTrace, FilterRejectsUnknownCategories) {
  std::ostringstream out;
  TraceSink sink{out};
  sink.disable_all();
  EXPECT_FALSE(sink.set_filter("beacon,nonsense"));
  // Unknown name changes nothing.
  EXPECT_FALSE(sink.enabled(Category::kBeacon));
  EXPECT_TRUE(sink.set_filter("all"));
  EXPECT_TRUE(sink.enabled(Category::kSig));
  EXPECT_TRUE(sink.set_filter(""));
  EXPECT_TRUE(sink.enabled(Category::kExperiment));
}

TEST(ObsTrace, CategoryNamesRoundTrip) {
  for (unsigned c = 0; c < static_cast<unsigned>(Category::kCount); ++c) {
    const auto category = static_cast<Category>(c);
    const auto parsed = category_from_string(to_string(category));
    ASSERT_TRUE(parsed.has_value()) << to_string(category);
    EXPECT_EQ(*parsed, category);
  }
  EXPECT_FALSE(category_from_string("bogus").has_value());
}

TEST(ObsTrace, MacroSkipsFieldEvaluationWhenOff) {
  set_trace_sink(nullptr);
  int evaluations = 0;
  // maybe_unused: the OFF expansion of SCION_TRACE drops the field list.
  [[maybe_unused]] const auto field_value = [&] {
    ++evaluations;
    return 1;
  };
  // No sink installed: fields must not be evaluated.
  SCION_TRACE(Category::kBeacon, TimePoint::origin(), "e",
              {"v", field_value()});
  EXPECT_EQ(evaluations, 0);

  std::ostringstream out;
  TraceSink sink{out};
  sink.set_filter("bgp");
  set_trace_sink(&sink);
  // Sink installed but category disabled: still not evaluated.
  SCION_TRACE(Category::kBeacon, TimePoint::origin(), "e",
              {"v", field_value()});
  EXPECT_EQ(evaluations, 0);
  SCION_TRACE(Category::kBgp, TimePoint::origin(), "e", {"v", field_value()});
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(sink.events_written(), 1u);
#else
  EXPECT_EQ(evaluations, 0);
#endif
  set_trace_sink(nullptr);
}

// --- phase profiling ---------------------------------------------------------

TEST(ObsProfile, PhasesAccumulateAndStopIsIdempotent) {
  PhaseProfiler::global().reset();
  {
    ProfilePhase phase{"test.phase"};
    phase.stop();
    phase.stop();  // idempotent: records exactly once
  }                // destructor after stop(): still once
  { ProfilePhase phase{"test.phase"}; }
#ifdef SCION_MPR_OBS_ENABLED
  const auto& phases = PhaseProfiler::global().phases();
  const auto it = phases.find("test.phase");
  ASSERT_NE(it, phases.end());
  EXPECT_EQ(it->second.calls, 2u);
  EXPECT_GE(it->second.wall_ns, 0);
#else
  EXPECT_TRUE(PhaseProfiler::global().phases().empty());
#endif
  PhaseProfiler::global().reset();
}

TEST(ObsProfile, ToJsonParses) {
  PhaseProfiler profiler;
  profiler.record("alpha", 1500000000);
  profiler.record("alpha", 500000000);
  std::string error;
  const auto doc = parse_json(profiler.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->as_array().size(), 1u);
  const JsonValue& p = doc->as_array()[0];
  EXPECT_EQ(p.find("phase")->as_string(), "alpha");
  EXPECT_EQ(p.find("calls")->as_number(), 2.0);
  EXPECT_EQ(p.find("wall_s")->as_number(), 2.0);
}

// --- run manifest ------------------------------------------------------------

TEST(ObsManifest, CaptureRecordsRunAndBuildContext) {
  util::Flags flags;
  flags.set("minutes", "10");
  flags.set("isds", "2");
  const RunManifest m = RunManifest::capture("bench_x", flags, 1234);
  EXPECT_EQ(m.binary, "bench_x");
  EXPECT_EQ(m.seed, 1234u);
  EXPECT_EQ(m.flags.at("minutes"), "10");
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.sanitizers.empty());

  std::string error;
  const auto doc = parse_json(m.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  for (const char* key : {"binary", "seed", "flags", "build_type", "git_sha",
                          "sanitizers", "checked", "obs_enabled"}) {
    EXPECT_NE(doc->find(key), nullptr) << key;
  }
  EXPECT_EQ(doc->find("seed")->as_number(), 1234.0);
  EXPECT_EQ(doc->find("flags")->find("isds")->as_string(), "2");
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_TRUE(doc->find("obs_enabled")->as_bool());
#else
  EXPECT_FALSE(doc->find("obs_enabled")->as_bool());
#endif
}

// --- session -----------------------------------------------------------------

TEST(ObsSessionTest, MetricsDocumentHasTheFullSchema) {
  util::Flags flags;
  flags.set("seed", "7");
  ObsSession session{"test_obs", flags, 7};
  SCION_METRIC_COUNT("test.session_counter", 1);
  { ProfilePhase phase{"test.session_phase"}; }

  std::string error;
  const auto doc = parse_json(session.metrics_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->as_string(), "scion-mpr-metrics-v1");
  EXPECT_EQ(doc->find("manifest")->find("binary")->as_string(), "test_obs");
  ASSERT_TRUE(doc->find("metrics")->is_object());
  ASSERT_TRUE(doc->find("phases")->is_array());
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_EQ(doc->find("metrics")
                ->find("counters")
                ->find("test.session_counter")
                ->as_number(),
            1.0);
#endif
  session.finish();
  MetricsRegistry::global().reset();
  PhaseProfiler::global().reset();
}

// --- result renderer ---------------------------------------------------------

TEST(ObsReport, TableAlignsAndTrims) {
  Table t{"Title",
          {Column{"name", Align::kLeft, 6}, Column{"n", Align::kRight, 4}}};
  t.row({"a", "1"});
  t.row({"longer", "1000"});
  EXPECT_EQ(t.to_text(),
            "Title\n"
            "  name      n\n"
            "  a         1\n"
            "  longer 1000\n");
}

TEST(ObsReport, TableJsonKeysRowsByHeader) {
  Table t{"T", {Column{"k", Align::kLeft, 0}, Column{"v", Align::kRight, 0}}};
  t.row({"x", "1"});
  JsonWriter w;
  t.append_json(w);
  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("title")->as_string(), "T");
  ASSERT_EQ(doc->find("rows")->as_array().size(), 1u);
  EXPECT_EQ(doc->find("rows")->as_array()[0].find("k")->as_string(), "x");
  EXPECT_EQ(doc->find("rows")->as_array()[0].find("v")->as_string(), "1");
}

TEST(ObsReport, CdfJsonMatchesCurve) {
  util::EmpiricalCdf cdf;
  for (int i = 1; i <= 4; ++i) cdf.add(i);
  JsonWriter w;
  append_cdf_json(w, cdf, 4);
  std::string error;
  const auto doc = parse_json(std::move(w).take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(doc->find("summary")->as_string().empty());
  const auto& curve = doc->find("curve")->as_array();
  ASSERT_EQ(curve.size(), cdf.curve(4).size());
  EXPECT_EQ(curve.back().as_array()[1].as_number(), 1.0);
}

}  // namespace
}  // namespace scion::obs
