#include <gtest/gtest.h>

#include <array>

#include "core/scoring.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;

const DiversityParams kParams{};  // defaults

std::vector<topo::LinkIndex> links(std::initializer_list<topo::LinkIndex> l) {
  return l;
}

TEST(LinkHistoryTable, CountersTrackPaths) {
  LinkHistoryTable table;
  table.add_path(links({1, 2, 3}));
  table.add_path(links({2, 3, 4}));
  EXPECT_EQ(table.counter(1), 1);
  EXPECT_EQ(table.counter(2), 2);
  EXPECT_EQ(table.counter(9), 0);
  EXPECT_EQ(table.distinct_links(), 4u);
}

TEST(LinkHistoryTable, RemoveDecrementsAndClamps) {
  LinkHistoryTable table;
  table.add_path(links({1, 2}));
  table.add_path(links({2}));
  table.remove_path(links({1, 2}));
  EXPECT_EQ(table.counter(1), 0);
  EXPECT_EQ(table.counter(2), 1);
  table.remove_path(links({1}));  // already zero: no underflow
  EXPECT_EQ(table.counter(1), 0);
  EXPECT_EQ(table.distinct_links(), 1u);
}

TEST(LinkHistoryTable, GeometricMeanZeroWithAnyNewLink) {
  LinkHistoryTable table;
  table.add_path(links({1, 2}));
  EXPECT_DOUBLE_EQ(table.geometric_mean(links({1, 2, 3})), 0.0)
      << "a path with one never-used link counts as fully fresh";
  EXPECT_DOUBLE_EQ(table.geometric_mean(links({1, 2})), 1.0);
}

TEST(LinkHistoryTable, GeometricMeanOfMixedCounters) {
  LinkHistoryTable table;
  for (int i = 0; i < 4; ++i) table.add_path(links({1}));
  table.add_path(links({2}));
  // counters: 1 -> 4, 2 -> 1; gm = sqrt(4 * 1) = 2
  EXPECT_DOUBLE_EQ(table.geometric_mean(links({1, 2})), 2.0);
}

TEST(DiversityScore, FullyFreshPathScoresOne) {
  LinkHistoryTable table;
  EXPECT_DOUBLE_EQ(diversity_score(table, links({5, 6}), kParams), 1.0);
}

TEST(DiversityScore, SaturatesAtZero) {
  LinkHistoryTable table;
  for (int i = 0; i < 10; ++i) table.add_path(links({1}));  // counter 10 > gm_max 5
  EXPECT_DOUBLE_EQ(diversity_score(table, links({1}), kParams), 0.0);
}

TEST(DiversityScore, DecreasesWithReuse) {
  LinkHistoryTable table;
  table.add_path(links({1, 2}));
  const double once = diversity_score(table, links({1, 2}), kParams);
  table.add_path(links({1, 2}));
  const double twice = diversity_score(table, links({1, 2}), kParams);
  EXPECT_GT(once, twice);
  EXPECT_GT(once, 0.0);
  EXPECT_LT(once, 1.0);
}

// --- Eq. 2 (not previously sent) ----------------------------------------------

TEST(ScoreFresh, BrandNewPcbScoresDiversityIndependent) {
  // age 0 => exponent 0 => score 1 for any positive diversity.
  EXPECT_DOUBLE_EQ(score_fresh(0.3, Duration::zero(), Duration::hours(6), kParams), 1.0);
  EXPECT_DOUBLE_EQ(score_fresh(1.0, Duration::zero(), Duration::hours(6), kParams), 1.0);
}

TEST(ScoreFresh, ZeroDiversityNeverSends) {
  EXPECT_DOUBLE_EQ(score_fresh(0.0, Duration::zero(), Duration::hours(6), kParams), 0.0);
  EXPECT_DOUBLE_EQ(
      score_fresh(0.0, Duration::hours(1), Duration::hours(6), kParams), 0.0);
}

TEST(ScoreFresh, DecaysWithAge) {
  const Duration lifetime = Duration::hours(6);
  const double young =
      score_fresh(0.5, Duration::minutes(10), lifetime, kParams);
  const double old = score_fresh(0.5, Duration::hours(3), lifetime, kParams);
  EXPECT_GT(young, old);
  EXPECT_GT(old, 0.0);
}

TEST(ScoreFresh, FullyDisjointImmuneToAge) {
  const Duration lifetime = Duration::hours(6);
  EXPECT_DOUBLE_EQ(score_fresh(1.0, Duration::hours(5), lifetime, kParams), 1.0);
}

TEST(ScoreFresh, HigherDiversityScoresHigher) {
  const Duration lifetime = Duration::hours(6);
  const Duration age = Duration::hours(1);
  EXPECT_GT(score_fresh(0.9, age, lifetime, kParams),
            score_fresh(0.4, age, lifetime, kParams));
}

// --- Eq. 3 (previously sent) -----------------------------------------------------

TEST(ScorePreviouslySent, FreshlySentIsSuppressed) {
  // Both instances fresh: ratio ~1 -> exponent beta^gamma = 9 with defaults;
  // even a diversity of 0.8 drops well below the 0.5 threshold.
  const double score = score_previously_sent(0.8, Duration::hours(6),
                                             Duration::hours(6), kParams);
  EXPECT_LT(score, kParams.score_threshold);
}

TEST(ScorePreviouslySent, RecoversAsSentInstanceExpires) {
  const Duration current = Duration::hours(6);
  const double near_expiry =
      score_previously_sent(0.8, Duration::minutes(10), current, kParams);
  const double half_life =
      score_previously_sent(0.8, Duration::hours(3), current, kParams);
  EXPECT_GT(near_expiry, half_life);
  EXPECT_GT(near_expiry, kParams.score_threshold)
      << "connectivity preservation: resend before the old instance dies";
}

TEST(ScorePreviouslySent, MonotoneInRemainingRatio) {
  const Duration current = Duration::hours(6);
  double prev = 2.0;
  for (int h = 0; h <= 6; ++h) {
    const double s =
        score_previously_sent(0.8, Duration::hours(h), current, kParams);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(ScorePreviouslySent, ZeroStoredDiversityNeverResends) {
  EXPECT_DOUBLE_EQ(score_previously_sent(0.0, Duration::zero(),
                                         Duration::hours(6), kParams),
                   0.0);
}

TEST(ScorePreviouslySent, OlderCurrentInstanceSuppressedHarder) {
  // If the candidate instance expires sooner than what we already sent,
  // the ratio exceeds 1 and the score collapses.
  const double score = score_previously_sent(0.8, Duration::hours(6),
                                             Duration::hours(1), kParams);
  EXPECT_LT(score, 0.01);
}

// --- Objective interplay (the three goals of Section 4.2) -----------------------

TEST(Scoring, NewPathBeatsFreshlySentPath) {
  // "Discover new paths": a not-previously-sent fully disjoint path at any
  // age scores 1, above any freshly re-sent path's score.
  const double new_path =
      score_fresh(1.0, Duration::hours(2), Duration::hours(6), kParams);
  const double sent_path = score_previously_sent(
      0.8, Duration::hours(5), Duration::hours(6), kParams);
  EXPECT_GT(new_path, sent_path);
}

TEST(Scoring, ExpiringSentPathBeatsRedundantNewPath) {
  // "Preserve connectivity": about-to-expire sent path recovers to ~1,
  // beating a heavily overlapping fresh path.
  const double expiring = score_previously_sent(
      0.8, Duration::minutes(5), Duration::hours(6), kParams);
  const double redundant =
      score_fresh(0.2, Duration::hours(1), Duration::hours(6), kParams);
  EXPECT_GT(expiring, redundant);
}

// Parameterized sweep: score_fresh stays within [0, 1] and is monotone in
// diversity across the parameter grid used by the grid search.
class ScoreGrid : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ScoreGrid, ScoresBoundedAndMonotone) {
  const auto [alpha, beta, gamma] = GetParam();
  DiversityParams p;
  p.alpha = alpha;
  p.beta = beta;
  p.gamma = gamma;
  const Duration lifetime = Duration::hours(6);
  double prev_fresh = -1.0;
  for (double d = 0.0; d <= 1.0; d += 0.25) {
    const double s = score_fresh(d, Duration::hours(1), lifetime, p);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_GE(s, prev_fresh) << "monotone in diversity";
    prev_fresh = s;
    const double s2 =
        score_previously_sent(d, Duration::hours(3), lifetime, p);
    EXPECT_GE(s2, 0.0);
    EXPECT_LE(s2, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, ScoreGrid,
    ::testing::Combine(::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values(1.0, 3.0, 6.0),
                       ::testing::Values(1.0, 2.0, 4.0)));

}  // namespace
}  // namespace scion::ctrl
