// Negative-compile case: a byte total is not a message count.
//
// Overhead accounting mixes per-channel byte counters and per-channel
// message counters; before util::Bytes the two added together silently.
// Bytes arithmetic is closed: Bytes +/- Bytes and Bytes * count only.
#include "simnet/network.hpp"

namespace {

scion::util::Bytes positive_control(const scion::sim::DirectionStats& stats) {
  // Closed arithmetic: Bytes + Bytes, and scaling by a count.
  return stats.bytes + stats.bytes * 2u;
}

#ifdef SCION_NEGATIVE
std::uint64_t must_not_compile(const scion::sim::DirectionStats& stats) {
  // Adding a byte total to a message count is a category error.
  return stats.messages + stats.bytes;
}
#endif

}  // namespace
