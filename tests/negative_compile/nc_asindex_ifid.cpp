// Negative-compile case: an AS index is not an interface id.
//
// AsIndex is a deliberate raw dense index (hot-path vector subscripts);
// IfId is strong. The guarded statement hands an AsIndex to an API whose
// parameter is IfId — StrongId's explicit constructor must reject it.
#include "core/pcb.hpp"
#include "topology/ids.hpp"
#include "topology/topology.hpp"

namespace {

scion::ctrl::Pcb positive_control(const scion::crypto::SigningKey& sk,
                                  const scion::crypto::ForwardingKey& fk) {
  using scion::topo::IfId;
  const auto origin = scion::topo::IsdAsId::make(1, 7);
  return scion::ctrl::Pcb::originate(origin, IfId{3},
                                     scion::util::TimePoint::origin(),
                                     scion::util::Duration::hours(6), sk, fk);
}

#ifdef SCION_NEGATIVE
scion::ctrl::Pcb must_not_compile(const scion::crypto::SigningKey& sk,
                                  const scion::crypto::ForwardingKey& fk,
                                  scion::topo::AsIndex as) {
  const auto origin = scion::topo::IsdAsId::make(1, 7);
  // AsIndex (raw std::uint32_t) where IfId is required: no implicit
  // conversion into a strong id.
  return scion::ctrl::Pcb::originate(origin, as,
                                     scion::util::TimePoint::origin(),
                                     scion::util::Duration::hours(6), sk, fk);
}

bool reverse_must_not_compile(const scion::topo::Topology& t,
                              scion::topo::IfId if_id) {
  // And the other direction: IfId where a raw AsIndex is required (no
  // conversion operator back to the representation).
  return t.is_core(if_id);
}
#endif

}  // namespace
