// Negative-compile case: raw integers do not implicitly become strong ids.
//
// Construction must always be spelled (NodeId{3}), so every boundary where
// a raw index enters the typed world is visible in the source.
#include "simnet/network.hpp"
#include "topology/ids.hpp"

namespace {

scion::sim::NodeId positive_control() {
  return scion::sim::NodeId{3};  // explicit construction is fine
}

#ifdef SCION_NEGATIVE
scion::sim::NodeId must_not_compile() {
  // Copy-initialization from a raw integer requires an implicit
  // conversion, which StrongId's explicit constructor forbids.
  scion::sim::NodeId node = 3;
  return node;
}
#endif

}  // namespace
