// Negative-compile case: periodic-timer handles are opaque.
//
// cancel_periodic() takes the TimerId returned by schedule_periodic();
// fabricating one from a raw integer (or treating it as a sequence
// number) must not compile.
#include "simnet/simulator.hpp"

namespace {

void positive_control(scion::sim::Simulator& sim, scion::sim::TimerId id) {
  sim.cancel_periodic(id);
}

#ifdef SCION_NEGATIVE
void must_not_compile(scion::sim::Simulator& sim) {
  // A raw literal is not a timer handle.
  sim.cancel_periodic(0);
}
#endif

}  // namespace
