// Negative-compile case: a node handle is not a channel handle.
//
// The simulators rely on NodeId == AsIndex and ChannelId == LinkIndex
// identity mappings; before the strong types, swapping the two id spaces
// compiled silently. The guarded statement queries channel state with a
// NodeId — distinct tags must make that a type error.
#include "simnet/network.hpp"

namespace {

bool positive_control(const scion::sim::Network& net,
                      scion::sim::ChannelId ch) {
  return net.channel_up(ch);
}

#ifdef SCION_NEGATIVE
bool must_not_compile(const scion::sim::Network& net, scion::sim::NodeId node) {
  // NodeId and ChannelId share a representation but not a tag: no
  // cross-conversion.
  return net.channel_up(node);
}
#endif

}  // namespace
