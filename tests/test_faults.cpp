#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "simnet/network.hpp"
#include "simnet/simulator.hpp"
#include "topology/topology.hpp"

namespace scion::faults {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- plan text

TEST(ParseDuration, UnitsAndDecimals) {
  Duration d;
  ASSERT_TRUE(parse_duration("250ms", &d));
  EXPECT_EQ(d, Duration::milliseconds(250));
  ASSERT_TRUE(parse_duration("1.5s", &d));
  EXPECT_EQ(d, Duration::milliseconds(1500));
  ASSERT_TRUE(parse_duration("2m", &d));
  EXPECT_EQ(d, Duration::minutes(2));
  ASSERT_TRUE(parse_duration("1h", &d));
  EXPECT_EQ(d, Duration::hours(1));
  ASSERT_TRUE(parse_duration("3d", &d));
  EXPECT_EQ(d, Duration::hours(72));
  ASSERT_TRUE(parse_duration("100ns", &d));
  EXPECT_EQ(d.ns(), 100);
  ASSERT_TRUE(parse_duration("5us", &d));
  EXPECT_EQ(d.ns(), 5000);
}

TEST(ParseDuration, RejectsMalformed) {
  Duration d;
  EXPECT_FALSE(parse_duration("", &d));
  EXPECT_FALSE(parse_duration("10", &d)) << "unit is mandatory";
  EXPECT_FALSE(parse_duration("s", &d));
  EXPECT_FALSE(parse_duration("10 s", &d));
  EXPECT_FALSE(parse_duration("10x", &d));
  EXPECT_FALSE(parse_duration("-5s", &d));
}

TEST(FaultPlan, ParsesFullScenario) {
  std::istringstream in{R"(# a scenario
seed 42
loss 0.01
jitter 5ms
flap rate/h 12 down 30s..2m links provider-customer
link-down 7 at 10s for 1m
link-up 7 at 5m
as-down 3 at 30s for 2m
as-up 3 at 10m
isd-partition 2 at 5m for 1m
)"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.loss_probability, 0.01);
  EXPECT_EQ(plan.jitter_max, Duration::milliseconds(5));

  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.flaps[0].rate_per_hour, 12.0);
  EXPECT_EQ(plan.flaps[0].downtime_min, Duration::seconds(30));
  EXPECT_EQ(plan.flaps[0].downtime_max, Duration::minutes(2));
  EXPECT_EQ(plan.flaps[0].links, LinkClass::kProviderCustomer);

  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, Event::Kind::kLinkDown);
  EXPECT_EQ(plan.events[0].target, 7u);
  EXPECT_EQ(plan.events[0].at, Duration::seconds(10));
  EXPECT_EQ(plan.events[0].duration, Duration::minutes(1));
  EXPECT_EQ(plan.events[1].kind, Event::Kind::kLinkUp);
  EXPECT_EQ(plan.events[2].kind, Event::Kind::kNodeDown);
  EXPECT_EQ(plan.events[3].kind, Event::Kind::kNodeUp);
  EXPECT_EQ(plan.events[4].kind, Event::Kind::kIsdPartition);
  EXPECT_EQ(plan.events[4].target, 2u);
}

TEST(FaultPlan, PermanentEventHasZeroDuration) {
  std::istringstream in{"link-down 1 at 5s\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].duration, Duration::zero());
}

TEST(FaultPlan, SingleValueDowntimeRange) {
  std::istringstream in{"flap rate/h 6 down 45s\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_EQ(plan.flaps[0].downtime_min, Duration::seconds(45));
  EXPECT_EQ(plan.flaps[0].downtime_max, Duration::seconds(45));
}

TEST(FaultPlan, ErrorsCarryLineNumbers) {
  const std::vector<std::string> bad = {
      "frobnicate 1\n",                     // unknown directive
      "link-down\n",                        // missing operands
      "link-down 1 at banana\n",            // bad duration
      "seed\n",                             // missing value
      "loss 1.5x\n",                        // trailing junk
      "flap rate/h 6\n",                    // missing downtime
      "flap rate/h 6 down 1s..2s links x\n" // unknown link class
  };
  for (const std::string& text : bad) {
    std::istringstream in{"# comment line\n" + text};
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(in, &plan, &error)) << text;
    EXPECT_NE(error.find("line 2"), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

TEST(FaultPlan, EmptyInputIsEmptyPlan) {
  std::istringstream in{"# nothing but comments\n\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  EXPECT_TRUE(plan.empty());
}

// ------------------------------------------------------------- the injector

/// Two ISDs: ASes 0,1 in ISD 1 (core 0), ASes 2,3 in ISD 2 (core 2).
/// Links: 0 = core 0-2 (cross-ISD), 1 = 0->1 (prov-cust), 2 = 2->3
/// (prov-cust), 3 = 1-3 peer (cross-ISD), 4 = parallel core 0-2.
topo::Topology two_isd_world() {
  topo::Topology t;
  t.add_as(topo::IsdAsId::make(1, 10), true);
  t.add_as(topo::IsdAsId::make(1, 11), false);
  t.add_as(topo::IsdAsId::make(2, 20), true);
  t.add_as(topo::IsdAsId::make(2, 21), false);
  t.add_link(0, 2, topo::LinkType::kCore);
  t.add_link(0, 1, topo::LinkType::kProviderCustomer);
  t.add_link(2, 3, topo::LinkType::kProviderCustomer);
  t.add_link(1, 3, topo::LinkType::kPeer);
  t.add_link(0, 2, topo::LinkType::kCore);
  return t;
}

struct InjectorFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::Network net{simulator};
  topo::Topology world = two_isd_world();

  InjectorFixture() {
    for (std::size_t i = 0; i < world.as_count(); ++i) net.add_node();
    for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
      const topo::Link& link = world.link(l);
      net.add_channel(sim::NodeId{link.a}, sim::NodeId{link.b},
                      Duration::milliseconds(1));
    }
  }
};

TEST_F(InjectorFixture, ScheduledEventDownAndRestore) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kLinkDown, 1,
                              Duration::seconds(10), Duration::seconds(5)});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(12));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1}));
  EXPECT_FALSE(injector.link_up(1));
  simulator.run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  EXPECT_TRUE(injector.link_up(1));
  EXPECT_EQ(injector.stats().link_down_events, 1u);
  EXPECT_EQ(injector.stats().link_up_events, 1u);
}

TEST_F(InjectorFixture, OverlappingOutagesRestoreCorrectly) {
  FaultPlan plan;
  FaultInjector injector{net, plan, &world};

  // Two overlapping outages on the same link: it must stay down until the
  // *longer* one ends.
  injector.inject_link_down(1, Duration::seconds(10));
  injector.inject_link_down(1, Duration::seconds(30));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1}));
  simulator.run_until(TimePoint::origin() + Duration::seconds(15));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1})) << "second outage still holds the link";
  simulator.run_until(TimePoint::origin() + Duration::seconds(31));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  // Two faults were injected, but the link transitioned back up only once.
  EXPECT_EQ(injector.stats().link_down_events, 2u);
  EXPECT_EQ(injector.stats().link_up_events, 1u);
}

TEST_F(InjectorFixture, HooksFireOnlyOnTransitions) {
  int downs = 0, ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex) { ++downs; };
  hooks.on_link_up = [&](topo::LinkIndex) { ++ups; };
  FaultPlan plan;
  FaultInjector injector{net, plan, &world, hooks};

  injector.inject_link_down(2, Duration::zero());  // permanent
  injector.inject_link_down(2, Duration::seconds(5));
  EXPECT_EQ(downs, 1);
  simulator.run();
  EXPECT_EQ(ups, 0) << "permanent outage still holds the link";
  injector.inject_link_up(2);
  EXPECT_EQ(ups, 1);
  EXPECT_TRUE(net.channel_up(sim::ChannelId{2}));
  injector.inject_link_up(2);  // extra up is a saturating no-op
  EXPECT_EQ(ups, 1);
}

TEST_F(InjectorFixture, NodeOutageSuppressesAndRestores) {
  int node_downs = 0, node_ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_node_down = [&](sim::NodeId) { ++node_downs; };
  hooks.on_node_up = [&](sim::NodeId) { ++node_ups; };
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kNodeDown, 3,
                              Duration::seconds(1), Duration::seconds(5)});
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_FALSE(net.node_up(sim::NodeId{3}));
  simulator.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_TRUE(net.node_up(sim::NodeId{3}));
  EXPECT_EQ(node_downs, 1);
  EXPECT_EQ(node_ups, 1);
  EXPECT_EQ(injector.stats().node_down_events, 1u);
  EXPECT_EQ(injector.stats().node_up_events, 1u);
}

TEST_F(InjectorFixture, IsdPartitionCutsOnlyBoundaryLinks) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kIsdPartition, 2,
                              Duration::seconds(1), Duration::seconds(10)});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(2));
  // Cross-ISD links (0, 3, 4) are cut; intra-ISD links (1, 2) survive.
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0}));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{2}));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{3}));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{4}));
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().link_down_events, 3u);

  simulator.run_until(TimePoint::origin() + Duration::seconds(15));
  for (std::uint32_t c = 0; c < 5; ++c) {
    EXPECT_TRUE(net.channel_up(sim::ChannelId{c})) << "channel " << c;
  }
}

TEST_F(InjectorFixture, FlapProcessRespectsClassAndCounts) {
  FaultPlan plan;
  FlapProcess flap;
  flap.rate_per_hour = 3600.0;  // one per second on average
  flap.downtime_min = flap.downtime_max = Duration::milliseconds(100);
  flap.links = LinkClass::kPeer;  // only link 3 is eligible
  plan.flaps.push_back(flap);
  plan.seed = 99;

  std::vector<topo::LinkIndex> flapped;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex l) { flapped.push_back(l); };
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();

  EXPECT_GT(injector.stats().flaps, 10u);
  EXPECT_EQ(injector.stats().flaps, injector.stats().link_down_events);
  for (const topo::LinkIndex l : flapped) EXPECT_EQ(l, 3u);
  // The run() above returning at all proves flap rescheduling respects the
  // arm() bound (the event queue drained).
}

TEST_F(InjectorFixture, OutOfRangeTargetsAreSkipped) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kLinkDown, 999,
                              Duration::seconds(1), Duration::zero()});
  plan.events.push_back(Event{Event::Kind::kNodeDown, 999,
                              Duration::seconds(1), Duration::zero()});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();
  EXPECT_EQ(injector.stats().events_skipped, 2u);
  EXPECT_EQ(injector.stats().link_down_events, 0u);
  EXPECT_EQ(injector.stats().node_down_events, 0u);
}

TEST_F(InjectorFixture, ArmInstallsPlanLossAndJitter) {
  FaultPlan plan;
  plan.loss_probability = 0.25;
  plan.jitter_max = Duration::milliseconds(2);
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    EXPECT_DOUBLE_EQ(net.loss_probability(sim::ChannelId{c}), 0.25);
    EXPECT_EQ(net.jitter(sim::ChannelId{c}), Duration::milliseconds(2));
  }
}

TEST_F(InjectorFixture, ChannelOfLinkHookMapsParallelLinks) {
  // Model BgpSim's session multiplexing: both parallel core links 0 and 4
  // map onto channel 0. The channel goes down only when *both* links are
  // down, and comes back when the first one recovers.
  FaultInjector::Hooks hooks;
  hooks.channel_of_link = [](topo::LinkIndex l) -> sim::ChannelId {
    return sim::ChannelId{l == 4 ? 0u : l};
  };
  FaultPlan plan;
  FaultInjector injector{net, plan, &world, hooks};

  injector.inject_link_down(0, Duration::zero());
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0}));
  injector.inject_link_down(4, Duration::zero());
  injector.inject_link_up(0);
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0})) << "link 4 still holds the channel";
  injector.inject_link_up(4);
  EXPECT_TRUE(net.channel_up(sim::ChannelId{0}));
}

TEST(FaultInjector, SameSeedSameFlapSequence) {
  // Two independent network+injector stacks with the same plan seed must
  // produce the identical flap sequence (links and times).
  const auto run_one = [](std::uint64_t seed) {
    sim::Simulator simulator;
    sim::Network net{simulator};
    const sim::NodeId a = net.add_node();
    const sim::NodeId b = net.add_node();
    for (int i = 0; i < 8; ++i) net.add_channel(a, b, Duration::milliseconds(1));
    FaultPlan plan;
    FlapProcess flap;
    flap.rate_per_hour = 600.0;
    plan.flaps.push_back(flap);
    plan.seed = seed;
    std::vector<std::pair<std::uint64_t, topo::LinkIndex>> seq;
    FaultInjector::Hooks hooks;
    hooks.on_link_down = [&](topo::LinkIndex l) {
      seq.emplace_back(
          static_cast<std::uint64_t>(
              (simulator.now() - TimePoint::origin()).ns()),
          l);
    };
    FaultInjector injector{net, plan, nullptr, hooks};
    injector.arm(TimePoint::origin() + Duration::minutes(30));
    simulator.run();
    return seq;
  };
  const auto first = run_one(5);
  const auto second = run_one(5);
  const auto other = run_one(6);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace scion::faults
