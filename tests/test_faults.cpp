#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "faults/churn_model.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "simnet/network.hpp"
#include "simnet/simulator.hpp"
#include "topology/topology.hpp"

namespace scion::faults {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- plan text

TEST(ParseDuration, UnitsAndDecimals) {
  Duration d;
  ASSERT_TRUE(parse_duration("250ms", &d));
  EXPECT_EQ(d, Duration::milliseconds(250));
  ASSERT_TRUE(parse_duration("1.5s", &d));
  EXPECT_EQ(d, Duration::milliseconds(1500));
  ASSERT_TRUE(parse_duration("2m", &d));
  EXPECT_EQ(d, Duration::minutes(2));
  ASSERT_TRUE(parse_duration("1h", &d));
  EXPECT_EQ(d, Duration::hours(1));
  ASSERT_TRUE(parse_duration("3d", &d));
  EXPECT_EQ(d, Duration::hours(72));
  ASSERT_TRUE(parse_duration("100ns", &d));
  EXPECT_EQ(d.ns(), 100);
  ASSERT_TRUE(parse_duration("5us", &d));
  EXPECT_EQ(d.ns(), 5000);
}

TEST(ParseDuration, RejectsMalformed) {
  Duration d;
  EXPECT_FALSE(parse_duration("", &d));
  EXPECT_FALSE(parse_duration("10", &d)) << "unit is mandatory";
  EXPECT_FALSE(parse_duration("s", &d));
  EXPECT_FALSE(parse_duration("10 s", &d));
  EXPECT_FALSE(parse_duration("10x", &d));
  EXPECT_FALSE(parse_duration("-5s", &d));
}

TEST(FaultPlan, ParsesFullScenario) {
  std::istringstream in{R"(# a scenario
seed 42
loss 0.01
jitter 5ms
flap rate/h 12 down 30s..2m links provider-customer
link-down 7 at 10s for 1m
link-up 7 at 5m
as-down 3 at 30s for 2m
as-up 3 at 10m
isd-partition 2 at 5m for 1m
)"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.loss_probability, 0.01);
  EXPECT_EQ(plan.jitter_max, Duration::milliseconds(5));

  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.flaps[0].rate_per_hour, 12.0);
  EXPECT_EQ(plan.flaps[0].downtime_min, Duration::seconds(30));
  EXPECT_EQ(plan.flaps[0].downtime_max, Duration::minutes(2));
  EXPECT_EQ(plan.flaps[0].links, LinkClass::kProviderCustomer);

  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, Event::Kind::kLinkDown);
  EXPECT_EQ(plan.events[0].target, 7u);
  EXPECT_EQ(plan.events[0].at, Duration::seconds(10));
  EXPECT_EQ(plan.events[0].duration, Duration::minutes(1));
  EXPECT_EQ(plan.events[1].kind, Event::Kind::kLinkUp);
  EXPECT_EQ(plan.events[2].kind, Event::Kind::kNodeDown);
  EXPECT_EQ(plan.events[3].kind, Event::Kind::kNodeUp);
  EXPECT_EQ(plan.events[4].kind, Event::Kind::kIsdPartition);
  EXPECT_EQ(plan.events[4].target, 2u);
}

TEST(FaultPlan, PermanentEventHasZeroDuration) {
  std::istringstream in{"link-down 1 at 5s\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].duration, Duration::zero());
}

TEST(FaultPlan, SingleValueDowntimeRange) {
  std::istringstream in{"flap rate/h 6 down 45s\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_EQ(plan.flaps[0].downtime_min, Duration::seconds(45));
  EXPECT_EQ(plan.flaps[0].downtime_max, Duration::seconds(45));
}

TEST(FaultPlan, ErrorsCarryLineNumbers) {
  const std::vector<std::string> bad = {
      "frobnicate 1\n",                     // unknown directive
      "link-down\n",                        // missing operands
      "link-down 1 at banana\n",            // bad duration
      "seed\n",                             // missing value
      "loss 1.5x\n",                        // trailing junk
      "flap rate/h 6\n",                    // missing downtime
      "flap rate/h 6 down 1s..2s links x\n" // unknown link class
  };
  for (const std::string& text : bad) {
    std::istringstream in{"# comment line\n" + text};
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(in, &plan, &error)) << text;
    EXPECT_NE(error.find("line 2"), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

TEST(FaultPlan, EmptyInputIsEmptyPlan) {
  std::istringstream in{"# nothing but comments\n\n"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, ParsesChurnAndSessionRestart) {
  std::istringstream in{R"(seed 7
churn steady links peer fraction 0.5 up 10m..2h@1.1 down 30s..10m@1.3 at 0s for 2h
churn burst links provider-customer up 45s..5m@1.2 down 30s..2m@1.3 period 10m len 2m at 15m for 1h
churn ramp at 1h for 1h
session-restart 4 at 8m for 45s
)"};
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &plan, &error)) << error;

  ASSERT_EQ(plan.churn.size(), 3u);
  EXPECT_EQ(plan.churn[0].profile, ChurnSpec::Profile::kSteady);
  EXPECT_EQ(plan.churn[0].links, LinkClass::kPeer);
  EXPECT_DOUBLE_EQ(plan.churn[0].link_fraction, 0.5);
  EXPECT_EQ(plan.churn[0].up_min, Duration::minutes(10));
  EXPECT_EQ(plan.churn[0].up_max, Duration::hours(2));
  EXPECT_DOUBLE_EQ(plan.churn[0].up_alpha, 1.1);
  EXPECT_EQ(plan.churn[0].down_min, Duration::seconds(30));
  EXPECT_EQ(plan.churn[0].down_max, Duration::minutes(10));
  EXPECT_DOUBLE_EQ(plan.churn[0].down_alpha, 1.3);
  EXPECT_EQ(plan.churn[0].start, Duration::zero());
  EXPECT_EQ(plan.churn[0].duration, Duration::hours(2));

  EXPECT_EQ(plan.churn[1].profile, ChurnSpec::Profile::kBurst);
  EXPECT_EQ(plan.churn[1].burst_period, Duration::minutes(10));
  EXPECT_EQ(plan.churn[1].burst_len, Duration::minutes(2));
  EXPECT_EQ(plan.churn[1].start, Duration::minutes(15));

  // Every churn knob except the window has a default.
  EXPECT_EQ(plan.churn[2].profile, ChurnSpec::Profile::kRamp);
  EXPECT_EQ(plan.churn[2].links, LinkClass::kAll);
  EXPECT_DOUBLE_EQ(plan.churn[2].link_fraction, 1.0);

  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, Event::Kind::kSessionRestart);
  EXPECT_EQ(plan.events[0].target, 4u);
  EXPECT_EQ(plan.events[0].at, Duration::minutes(8));
  EXPECT_EQ(plan.events[0].duration, Duration::seconds(45));
}

TEST(FaultPlan, ChurnRejectsMalformedDirectives) {
  const std::vector<std::string> bad = {
      "churn\n",                                     // missing profile
      "churn sideways at 0s for 1h\n",               // unknown profile
      "churn steady\n",                              // missing window
      "churn steady at 0s\n",                        // window needs `for`
      "churn steady at 0s for 0s\n",                 // empty window
      "churn steady fraction 1.5 at 0s for 1h\n",    // fraction out of (0,1]
      "churn steady up 10m..2h at 0s for 1h\n",      // range without @alpha
      "churn burst period 1m len 2m at 0s for 1h\n"  // len > period
  };
  for (const std::string& text : bad) {
    std::istringstream in{"# comment line\n" + text};
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(in, &plan, &error)) << text;
    EXPECT_NE(error.find("line 2"), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

// ------------------------------------------------------------- churn model

/// Aggressive timescales so a one-hour window yields plenty of events.
ChurnSpec quick_churn_spec() {
  ChurnSpec spec;
  spec.link_fraction = 1.0;
  spec.up_min = Duration::minutes(1);
  spec.up_max = Duration::minutes(5);
  spec.down_min = Duration::seconds(30);
  spec.down_max = Duration::minutes(2);
  spec.duration = Duration::hours(1);
  return spec;
}

TEST(ChurnModel, ExpansionIsDeterministicAndSeedSensitive) {
  const std::vector<topo::LinkIndex> links{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<Event> events =
      ChurnModel{quick_churn_spec(), 0, 42}.events(links);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(events == ChurnModel(quick_churn_spec(), 0, 42).events(links));
  // Spec index and plan seed both decorrelate the per-link substreams.
  EXPECT_FALSE(events == ChurnModel(quick_churn_spec(), 1, 42).events(links));
  EXPECT_FALSE(events == ChurnModel(quick_churn_spec(), 0, 43).events(links));
}

TEST(ChurnModel, PerLinkStreamsIgnoreCandidateOrder) {
  const std::vector<topo::LinkIndex> forward{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<topo::LinkIndex> reverse{forward.rbegin(), forward.rend()};
  const ChurnModel model{quick_churn_spec(), 0, 42};
  const auto sorted = [](std::vector<Event> ev) {
    std::sort(ev.begin(), ev.end(), [](const Event& x, const Event& y) {
      return std::make_pair(x.target, x.at.ns()) <
             std::make_pair(y.target, y.at.ns());
    });
    return ev;
  };
  EXPECT_TRUE(sorted(model.events(forward)) == sorted(model.events(reverse)))
      << "each link draws from its own substream";
}

TEST(ChurnModel, EventsStayInsideWindowAndAlwaysRestore) {
  ChurnSpec spec = quick_churn_spec();
  spec.start = Duration::minutes(10);
  spec.duration = Duration::minutes(30);
  const Duration end = spec.start + spec.duration;
  const std::vector<topo::LinkIndex> links{0, 1, 2, 3};
  const std::vector<Event> events = ChurnModel{spec, 0, 1}.events(links);
  ASSERT_FALSE(events.empty());
  for (const Event& ev : events) {
    EXPECT_EQ(ev.kind, Event::Kind::kLinkDown);
    EXPECT_GE(ev.at.ns(), spec.start.ns()) << "first flap waits one up-period";
    EXPECT_LT(ev.at.ns(), end.ns());
    EXPECT_GT(ev.duration.ns(), 0)
        << "zero duration would read as a permanent plan outage";
    EXPECT_LE((ev.at + ev.duration).ns(), end.ns())
        << "downtimes are clipped at the window end";
    EXPECT_LE(ev.duration.ns(), spec.down_max.ns());
  }
}

TEST(ChurnModel, BurstOnsetsConfinedToBurstWindows) {
  ChurnSpec spec = quick_churn_spec();
  spec.profile = ChurnSpec::Profile::kBurst;
  spec.up_min = Duration::seconds(30);
  spec.up_max = Duration::minutes(2);
  spec.burst_period = Duration::minutes(10);
  spec.burst_len = Duration::minutes(2);
  const std::vector<topo::LinkIndex> links{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<Event> events = ChurnModel{spec, 0, 9}.events(links);
  ASSERT_FALSE(events.empty());
  for (const Event& ev : events) {
    const std::int64_t phase =
        (ev.at - spec.start).ns() % spec.burst_period.ns();
    EXPECT_LT(phase, spec.burst_len.ns())
        << "onsets only inside bursts (the outage itself may outlast one)";
  }
}

TEST(ChurnModel, RampShiftsEventsTowardsWindowEnd) {
  ChurnSpec spec = quick_churn_spec();
  spec.profile = ChurnSpec::Profile::kRamp;
  spec.up_min = Duration::seconds(30);
  spec.up_max = Duration::minutes(2);
  std::vector<topo::LinkIndex> links(64);
  for (std::size_t i = 0; i < links.size(); ++i) {
    links[i] = static_cast<topo::LinkIndex>(i);
  }
  const std::int64_t mid_ns = spec.start.ns() + spec.duration.ns() / 2;
  std::size_t first_half = 0, second_half = 0;
  for (const Event& ev : ChurnModel{spec, 0, 3}.events(links)) {
    (ev.at.ns() < mid_ns ? first_half : second_half) += 1;
  }
  EXPECT_GT(second_half, first_half)
      << "thinning ramps the accept probability 0 -> 1 across the window";
}

TEST(ChurnModel, LinkFractionSelectsStableSubset) {
  std::vector<topo::LinkIndex> links(200);
  for (std::size_t i = 0; i < links.size(); ++i) {
    links[i] = static_cast<topo::LinkIndex>(i);
  }
  const auto participants = [&](double fraction) {
    ChurnSpec spec = quick_churn_spec();
    spec.link_fraction = fraction;
    std::set<topo::LinkIndex> out;
    for (const Event& ev : ChurnModel{spec, 0, 11}.events(links)) {
      out.insert(ev.target);
    }
    return out;
  };
  // up_max is far below the window, so every enlisted link flaps at least
  // once: the participant set *is* the fraction draw.
  EXPECT_EQ(participants(1.0).size(), links.size());
  const std::set<topo::LinkIndex> half = participants(0.5);
  EXPECT_GT(half.size(), 0u);
  EXPECT_LT(half.size(), links.size());
}

TEST(FaultPlan, ChurnTextRoundTripIsLossFree) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.loss_probability = 0.02;
  plan.jitter_max = Duration::milliseconds(3);
  FlapProcess flap;
  flap.rate_per_hour = 6.5;
  flap.links = LinkClass::kCore;
  plan.flaps.push_back(flap);
  ChurnSpec steady = quick_churn_spec();
  steady.links = LinkClass::kPeer;
  steady.link_fraction = 0.25;
  plan.churn.push_back(steady);
  ChurnSpec burst = quick_churn_spec();
  burst.profile = ChurnSpec::Profile::kBurst;
  burst.burst_period = Duration::minutes(10);
  burst.burst_len = Duration::seconds(90);
  burst.start = Duration::minutes(15);
  plan.churn.push_back(burst);
  ChurnSpec ramp = quick_churn_spec();
  ramp.profile = ChurnSpec::Profile::kRamp;
  ramp.up_alpha = 1.25;
  plan.churn.push_back(ramp);
  plan.events.push_back(Event{Event::Kind::kSessionRestart, 11,
                              Duration::minutes(40), Duration::seconds(90)});
  plan.events.push_back(Event{Event::Kind::kLinkDown, 7, Duration::seconds(10),
                              Duration::minutes(1)});

  std::istringstream in{plan.to_text()};
  FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(in, &reparsed, &error))
      << error << "\n" << plan.to_text();
  EXPECT_TRUE(reparsed == plan) << "not loss-free:\n" << plan.to_text();
}

// ------------------------------------------------------------- the injector

/// Two ISDs: ASes 0,1 in ISD 1 (core 0), ASes 2,3 in ISD 2 (core 2).
/// Links: 0 = core 0-2 (cross-ISD), 1 = 0->1 (prov-cust), 2 = 2->3
/// (prov-cust), 3 = 1-3 peer (cross-ISD), 4 = parallel core 0-2.
topo::Topology two_isd_world() {
  topo::Topology t;
  t.add_as(topo::IsdAsId::make(1, 10), true);
  t.add_as(topo::IsdAsId::make(1, 11), false);
  t.add_as(topo::IsdAsId::make(2, 20), true);
  t.add_as(topo::IsdAsId::make(2, 21), false);
  t.add_link(0, 2, topo::LinkType::kCore);
  t.add_link(0, 1, topo::LinkType::kProviderCustomer);
  t.add_link(2, 3, topo::LinkType::kProviderCustomer);
  t.add_link(1, 3, topo::LinkType::kPeer);
  t.add_link(0, 2, topo::LinkType::kCore);
  return t;
}

struct InjectorFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::Network net{simulator};
  topo::Topology world = two_isd_world();

  InjectorFixture() {
    for (std::size_t i = 0; i < world.as_count(); ++i) net.add_node();
    for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
      const topo::Link& link = world.link(l);
      net.add_channel(sim::NodeId{link.a}, sim::NodeId{link.b},
                      Duration::milliseconds(1));
    }
  }
};

TEST_F(InjectorFixture, ScheduledEventDownAndRestore) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kLinkDown, 1,
                              Duration::seconds(10), Duration::seconds(5)});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(12));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1}));
  EXPECT_FALSE(injector.link_up(1));
  simulator.run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  EXPECT_TRUE(injector.link_up(1));
  EXPECT_EQ(injector.stats().link_down_events, 1u);
  EXPECT_EQ(injector.stats().link_up_events, 1u);
}

TEST_F(InjectorFixture, OverlappingOutagesRestoreCorrectly) {
  FaultPlan plan;
  FaultInjector injector{net, plan, &world};

  // Two overlapping outages on the same link: it must stay down until the
  // *longer* one ends.
  injector.inject_link_down(1, Duration::seconds(10));
  injector.inject_link_down(1, Duration::seconds(30));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1}));
  simulator.run_until(TimePoint::origin() + Duration::seconds(15));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{1})) << "second outage still holds the link";
  simulator.run_until(TimePoint::origin() + Duration::seconds(31));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  // Two faults were injected, but the link transitioned back up only once.
  EXPECT_EQ(injector.stats().link_down_events, 2u);
  EXPECT_EQ(injector.stats().link_up_events, 1u);
}

TEST_F(InjectorFixture, HooksFireOnlyOnTransitions) {
  int downs = 0, ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex) { ++downs; };
  hooks.on_link_up = [&](topo::LinkIndex) { ++ups; };
  FaultPlan plan;
  FaultInjector injector{net, plan, &world, hooks};

  injector.inject_link_down(2, Duration::zero());  // permanent
  injector.inject_link_down(2, Duration::seconds(5));
  EXPECT_EQ(downs, 1);
  simulator.run();
  EXPECT_EQ(ups, 0) << "permanent outage still holds the link";
  injector.inject_link_up(2);
  EXPECT_EQ(ups, 1);
  EXPECT_TRUE(net.channel_up(sim::ChannelId{2}));
  injector.inject_link_up(2);  // extra up is a saturating no-op
  EXPECT_EQ(ups, 1);
}

TEST_F(InjectorFixture, NodeOutageSuppressesAndRestores) {
  int node_downs = 0, node_ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_node_down = [&](sim::NodeId) { ++node_downs; };
  hooks.on_node_up = [&](sim::NodeId) { ++node_ups; };
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kNodeDown, 3,
                              Duration::seconds(1), Duration::seconds(5)});
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_FALSE(net.node_up(sim::NodeId{3}));
  simulator.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_TRUE(net.node_up(sim::NodeId{3}));
  EXPECT_EQ(node_downs, 1);
  EXPECT_EQ(node_ups, 1);
  EXPECT_EQ(injector.stats().node_down_events, 1u);
  EXPECT_EQ(injector.stats().node_up_events, 1u);
}

TEST_F(InjectorFixture, IsdPartitionCutsOnlyBoundaryLinks) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kIsdPartition, 2,
                              Duration::seconds(1), Duration::seconds(10)});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));

  simulator.run_until(TimePoint::origin() + Duration::seconds(2));
  // Cross-ISD links (0, 3, 4) are cut; intra-ISD links (1, 2) survive.
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0}));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{1}));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{2}));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{3}));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{4}));
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().link_down_events, 3u);

  simulator.run_until(TimePoint::origin() + Duration::seconds(15));
  for (std::uint32_t c = 0; c < 5; ++c) {
    EXPECT_TRUE(net.channel_up(sim::ChannelId{c})) << "channel " << c;
  }
}

TEST_F(InjectorFixture, FlapProcessRespectsClassAndCounts) {
  FaultPlan plan;
  FlapProcess flap;
  flap.rate_per_hour = 3600.0;  // one per second on average
  flap.downtime_min = flap.downtime_max = Duration::milliseconds(100);
  flap.links = LinkClass::kPeer;  // only link 3 is eligible
  plan.flaps.push_back(flap);
  plan.seed = 99;

  std::vector<topo::LinkIndex> flapped;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex l) { flapped.push_back(l); };
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();

  EXPECT_GT(injector.stats().flaps, 10u);
  EXPECT_EQ(injector.stats().flaps, injector.stats().link_down_events);
  for (const topo::LinkIndex l : flapped) EXPECT_EQ(l, 3u);
  // The run() above returning at all proves flap rescheduling respects the
  // arm() bound (the event queue drained).
}

TEST_F(InjectorFixture, OutOfRangeTargetsAreSkipped) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kLinkDown, 999,
                              Duration::seconds(1), Duration::zero()});
  plan.events.push_back(Event{Event::Kind::kNodeDown, 999,
                              Duration::seconds(1), Duration::zero()});
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();
  EXPECT_EQ(injector.stats().events_skipped, 2u);
  EXPECT_EQ(injector.stats().link_down_events, 0u);
  EXPECT_EQ(injector.stats().node_down_events, 0u);
}

TEST_F(InjectorFixture, ArmInstallsPlanLossAndJitter) {
  FaultPlan plan;
  plan.loss_probability = 0.25;
  plan.jitter_max = Duration::milliseconds(2);
  FaultInjector injector{net, plan, &world};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    EXPECT_DOUBLE_EQ(net.loss_probability(sim::ChannelId{c}), 0.25);
    EXPECT_EQ(net.jitter(sim::ChannelId{c}), Duration::milliseconds(2));
  }
}

TEST_F(InjectorFixture, ChannelOfLinkHookMapsParallelLinks) {
  // Model BgpSim's session multiplexing: both parallel core links 0 and 4
  // map onto channel 0. The channel goes down only when *both* links are
  // down, and comes back when the first one recovers.
  FaultInjector::Hooks hooks;
  hooks.channel_of_link = [](topo::LinkIndex l) -> sim::ChannelId {
    return sim::ChannelId{l == 4 ? 0u : l};
  };
  FaultPlan plan;
  FaultInjector injector{net, plan, &world, hooks};

  injector.inject_link_down(0, Duration::zero());
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0}));
  injector.inject_link_down(4, Duration::zero());
  injector.inject_link_up(0);
  EXPECT_FALSE(net.channel_up(sim::ChannelId{0})) << "link 4 still holds the channel";
  injector.inject_link_up(4);
  EXPECT_TRUE(net.channel_up(sim::ChannelId{0}));
}

TEST_F(InjectorFixture, ChurnSpecDrivesRefcountedFlaps) {
  FaultPlan plan;
  plan.seed = 21;
  ChurnSpec spec = quick_churn_spec();
  spec.duration = Duration::minutes(30);
  plan.churn.push_back(spec);

  int downs = 0, ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex) { ++downs; };
  hooks.on_link_up = [&](topo::LinkIndex) { ++ups; };
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + spec.duration);
  simulator.run();

  EXPECT_GT(injector.stats().churn_events, 0u);
  EXPECT_EQ(injector.stats().link_down_events, injector.stats().churn_events);
  EXPECT_EQ(downs, ups) << "every churn outage restores inside the window";
  for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
    EXPECT_TRUE(injector.link_up(l)) << "link " << l;
    EXPECT_TRUE(net.channel_up(sim::ChannelId{l})) << "channel " << l;
  }
}

TEST_F(InjectorFixture, ZeroDurationFlapStillBouncesTheLink) {
  // Regression: a zero downtime draw used to hit inject_link_down's
  // "permanent outage" semantics and wedge the link down forever. A flap's
  // zero draw must instead be a same-instant down->up bounce with each hook
  // firing exactly once.
  FaultPlan plan;
  plan.seed = 4;
  FlapProcess flap;
  flap.rate_per_hour = 3600.0;
  flap.downtime_min = flap.downtime_max = Duration::zero();
  plan.flaps.push_back(flap);

  int downs = 0, ups = 0;
  FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex) { ++downs; };
  hooks.on_link_up = [&](topo::LinkIndex) { ++ups; };
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(2));
  simulator.run();

  EXPECT_GT(injector.stats().flaps, 10u);
  EXPECT_EQ(static_cast<std::uint64_t>(downs), injector.stats().flaps)
      << "a down->up->down burst fires each true transition exactly once";
  EXPECT_EQ(downs, ups);
  EXPECT_EQ(injector.stats().link_down_events, injector.stats().link_up_events);
  for (topo::LinkIndex l = 0; l < world.link_count(); ++l) {
    EXPECT_TRUE(injector.link_up(l)) << "link " << l;
    EXPECT_TRUE(net.channel_up(sim::ChannelId{l})) << "channel " << l;
  }
}

TEST_F(InjectorFixture, SessionRestartDispatchesWithTransportUp) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kSessionRestart, 3,
                              Duration::seconds(5), Duration::seconds(45)});
  std::vector<std::pair<topo::LinkIndex, std::int64_t>> restarts;
  FaultInjector::Hooks hooks;
  hooks.on_session_restart = [&](topo::LinkIndex l, Duration d) {
    EXPECT_TRUE(net.channel_up(sim::ChannelId{l}))
        << "the transport stays up across a session restart";
    restarts.emplace_back(l, d.ns());
  };
  FaultInjector injector{net, plan, &world, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();

  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_EQ(restarts[0].first, 3u);
  EXPECT_EQ(restarts[0].second, Duration::seconds(45).ns());
  EXPECT_EQ(injector.stats().session_restarts, 1u);
  EXPECT_EQ(injector.stats().events_skipped, 0u);
  EXPECT_EQ(injector.stats().link_down_events, 0u);
}

TEST_F(InjectorFixture, SessionRestartSkippedWithoutHookOrTarget) {
  FaultPlan plan;
  plan.events.push_back(Event{Event::Kind::kSessionRestart, 3,
                              Duration::seconds(1), Duration::seconds(45)});
  plan.events.push_back(Event{Event::Kind::kSessionRestart, 999,
                              Duration::seconds(1), Duration::seconds(45)});
  FaultInjector injector{net, plan, &world};  // no on_session_restart hook
  injector.arm(TimePoint::origin() + Duration::minutes(1));
  simulator.run();
  EXPECT_EQ(injector.stats().session_restarts, 0u);
  EXPECT_EQ(injector.stats().events_skipped, 2u);
}

TEST(FaultInjector, SameSeedSameFlapSequence) {
  // Two independent network+injector stacks with the same plan seed must
  // produce the identical flap sequence (links and times).
  const auto run_one = [](std::uint64_t seed) {
    sim::Simulator simulator;
    sim::Network net{simulator};
    const sim::NodeId a = net.add_node();
    const sim::NodeId b = net.add_node();
    for (int i = 0; i < 8; ++i) net.add_channel(a, b, Duration::milliseconds(1));
    FaultPlan plan;
    FlapProcess flap;
    flap.rate_per_hour = 600.0;
    plan.flaps.push_back(flap);
    plan.seed = seed;
    std::vector<std::pair<std::uint64_t, topo::LinkIndex>> seq;
    FaultInjector::Hooks hooks;
    hooks.on_link_down = [&](topo::LinkIndex l) {
      seq.emplace_back(
          static_cast<std::uint64_t>(
              (simulator.now() - TimePoint::origin()).ns()),
          l);
    };
    FaultInjector injector{net, plan, nullptr, hooks};
    injector.arm(TimePoint::origin() + Duration::minutes(30));
    simulator.run();
    return seq;
  };
  const auto first = run_one(5);
  const auto second = run_one(5);
  const auto other = run_one(6);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace scion::faults
