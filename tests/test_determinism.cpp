// Same-seed reproducibility gate.
//
// Two independent runs of the same configuration must produce byte-identical
// serialized output: resolved path sets, the overhead ledger, and the BGP
// monitor byte counts. This is the end-to-end check behind the simlint
// rules — any wall-clock read, unseeded RNG, or hash-order-dependent
// aggregation in the pipeline shows up here as a diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bgp/bgp_sim.hpp"
#include "core/grid_search.hpp"
#include "experiments/churn_experiment.hpp"
#include "experiments/quality_experiment.hpp"
#include "experiments/scale.hpp"
#include "faults/fault_plan.hpp"
#include "obs/event_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"

namespace scion {
namespace {

using util::Duration;

topo::Topology make_world() {
  topo::MultiIsdConfig config;
  config.n_isds = 2;
  config.cores_per_isd = 2;
  config.ases_per_isd = 8;
  config.seed = 77;
  return topo::generate_multi_isd(config);
}

// --- SCION control plane -----------------------------------------------------

svc::ControlPlaneSimConfig scion_config() {
  svc::ControlPlaneSimConfig config;
  config.sim_duration = Duration::minutes(30);
  config.lookups_per_second = 0.5;
  config.link_failures_per_hour = 4.0;
  config.registration_interval = Duration::minutes(15);
  config.seed = 5;
  return config;
}

/// Serializes everything observable about a control-plane run: every
/// resolved path set between every ordered leaf pair, plus the full
/// overhead ledger.
std::string scion_transcript(const topo::Topology& world) {
  svc::ControlPlaneSim sim{world, scion_config()};
  sim.run();

  std::ostringstream out;
  const auto& leaves = sim.leaves();
  for (const topo::AsIndex src : leaves) {
    for (const topo::AsIndex dst : leaves) {
      if (src == dst) continue;
      out << "pair " << src << "->" << dst << "\n";
      for (const auto& path : sim.resolve_paths(src, dst)) {
        out << "  " << svc::to_string(path.kind) << " ases";
        for (const topo::AsIndex as : path.ases) out << ' ' << as;
        out << " links";
        for (const topo::LinkIndex l : path.links) out << ' ' << l;
        out << "\n";
      }
    }
  }
  for (const auto& row : sim.ledger().rows()) {
    out << row.component << ' ' << row.messages << ' ' << row.operations
        << ' ' << row.bytes.value() << ' ' << row.messages_by_scope[0] << ' '
        << row.messages_by_scope[1] << ' ' << row.messages_by_scope[2]
        << "\n";
  }
  out << "lookups " << sim.lookups_performed() << " resolved "
      << sim.paths_resolved() << "\n";
  return std::move(out).str();
}

TEST(Determinism, ControlPlaneRunsAreByteIdentical) {
  const topo::Topology world = make_world();
  const std::string first = scion_transcript(world);
  const std::string second = scion_transcript(world);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Determinism, TopologyGenerationIsSeedDeterministic) {
  const topo::Topology a = make_world();
  const topo::Topology b = make_world();
  ASSERT_EQ(a.as_count(), b.as_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (topo::LinkIndex l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
    EXPECT_EQ(a.link(l).type, b.link(l).type);
  }
}

// --- BGP ---------------------------------------------------------------------

bgp::BgpSimConfig bgp_config() {
  bgp::BgpSimConfig config;
  config.convergence_window = Duration::minutes(10);
  config.churn_window = Duration::minutes(30);
  config.flaps_per_adjacency_per_day = 4.0;
  config.seed = 9;
  return config;
}

/// Serializes a BGP run: update totals, the monitor's per-origin account,
/// the extrapolated monthly byte counts, and the multipath link-path sets
/// from the monitor towards every origin.
std::string bgp_transcript(const topo::Topology& world) {
  bgp::BgpSim sim{world, bgp_config()};
  const topo::AsIndex monitor = 0;
  sim.add_monitor(monitor);
  sim.run();

  std::ostringstream out;
  out << "updates " << sim.total_updates_sent() << "\n";
  const bgp::MonitorAccount& account = sim.monitor(monitor);
  out << "raw " << account.raw_messages << ' ' << account.raw_bytes << "\n";
  for (const auto& [origin, per] : account.per_origin) {
    out << "origin " << origin << ' ' << per.announce_events << ' '
        << per.withdraw_events << ' ' << per.path_len_sum << ' '
        << per.fixed_share_sum << "\n";
  }
  const std::vector<std::uint32_t> prefix_counts(world.as_count(), 3);
  // hexfloat: bit-exact comparison, not printf rounding.
  out << std::hexfloat << "bgp " << sim.monthly_bgp_bytes(monitor, prefix_counts)
      << " bgpsec " << sim.monthly_bgpsec_bytes(monitor, prefix_counts) << "\n";
  for (const bgp::Prefix origin : sim.origins()) {
    if (origin == monitor) continue;
    out << "paths to " << origin << "\n";
    for (const auto& path : sim.bgp_link_paths(monitor, origin)) {
      out << " ";
      for (const topo::LinkIndex l : path) out << ' ' << l;
      out << "\n";
    }
  }
  return std::move(out).str();
}

TEST(Determinism, BgpRunsAreByteIdentical) {
  const topo::Topology world = make_world();
  const std::string first = bgp_transcript(world);
  const std::string second = bgp_transcript(world);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- fault injection ---------------------------------------------------------

/// A deliberately busy scenario: stochastic flaps, message loss, latency
/// jitter, and scheduled one-shot events all at once. Every stochastic
/// draw flows through the plan-seeded RNG, so two runs must agree on every
/// fault, every lost message, and every jittered delivery.
faults::FaultPlan stochastic_plan() {
  faults::FaultPlan plan;
  plan.seed = 31;
  plan.loss_probability = 0.02;
  plan.jitter_max = Duration::milliseconds(3);
  faults::FlapProcess flap;
  flap.rate_per_hour = 40.0;
  flap.downtime_min = Duration::seconds(20);
  flap.downtime_max = Duration::minutes(2);
  plan.flaps.push_back(flap);
  plan.events.push_back(faults::Event{faults::Event::Kind::kLinkDown, 2,
                                      Duration::minutes(2),
                                      Duration::minutes(1)});
  plan.events.push_back(faults::Event{faults::Event::Kind::kNodeDown, 5,
                                      Duration::minutes(5),
                                      Duration::minutes(2)});
  plan.events.push_back(faults::Event{faults::Event::Kind::kIsdPartition, 2,
                                      Duration::minutes(8),
                                      Duration::minutes(1)});
  return plan;
}

/// Control-plane transcript under the stochastic scenario, widened with the
/// fault/drop accounting so a divergence anywhere in the injector, the
/// network failure surface, or the revocation reaction shows up.
std::string faulted_transcript(const topo::Topology& world) {
  svc::ControlPlaneSimConfig config = scion_config();
  config.link_failures_per_hour = 0.0;  // churn comes from the plan
  config.faults = stochastic_plan();
  svc::ControlPlaneSim sim{world, config};
  sim.run();

  std::ostringstream out;
  for (const auto& row : sim.ledger().rows()) {
    out << row.component << ' ' << row.messages << ' ' << row.bytes.value()
        << "\n";
  }
  const faults::FaultInjectorStats& fs = sim.injector().stats();
  out << "faults " << fs.link_down_events << ' ' << fs.link_up_events << ' '
      << fs.node_down_events << ' ' << fs.node_up_events << ' ' << fs.flaps
      << ' ' << fs.partitions << ' ' << fs.events_skipped << "\n";
  const sim::DropStats& drops = sim.network().drop_stats();
  out << "drops " << drops.link_down << ' ' << drops.loss << ' '
      << drops.node_down << ' ' << drops.in_flight << "\n";
  return std::move(out).str();
}

TEST(Determinism, FaultedRunsAreByteIdentical) {
  const topo::Topology world = make_world();
  const std::string first = faulted_transcript(world);
  const std::string second = faulted_transcript(world);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The scenario actually did something (the comparison is not vacuous).
  EXPECT_NE(first.find("faults "), std::string::npos);
  EXPECT_EQ(first.find("faults 0 0 0 0 0 0"), std::string::npos);
}

// Fault telemetry is write-only like all other categories: tracing the
// fault stream must not perturb the injected fault sequence. (Under
// SCION_MPR_OBS=OFF the macros compile out and this test proves the
// stripped build takes the same trajectory.)
TEST(Determinism, FaultTelemetryOnOffRunsAreByteIdentical) {
  const topo::Topology world = make_world();

  obs::set_trace_sink(nullptr);
  obs::MetricsRegistry::global().reset();
  const std::string plain = faulted_transcript(world);

  std::ostringstream trace;
  obs::TraceSink sink{trace};
  sink.enable_all();
  obs::set_trace_sink(&sink);
  obs::MetricsRegistry::global().reset();
  const std::string traced = faulted_transcript(world);
  obs::set_trace_sink(nullptr);

  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, traced);
#ifdef SCION_MPR_OBS_ENABLED
  EXPECT_GT(sink.events_written(), 0u);
  // The fault category specifically was exercised.
  EXPECT_NE(trace.str().find("\"cat\":\"fault\""), std::string::npos);
#endif
  obs::MetricsRegistry::global().reset();
}

// --- telemetry ---------------------------------------------------------------

// The telemetry layer is write-only: recording metrics, streaming traces,
// and profiling phases must not change a single byte of simulation output.
// This is the ON/OFF half of the proof; the compiled-out half is the same
// test run under SCION_MPR_OBS=OFF (where the macros expand to nothing).
TEST(Determinism, TelemetryOnOffRunsAreByteIdentical) {
  const topo::Topology world = make_world();

  // Telemetry off: no sink installed, registry idle.
  obs::set_trace_sink(nullptr);
  obs::MetricsRegistry::global().reset();
  obs::PhaseProfiler::global().reset();
  const std::string plain = scion_transcript(world) + bgp_transcript(world);

  // Telemetry fully on: every category traced, metrics recording.
  std::ostringstream trace;
  obs::TraceSink sink{trace};
  sink.enable_all();
  obs::set_trace_sink(&sink);
  obs::MetricsRegistry::global().reset();
  const std::string traced = scion_transcript(world) + bgp_transcript(world);
  obs::set_trace_sink(nullptr);

  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, traced);
#ifdef SCION_MPR_OBS_ENABLED
  // The instrumented run actually recorded telemetry (the comparison above
  // is not vacuous).
  EXPECT_GT(sink.events_written(), 0u);
  EXPECT_FALSE(obs::MetricsRegistry::global().counters().empty());
#endif
  obs::MetricsRegistry::global().reset();
}

// Event-level cost attribution is write-only like the rest of the telemetry
// layer: profiling every event (counts, allocations, queue depth, handler
// wall time) must not change a single byte of simulation output. This is
// the runtime ON/OFF half; the compiled-out half is the same test under
// SCION_MPR_OBS=OFF, where the record path does not exist.
TEST(Determinism, EventProfilingOnOffRunsAreByteIdentical) {
  const topo::Topology world = make_world();

  obs::EventProfiler::global().set_enabled(false);
  obs::EventProfiler::global().reset_counters();
  const std::string off = scion_transcript(world) + bgp_transcript(world);
  EXPECT_EQ(obs::EventProfiler::global().total_events(), 0u);

  obs::EventProfiler::global().set_enabled(true);
  obs::EventProfiler::global().reset_counters();
  const std::string on = scion_transcript(world) + bgp_transcript(world);

  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);
#ifdef SCION_MPR_OBS_ENABLED
  // The profiled run actually attributed events (not a vacuous comparison),
  // and a second profiled run reproduces the deterministic counters exactly.
  EXPECT_GT(obs::EventProfiler::global().total_events(), 0u);
  EXPECT_GT(obs::EventProfiler::global().attributed_events(), 0u);
  const std::uint64_t total = obs::EventProfiler::global().total_events();
  const std::uint64_t attributed =
      obs::EventProfiler::global().attributed_events();
  const auto timeline = obs::EventProfiler::global().queue_timeline();
  obs::EventProfiler::global().reset_counters();
  const std::string again = scion_transcript(world) + bgp_transcript(world);
  EXPECT_EQ(again, on);
  EXPECT_EQ(obs::EventProfiler::global().total_events(), total);
  EXPECT_EQ(obs::EventProfiler::global().attributed_events(), attributed);
  const auto timeline_again = obs::EventProfiler::global().queue_timeline();
  ASSERT_EQ(timeline_again.size(), timeline.size());
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline_again[i].t_ns, timeline[i].t_ns);
    EXPECT_EQ(timeline_again[i].depth, timeline[i].depth);
  }
#endif
  obs::EventProfiler::global().reset_counters();
  obs::MetricsRegistry::global().reset();
}

// Tracing must also be insensitive to the *filter*: dropping events cannot
// change what the simulation computes.
// --- parallel execution ------------------------------------------------------

exp::CoreNetworks small_core_networks() {
  exp::Scale scale;
  scale.internet_ases = 120;
  scale.n_tier1 = 4;
  scale.core_ases = 16;
  scale.core_isds = 4;
  scale.seed = 7;
  const topo::Topology internet = exp::build_internet(scale);
  return exp::build_core_networks(scale, internet);
}

/// Full byte-level transcript of a quality-experiment run at the given job
/// count: the raw result, the rendered Fig. 6b table, the metrics registry
/// JSON, and the complete trace stream.
std::string quality_transcript(const exp::CoreNetworks& nets,
                               std::size_t jobs) {
  obs::MetricsRegistry::global().reset();
  std::ostringstream trace;
  obs::TraceSink sink{trace};
  sink.enable_all();
  obs::set_trace_sink(&sink);

  exp::QualityConfig config;
  config.sampled_pairs = 25;
  config.sim_duration = Duration::minutes(40);
  config.seed = 3;
  config.jobs = jobs;
  const exp::QualityResult result =
      exp::run_quality_experiment(nets.bgp_view, nets.scion_view, config);
  obs::set_trace_sink(nullptr);

  std::ostringstream out;
  for (const auto& [s, t] : result.pairs) out << s << '-' << t << ' ';
  out << "\nopt";
  for (const int v : result.optimum) out << ' ' << v;
  out << '\n';
  for (const auto& series : result.series) {
    out << series.name << ':';
    for (const int v : series.values) out << ' ' << v;
    // hexfloat: bit-exact comparison, not printf rounding.
    out << " frac=" << std::hexfloat << result.fraction_of_optimal(series)
        << '\n';
  }
  out << exp::capacity_table(result).to_text();
  out << obs::MetricsRegistry::global().to_json() << '\n';
  out << trace.str();
  return std::move(out).str();
}

// The tentpole contract of the exec layer: the figure-producing experiment
// emits byte-identical results, metrics, and traces no matter how many
// workers ran it.
TEST(Determinism, QualityExperimentIsByteIdenticalAcrossJobCounts) {
  const exp::CoreNetworks nets = small_core_networks();
  const std::string serial = quality_transcript(nets, 1);
  ASSERT_FALSE(serial.empty());
  // Every series produced a value per sampled pair.
  EXPECT_NE(serial.find("SCION Diversity"), std::string::npos);
  EXPECT_EQ(quality_transcript(nets, 8), serial);
  obs::MetricsRegistry::global().reset();
}

std::string grid_search_transcript(const topo::Topology& scion_view,
                                   std::size_t jobs) {
  ctrl::GridSearchConfig config;
  config.sim_duration = Duration::minutes(20);
  config.sampled_pairs = 12;
  config.coarse_alpha = {0.5, 4.0};
  config.coarse_beta = {1.0, 3.0};
  config.coarse_gamma = {1.0, 2.0};
  config.seed = 11;
  config.jobs = jobs;
  const ctrl::GridSearchResult result =
      ctrl::grid_search_diversity_params(scion_view, config);

  std::ostringstream out;
  out << std::hexfloat;
  out << "baseline " << result.baseline_bytes.value() << '\n';
  for (const ctrl::EvaluatedPoint& p : result.evaluated) {
    out << p.params.alpha << ' ' << p.params.beta << ' ' << p.params.gamma
        << " q=" << p.quality << " o=" << p.overhead << " obj=" << p.objective
        << '\n';
  }
  out << "best " << result.best.params.alpha << ' ' << result.best.params.beta
      << ' ' << result.best.params.gamma << ' ' << result.best.objective
      << '\n';
  return std::move(out).str();
}

TEST(Determinism, GridSearchIsByteIdenticalAcrossJobCounts) {
  const exp::CoreNetworks nets = small_core_networks();
  const std::string serial = grid_search_transcript(nets.scion_view, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(grid_search_transcript(nets.scion_view, 8), serial);
}

/// Full byte-level transcript of a churn-experiment run at the given job
/// count: every series' counters, the rendered table, the metrics registry
/// JSON, and the complete trace stream. Five series run concurrently here,
/// so any shared mutable state or cross-series RNG coupling shows up as a
/// jobs-dependent diff.
std::string churn_transcript(const exp::CoreNetworks& nets, std::size_t jobs) {
  obs::MetricsRegistry::global().reset();
  std::ostringstream trace;
  obs::TraceSink sink{trace};
  sink.enable_all();
  obs::set_trace_sink(&sink);

  exp::ChurnConfig config;
  config.sampled_pairs = 12;
  config.sim_duration = Duration::minutes(20);
  config.warmup = Duration::minutes(10);
  config.probe_interval = Duration::seconds(30);
  config.seed = 13;
  config.jobs = jobs;
  const exp::ChurnResult result =
      exp::run_churn_experiment(nets.bgp_view, nets.scion_view, config);
  obs::set_trace_sink(nullptr);

  std::ostringstream out;
  for (const auto& [s, t] : result.pairs) out << s << '-' << t << ' ';
  out << '\n' << std::hexfloat;
  for (const exp::ChurnSeries& s : result.series) {
    out << s.name << " conv=" << s.convergence_seconds.summary()
        << " outages=" << s.outages << " rec=" << s.recovered << '/'
        << s.unrecovered << " avail=" << s.availability
        << " amp=" << s.amplification << " msgs=" << s.control_messages << '/'
        << s.control_messages_clean << " sup=" << s.routes_suppressed << '/'
        << s.routes_reused << " stale=" << s.stale_retained << '/'
        << s.stale_expired << " quar=" << s.pcbs_quarantined << '/'
        << s.pcbs_revalidated << " reorig=" << s.reoriginations
        << " churn=" << s.fault_stats.churn_events
        << " restarts=" << s.fault_stats.session_restarts << '\n';
  }
  out << exp::churn_table(result).to_text();
  out << obs::MetricsRegistry::global().to_json() << '\n';
  out << trace.str();
  return std::move(out).str();
}

// The churn experiment inherits the exec-layer contract: byte-identical
// results, metrics, and traces no matter how many workers ran the series.
TEST(Determinism, ChurnExperimentIsByteIdenticalAcrossJobCounts) {
  const exp::CoreNetworks nets = small_core_networks();
  const std::string serial = churn_transcript(nets, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("BGP Damping"), std::string::npos);
  EXPECT_NE(serial.find("SCION Robust"), std::string::npos);
  EXPECT_EQ(churn_transcript(nets, 8), serial);
  obs::MetricsRegistry::global().reset();
}

// Tracing must also be insensitive to the *filter*: dropping events cannot
// change what the simulation computes.
TEST(Determinism, TraceFilterDoesNotPerturbSimulation) {
  const topo::Topology world = make_world();

  std::ostringstream all_trace;
  obs::TraceSink all_sink{all_trace};
  all_sink.enable_all();
  obs::set_trace_sink(&all_sink);
  obs::MetricsRegistry::global().reset();
  const std::string with_all = bgp_transcript(world);

  std::ostringstream none_trace;
  obs::TraceSink none_sink{none_trace};
  none_sink.disable_all();
  obs::set_trace_sink(&none_sink);
  obs::MetricsRegistry::global().reset();
  const std::string with_none = bgp_transcript(world);
  obs::set_trace_sink(nullptr);

  EXPECT_EQ(with_all, with_none);
  EXPECT_EQ(none_sink.events_written(), 0u);
  obs::MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace scion
