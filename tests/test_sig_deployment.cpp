#include <gtest/gtest.h>

#include "scion/deployment.hpp"
#include "scion/sig.hpp"
#include "topology/generator.hpp"

namespace scion::svc {
namespace {

using util::Duration;

// --- IpPrefix / AsMapTable -----------------------------------------------------

TEST(IpPrefix, ParseAndContain) {
  const auto p = IpPrefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length, 16);
  EXPECT_TRUE(p->contains(IpPrefix::parse("10.1.200.7")->address));
  EXPECT_FALSE(p->contains(IpPrefix::parse("10.2.0.1")->address));
}

TEST(IpPrefix, ParseHostAndDefault) {
  const auto host = IpPrefix::parse("192.168.1.1");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->length, 32);
  const auto all = IpPrefix::parse("0.0.0.0/0");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->contains(0xDEADBEEF));
}

TEST(IpPrefix, ParseRejectsGarbage) {
  EXPECT_FALSE(IpPrefix::parse("").has_value());
  EXPECT_FALSE(IpPrefix::parse("300.0.0.1").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/40").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/8 ").has_value());
}

TEST(IpToString, RoundTrips) {
  EXPECT_EQ(ip_to_string(IpPrefix::parse("172.16.254.3")->address),
            "172.16.254.3");
}

TEST(AsMapTable, LongestPrefixMatchWins) {
  AsMapTable table;
  table.add(*IpPrefix::parse("10.0.0.0/8"), topo::IsdAsId::make(1, 1));
  table.add(*IpPrefix::parse("10.1.0.0/16"), topo::IsdAsId::make(1, 2));
  EXPECT_EQ(table.lookup(IpPrefix::parse("10.1.2.3")->address),
            topo::IsdAsId::make(1, 2));
  EXPECT_EQ(table.lookup(IpPrefix::parse("10.9.2.3")->address),
            topo::IsdAsId::make(1, 1));
  EXPECT_EQ(table.lookup(IpPrefix::parse("11.0.0.1")->address), std::nullopt);
}

// --- SIG --------------------------------------------------------------------------

struct SigFixture : ::testing::Test {
  topo::Topology world;
  std::unique_ptr<ControlPlaneSim> sim;
  topo::AsIndex src_leaf{topo::kInvalidAsIndex};
  topo::AsIndex dst_leaf{topo::kInvalidAsIndex};

  void SetUp() override {
    topo::MultiIsdConfig config;
    config.n_isds = 2;
    config.cores_per_isd = 2;
    config.ases_per_isd = 8;
    config.seed = 33;
    world = topo::generate_multi_isd(config);
    ControlPlaneSimConfig c;
    c.sim_duration = Duration::minutes(25);
    c.lookups_per_second = 0;
    c.link_failures_per_hour = 0;
    sim = std::make_unique<ControlPlaneSim>(world, c);
    sim->run();
    for (const topo::AsIndex leaf : sim->leaves()) {
      if (world.as_id(leaf).isd() == topo::IsdId{1} && src_leaf == topo::kInvalidAsIndex) {
        src_leaf = leaf;
      }
      if (world.as_id(leaf).isd() == topo::IsdId{2}) dst_leaf = leaf;
    }
    ASSERT_NE(src_leaf, topo::kInvalidAsIndex);
    ASSERT_NE(dst_leaf, topo::kInvalidAsIndex);
  }
};

TEST_F(SigFixture, EncapsulatesAndDelivers) {
  Sig sig{*sim, src_leaf};
  sig.asmap().add(*IpPrefix::parse("10.2.0.0/16"), world.as_id(dst_leaf));

  const auto result =
      sig.send_ip_packet(IpPrefix::parse("10.2.0.5")->address, util::Bytes{1200});
  EXPECT_TRUE(result.delivered) << result.error;
  EXPECT_EQ(result.remote_as, dst_leaf);
  EXPECT_GT(result.wire_bytes, util::Bytes{1200})
      << "SCION header + SIG framing added";
  EXPECT_EQ(sig.stats().packets_delivered, 1u);
  EXPECT_EQ(sig.stats().path_resolutions, 1u);
}

TEST_F(SigFixture, PathCacheAvoidsRepeatedResolution) {
  Sig sig{*sim, src_leaf};
  sig.asmap().add(*IpPrefix::parse("10.2.0.0/16"), world.as_id(dst_leaf));
  for (int i = 0; i < 10; ++i) {
    sig.send_ip_packet(IpPrefix::parse("10.2.0.5")->address, util::Bytes{100});
  }
  EXPECT_EQ(sig.stats().path_resolutions, 1u);
  EXPECT_EQ(sig.stats().packets_delivered, 10u);
}

TEST_F(SigFixture, UnmappedDestinationDropped) {
  Sig sig{*sim, src_leaf};
  const auto result =
      sig.send_ip_packet(IpPrefix::parse("8.8.8.8")->address, util::Bytes{100});
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(sig.stats().packets_dropped_no_mapping, 1u);
}

TEST_F(SigFixture, LocalDeliveryNeedsNoEncap) {
  Sig sig{*sim, src_leaf};
  sig.asmap().add(*IpPrefix::parse("10.1.0.0/16"), world.as_id(src_leaf));
  const auto result =
      sig.send_ip_packet(IpPrefix::parse("10.1.0.9")->address, util::Bytes{500});
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.wire_bytes, util::Bytes{500});
}

TEST_F(SigFixture, FailsOverOnLinkFailure) {
  Sig sig{*sim, src_leaf};
  sig.asmap().add(*IpPrefix::parse("10.2.0.0/16"), world.as_id(dst_leaf));
  const auto dst_ip = IpPrefix::parse("10.2.0.5")->address;
  const auto first = sig.send_ip_packet(dst_ip, util::Bytes{100});
  ASSERT_TRUE(first.delivered) << first.error;

  // Take down every link of the active path's first hop alternative by
  // failing links until the packet reroutes or drops; the SIG must either
  // fail over (delivered via another path) or report no path.
  std::size_t failovers_or_drops = 0;
  for (int round = 0; round < 6; ++round) {
    // Fail the first link of the path the SIG would use now.
    const auto probe = sig.send_ip_packet(dst_ip, util::Bytes{100});
    if (!probe.delivered) {
      ++failovers_or_drops;
      break;
    }
    sim->fail_link(/*link=*/[&] {
      // fail the first currently-up link towards dst: use the active path
      // by sending and checking which link dies is complex; just fail a
      // provider link of dst.
      for (topo::LinkIndex l : world.provider_links(dst_leaf)) {
        if (sim->link_up(l)) return l;
      }
      return topo::kInvalidLinkIndex;
    }(), Duration::hours(1));
  }
  // After all provider links of dst are dead, delivery must fail cleanly.
  const auto last = sig.send_ip_packet(dst_ip, util::Bytes{100});
  EXPECT_FALSE(last.delivered);
  EXPECT_GT(sig.stats().packets_dropped_no_path, 0u);
}

// --- ISP deployment models ----------------------------------------------------------

TEST(DeployedLink, WireBytesPerModel) {
  DeployedLinkConfig native;
  native.model = InterIspModel::kNativeCrossConnect;
  DeployedLinkConfig roas = native;
  roas.model = InterIspModel::kRouterOnAStick;
  EXPECT_EQ(DeployedLink{native}.wire_bytes(util::Bytes{1000}), util::Bytes{1000});
  EXPECT_EQ(DeployedLink{roas}.wire_bytes(util::Bytes{1000}),
            util::Bytes{1000} + kIpEncapOverheadBytes);
}

TEST(DeployedLink, QueuingDisciplineGuaranteesShare) {
  DeployedLinkConfig config;
  config.model = InterIspModel::kRouterOnAStick;
  config.capacity_mbps = 1000;
  config.scion_min_share = 0.4;
  const DeployedLink with{config};
  // Hostile IP load at 100%: SCION still gets its guaranteed 400 Mbps.
  EXPECT_DOUBLE_EQ(with.scion_goodput_mbps(800, 1.0), 400);
  // Without a queuing discipline SCION is crowded out entirely.
  config.queuing_discipline = false;
  const DeployedLink without{config};
  EXPECT_DOUBLE_EQ(without.scion_goodput_mbps(800, 1.0), 0);
}

TEST(DeployedLink, NativeUnaffectedByIpLoad) {
  DeployedLinkConfig config;
  config.model = InterIspModel::kNativeCrossConnect;
  config.capacity_mbps = 1000;
  const DeployedLink link{config};
  EXPECT_DOUBLE_EQ(link.scion_goodput_mbps(800, 1.0), 800);
  EXPECT_DOUBLE_EQ(link.scion_goodput_mbps(1500, 0.0), 1000);
}

TEST(DeployedLink, RedundantAvailabilityDominates) {
  DeployedLinkConfig config;
  config.capacity_mbps = 1000;
  config.model = InterIspModel::kNativeCrossConnect;
  const double native = DeployedLink{config}.availability(0.01, 0.02);
  config.model = InterIspModel::kRouterOnAStick;
  const double roas = DeployedLink{config}.availability(0.01, 0.02);
  config.model = InterIspModel::kRedundant;
  const double redundant = DeployedLink{config}.availability(0.01, 0.02);
  EXPECT_LT(roas, native) << "IP underlay adds a failure mode";
  EXPECT_GT(redundant, native) << "redundancy beats either single link";
  EXPECT_NEAR(native, 0.99, 1e-12);
}

TEST(DeployedLink, AllModelsBgpFree) {
  for (const auto model :
       {InterIspModel::kNativeCrossConnect, InterIspModel::kRouterOnAStick,
        InterIspModel::kRedundant}) {
    DeployedLinkConfig config;
    config.model = model;
    EXPECT_TRUE(DeployedLink{config}.bgp_free()) << to_string(model);
  }
}

// --- IXP fabrics ----------------------------------------------------------------------

TEST(IxpFabric, BigSwitchIsSingleFailureDomain) {
  IxpConfig config;
  config.members = 5;
  const topo::Topology fabric =
      build_ixp_fabric(IxpModel::kBigSwitch, config);
  EXPECT_EQ(fabric.as_count(), 6u);  // members + the shared fabric
  for (topo::AsIndex a = 0; a < config.members; ++a) {
    for (topo::AsIndex b = a + 1; b < config.members; ++b) {
      EXPECT_EQ(ixp_member_min_cut(fabric, a, b), 1)
          << "one port/fabric failure disconnects any pair";
    }
  }
}

TEST(IxpFabric, ExposedTopologyMultipliesPathDiversity) {
  IxpConfig config;
  config.members = 5;
  config.sites = 4;
  config.links_per_site_pair = 2;
  config.member_homing = 2;
  const topo::Topology big = build_ixp_fabric(IxpModel::kBigSwitch, config);
  const topo::Topology exposed =
      build_ixp_fabric(IxpModel::kExposedTopology, config);
  EXPECT_TRUE(exposed.connected());
  // Member pairs have no direct link in the enhanced model — everything
  // crosses the fabric — but the fabric itself offers redundant paths:
  // the min-cut through it exceeds the single shared-fabric link of the
  // big-switch model.
  EXPECT_TRUE(exposed.links_between(0, 1).empty());
  EXPECT_GE(ixp_member_min_cut(exposed, 0, 1), 2)
      << "dual homing + redundant site links survive any single failure";
}

TEST(IxpFabric, MemberHomingBoundsMinCut) {
  IxpConfig config;
  config.members = 4;
  config.sites = 3;
  config.member_homing = 2;
  const topo::Topology exposed =
      build_ixp_fabric(IxpModel::kExposedTopology, config);
  for (topo::AsIndex a = 0; a < config.members; ++a) {
    for (topo::AsIndex b = a + 1; b < config.members; ++b) {
      const int cut = ixp_member_min_cut(exposed, a, b);
      EXPECT_GE(cut, 1);
      EXPECT_LE(cut, 2) << "bounded by the members' homing degree";
    }
  }
}

}  // namespace
}  // namespace scion::svc
