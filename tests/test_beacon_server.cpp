#include <gtest/gtest.h>

#include <map>

#include "core/beacon_server.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;
using util::TimePoint;

constexpr std::uint64_t kDomain = crypto::kDefaultKeyDomainSeed;

/// Collects every (egress link, PCB) a server emits.
struct SendCollector {
  std::vector<std::pair<topo::LinkIndex, PcbRef>> sent;
  BeaconServer::SendFn fn() {
    return [this](topo::LinkIndex egress, const PcbRef& pcb) {
      sent.emplace_back(egress, pcb);
    };
  }
  std::size_t count_on(topo::LinkIndex l) const {
    std::size_t n = 0;
    for (const auto& [egress, pcb] : sent) n += egress == l;
    return n;
  }
};

/// Core triangle: A(0) - B(1) (two parallel links), A - C(2), B - C.
topo::Topology core_triangle() {
  topo::Topology t;
  const auto a = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto b = t.add_as(topo::IsdAsId::make(1, 2), true);
  const auto c = t.add_as(topo::IsdAsId::make(2, 3), true);
  t.add_link(a, b, topo::LinkType::kCore);  // link 0
  t.add_link(a, b, topo::LinkType::kCore);  // link 1
  t.add_link(a, c, topo::LinkType::kCore);  // link 2
  t.add_link(b, c, topo::LinkType::kCore);  // link 3
  return t;
}

/// Intra chain: core(0) -> mid(1) -> leaf(2), plus a peer link mid - peer(3).
topo::Topology intra_chain() {
  topo::Topology t;
  const auto core = t.add_as(topo::IsdAsId::make(1, 1), true);
  const auto mid = t.add_as(topo::IsdAsId::make(1, 2), false);
  const auto leaf = t.add_as(topo::IsdAsId::make(1, 3), false);
  const auto peer = t.add_as(topo::IsdAsId::make(1, 4), false);
  t.add_link(core, mid, topo::LinkType::kProviderCustomer);  // link 0
  t.add_link(mid, leaf, topo::LinkType::kProviderCustomer);  // link 1
  t.add_link(mid, peer, topo::LinkType::kPeer);              // link 2
  return t;
}

BeaconServerConfig baseline_config() {
  BeaconServerConfig config;
  config.algorithm = AlgorithmKind::kBaseline;
  return config;
}

TEST(BeaconServer, CoreOriginatesOnEveryCoreLinkEachInterval) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector collector;
  BeaconServer server{t, 0, baseline_config(), keys, kDomain, collector.fn()};

  server.on_interval(TimePoint::origin());
  // A has 3 core links (0, 1, 2); origination = 1 PCB per link.
  EXPECT_EQ(collector.sent.size(), 3u);
  EXPECT_EQ(collector.count_on(0), 1u);
  EXPECT_EQ(collector.count_on(1), 1u);
  EXPECT_EQ(collector.count_on(2), 1u);
  for (const auto& [egress, pcb] : collector.sent) {
    EXPECT_EQ(pcb->origin(), t.as_id(0));
    EXPECT_EQ(pcb->hops(), 1u);
    EXPECT_EQ(pcb->entries()[0].out_if, t.interface_of(egress, 0));
    EXPECT_TRUE(pcb->verify(keys));
  }
  EXPECT_EQ(server.stats().pcbs_originated, 3u);
}

TEST(BeaconServer, ReceivedPcbStoredAndPropagated) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector from_b;
  BeaconServer b_server{t, 1, baseline_config(), keys, kDomain, from_b.fn()};
  SendCollector from_a;
  BeaconServer a_server{t, 0, baseline_config(), keys, kDomain, from_a.fn()};

  // B originates; deliver its PCB on link 0 to A.
  b_server.on_interval(TimePoint::origin());
  PcbRef pcb_on_0;
  for (const auto& [egress, pcb] : from_b.sent) {
    if (egress == 0) pcb_on_0 = pcb;
  }
  ASSERT_TRUE(pcb_on_0);
  const TimePoint t1 = TimePoint::origin() + Duration::seconds(1);
  a_server.handle_pcb(pcb_on_0, 0, t1);
  EXPECT_EQ(a_server.store().total_stored(), 1u);
  EXPECT_EQ(a_server.stats().pcbs_received, 1u);

  // Next interval, A propagates B's path towards C (link 2) but not back
  // to B (loop prevention).
  from_a.sent.clear();
  a_server.on_interval(t1 + Duration::minutes(10));
  std::size_t propagated_to_c = 0;
  for (const auto& [egress, pcb] : from_a.sent) {
    if (pcb->origin() == t.as_id(1)) {
      EXPECT_EQ(egress, 2u) << "B-origin PCBs must only go to C";
      ++propagated_to_c;
      EXPECT_EQ(pcb->hops(), 2u);
      EXPECT_TRUE(pcb->verify(keys));
      EXPECT_EQ(pcb->entries()[1].isd_as, t.as_id(0));
    }
  }
  EXPECT_EQ(propagated_to_c, 1u);
}

TEST(BeaconServer, DropsLoopingPcb) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector collector;
  BeaconServer a_server{t, 0, baseline_config(), keys, kDomain, collector.fn()};

  // A PCB that already contains A, arriving at A.
  const crypto::SigningKey sk_b = keys.key_for(t.as_id(1).value());
  const auto fk_b = crypto::ForwardingKey::derive(t.as_id(1).value(), kDomain);
  const crypto::SigningKey sk_a = keys.key_for(t.as_id(0).value());
  const auto fk_a = crypto::ForwardingKey::derive(t.as_id(0).value(), kDomain);
  Pcb pcb = Pcb::originate(t.as_id(1), t.interface_of(3, 1), TimePoint::origin(),
                           Duration::hours(6), sk_b, fk_b);
  // ... extended by A itself somehow coming back over link 0:
  pcb = pcb.extend_signed(t.as_id(0), t.interface_of(2, 0),
                          t.interface_of(0, 0), {}, sk_a, fk_a);
  a_server.handle_pcb(std::make_shared<const Pcb>(std::move(pcb)), 0,
                      TimePoint::origin());
  EXPECT_EQ(a_server.store().total_stored(), 0u);
  EXPECT_EQ(a_server.stats().loops_dropped, 1u);
}

TEST(BeaconServer, DropsPcbWithBogusInterfaces) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector collector;
  BeaconServer a_server{t, 0, baseline_config(), keys, kDomain, collector.fn()};

  const crypto::SigningKey sk_b = keys.key_for(t.as_id(1).value());
  const auto fk_b = crypto::ForwardingKey::derive(t.as_id(1).value(), kDomain);
  // B claims an interface it does not have.
  const Pcb pcb = Pcb::originate(t.as_id(1), IfId{999}, TimePoint::origin(),
                                 Duration::hours(6), sk_b, fk_b);
  a_server.handle_pcb(std::make_shared<const Pcb>(pcb), 0, TimePoint::origin());
  EXPECT_EQ(a_server.store().total_stored(), 0u);
  EXPECT_EQ(a_server.stats().resolve_failures, 1u);
}

TEST(BeaconServer, DropsPcbArrivingOnWrongLink) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector b_out;
  BeaconServer b_server{t, 1, baseline_config(), keys, kDomain, b_out.fn()};
  SendCollector a_out;
  BeaconServer a_server{t, 0, baseline_config(), keys, kDomain, a_out.fn()};

  b_server.on_interval(TimePoint::origin());
  PcbRef pcb_on_0;
  for (const auto& [egress, pcb] : b_out.sent) {
    if (egress == 0) pcb_on_0 = pcb;
  }
  ASSERT_TRUE(pcb_on_0);
  // Deliver it as if it came over link 1 (the other parallel link).
  a_server.handle_pcb(pcb_on_0, 1, TimePoint::origin());
  EXPECT_EQ(a_server.stats().resolve_failures, 1u);
}

TEST(BeaconServer, RejectsForgedSignature) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  SendCollector collector;
  BeaconServer a_server{t, 0, baseline_config(), keys, kDomain, collector.fn()};

  // Forged PCB: built under a different key domain.
  crypto::KeyStore rogue{kDomain + 1};
  const crypto::SigningKey sk = rogue.key_for(t.as_id(1).value());
  const auto fk = crypto::ForwardingKey::derive(t.as_id(1).value(), kDomain + 1);
  const Pcb pcb = Pcb::originate(t.as_id(1), t.interface_of(0, 1),
                                 TimePoint::origin(), Duration::hours(6), sk, fk);
  a_server.handle_pcb(std::make_shared<const Pcb>(pcb), 0, TimePoint::origin());
  EXPECT_EQ(a_server.store().total_stored(), 0u);
  EXPECT_EQ(a_server.stats().verify_failures, 1u);
}

TEST(BeaconServer, IntraIsdFlowsDownhillOnly) {
  const topo::Topology t = intra_chain();
  crypto::KeyStore keys{kDomain};
  BeaconServerConfig config = baseline_config();
  config.mode = BeaconingMode::kIntraIsd;

  SendCollector core_out;
  BeaconServer core_server{t, 0, config, keys, kDomain, core_out.fn()};
  SendCollector mid_out;
  BeaconServer mid_server{t, 1, config, keys, kDomain, mid_out.fn()};
  SendCollector leaf_out;
  BeaconServer leaf_server{t, 2, config, keys, kDomain, leaf_out.fn()};

  // Core originates towards its customer (link 0 only).
  core_server.on_interval(TimePoint::origin());
  ASSERT_EQ(core_out.sent.size(), 1u);
  EXPECT_EQ(core_out.sent[0].first, 0u);

  const TimePoint t1 = TimePoint::origin() + Duration::seconds(1);
  mid_server.handle_pcb(core_out.sent[0].second, 0, t1);
  EXPECT_EQ(mid_server.store().total_stored(), 1u);

  // Mid propagates to its customer (leaf) only — never to the peer or back
  // up to the provider.
  mid_server.on_interval(t1 + Duration::minutes(10));
  ASSERT_EQ(mid_out.sent.size(), 1u);
  EXPECT_EQ(mid_out.sent[0].first, 1u);

  const TimePoint t2 = t1 + Duration::minutes(10) + Duration::seconds(1);
  leaf_server.handle_pcb(mid_out.sent[0].second, 1, t2);
  EXPECT_EQ(leaf_server.store().total_stored(), 1u);

  // Leaf has no customers: nothing to propagate, nothing originated.
  leaf_server.on_interval(t2 + Duration::minutes(10));
  EXPECT_TRUE(leaf_out.sent.empty());
}

TEST(BeaconServer, IntraIsdIncludesPeerEntries) {
  const topo::Topology t = intra_chain();
  crypto::KeyStore keys{kDomain};
  BeaconServerConfig config = baseline_config();
  config.mode = BeaconingMode::kIntraIsd;
  config.include_peer_entries = true;

  SendCollector core_out;
  BeaconServer core_server{t, 0, config, keys, kDomain, core_out.fn()};
  SendCollector mid_out;
  BeaconServer mid_server{t, 1, config, keys, kDomain, mid_out.fn()};

  core_server.on_interval(TimePoint::origin());
  mid_server.handle_pcb(core_out.sent[0].second, 0,
                        TimePoint::origin() + Duration::seconds(1));
  mid_server.on_interval(TimePoint::origin() + Duration::minutes(10));
  ASSERT_EQ(mid_out.sent.size(), 1u);
  const PcbRef& pcb = mid_out.sent[0].second;
  ASSERT_EQ(pcb->entries().size(), 2u);
  ASSERT_EQ(pcb->entries()[1].peers.size(), 1u);
  EXPECT_EQ(pcb->entries()[1].peers[0].peer_as, t.as_id(3));
  EXPECT_TRUE(pcb->verify(keys));
}

TEST(BeaconServer, DiversityOriginationSuppressedWhileFresh) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  BeaconServerConfig config;
  config.algorithm = AlgorithmKind::kDiversity;

  SendCollector collector;
  BeaconServer server{t, 0, config, keys, kDomain, collector.fn()};
  server.on_interval(TimePoint::origin());
  const std::size_t first = collector.sent.size();
  EXPECT_EQ(first, 3u) << "first interval originates everywhere";

  collector.sent.clear();
  server.on_interval(TimePoint::origin() + Duration::minutes(10));
  EXPECT_TRUE(collector.sent.empty())
      << "second interval must not re-originate fresh paths";

  // Near expiry, origination resumes.
  collector.sent.clear();
  server.on_interval(TimePoint::origin() + Duration::minutes(330));
  EXPECT_EQ(collector.sent.size(), 3u);
}

TEST(BeaconServer, BaselineDisseminationLimitPerInterface) {
  const topo::Topology t = core_triangle();
  crypto::KeyStore keys{kDomain};
  BeaconServerConfig config = baseline_config();
  config.dissemination_limit = 2;

  SendCollector b_out;
  BeaconServer b_server{t, 1, config, keys, kDomain, b_out.fn()};
  SendCollector a_out;
  BeaconServer a_server{t, 0, config, keys, kDomain, a_out.fn()};

  // Feed A five distinct B-origin paths by letting B originate repeatedly
  // over both parallel links plus via C (simulated by distinct out_ifs).
  b_server.on_interval(TimePoint::origin());
  const TimePoint t1 = TimePoint::origin() + Duration::seconds(1);
  for (const auto& [egress, pcb] : b_out.sent) {
    if (egress == 0 || egress == 1) a_server.handle_pcb(pcb, egress, t1);
  }
  EXPECT_EQ(a_server.store().total_stored(), 2u);

  a_out.sent.clear();
  a_server.on_interval(t1 + Duration::minutes(10));
  // Towards C (link 2): at most 2 B-origin PCBs.
  std::size_t b_origin_to_c = 0;
  for (const auto& [egress, pcb] : a_out.sent) {
    if (egress == 2 && pcb->origin() == t.as_id(1)) ++b_origin_to_c;
  }
  EXPECT_LE(b_origin_to_c, 2u);
  EXPECT_GE(b_origin_to_c, 1u);
}

}  // namespace
}  // namespace scion::ctrl
