#include <gtest/gtest.h>

#include "core/beaconing_sim.hpp"
#include "topology/generator.hpp"

namespace scion::ctrl {
namespace {

using util::Duration;

BeaconingSimConfig quick_config(AlgorithmKind algorithm) {
  BeaconingSimConfig config;
  config.server.algorithm = algorithm;
  config.server.interval = Duration::minutes(10);
  config.server.pcb_lifetime = Duration::hours(6);
  config.sim_duration = Duration::hours(2);
  config.seed = 42;
  return config;
}

topo::Topology small_core() {
  topo::ScionLabConfig config;
  config.n_cores = 12;
  config.extra_edge_fraction = 0.3;
  config.seed = 5;
  return topo::generate_scionlab(config);
}

TEST(BeaconingSim, EveryAsLearnsPathsToEveryOrigin) {
  const topo::Topology t = small_core();
  BeaconingSim sim{t, quick_config(AlgorithmKind::kBaseline)};
  sim.run();
  for (topo::AsIndex a = 0; a < t.as_count(); ++a) {
    for (topo::AsIndex b = 0; b < t.as_count(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(sim.paths_at(a, t.as_id(b)).empty())
          << t.as_id(a).to_string() << " has no path from origin "
          << t.as_id(b).to_string();
    }
  }
}

TEST(BeaconingSim, DiversityAlsoReachesEveryOrigin) {
  const topo::Topology t = small_core();
  BeaconingSim sim{t, quick_config(AlgorithmKind::kDiversity)};
  sim.run();
  for (topo::AsIndex a = 0; a < t.as_count(); ++a) {
    for (topo::AsIndex b = 0; b < t.as_count(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(sim.paths_at(a, t.as_id(b)).empty());
    }
  }
}

TEST(BeaconingSim, StoredPathsAreConsistentWithTopology) {
  const topo::Topology t = small_core();
  BeaconingSim sim{t, quick_config(AlgorithmKind::kBaseline)};
  sim.run();
  for (topo::AsIndex a = 0; a < t.as_count(); ++a) {
    for (topo::AsIndex b = 0; b < t.as_count(); ++b) {
      if (a == b) continue;
      for (const auto& path : sim.paths_at(a, t.as_id(b))) {
        ASSERT_FALSE(path.empty());
        // The path walks from origin b to receiver a over adjacent links.
        topo::AsIndex cur = b;
        std::set<topo::LinkIndex> seen;
        for (const topo::LinkIndex l : path) {
          EXPECT_TRUE(seen.insert(l).second) << "no link repeats in a path";
          cur = t.neighbor(l, cur);
        }
        EXPECT_EQ(cur, a);
      }
    }
  }
}

TEST(BeaconingSim, DiversityUsesFarLessBandwidthThanBaseline) {
  const topo::Topology t = small_core();
  BeaconingSim baseline{t, quick_config(AlgorithmKind::kBaseline)};
  baseline.run();
  BeaconingSim diversity{t, quick_config(AlgorithmKind::kDiversity)};
  diversity.run();
  EXPECT_LT(diversity.total_bytes() * 4, baseline.total_bytes())
      << "diversity must cut beaconing overhead drastically (paper: >100x "
         "at scale; small topologies show at least several-fold)";
}

TEST(BeaconingSim, WarmupExcludedFromAccounting) {
  const topo::Topology t = small_core();
  auto config = quick_config(AlgorithmKind::kBaseline);
  config.sim_duration = Duration::hours(1);
  BeaconingSim cold{t, config};
  cold.run();

  auto both = config;
  both.sim_duration = Duration::hours(2);
  BeaconingSim cold2h{t, both};
  cold2h.run();

  config.warmup = Duration::hours(1);
  BeaconingSim warm{t, config};
  warm.run();
  // The warm run simulates 2 h but only counts the second hour: strictly
  // less than the full 2 h accounting, and at least the cold first hour
  // (stores are fuller, so a steady hour carries at least as much).
  EXPECT_LT(warm.total_bytes(), cold2h.total_bytes());
  EXPECT_GE(warm.total_bytes().value(), cold.total_bytes().value() / 2);
  EXPECT_EQ(warm.total_bytes(), warm.aggregate_stats().bytes_sent)
      << "server counters reset together with link counters";
}

TEST(BeaconingSim, DiversitySteadyStateOrdersOfMagnitudeBelowBaseline) {
  // The paper's headline: measured in the periodic regime (after one PCB
  // lifetime of warm-up), the diversity algorithm's beaconing overhead is
  // orders of magnitude below the baseline's.
  topo::HierarchyConfig h;
  h.n_ases = 200;
  h.n_roots = 6;
  h.seed = 12;
  const topo::Topology internet = topo::generate_hierarchy(h);
  const topo::Topology core =
      topo::with_all_core_links(topo::make_core_network(internet, 16, 2));

  auto run_bytes = [&](AlgorithmKind algorithm) {
    BeaconingSimConfig config;
    config.server.algorithm = algorithm;
    config.server.compute_crypto = false;
    if (algorithm == AlgorithmKind::kDiversity) {
      config.server.store_policy = StorePolicy::kDiversityAware;
    }
    config.warmup = config.server.pcb_lifetime;  // one lifetime
    config.sim_duration = Duration::hours(6);
    config.seed = 4;
    BeaconingSim sim{core, config};
    sim.run();
    return sim.total_bytes();
  };

  const std::uint64_t baseline = run_bytes(AlgorithmKind::kBaseline).value();
  const std::uint64_t diversity = run_bytes(AlgorithmKind::kDiversity).value();
  EXPECT_GT(baseline, diversity * 20)
      << "steady-state reduction must be >20x (paper: two orders at scale); "
      << "baseline=" << baseline << " diversity=" << diversity;
  EXPECT_GT(diversity, 0u) << "connectivity maintenance must keep running";
}

TEST(BeaconingSim, ByteAccountingConsistent) {
  const topo::Topology t = small_core();
  BeaconingSim sim{t, quick_config(AlgorithmKind::kBaseline)};
  sim.run();
  util::Bytes interface_total{};
  for (const InterfaceUsage& usage : sim.interface_usage()) {
    interface_total += usage.bytes;
  }
  EXPECT_EQ(interface_total, sim.total_bytes());
  EXPECT_EQ(sim.aggregate_stats().bytes_sent, sim.total_bytes())
      << "server-side and link-side accounting must agree";
}

TEST(BeaconingSim, ReceivedAtMostSent) {
  const topo::Topology t = small_core();
  BeaconingSim sim{t, quick_config(AlgorithmKind::kBaseline)};
  sim.run();
  const BeaconServerStats agg = sim.aggregate_stats();
  EXPECT_LE(agg.pcbs_received, agg.pcbs_sent);
  // With all links up and latencies far below the horizon, nearly all
  // arrive (the tail in flight at the end may be cut off).
  EXPECT_GT(agg.pcbs_received, agg.pcbs_sent * 9 / 10);
  EXPECT_EQ(agg.verify_failures, 0u);
  EXPECT_EQ(agg.resolve_failures, 0u);
}

TEST(BeaconingSim, DeterministicForSeed) {
  const topo::Topology t = small_core();
  BeaconingSim a{t, quick_config(AlgorithmKind::kDiversity)};
  a.run();
  BeaconingSim b{t, quick_config(AlgorithmKind::kDiversity)};
  b.run();
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.total_pcbs_sent(), b.total_pcbs_sent());
  for (topo::AsIndex i = 0; i < t.as_count(); ++i) {
    EXPECT_EQ(a.server(i).stats().pcbs_sent, b.server(i).stats().pcbs_sent);
  }
}

TEST(BeaconingSim, StorageLimitBoundsStoredPaths) {
  const topo::Topology t = small_core();
  auto config = quick_config(AlgorithmKind::kBaseline);
  config.server.storage_limit = 3;
  BeaconingSim sim{t, config};
  sim.run();
  for (topo::AsIndex a = 0; a < t.as_count(); ++a) {
    for (topo::AsIndex b = 0; b < t.as_count(); ++b) {
      if (a == b) continue;
      EXPECT_LE(sim.paths_at(a, t.as_id(b)).size(), 3u);
    }
  }
}

TEST(BeaconingSim, IntraIsdLeavesLearnCorePaths) {
  topo::IsdConfig config;
  config.n_cores = 3;
  config.n_ases = 40;
  config.seed = 9;
  const topo::Topology isd = topo::generate_isd(config);

  BeaconingSimConfig sim_config = quick_config(AlgorithmKind::kBaseline);
  sim_config.server.mode = BeaconingMode::kIntraIsd;
  BeaconingSim sim{isd, sim_config};
  sim.run();

  std::size_t reachable = 0, total = 0;
  for (topo::AsIndex leaf = 0; leaf < isd.as_count(); ++leaf) {
    if (isd.is_core(leaf)) continue;
    std::size_t cores_reached = 0;
    for (const topo::AsIndex core : isd.core_ases()) {
      ++total;
      cores_reached += !sim.paths_at(leaf, isd.as_id(core)).empty();
    }
    reachable += cores_reached;
    // A leaf only hears from cores whose customer cone contains it, but
    // every leaf's provider chain must reach at least one core.
    EXPECT_GE(cores_reached, 1u)
        << isd.as_id(leaf).to_string() << " learned no up-segment at all";
  }
  EXPECT_GT(static_cast<double>(reachable), 0.5 * static_cast<double>(total));
}

TEST(BeaconingSim, IntraIsdCoreReceivesNothing) {
  topo::IsdConfig config;
  config.n_cores = 2;
  config.n_ases = 30;
  config.seed = 11;
  const topo::Topology isd = topo::generate_isd(config);
  BeaconingSimConfig sim_config = quick_config(AlgorithmKind::kBaseline);
  sim_config.server.mode = BeaconingMode::kIntraIsd;
  BeaconingSim sim{isd, sim_config};
  sim.run();
  for (const topo::AsIndex core : isd.core_ases()) {
    EXPECT_EQ(sim.server(core).stats().pcbs_received, 0u)
        << "intra-ISD beaconing is uni-directional";
  }
}

}  // namespace
}  // namespace scion::ctrl
