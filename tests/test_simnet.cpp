#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace scion::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ns(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_ns(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint::from_ns(100), [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::seconds(5));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] {
    ++fired;
    sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(2));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sim.schedule_after(Duration::seconds(10), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_periodic(TimePoint::origin() + Duration::seconds(1),
                        Duration::seconds(2), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::seconds(10));
  // Fires at t = 1, 3, 5, 7, 9.
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, PeriodicCancelStopsFutureFirings) {
  Simulator sim;
  int fired = 0;
  const TimerId id = sim.schedule_periodic(
      TimePoint::origin() + Duration::seconds(1), Duration::seconds(1),
      [&] { ++fired; });
  sim.schedule_at(TimePoint::origin() + Duration::milliseconds(3500),
                  [&] { sim.cancel_periodic(id); });
  sim.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_EQ(fired, 3);  // t = 1, 2, 3
}

TEST(Simulator, PeriodicSelfCancelLeavesNoTombstone) {
  // A timer that cancels its own id mid-callback must not re-arm: run()
  // drains at the cancellation tick instead of idling until the next period.
  Simulator sim;
  int fired = 0;
  TimerId id = kInvalidTimer;
  id = sim.schedule_periodic(TimePoint::origin() + Duration::seconds(1),
                             Duration::hours(24), [&] {
                               ++fired;
                               sim.cancel_periodic(id);
                             });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(1));
}

TEST(Simulator, PeriodicCallbackMayRegisterNewPeriodics) {
  // Registering from inside a firing callback grows `periodics_` while
  // fire_periodic holds a reference into it — the deque keeps it stable.
  Simulator sim;
  int outer = 0;
  int inner = 0;
  TimerId inner_id = kInvalidTimer;
  const TimerId outer_id = sim.schedule_periodic(
      TimePoint::origin() + Duration::seconds(1), Duration::seconds(1), [&] {
        ++outer;
        if (outer == 1) {
          inner_id = sim.schedule_periodic(
              TimePoint::origin() + Duration::milliseconds(1500),
              Duration::seconds(1), [&] { ++inner; });
        }
      });
  EXPECT_NE(outer_id, inner_id);
  sim.run_until(TimePoint::origin() + Duration::milliseconds(4800));
  EXPECT_EQ(outer, 4);  // t = 1, 2, 3, 4
  EXPECT_EQ(inner, 4);  // t = 1.5, 2.5, 3.5, 4.5
  EXPECT_NE(outer_id, inner_id);
  sim.cancel_periodic(inner_id);
  sim.cancel_periodic(outer_id);
  sim.run();
  EXPECT_EQ(outer, 4);
  EXPECT_EQ(inner, 4);
}

TEST(Network, DeliversAfterLatency) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(10));

  TimePoint delivered;
  std::string payload;
  net.set_handler(b, [&](const Message& msg) {
    delivered = sim.now();
    payload = msg.payload.get<std::string>();
    EXPECT_EQ(msg.from, a);
    EXPECT_EQ(msg.to, b);
    EXPECT_EQ(msg.channel, ch);
    EXPECT_EQ(msg.bytes, Bytes{100});
  });
  net.send(ch, a, Bytes{100}, std::string{"hello"});
  sim.run();
  EXPECT_EQ(delivered, TimePoint::origin() + Duration::milliseconds(10));
  EXPECT_EQ(payload, "hello");
}

TEST(Network, CountsBytesPerDirection) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  net.send(ch, a, Bytes{100}, 0);
  net.send(ch, a, Bytes{50}, 0);
  net.send(ch, b, Bytes{7}, 0);
  sim.run();
  EXPECT_EQ(net.stats_from(ch, a).bytes, Bytes{150});
  EXPECT_EQ(net.stats_from(ch, a).messages, 2u);
  EXPECT_EQ(net.stats_from(ch, b).bytes, Bytes{7});
  EXPECT_EQ(net.total_bytes(ch), Bytes{157});
  EXPECT_EQ(net.total_bytes_all(), Bytes{157});
  net.reset_stats();
  EXPECT_EQ(net.total_bytes_all(), Bytes::zero());
}

TEST(Network, DownChannelDropsSilently) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });

  net.set_channel_up(ch, false);
  net.send(ch, a, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.total_bytes(ch), Bytes::zero()) << "down links carry no bytes";

  net.set_channel_up(ch, true);
  net.send(ch, a, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, MessageInFlightDroppedIfChannelFails) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(10));
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.send(ch, a, Bytes{10}, 0);
  sim.schedule_after(Duration::milliseconds(5),
                     [&] { net.set_channel_up(ch, false); });
  sim.run();
  EXPECT_EQ(received, 0);
  // Drop-at-delivery: the transmission happened, so bytes stay counted,
  // but the loss is accounted as an in-flight drop.
  EXPECT_EQ(net.stats_from(ch, a).bytes, Bytes{10});
  EXPECT_EQ(net.drop_stats().in_flight, 1u);
  EXPECT_EQ(net.drop_stats().total(), 1u);
}

TEST(Network, DownChannelDropCounted) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  net.set_channel_up(ch, false);
  net.send(ch, a, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(net.drop_stats().link_down, 1u);
  net.reset_stats();
  EXPECT_EQ(net.drop_stats().total(), 0u);
}

TEST(Network, NodeDownSuppressesBothDirections) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  int received_a = 0, received_b = 0;
  net.set_handler(a, [&](const Message&) { ++received_a; });
  net.set_handler(b, [&](const Message&) { ++received_b; });

  EXPECT_TRUE(net.node_up(b));
  net.set_node_up(b, false);
  net.send(ch, a, Bytes{10}, 0);  // dropped at delivery: destination is down
  net.send(ch, b, Bytes{10}, 0);  // dropped at source: sender is down
  sim.run();
  EXPECT_EQ(received_a, 0);
  EXPECT_EQ(received_b, 0);
  EXPECT_EQ(net.drop_stats().node_down, 2u);

  net.set_node_up(b, true);
  net.send(ch, a, Bytes{10}, 0);
  net.send(ch, b, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(received_a, 1);
  EXPECT_EQ(received_b, 1);
}

TEST(Network, NodeDownWhileMessageInFlight) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(10));
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.send(ch, a, Bytes{10}, 0);
  sim.schedule_after(Duration::milliseconds(5),
                     [&] { net.set_node_up(b, false); });
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.drop_stats().node_down, 1u);
}

TEST(Network, LossProbabilityExtremes) {
  Simulator sim;
  Network net{sim};
  util::Rng rng{7};
  net.set_fault_rng(&rng);
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });

  net.set_loss_probability(ch, 1.0);
  EXPECT_EQ(net.loss_probability(ch), 1.0);
  for (int i = 0; i < 20; ++i) net.send(ch, a, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.drop_stats().loss, 20u);
  EXPECT_EQ(net.total_bytes(ch), Bytes::zero()) << "lost messages never enter the wire";

  net.set_loss_probability(ch, 0.0);
  for (int i = 0; i < 20; ++i) net.send(ch, a, Bytes{10}, 0);
  sim.run();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(net.drop_stats().loss, 20u);
}

TEST(Network, LossProbabilityIsStatistical) {
  Simulator sim;
  Network net{sim};
  util::Rng rng{11};
  net.set_fault_rng(&rng);
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch = net.add_channel(a, b, Duration::milliseconds(1));
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.set_loss_probability(ch, 0.5);
  const int n = 1000;
  for (int i = 0; i < n; ++i) net.send(ch, a, Bytes{1}, 0);
  sim.run();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(net.drop_stats().loss, static_cast<std::uint64_t>(n - received));
}

TEST(Network, JitterStaysWithinBounds) {
  Simulator sim;
  Network net{sim};
  util::Rng rng{13};
  net.set_fault_rng(&rng);
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const Duration latency = Duration::milliseconds(10);
  const Duration max_jitter = Duration::milliseconds(5);
  const ChannelId ch = net.add_channel(a, b, latency);
  net.set_jitter(ch, max_jitter);
  EXPECT_EQ(net.jitter(ch), max_jitter);

  std::vector<Duration> delays;
  net.set_handler(b, [&](const Message&) {
    delays.push_back(sim.now() - TimePoint::origin());
  });
  const int n = 50;
  for (int i = 0; i < n; ++i) net.send(ch, a, Bytes{1}, 0);
  sim.run();
  ASSERT_EQ(delays.size(), static_cast<std::size_t>(n));
  bool any_jittered = false;
  for (const Duration d : delays) {
    EXPECT_GE(d.ns(), latency.ns());
    EXPECT_LE(d.ns(), (latency + max_jitter).ns());
    if (d != latency) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered) << "50 draws should not all be zero jitter";
}

TEST(Network, ParallelChannelsBetweenSamePair) {
  Simulator sim;
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const ChannelId ch1 = net.add_channel(a, b, Duration::milliseconds(1));
  const ChannelId ch2 = net.add_channel(a, b, Duration::milliseconds(2));
  EXPECT_NE(ch1, ch2);
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.send(ch1, a, Bytes{1}, 0);
  net.send(ch2, a, Bytes{1}, 0);
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.peer(ch1, a), b);
  EXPECT_EQ(net.peer(ch2, b), a);
}

}  // namespace
}  // namespace scion::sim
