#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "experiments/overhead_experiment.hpp"
#include "experiments/quality_experiment.hpp"
#include "experiments/scale.hpp"
#include "experiments/scionlab_experiment.hpp"
#include "experiments/table1_experiment.hpp"

namespace scion::exp {
namespace {

Scale tiny_scale() {
  Scale s;
  s.internet_ases = 150;
  s.n_tier1 = 6;
  s.core_ases = 30;
  s.core_isds = 3;
  s.isd_ases = 60;
  s.isd_cores = 4;
  s.scionlab_cores = 12;
  s.monitors = 6;
  s.sampled_pairs = 30;
  s.bgp_sampled_origins = 40;
  s.beaconing_duration = util::Duration::hours(1);
  s.bgp_churn_window = util::Duration::minutes(20);
  s.seed = 3;
  return s;
}

TEST(Scale, FlagsOverrideDefaults) {
  const char* argv[] = {"prog", "--core-ases=99", "--monitors=5"};
  util::Flags flags{3, const_cast<char**>(argv)};
  const Scale s = Scale::from_flags(flags);
  EXPECT_EQ(s.core_ases, 99u);
  EXPECT_EQ(s.monitors, 5u);
  EXPECT_EQ(s.internet_ases, Scale{}.internet_ases);
}

TEST(Scale, PaperPresetMatchesPaper) {
  const char* argv[] = {"prog", "--paper"};
  util::Flags flags{2, const_cast<char**>(argv)};
  const Scale s = Scale::from_flags(flags);
  EXPECT_EQ(s.internet_ases, 12000u);
  EXPECT_EQ(s.core_ases, 2000u);
  EXPECT_EQ(s.core_isds, 200u);
  EXPECT_EQ(s.monitors, 26u);
}

TEST(Scale, ScaleMultiplierApplies) {
  const char* argv[] = {"prog", "--scale=0.5"};
  util::Flags flags{2, const_cast<char**>(argv)};
  const Scale s = Scale::from_flags(flags);
  EXPECT_EQ(s.internet_ases, Scale{}.internet_ases / 2);
}

TEST(Builders, CoreNetworksShareIndices) {
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const CoreNetworks nets = build_core_networks(s, internet);
  EXPECT_EQ(nets.bgp_view.as_count(), nets.scion_view.as_count());
  EXPECT_EQ(nets.bgp_view.link_count(), nets.scion_view.link_count());
  EXPECT_TRUE(nets.scion_view.connected());
}

TEST(Builders, PrefixCountsHeavyTailed) {
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const auto counts = prefix_counts(internet, 1);
  ASSERT_EQ(counts.size(), internet.as_count());
  std::uint32_t max_count = 0;
  double total = 0;
  for (const std::uint32_t c : counts) {
    EXPECT_GE(c, 1u);
    max_count = std::max(max_count, c);
    total += c;
  }
  EXPECT_GT(max_count, 10u * static_cast<std::uint32_t>(
                                 total / static_cast<double>(counts.size())))
      << "the tail must dominate the mean";
}

TEST(Builders, MonitorsMapIntoCoreNetwork) {
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const CoreNetworks nets = build_core_networks(s, internet);
  const auto monitors = pick_monitors(internet, s.monitors);
  std::size_t found = 0;
  for (const topo::AsIndex m : monitors) {
    if (find_by_as_number(nets.scion_view,
                          internet.as_id(m).as_number()) !=
        topo::kInvalidAsIndex) {
      ++found;
    }
  }
  EXPECT_GE(found, monitors.size() - 1)
      << "high-degree monitors survive the pruning";
}

TEST(PairSampling, SampledPairsAreDistinctAndNormalized) {
  util::Rng rng{42};
  const auto pairs = sample_distinct_pairs(rng, 40, 100);
  ASSERT_EQ(pairs.size(), 100u);
  std::set<std::pair<topo::AsIndex, topo::AsIndex>> seen;
  for (const auto& [s, t] : pairs) {
    EXPECT_LT(s, t);  // normalized: (a, b) == (b, a)
    EXPECT_LT(t, 40u);
    EXPECT_TRUE(seen.emplace(s, t).second) << "duplicate pair " << s << '-' << t;
  }
}

TEST(PairSampling, SaturatedRequestEnumeratesEveryPair) {
  // Regression: the old rejection loop could spin forever (and returned
  // duplicates) when the request reached the population size. want >=
  // n*(n-1)/2 must yield the exact full enumeration.
  util::Rng rng{42};
  const std::size_t n = 12;
  const std::size_t max_pairs = n * (n - 1) / 2;  // 66
  for (const std::size_t want : {max_pairs, max_pairs + 50}) {
    const auto pairs = sample_distinct_pairs(rng, n, want);
    ASSERT_EQ(pairs.size(), max_pairs);
    std::set<std::pair<topo::AsIndex, topo::AsIndex>> seen;
    for (const auto& [s, t] : pairs) {
      EXPECT_LT(s, t);
      seen.emplace(s, t);
    }
    EXPECT_EQ(seen.size(), max_pairs) << "every unordered pair exactly once";
  }
}

TEST(PairSampling, DenseRequestTerminatesWithDistinctPairs) {
  // Near saturation the helper switches to shuffle-truncate; the result is
  // still distinct and exactly the requested size.
  util::Rng rng{7};
  const std::size_t n = 10;           // 45 possible pairs
  const auto pairs = sample_distinct_pairs(rng, n, 40);
  ASSERT_EQ(pairs.size(), 40u);
  std::set<std::pair<topo::AsIndex, topo::AsIndex>> seen;
  for (const auto& p : pairs) seen.insert(p);
  EXPECT_EQ(seen.size(), 40u);
}

TEST(PairSampling, DegenerateInputs) {
  util::Rng rng{1};
  EXPECT_TRUE(sample_distinct_pairs(rng, 0, 10).empty());
  EXPECT_TRUE(sample_distinct_pairs(rng, 1, 10).empty());
  EXPECT_TRUE(sample_distinct_pairs(rng, 10, 0).empty());
}

TEST(QualityExperiment, SaturatedSamplingFallsBackToFullEnumeration) {
  // Regression for the quality experiment's old sampler: asking for at
  // least as many pairs as exist must evaluate each pair exactly once.
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const CoreNetworks nets = build_core_networks(s, internet);
  const std::size_t n = nets.scion_view.as_count();
  const std::size_t max_pairs = n * (n - 1) / 2;

  QualityConfig config;
  config.diversity_storage_limits = {15};
  config.baseline_storage_limits = {};
  config.include_bgp = false;
  config.sampled_pairs = max_pairs + 10;  // more than exist
  config.sim_duration = util::Duration::minutes(30);
  config.seed = 3;
  const QualityResult r =
      run_quality_experiment(nets.bgp_view, nets.scion_view, config);

  ASSERT_EQ(r.pairs.size(), max_pairs);
  std::set<std::pair<topo::AsIndex, topo::AsIndex>> seen;
  for (const auto& [a, b] : r.pairs) {
    EXPECT_LT(a, b);
    seen.emplace(a, b);
  }
  EXPECT_EQ(seen.size(), max_pairs) << "all pairs distinct";
}

TEST(QualityExperiment, SeriesBoundedByOptimum) {
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const CoreNetworks nets = build_core_networks(s, internet);
  QualityConfig config;
  config.diversity_storage_limits = {15};
  config.baseline_storage_limits = {15};
  config.sampled_pairs = 20;
  config.sim_duration = util::Duration::hours(1);
  config.seed = 3;
  const QualityResult r =
      run_quality_experiment(nets.bgp_view, nets.scion_view, config);

  ASSERT_EQ(r.series.size(), 3u);  // baseline, diversity, BGP
  for (const QualitySeries& series : r.series) {
    ASSERT_EQ(series.values.size(), r.pairs.size());
    for (std::size_t i = 0; i < series.values.size(); ++i) {
      EXPECT_LE(series.values[i], r.optimum[i])
          << series.name << " cannot beat the optimum";
      EXPECT_GE(series.values[i], 0);
    }
    EXPECT_LE(r.fraction_of_optimal(series), 1.0);
  }
  for (const int opt : r.optimum) {
    EXPECT_GE(opt, 1) << "the core network is connected";
  }
}

TEST(QualityExperiment, DiversityBeatsBaselineOnAggregate) {
  const Scale s = tiny_scale();
  const topo::Topology internet = build_internet(s);
  const CoreNetworks nets = build_core_networks(s, internet);
  QualityConfig config;
  config.diversity_storage_limits = {60};
  config.baseline_storage_limits = {60};
  config.include_bgp = true;
  config.sampled_pairs = 30;
  config.sim_duration = util::Duration::hours(2);
  config.seed = 5;
  const QualityResult r =
      run_quality_experiment(nets.bgp_view, nets.scion_view, config);

  double baseline = 0, diversity = 0, bgp_frac = 0;
  for (const QualitySeries& series : r.series) {
    const double f = r.fraction_of_optimal(series);
    if (series.name.find("Baseline") != std::string::npos) baseline = f;
    if (series.name.find("Diversity") != std::string::npos) diversity = f;
    if (series.name.find("BGP") != std::string::npos) bgp_frac = f;
  }
  EXPECT_GE(diversity, baseline) << "Fig. 6: diversity at least matches baseline";
  EXPECT_GT(diversity, bgp_frac) << "Fig. 6: SCION beats BGP multipath";
}

TEST(ScionLabExperiment, RunsAndMatchesPaperShape) {
  Scale s = tiny_scale();
  s.sampled_pairs = 40;
  const ScionLabResult r = run_scionlab_experiment(s);
  EXPECT_FALSE(r.quality.series.empty());
  EXPECT_GT(r.bandwidth.count(), 0u);
  // Paper: the vast majority of interfaces stay below 4 KB/s.
  EXPECT_GT(r.fraction_below_4kbps, 0.6);
}

TEST(Table1Experiment, ProducesAllComponents) {
  Table1Config config;
  config.topology.n_isds = 3;
  config.topology.ases_per_isd = 8;
  config.sim_duration = util::Duration::minutes(40);
  const Table1Result r = run_table1_experiment(config);
  EXPECT_EQ(r.ledger.rows().size(), 7u);
  EXPECT_GT(r.lookups, 0u);
}

}  // namespace
}  // namespace scion::exp
