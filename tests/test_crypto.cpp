#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/hopfield_mac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace scion::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

// --- SHA-256 against FIPS 180-4 / NIST test vectors --------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string_view{&c, 1});
  EXPECT_EQ(h.finalize(), sha256(msg));
}

TEST(Sha256, IntegerUpdatesAreBigEndian) {
  Sha256 a;
  a.update_u32(0x01020304);
  const std::uint8_t raw[] = {1, 2, 3, 4};
  Sha256 b;
  b.update(std::span<const std::uint8_t>{raw, 4});
  EXPECT_EQ(a.finalize(), b.finalize());
}

TEST(Sha256, Prefix64Stable) {
  const Sha256Digest d = sha256("abc");
  EXPECT_EQ(d.prefix64(), sha256("abc").prefix64());
  EXPECT_NE(d.prefix64(), sha256("abd").prefix64());
}

// --- HMAC-SHA-256 against RFC 4231 --------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto data = bytes("what do ya want for nothing?");
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto data =
      bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Signature model -----------------------------------------------------------

TEST(Signature, SignVerifyRoundTrip) {
  const SigningKey key = SigningKey::derive(42, 1);
  const auto data = bytes("path segment");
  const Signature sig = sign(key, data);
  EXPECT_TRUE(verify(key, data, sig));
}

TEST(Signature, WireSizeMatchesEcdsaP384) {
  EXPECT_EQ(kSignatureBytes, 96u);
  EXPECT_EQ(sizeof(Signature::bytes), 96u);
}

TEST(Signature, TamperedDataRejected) {
  const SigningKey key = SigningKey::derive(42, 1);
  const Signature sig = sign(key, bytes("original"));
  EXPECT_FALSE(verify(key, bytes("originaL"), sig));
}

TEST(Signature, TamperedSignatureRejected) {
  const SigningKey key = SigningKey::derive(42, 1);
  Signature sig = sign(key, bytes("data"));
  sig.bytes[17] ^= 0x01;
  EXPECT_FALSE(verify(key, bytes("data"), sig));
}

TEST(Signature, WrongSignerRejected) {
  const SigningKey alice = SigningKey::derive(1, 7);
  const SigningKey bob = SigningKey::derive(2, 7);
  const Signature sig = sign(alice, bytes("data"));
  EXPECT_FALSE(verify(bob, bytes("data"), sig));
}

TEST(Signature, DomainSeparatesKeys) {
  const SigningKey a = SigningKey::derive(1, 100);
  const SigningKey b = SigningKey::derive(1, 200);
  EXPECT_NE(a.secret, b.secret);
}

TEST(KeyStore, DeterministicPerSigner) {
  KeyStore store{5};
  const SigningKey& k1 = store.key_for(10);
  KeyStore other{5};
  EXPECT_EQ(k1.secret, other.key_for(10).secret);
  EXPECT_NE(k1.secret, store.key_for(11).secret);
}

TEST(KeyStore, VerifyBySigner) {
  KeyStore store{5};
  const Sha256Digest digest = sha256("hello");
  const Signature sig = sign(store.key_for(7), digest);
  EXPECT_TRUE(store.verify_by(7, digest, sig));
  EXPECT_FALSE(store.verify_by(8, digest, sig));
}

// --- Hop-field MACs --------------------------------------------------------------

TEST(HopMacTest, DeterministicAndKeyed) {
  const ForwardingKey k1 = ForwardingKey::derive(1, 9);
  const ForwardingKey k2 = ForwardingKey::derive(2, 9);
  const HopMac prev{};
  EXPECT_EQ(hop_mac(k1, 1, 2, 1000, prev), hop_mac(k1, 1, 2, 1000, prev));
  EXPECT_NE(hop_mac(k1, 1, 2, 1000, prev), hop_mac(k2, 1, 2, 1000, prev));
}

TEST(HopMacTest, SensitiveToEveryField) {
  const ForwardingKey key = ForwardingKey::derive(1, 9);
  const HopMac prev{};
  const HopMac base = hop_mac(key, 1, 2, 1000, prev);
  EXPECT_NE(base, hop_mac(key, 3, 2, 1000, prev));
  EXPECT_NE(base, hop_mac(key, 1, 4, 1000, prev));
  EXPECT_NE(base, hop_mac(key, 1, 2, 1001, prev));
  HopMac other_prev{};
  other_prev[0] = 1;
  EXPECT_NE(base, hop_mac(key, 1, 2, 1000, other_prev));
}

TEST(HopMacTest, ChainingPreventsSplicing) {
  // MACs computed with different predecessors differ, so splicing a hop
  // field into a different segment invalidates it.
  const ForwardingKey key = ForwardingKey::derive(5, 9);
  const HopMac first = hop_mac(key, 0, 1, 500, HopMac{});
  const HopMac second = hop_mac(key, 2, 3, 500, first);
  const HopMac spliced = hop_mac(key, 2, 3, 500, HopMac{});
  EXPECT_NE(second, spliced);
}

}  // namespace
}  // namespace scion::crypto
