// Tests for the deterministic parallel execution layer (src/exec):
// order preservation, caller-participates scheduling, exception
// propagation, per-task rng substreams, nesting, and the telemetry-merge
// determinism contract (jobs=1 and jobs=8 produce byte-identical metric
// and trace output).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/task_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace scion::exec {
namespace {

TEST(TaskPool, JobsResolveAgainstDefault) {
  EXPECT_EQ(default_jobs(), 1u);  // the serial default
  EXPECT_EQ(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(5), 5u);
  set_default_jobs(4);
  EXPECT_EQ(default_jobs(), 4u);
  EXPECT_EQ(resolve_jobs(0), 4u);
  EXPECT_EQ(resolve_jobs(2), 2u);
  set_default_jobs(0);  // 0 clamps to 1
  EXPECT_EQ(default_jobs(), 1u);
}

TEST(TaskPool, SingleJobRunsInline) {
  TaskPool pool{1};
  EXPECT_EQ(pool.jobs(), 1u);
  std::vector<int> order;
  pool.run(8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  // With one executor the caller runs every task in index order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TaskPool, ParallelMapPreservesInputOrder) {
  std::vector<int> items;
  for (int i = 0; i < 200; ++i) items.push_back(i);
  const std::vector<int> out = parallel_map(
      items, [](int v) { return v * v; }, 8);
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(TaskPool, ParallelMapMatchesSerialForAnyJobs) {
  std::vector<int> items;
  for (int i = 0; i < 64; ++i) items.push_back(i * 3 + 1);
  const auto fn = [](int v) { return v * 7 - 2; };
  const std::vector<int> serial = parallel_map(items, fn, 1);
  for (const std::size_t jobs : {2u, 3u, 8u}) {
    EXPECT_EQ(parallel_map(items, fn, jobs), serial) << "jobs=" << jobs;
  }
}

TEST(TaskPool, EmptyInputYieldsEmptyOutput) {
  const std::vector<int> out =
      parallel_map(std::vector<int>{}, [](int v) { return v; }, 4);
  EXPECT_TRUE(out.empty());
}

TEST(TaskPool, LowestIndexExceptionWins) {
  TaskPool pool{8};
  try {
    pool.run(32, [](std::size_t i) {
      if (i == 7 || i == 23) throw std::runtime_error{std::to_string(i)};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Both tasks fail on every run; the pool surfaces the earliest by task
    // index, not by completion time.
    EXPECT_STREQ(e.what(), "7");
  }
}

TEST(TaskPool, EveryTaskRunsDespiteFailures) {
  TaskPool pool{4};
  std::vector<char> ran(64, 0);
  try {
    pool.run(64, [&](std::size_t i) {
      ran[i] = 1;  // each slot is written only by its own task
      if (i % 10 == 3) throw std::runtime_error{"boom"};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i], 1) << "task " << i << " never ran";
  }
}

TEST(TaskPool, SeededMapGivesEachTaskItsOwnSubstream) {
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  constexpr std::uint64_t kSeed = 0xABCDEF;
  const auto draw = [](int, util::Rng& rng) { return rng(); };
  const std::vector<std::uint64_t> serial =
      parallel_map_seeded(items, kSeed, draw, 1);
  // Per-task streams depend only on (seed, index), never on scheduling.
  EXPECT_EQ(parallel_map_seeded(items, kSeed, draw, 8), serial);
  for (std::size_t i = 0; i < items.size(); ++i) {
    util::Rng expected = util::Rng::substream(kSeed, i);
    EXPECT_EQ(serial[i], expected());
  }
  // A different seed shifts every stream.
  const std::vector<std::uint64_t> other =
      parallel_map_seeded(items, kSeed + 1, draw, 8);
  EXPECT_NE(other, serial);
}

TEST(TaskPool, NestedParallelMapWorks) {
  // An inner pool inside a task must not deadlock or corrupt ordering: the
  // inner merge runs on the outer task's thread, inside its capture.
  std::vector<int> outer{0, 1, 2, 3};
  const std::vector<int> out = parallel_map(
      outer,
      [](int o) {
        std::vector<int> inner{1, 2, 3, 4};
        const std::vector<int> products =
            parallel_map(inner, [o](int v) { return v * (o + 1); }, 2);
        int sum = 0;
        for (const int p : products) sum += p;
        return sum;  // 10 * (o + 1)
      },
      4);
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30, 40}));
}

#ifdef SCION_MPR_OBS_ENABLED

/// Runs a telemetry-heavy workload at the given job count and returns the
/// metrics JSON and the raw trace stream it produced.
std::pair<std::string, std::string> telemetry_run(std::size_t jobs) {
  obs::MetricsRegistry::global().reset();
  std::ostringstream trace_out;
  obs::TraceSink sink{trace_out};
  sink.enable_all();
  obs::set_trace_sink(&sink);

  parallel_for_n(
      24,
      [](std::size_t i) {
        SCION_METRIC_COUNT("test.pool.tasks", 1);
        SCION_METRIC_COUNT("test.pool.work", i);
        SCION_METRIC_GAUGE_MAX("test.pool.high_water",
                               static_cast<std::int64_t>(i));
        // Floating-point histogram sums are the determinism-sensitive part:
        // the merge order must not depend on the worker schedule.
        SCION_METRIC_OBSERVE("test.pool.value", 0.1 * static_cast<double>(i));
        SCION_TRACE(obs::Category::kExperiment,
                    util::TimePoint::origin() +
                        util::Duration::seconds(static_cast<std::int64_t>(i)),
                    "task", {"i", i});
      },
      jobs);

  obs::set_trace_sink(nullptr);
  return {obs::MetricsRegistry::global().to_json(), trace_out.str()};
}

TEST(TaskPool, TelemetryIsByteIdenticalAcrossJobCounts) {
  const auto [metrics1, trace1] = telemetry_run(1);
  EXPECT_NE(trace1.find("\"ev\":\"task\""), std::string::npos);
  for (const std::size_t jobs : {2u, 8u}) {
    const auto [metrics, trace] = telemetry_run(jobs);
    EXPECT_EQ(metrics, metrics1) << "jobs=" << jobs;
    EXPECT_EQ(trace, trace1) << "jobs=" << jobs;
  }
  obs::MetricsRegistry::global().reset();
}

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace
}  // namespace scion::exec
