#include <gtest/gtest.h>

#include "faults/fault_injector.hpp"
#include "scion/dataplane.hpp"
#include "scion/path_combiner.hpp"
#include "scion/path_server.hpp"
#include "scion/scmp.hpp"
#include "scion/segment.hpp"

namespace scion::svc {
namespace {

using util::Duration;
using util::TimePoint;

constexpr std::uint64_t kDomain = crypto::kDefaultKeyDomainSeed;

/// Two-ISD world:
///   C1(0) --core-- C2(1)                                    link 0
///   C1 -> A(2) -> S(3)   (ISD 1 customer chain)             links 1, 2
///   C1 -> B(4) -> S      (second up path for S)             links 3, 4
///   A  -> S2(5)          (sibling leaf for shortcut)        link 5
///   C2 -> D(6) -> T(7)   (ISD 2 customer chain)             links 6, 7
///   A --peer-- D         (inter-ISD peering)                link 8
struct WorldFixture : ::testing::Test {
  topo::Topology t;
  crypto::KeyStore keys{kDomain};
  TimePoint t0 = TimePoint::origin();
  Duration lifetime = Duration::hours(6);

  topo::AsIndex c1, c2, a, s, b, s2, d, tt;

  void SetUp() override {
    c1 = t.add_as(topo::IsdAsId::make(1, 1), true);
    c2 = t.add_as(topo::IsdAsId::make(2, 2), true);
    a = t.add_as(topo::IsdAsId::make(1, 3), false);
    s = t.add_as(topo::IsdAsId::make(1, 4), false);
    b = t.add_as(topo::IsdAsId::make(1, 5), false);
    s2 = t.add_as(topo::IsdAsId::make(1, 6), false);
    d = t.add_as(topo::IsdAsId::make(2, 7), false);
    tt = t.add_as(topo::IsdAsId::make(2, 8), false);
    t.add_link(c1, c2, topo::LinkType::kCore);              // 0
    t.add_link(c1, a, topo::LinkType::kProviderCustomer);   // 1
    t.add_link(a, s, topo::LinkType::kProviderCustomer);    // 2
    t.add_link(c1, b, topo::LinkType::kProviderCustomer);   // 3
    t.add_link(b, s, topo::LinkType::kProviderCustomer);    // 4
    t.add_link(a, s2, topo::LinkType::kProviderCustomer);   // 5
    t.add_link(c2, d, topo::LinkType::kProviderCustomer);   // 6
    t.add_link(d, tt, topo::LinkType::kProviderCustomer);   // 7
    t.add_link(a, d, topo::LinkType::kPeer);                // 8
  }

  crypto::SigningKey sk(topo::AsIndex as) {
    return keys.key_for(t.as_id(as).value());
  }
  crypto::ForwardingKey fk(topo::AsIndex as) {
    return crypto::ForwardingKey::derive(t.as_id(as).value(), kDomain);
  }

  /// Peer entries an AS advertises (all its peering links).
  std::vector<ctrl::PeerEntry> peers_of(topo::AsIndex as) {
    std::vector<ctrl::PeerEntry> out;
    for (topo::LinkIndex l : t.links_of_type(as, topo::LinkType::kPeer)) {
      ctrl::PeerEntry p;
      p.peer_as = t.as_id(t.neighbor(l, as));
      p.peer_if = t.interface_of(l, as);
      out.push_back(p);
    }
    return out;
  }

  /// Builds a terminated segment along `ases` over `links` (PCB direction:
  /// origin first), with every intermediate AS advertising its peers.
  PathSegment build_segment(SegmentType type,
                            std::vector<topo::AsIndex> ases,
                            std::vector<topo::LinkIndex> links) {
    ctrl::Pcb pcb = ctrl::Pcb::originate(
        t.as_id(ases[0]), t.interface_of(links[0], ases[0]), t0, lifetime,
        sk(ases[0]), fk(ases[0]));
    for (std::size_t i = 1; i + 1 < ases.size(); ++i) {
      pcb = pcb.extend_signed(t.as_id(ases[i]),
                              t.interface_of(links[i - 1], ases[i]),
                              t.interface_of(links[i], ases[i]),
                              peers_of(ases[i]), sk(ases[i]), fk(ases[i]));
    }
    ctrl::StoredPcb stored;
    stored.pcb = std::make_shared<const ctrl::Pcb>(std::move(pcb));
    stored.links = links;
    stored.received_at = t0;
    stored.path_key = stored.pcb->path_key();
    return make_segment(t, stored, ases.back(), type, sk(ases.back()),
                        fk(ases.back()), /*include_peers=*/true);
  }

  PathSegment up_via_a() {
    return build_segment(SegmentType::kUp, {c1, a, s}, {1, 2});
  }
  PathSegment up_via_b() {
    return build_segment(SegmentType::kUp, {c1, b, s}, {3, 4});
  }
  PathSegment core_c1_c2() {
    // Core segment stored at C1 with origin C2.
    return build_segment(SegmentType::kCore, {c2, c1}, {0});
  }
  PathSegment down_to_t() {
    return build_segment(SegmentType::kDown, {c2, d, tt}, {6, 7});
  }
  PathSegment down_to_s2() {
    return build_segment(SegmentType::kDown, {c1, a, s2}, {1, 5});
  }
};

// --- Segments ---------------------------------------------------------------------

TEST_F(WorldFixture, MakeSegmentTerminatesWithOwnerEntry) {
  const PathSegment seg = up_via_a();
  EXPECT_EQ(seg.ases, (std::vector<topo::AsIndex>{c1, a, s}));
  EXPECT_EQ(seg.links, (std::vector<topo::LinkIndex>{1, 2}));
  EXPECT_EQ(seg.origin_as(), c1);
  EXPECT_EQ(seg.terminal_as(), s);
  EXPECT_EQ(seg.length(), 2u);
  ASSERT_EQ(seg.pcb->entries().size(), 3u);
  EXPECT_EQ(seg.pcb->entries().back().out_if, topo::kNoInterface);
  EXPECT_TRUE(seg.pcb->verify(keys));
}

TEST_F(WorldFixture, SegmentWireSizeGrowsWithTermination) {
  const PathSegment seg = up_via_a();
  EXPECT_GT(seg.wire_size(),
            util::Bytes{ctrl::kPcbHeaderBytes +
                        2 * (ctrl::kAsEntryFixedBytes +
                             crypto::kSignatureBytes)});
}

// --- Combination -------------------------------------------------------------------

TEST_F(WorldFixture, CombinesUpCoreDown) {
  const auto up = std::vector{up_via_a()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  const auto paths = combine_segments(t, s, tt, up, core, down);
  ASSERT_EQ(paths.size(), 2u) << "full core path + peering shortcut";

  // Shortest is the peering shortcut S-A-D-T.
  EXPECT_EQ(paths[0].kind, EndToEndPath::Kind::kPeering);
  EXPECT_EQ(paths[0].ases, (std::vector<topo::AsIndex>{s, a, d, tt}));
  EXPECT_EQ(paths[0].links, (std::vector<topo::LinkIndex>{2, 8, 7}));

  EXPECT_EQ(paths[1].kind, EndToEndPath::Kind::kUpCoreDown);
  EXPECT_EQ(paths[1].ases, (std::vector<topo::AsIndex>{s, a, c1, c2, d, tt}));
  EXPECT_EQ(paths[1].links, (std::vector<topo::LinkIndex>{2, 1, 0, 6, 7}));
}

TEST_F(WorldFixture, PeeringRequiresBothSidesAdvertising) {
  const auto up = std::vector{up_via_a()};
  const auto core = std::vector{core_c1_c2()};
  // Down segment built WITHOUT peer entries at D.
  ctrl::Pcb pcb = ctrl::Pcb::originate(t.as_id(c2), t.interface_of(6, c2), t0,
                                       lifetime, sk(c2), fk(c2));
  pcb = pcb.extend_signed(t.as_id(d), t.interface_of(6, d),
                          t.interface_of(7, d), {}, sk(d), fk(d));
  ctrl::StoredPcb stored;
  stored.pcb = std::make_shared<const ctrl::Pcb>(std::move(pcb));
  stored.links = {6, 7};
  stored.received_at = t0;
  stored.path_key = stored.pcb->path_key();
  const PathSegment no_peer_down = make_segment(
      t, stored, tt, SegmentType::kDown, sk(tt), fk(tt), false);

  const auto paths =
      combine_segments(t, s, tt, up, core, std::vector{no_peer_down});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].kind, EndToEndPath::Kind::kUpCoreDown);
}

TEST_F(WorldFixture, CombinesUpDownAtSameCore) {
  const auto up = std::vector{up_via_b()};
  const auto down = std::vector{down_to_s2()};
  const auto paths = combine_segments(t, s, s2, up, {}, down);
  ASSERT_FALSE(paths.empty());
  bool found_updown = false;
  for (const auto& p : paths) {
    if (p.kind == EndToEndPath::Kind::kUpDown) {
      found_updown = true;
      EXPECT_EQ(p.ases, (std::vector<topo::AsIndex>{s, b, c1, a, s2}));
    }
  }
  EXPECT_TRUE(found_updown);
}

TEST_F(WorldFixture, ShortcutCrossoverAtSharedAs) {
  const auto up = std::vector{up_via_a()};
  const auto down = std::vector{down_to_s2()};
  const auto paths = combine_segments(t, s, s2, up, {}, down);
  ASSERT_FALSE(paths.empty());
  // Shortest must be the shortcut S-A-S2, never touching C1.
  EXPECT_EQ(paths[0].kind, EndToEndPath::Kind::kShortcut);
  EXPECT_EQ(paths[0].ases, (std::vector<topo::AsIndex>{s, a, s2}));
  EXPECT_EQ(paths[0].links, (std::vector<topo::LinkIndex>{2, 5}));
}

TEST_F(WorldFixture, MultipleUpSegmentsMultiplyPaths) {
  const auto up = std::vector{up_via_a(), up_via_b()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  const auto paths = combine_segments(t, s, tt, up, core, down);
  // via A (core), via B (core), peering via A.
  EXPECT_EQ(paths.size(), 3u);
}

TEST_F(WorldFixture, MaxPathsCaps) {
  const auto up = std::vector{up_via_a(), up_via_b()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  CombineOptions options;
  options.max_paths = 1;
  const auto paths = combine_segments(t, s, tt, up, core, down, options);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(WorldFixture, MismatchedSegmentsYieldNothing) {
  // Up terminates at s, but we ask for paths from s2.
  const auto up = std::vector{up_via_a()};
  const auto down = std::vector{down_to_t()};
  EXPECT_TRUE(combine_segments(t, s2, tt, up, {}, down).empty());
}

// --- Data plane -------------------------------------------------------------------

TEST_F(WorldFixture, DataPlaneVerifiesCombinedPaths) {
  const auto up = std::vector{up_via_a()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  const auto paths = combine_segments(t, s, tt, up, core, down);
  DataPlane dp{t, kDomain};
  for (const auto& p : paths) {
    std::string error;
    EXPECT_TRUE(dp.verify(p, &error)) << to_string(p.kind) << ": " << error;
    EXPECT_TRUE(dp.valid_at(p, t0 + Duration::hours(1)));
    EXPECT_FALSE(dp.valid_at(p, t0 + lifetime));
    const ForwardResult result = dp.forward(p);
    EXPECT_TRUE(result.delivered) << result.error;
    EXPECT_EQ(result.links_traversed, p.links.size());
  }
}

TEST_F(WorldFixture, DataPlaneRejectsForeignKeyDomain) {
  const auto up = std::vector{up_via_a()};
  const auto down = std::vector{down_to_s2()};
  const auto paths = combine_segments(t, s, s2, up, {}, down);
  ASSERT_FALSE(paths.empty());
  DataPlane dp{t, kDomain + 1};
  std::string error;
  EXPECT_FALSE(dp.verify(paths[0], &error));
  EXPECT_NE(error.find("MAC"), std::string::npos);
}

TEST_F(WorldFixture, ForwardStopsAtDownLink) {
  const auto up = std::vector{up_via_a()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  const auto paths = combine_segments(t, s, tt, up, core, down);
  DataPlane dp{t, kDomain};
  const EndToEndPath& p = paths[1];  // the core path (links 2,1,0,6,7)
  const ForwardResult result =
      dp.forward(p, [](topo::LinkIndex l) { return l != 0; });
  EXPECT_FALSE(result.delivered);
  ASSERT_TRUE(result.failed_link.has_value());
  EXPECT_EQ(*result.failed_link, 0u);
  EXPECT_EQ(result.links_traversed, 2u);
}

TEST_F(WorldFixture, PacketHeaderBytesScaleWithSegments) {
  const auto up = std::vector{up_via_a()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  const auto paths = combine_segments(t, s, tt, up, core, down);
  const auto& peering = paths[0];
  const auto& full = paths[1];
  EXPECT_GT(packet_header_bytes(full), packet_header_bytes(peering));
}

// --- Path server -------------------------------------------------------------------

TEST_F(WorldFixture, PathServerRegistersAndLooksUp) {
  PathServer ps{4};
  ps.register_down_segment(down_to_t());
  const auto segs = ps.down_segments(tt, t0 + Duration::hours(1));
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].terminal_as(), tt);
  EXPECT_TRUE(ps.down_segments(s, t0).empty());
  EXPECT_TRUE(ps.down_segments(tt, t0 + lifetime).empty())
      << "expired segments are filtered";
}

TEST_F(WorldFixture, PathServerDedupesByPathKey) {
  PathServer ps{4};
  ps.register_down_segment(down_to_t());
  ps.register_down_segment(down_to_t());
  EXPECT_EQ(ps.down_segments(tt, t0).size(), 1u);
}

TEST_F(WorldFixture, PathServerRevocationDropsAffected) {
  PathServer ps{4};
  ps.register_down_segment(down_to_t());   // uses links 6, 7
  ps.register_down_segment(down_to_s2());  // uses links 1, 5
  EXPECT_EQ(ps.revoke_link(7), 1u);
  EXPECT_TRUE(ps.down_segments(tt, t0).empty());
  EXPECT_EQ(ps.down_segments(s2, t0).size(), 1u);
}

TEST_F(WorldFixture, PathServerCacheTtl) {
  PathServer ps{4};
  ps.cache_put(tt, {down_to_t()}, t0, Duration::minutes(30));
  EXPECT_TRUE(ps.cache_get(tt, t0 + Duration::minutes(29)).has_value());
  EXPECT_FALSE(ps.cache_get(tt, t0 + Duration::minutes(31)).has_value());
  EXPECT_EQ(ps.stats().cache_hits, 1u);
  EXPECT_EQ(ps.stats().cache_misses, 1u);
}

TEST_F(WorldFixture, RegistrationBytesCoverSegments) {
  const std::vector<PathSegment> segs{down_to_t(), down_to_s2()};
  EXPECT_EQ(registration_bytes(segs), kRegistrationHeaderBytes +
                                          util::Bytes{4} + segs[0].wire_size() +
                                          util::Bytes{4} + segs[1].wire_size());
}

// --- SCMP / failover ----------------------------------------------------------------

TEST_F(WorldFixture, PathManagerFailsOverAndRecovers) {
  const auto up = std::vector{up_via_a(), up_via_b()};
  const auto core = std::vector{core_c1_c2()};
  const auto down = std::vector{down_to_t()};
  PathManager manager;
  manager.set_paths(combine_segments(t, s, tt, up, core, down));
  ASSERT_EQ(manager.total_paths(), 3u);
  const EndToEndPath* active = manager.active();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->kind, EndToEndPath::Kind::kPeering);

  // Kill the peering link: fail over to a core path.
  EXPECT_TRUE(manager.notify_revocation(8));
  EXPECT_EQ(manager.active()->kind, EndToEndPath::Kind::kUpCoreDown);
  EXPECT_EQ(manager.failovers(), 1u);
  EXPECT_EQ(manager.usable_paths(), 2u);

  // Kill link 2 (S-A): the up-via-b path survives.
  EXPECT_TRUE(manager.notify_revocation(2));
  EXPECT_EQ(manager.active()->up->links, (std::vector<topo::LinkIndex>{3, 4}));

  // Kill the core link: everything remaining dies.
  EXPECT_FALSE(manager.notify_revocation(0));
  EXPECT_EQ(manager.active(), nullptr);

  // Restoration brings connectivity back.
  manager.notify_restored(0);
  EXPECT_NE(manager.active(), nullptr);
}

TEST_F(WorldFixture, RevocationOfUnusedLinkIsNoop) {
  const auto up = std::vector{up_via_a()};
  const auto down = std::vector{down_to_s2()};
  PathManager manager;
  manager.set_paths(combine_segments(t, s, s2, up, {}, down));
  const std::size_t before = manager.usable_paths();
  EXPECT_TRUE(manager.notify_revocation(0));  // core link not on any path
  EXPECT_EQ(manager.usable_paths(), before);
  EXPECT_EQ(manager.failovers(), 0u);
}

TEST_F(WorldFixture, InjectedFaultsDriveScmpFailover) {
  // End-to-end SCMP reaction: a FaultInjector executes a scheduled outage
  // of the peering link against the network, and its hooks issue the
  // revocation / restoration notifications an SCMP beacon would carry.
  sim::Simulator simulator;
  sim::Network net{simulator};
  for (std::size_t i = 0; i < t.as_count(); ++i) net.add_node();
  for (topo::LinkIndex l = 0; l < t.link_count(); ++l) {
    net.add_channel(sim::NodeId{t.link(l).a}, sim::NodeId{t.link(l).b},
                    Duration::milliseconds(1));
  }

  PathManager manager;
  manager.set_paths(combine_segments(
      t, s, tt, std::vector{up_via_a(), up_via_b()},
      std::vector{core_c1_c2()}, std::vector{down_to_t()}));
  ASSERT_EQ(manager.total_paths(), 3u);
  ASSERT_EQ(manager.active()->kind, EndToEndPath::Kind::kPeering);

  faults::FaultPlan plan;
  plan.events.push_back(faults::Event{faults::Event::Kind::kLinkDown, 8,
                                      Duration::seconds(10),
                                      Duration::seconds(30)});
  faults::FaultInjector::Hooks hooks;
  hooks.on_link_down = [&](topo::LinkIndex l) { manager.notify_revocation(l); };
  hooks.on_link_up = [&](topo::LinkIndex l) { manager.notify_restored(l); };
  faults::FaultInjector injector{net, plan, &t, hooks};
  injector.arm(TimePoint::origin() + Duration::minutes(2));

  simulator.run_until(TimePoint::origin() + Duration::seconds(15));
  EXPECT_FALSE(net.channel_up(sim::ChannelId{8}));
  ASSERT_NE(manager.active(), nullptr);
  EXPECT_EQ(manager.active()->kind, EndToEndPath::Kind::kUpCoreDown)
      << "failed over off the dead peering link";
  EXPECT_EQ(manager.failovers(), 1u);

  EXPECT_EQ(manager.usable_paths(), 2u);

  simulator.run_until(TimePoint::origin() + Duration::minutes(1));
  EXPECT_TRUE(net.channel_up(sim::ChannelId{8}));
  EXPECT_EQ(manager.usable_paths(), 3u)
      << "restoration re-enables the peering path";
  EXPECT_EQ(manager.active()->kind, EndToEndPath::Kind::kUpCoreDown)
      << "a working active path is not preempted";
}

TEST(Revocation, ActiveWindow) {
  Revocation rev;
  rev.link = 3;
  rev.issued = TimePoint::origin() + Duration::seconds(100);
  rev.validity = Duration::seconds(10);
  EXPECT_FALSE(rev.active_at(TimePoint::origin()));
  EXPECT_TRUE(rev.active_at(rev.issued + Duration::seconds(5)));
  EXPECT_FALSE(rev.active_at(rev.issued + Duration::seconds(10)));
}

}  // namespace
}  // namespace scion::svc
