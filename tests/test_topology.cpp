#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "topology/generator.hpp"
#include "topology/io.hpp"
#include "topology/topology.hpp"

namespace scion::topo {
namespace {

// --- Ids ----------------------------------------------------------------------

TEST(IsdAsId, PackAndUnpack) {
  const IsdAsId id = IsdAsId::make(200, 0xFFFFFFFFFFFF);
  EXPECT_EQ(id.isd(), IsdId{200});
  EXPECT_EQ(id.as_number(), 0xFFFFFFFFFFFFULL);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(IsdAsId{}.valid());
}

TEST(IsdAsId, AsNumberTruncatesTo48Bits) {
  const IsdAsId id = IsdAsId::make(1, 0xFFFF'0000'0000'0001ULL);
  EXPECT_EQ(id.as_number(), 1u);
  EXPECT_EQ(id.isd(), IsdId{1});
}

TEST(IsdAsId, StringRoundTrip) {
  const IsdAsId id = IsdAsId::make(17, 64512);
  EXPECT_EQ(id.to_string(), "17-64512");
  EXPECT_EQ(IsdAsId::parse("17-64512"), id);
}

TEST(IsdAsId, ParseRejectsGarbage) {
  EXPECT_FALSE(IsdAsId::parse("").valid());
  EXPECT_FALSE(IsdAsId::parse("17").valid());
  EXPECT_FALSE(IsdAsId::parse("x-1").valid());
  EXPECT_FALSE(IsdAsId::parse("70000-1").valid());
}

// --- Topology -------------------------------------------------------------------

Topology make_triangle() {
  Topology t;
  const AsIndex a = t.add_as(IsdAsId::make(1, 1), true);
  const AsIndex b = t.add_as(IsdAsId::make(1, 2), true);
  const AsIndex c = t.add_as(IsdAsId::make(1, 3), false);
  t.add_link(a, b, LinkType::kCore);
  t.add_link(a, b, LinkType::kCore);  // parallel
  t.add_link(a, c, LinkType::kProviderCustomer);
  t.add_link(b, c, LinkType::kProviderCustomer);
  return t;
}

TEST(Topology, BasicAccessors) {
  const Topology t = make_triangle();
  EXPECT_EQ(t.as_count(), 3u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_TRUE(t.is_core(0));
  EXPECT_FALSE(t.is_core(2));
  EXPECT_EQ(t.as_id(1), IsdAsId::make(1, 2));
  EXPECT_EQ(t.find(IsdAsId::make(1, 3)), std::optional<AsIndex>{2});
  EXPECT_EQ(t.find(IsdAsId::make(9, 9)), std::nullopt);
}

TEST(Topology, InterfaceIdsUniquePerAs) {
  const Topology t = make_triangle();
  std::set<IfId> seen;
  for (const LinkIndex l : {0u, 1u, 2u}) {
    EXPECT_TRUE(seen.insert(t.interface_of(l, 0)).second);
  }
}

TEST(Topology, NeighborAndInterfaceLookup) {
  const Topology t = make_triangle();
  EXPECT_EQ(t.neighbor(0, 0), 1u);
  EXPECT_EQ(t.neighbor(0, 1), 0u);
  const IfId if_a = t.interface_of(0, 0);
  EXPECT_EQ(t.link_by_interface(0, if_a), std::optional<LinkIndex>{0});
  EXPECT_EQ(t.link_by_interface(0, IfId{999}), std::nullopt);
}

TEST(Topology, LinksBetweenSeesParallelLinks) {
  const Topology t = make_triangle();
  EXPECT_EQ(t.links_between(0, 1).size(), 2u);
  EXPECT_EQ(t.links_between(0, 2).size(), 1u);
  EXPECT_EQ(t.links_between(1, 0).size(), 2u);
}

TEST(Topology, DegreeCountsDistinctNeighbors) {
  const Topology t = make_triangle();
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.link_degree(0), 3u);
}

TEST(Topology, ProviderCustomerOrientation) {
  const Topology t = make_triangle();
  EXPECT_TRUE(t.is_provider_side(2, 0));
  EXPECT_FALSE(t.is_provider_side(2, 2));
  EXPECT_EQ(t.customer_links(0).size(), 1u);
  EXPECT_EQ(t.provider_links(2).size(), 2u);
  EXPECT_EQ(t.neighbors_of_type(0, LinkType::kProviderCustomer),
            std::vector<AsIndex>{2});
}

TEST(Topology, CoreAses) {
  const Topology t = make_triangle();
  EXPECT_EQ(t.core_ases(), (std::vector<AsIndex>{0, 1}));
}

TEST(Topology, Connectivity) {
  Topology t = make_triangle();
  EXPECT_TRUE(t.connected());
  t.add_as(IsdAsId::make(1, 99), false);
  EXPECT_FALSE(t.connected());
}

TEST(Topology, InducedSubgraph) {
  const Topology t = make_triangle();
  const std::vector<AsIndex> keep{0, 2};
  const Topology sub = t.induced_subgraph(keep);
  EXPECT_EQ(sub.as_count(), 2u);
  EXPECT_EQ(sub.link_count(), 1u);
  EXPECT_EQ(sub.as_id(0), t.as_id(0));
  EXPECT_EQ(sub.link(0).type, LinkType::kProviderCustomer);
}

TEST(Topology, HighestDegreeOrdering) {
  const Topology t = make_triangle();
  const auto top = t.highest_degree(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);  // 3 incident links
}

// --- Generators -------------------------------------------------------------------

TEST(Generator, HierarchyIsConnectedAndSized) {
  HierarchyConfig config;
  config.n_ases = 200;
  config.n_roots = 8;
  config.seed = 3;
  const Topology t = generate_hierarchy(config);
  EXPECT_EQ(t.as_count(), 200u);
  EXPECT_TRUE(t.connected());
  std::size_t cores = 0;
  for (AsIndex i = 0; i < t.as_count(); ++i) cores += t.is_core(i);
  EXPECT_EQ(cores, 8u);
}

TEST(Generator, HierarchyProvidersJoinedEarlier) {
  // Provider side of every provider-customer link has a smaller index, so
  // the customer-provider graph is acyclic (valley-free by construction).
  HierarchyConfig config;
  config.n_ases = 300;
  config.seed = 5;
  const Topology t = generate_hierarchy(config);
  for (LinkIndex l = 0; l < t.link_count(); ++l) {
    const Link& link = t.link(l);
    if (link.type == LinkType::kProviderCustomer) {
      EXPECT_LT(link.a, link.b);
    }
  }
}

TEST(Generator, HierarchyDeterministicPerSeed) {
  HierarchyConfig config;
  config.n_ases = 100;
  config.seed = 9;
  const Topology a = generate_hierarchy(config);
  const Topology b = generate_hierarchy(config);
  EXPECT_EQ(topology_to_string(a), topology_to_string(b));
  config.seed = 10;
  const Topology c = generate_hierarchy(config);
  EXPECT_NE(topology_to_string(a), topology_to_string(c));
}

TEST(Generator, HierarchyHasParallelLinksAndPeering) {
  HierarchyConfig config;
  config.n_ases = 400;
  config.seed = 1;
  const Topology t = generate_hierarchy(config);
  bool has_parallel = false;
  bool has_peer = false;
  for (LinkIndex l = 0; l < t.link_count(); ++l) {
    const Link& link = t.link(l);
    if (link.type == LinkType::kPeer) has_peer = true;
    if (t.links_between(link.a, link.b).size() > 1) has_parallel = true;
  }
  EXPECT_TRUE(has_parallel);
  EXPECT_TRUE(has_peer);
}

TEST(Generator, CoreNetworkPrunesToHighDegreeConnected) {
  HierarchyConfig config;
  config.n_ases = 500;
  config.seed = 2;
  const Topology internet = generate_hierarchy(config);
  const Topology core = make_core_network(internet, 60, 6);
  EXPECT_LE(core.as_count(), 60u);
  EXPECT_GE(core.as_count(), 40u) << "pruning should keep most of the top";
  EXPECT_TRUE(core.connected());
  std::set<IsdId> isds;
  for (AsIndex i = 0; i < core.as_count(); ++i) {
    EXPECT_TRUE(core.is_core(i));
    isds.insert(core.as_id(i).isd());
  }
  EXPECT_EQ(isds.size(), 6u);
}

TEST(Generator, WithAllCoreLinksPreservesIndices) {
  HierarchyConfig config;
  config.n_ases = 300;
  config.seed = 4;
  const Topology internet = generate_hierarchy(config);
  const Topology bgp_view = make_core_network(internet, 50, 5);
  const Topology scion_view = with_all_core_links(bgp_view);
  ASSERT_EQ(bgp_view.link_count(), scion_view.link_count());
  ASSERT_EQ(bgp_view.as_count(), scion_view.as_count());
  for (LinkIndex l = 0; l < bgp_view.link_count(); ++l) {
    EXPECT_EQ(bgp_view.link(l).a, scion_view.link(l).a);
    EXPECT_EQ(bgp_view.link(l).b, scion_view.link(l).b);
    EXPECT_EQ(bgp_view.link(l).if_a, scion_view.link(l).if_a);
    EXPECT_EQ(scion_view.link(l).type, LinkType::kCore);
  }
}

TEST(Generator, CoreNetworkKeepsRelationships) {
  HierarchyConfig config;
  config.n_ases = 300;
  config.seed = 4;
  const Topology internet = generate_hierarchy(config);
  const Topology bgp_view = make_core_network(internet, 50, 5);
  bool has_pc = false;
  for (LinkIndex l = 0; l < bgp_view.link_count(); ++l) {
    if (bgp_view.link(l).type == LinkType::kProviderCustomer) has_pc = true;
  }
  EXPECT_TRUE(has_pc) << "relationship types survive pruning";
}

TEST(Generator, ScionLabSmallAndSparse) {
  ScionLabConfig config;
  const Topology t = generate_scionlab(config);
  EXPECT_EQ(t.as_count(), 21u);
  EXPECT_TRUE(t.connected());
  double total_degree = 0;
  for (AsIndex i = 0; i < t.as_count(); ++i) {
    total_degree += static_cast<double>(t.degree(i));
  }
  EXPECT_LT(total_degree / 21.0, 3.0) << "testbed averages ~2 neighbors";
}

TEST(Generator, MultiIsdStructure) {
  MultiIsdConfig config;
  config.n_isds = 3;
  config.cores_per_isd = 2;
  config.ases_per_isd = 10;
  const Topology t = generate_multi_isd(config);
  EXPECT_EQ(t.as_count(), 30u);
  EXPECT_TRUE(t.connected());
  std::map<IsdId, int> cores;
  for (AsIndex i = 0; i < t.as_count(); ++i) {
    if (t.is_core(i)) ++cores[t.as_id(i).isd()];
  }
  EXPECT_EQ(cores.size(), 3u);
  for (const auto& [isd, n] : cores) EXPECT_EQ(n, 2);
  // Inter-ISD links exist and connect cores only.
  bool has_inter = false;
  for (LinkIndex l = 0; l < t.link_count(); ++l) {
    const Link& link = t.link(l);
    if (t.as_id(link.a).isd() != t.as_id(link.b).isd()) {
      has_inter = true;
      EXPECT_EQ(link.type, LinkType::kCore);
      EXPECT_TRUE(t.is_core(link.a) && t.is_core(link.b));
    }
  }
  EXPECT_TRUE(has_inter);
}

// --- IO -------------------------------------------------------------------------

TEST(TopologyIo, RoundTrip) {
  const Topology t = make_triangle();
  const Topology back = topology_from_string(topology_to_string(t));
  EXPECT_EQ(topology_to_string(t), topology_to_string(back));
  EXPECT_EQ(back.as_count(), 3u);
  EXPECT_EQ(back.link_count(), 4u);
  EXPECT_EQ(back.link(2).type, LinkType::kProviderCustomer);
}

TEST(TopologyIo, GeneratedRoundTrip) {
  HierarchyConfig config;
  config.n_ases = 120;
  config.seed = 8;
  const Topology t = generate_hierarchy(config);
  const Topology back = topology_from_string(topology_to_string(t));
  EXPECT_EQ(topology_to_string(t), topology_to_string(back));
}

TEST(TopologyIo, CommentsAndBlankLines) {
  const Topology t = topology_from_string(
      "# header\n\nas 1-1 core\nas 1-2 leaf # trailing\nlink 1-1 1-2 pc\n");
  EXPECT_EQ(t.as_count(), 2u);
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(TopologyIo, Errors) {
  EXPECT_THROW(topology_from_string("as x core\n"), ParseError);
  EXPECT_THROW(topology_from_string("as 1-1 boss\n"), ParseError);
  EXPECT_THROW(topology_from_string("as 1-1 core\nas 1-1 core\n"), ParseError);
  EXPECT_THROW(topology_from_string("link 1-1 1-2 pc\n"), ParseError);
  EXPECT_THROW(
      topology_from_string("as 1-1 core\nas 1-2 leaf\nlink 1-1 1-2 xx\n"),
      ParseError);
  EXPECT_THROW(topology_from_string("as 1-1 core\nlink 1-1 1-1 pc\n"),
               ParseError);
  EXPECT_THROW(topology_from_string("frobnicate\n"), ParseError);
}

}  // namespace
}  // namespace scion::topo
