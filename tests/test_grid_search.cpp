#include <gtest/gtest.h>

#include "core/grid_search.hpp"
#include "topology/generator.hpp"

namespace scion::ctrl {
namespace {

topo::Topology tiny_core() {
  topo::ScionLabConfig config;
  config.n_cores = 10;
  config.extra_edge_fraction = 0.5;
  config.seed = 4;
  return topo::generate_scionlab(config);
}

GridSearchConfig quick_config() {
  GridSearchConfig config;
  config.sim_duration = util::Duration::minutes(40);
  config.sampled_pairs = 15;
  config.coarse_alpha = {2.0};
  config.coarse_beta = {1.0, 3.0};
  config.coarse_gamma = {2.0};
  config.refine_steps = 1;
  config.seed = 9;
  return config;
}

TEST(GridSearch, EvaluatesCoarsePlusRefinement) {
  const topo::Topology core = tiny_core();
  const GridSearchConfig config = quick_config();
  const GridSearchResult result = grid_search_diversity_params(core, config);
  // 1x2x1 coarse + 6 refinement points.
  EXPECT_EQ(result.evaluated.size(), 2u + 6u);
  EXPECT_GT(result.baseline_bytes, util::Bytes::zero());
}

TEST(GridSearch, BestIsArgmaxOfObjective) {
  const topo::Topology core = tiny_core();
  const GridSearchResult result =
      grid_search_diversity_params(core, quick_config());
  for (const EvaluatedPoint& p : result.evaluated) {
    EXPECT_LE(p.objective, result.best.objective);
  }
}

TEST(GridSearch, PointsAreInternallyConsistent) {
  const topo::Topology core = tiny_core();
  const GridSearchConfig config = quick_config();
  const GridSearchResult result = grid_search_diversity_params(core, config);
  for (const EvaluatedPoint& p : result.evaluated) {
    EXPECT_GE(p.quality, 0.0);
    EXPECT_LE(p.quality, 1.0);
    EXPECT_GE(p.overhead, 0.0);
    EXPECT_NEAR(p.objective,
                p.quality - config.overhead_weight * p.overhead, 1e-12);
  }
}

TEST(GridSearch, DiversityOverheadBelowBaseline) {
  const topo::Topology core = tiny_core();
  const GridSearchResult result =
      grid_search_diversity_params(core, quick_config());
  // Every sane parameter point should undercut the baseline's bytes.
  EXPECT_LT(result.best.overhead, 1.0);
}

TEST(GridSearch, EvaluateSinglePointMatchesSearchSetup) {
  const topo::Topology core = tiny_core();
  GridSearchConfig config = quick_config();
  DiversityParams params;
  const EvaluatedPoint a =
      evaluate_diversity_params(core, params, config, util::Bytes{1000});
  const EvaluatedPoint b =
      evaluate_diversity_params(core, params, config, util::Bytes{1000});
  EXPECT_EQ(a.quality, b.quality) << "evaluation is deterministic";
  EXPECT_EQ(a.overhead, b.overhead);
}

}  // namespace
}  // namespace scion::ctrl
