// Message-passing network on top of the Simulator.
//
// Nodes are opaque endpoints with a message handler; channels are
// bidirectional point-to-point links with a fixed propagation latency and
// per-direction byte/message counters. All control-plane overhead numbers in
// the evaluation come from these counters.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simnet/simulator.hpp"

namespace scion::sim {

using NodeId = std::uint32_t;
using ChannelId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr ChannelId kInvalidChannel = ~ChannelId{0};

/// A message in flight. `bytes` is the wire size used for accounting;
/// `payload` carries the typed protocol message.
struct Message {
  NodeId from{kInvalidNode};
  NodeId to{kInvalidNode};
  ChannelId channel{kInvalidChannel};
  std::size_t bytes{0};
  std::any payload;
};

/// Byte/message counters for one direction of a channel.
struct DirectionStats {
  std::uint64_t messages{0};
  std::uint64_t bytes{0};
};

/// Nodes + channels + delivery. Owned by the experiment; borrows the
/// Simulator for scheduling.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit Network(Simulator& sim) : sim_{sim} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; the optional name shows up in diagnostics.
  NodeId add_node(std::string name = {});

  /// Installs the receive handler for a node (replacing any previous one).
  void set_handler(NodeId node, Handler handler);

  /// Connects two distinct existing nodes. Multiple channels between the
  /// same node pair are allowed (parallel inter-AS links).
  ChannelId add_channel(NodeId a, NodeId b, Duration latency);

  /// Marks a channel up or down. Messages sent on a down channel are
  /// silently dropped (modelling a link failure); bytes are not counted.
  void set_channel_up(ChannelId ch, bool up);
  bool channel_up(ChannelId ch) const;

  /// Sends `bytes` of payload from `from` across `ch`; delivery is scheduled
  /// after the channel latency. `from` must be an endpoint of `ch`.
  void send(ChannelId ch, NodeId from, std::size_t bytes, std::any payload);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t channel_count() const { return channels_.size(); }
  const std::string& node_name(NodeId node) const;

  /// The other endpoint of a channel.
  NodeId peer(ChannelId ch, NodeId self) const;
  NodeId endpoint_a(ChannelId ch) const;
  NodeId endpoint_b(ChannelId ch) const;
  Duration latency(ChannelId ch) const;

  /// Counters for the direction out of `from` on `ch`.
  const DirectionStats& stats_from(ChannelId ch, NodeId from) const;

  /// Total bytes sent over `ch` in both directions.
  std::uint64_t total_bytes(ChannelId ch) const;

  /// Sum of total_bytes over all channels.
  std::uint64_t total_bytes_all() const;

  /// Resets all channel counters (e.g. to skip a warm-up phase).
  void reset_stats();

  Simulator& simulator() { return sim_; }

 private:
  struct NodeState {
    std::string name;
    Handler handler;
  };
  struct ChannelState {
    NodeId a{kInvalidNode};
    NodeId b{kInvalidNode};
    Duration latency;
    bool up{true};
    DirectionStats a_to_b;
    DirectionStats b_to_a;
  };

  Simulator& sim_;
  std::vector<NodeState> nodes_;
  std::vector<ChannelState> channels_;
};

}  // namespace scion::sim
