// Message-passing network on top of the Simulator.
//
// Nodes are opaque endpoints with a message handler; channels are
// bidirectional point-to-point links with a fixed propagation latency and
// per-direction byte/message counters. All control-plane overhead numbers in
// the evaluation come from these counters.
//
// Failure surface (driven by faults::FaultInjector, but usable directly):
// channels can be marked down, given a stochastic loss probability, or a
// latency jitter; nodes can be marked down, which suppresses their handler
// and drops their outbound sends. Every lost message is accounted in
// drop_stats() and in the simnet.* metrics.
//
// Drop-at-delivery semantics: send() decides up-front whether the message
// enters the wire (channel up, sender up, loss draw passed) — only then are
// the direction counters charged. A message already in flight is dropped
// *at delivery time* if the channel went down or the destination node went
// down while it was propagating; its bytes stay counted as sent (the
// transmission happened), and the drop is accounted separately.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simnet/simulator.hpp"
#include "util/rng.hpp"
#include "util/small_any.hpp"
#include "util/types.hpp"

namespace scion::sim {

using util::Bytes;

/// Opaque endpoint handle. Strong: a node is not a channel, and neither is
/// a raw integer — handing one to an API expecting the other is a compile
/// error (pinned by tests/negative_compile/).
using NodeId = util::StrongId<struct NodeIdTag, std::uint32_t>;
using ChannelId = util::StrongId<struct ChannelIdTag, std::uint32_t>;

inline constexpr NodeId kInvalidNode{~std::uint32_t{0}};
inline constexpr ChannelId kInvalidChannel{~std::uint32_t{0}};

/// Typed protocol payload riding a Message. 16 bytes of inline storage fit
/// a shared_ptr (PcbRef, shared_ptr<const BgpUpdateMsg>) without the
/// per-send heap allocation std::any's pointer-sized buffer forces; larger
/// payloads fall back to the heap and show up in the allocation budgets.
using Payload = util::SmallAny<16>;

/// A message in flight. `bytes` is the wire size used for accounting;
/// `payload` carries the typed protocol message (move-only, so messages
/// hand their payload through the event queue without copies).
struct Message {
  NodeId from{kInvalidNode};
  NodeId to{kInvalidNode};
  ChannelId channel{kInvalidChannel};
  Bytes bytes{};
  Payload payload;
};

/// Byte/message counters for one direction of a channel.
struct DirectionStats {
  std::uint64_t messages{0};
  Bytes bytes{};
};

/// Network-wide message-loss accounting, one counter per drop cause.
struct DropStats {
  /// Dropped at send: the channel was down.
  std::uint64_t link_down{0};
  /// Dropped at send: the stochastic per-channel loss draw failed.
  std::uint64_t loss{0};
  /// Dropped at send or delivery: an endpoint node was down.
  std::uint64_t node_down{0};
  /// Dropped at delivery: the channel went down while the message was in
  /// flight.
  std::uint64_t in_flight{0};

  std::uint64_t total() const {
    return link_down + loss + node_down + in_flight;
  }
};

/// Nodes + channels + delivery. Owned by the experiment; borrows the
/// Simulator for scheduling.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit Network(Simulator& sim) : sim_{sim} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; the optional name shows up in diagnostics.
  NodeId add_node(std::string name = {});

  /// Installs the receive handler for a node (replacing any previous one).
  void set_handler(NodeId node, Handler handler);

  /// Connects two distinct existing nodes. Multiple channels between the
  /// same node pair are allowed (parallel inter-AS links).
  ChannelId add_channel(NodeId a, NodeId b, Duration latency);

  /// Marks a channel up or down. Messages sent on a down channel are
  /// dropped (modelling a link failure); bytes are not counted. Messages
  /// already in flight when the channel goes down are dropped at delivery
  /// time (their bytes stay counted as sent).
  void set_channel_up(ChannelId ch, bool up);
  bool channel_up(ChannelId ch) const;

  /// Marks a node up or down. A down node's handler is suppressed (messages
  /// addressed to it are dropped at delivery) and its own sends are dropped
  /// at the source (an AS-outage model: the control service is dead in both
  /// directions).
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;

  /// Per-message loss probability on a channel (lossy but up link). Draws
  /// come from the fault RNG, which must be installed first.
  void set_loss_probability(ChannelId ch, double p);
  double loss_probability(ChannelId ch) const;

  /// Uniform per-message latency jitter in [0, max_jitter] added on top of
  /// the channel's propagation latency. Draws come from the fault RNG,
  /// which must be installed first.
  void set_jitter(ChannelId ch, Duration max_jitter);
  Duration jitter(ChannelId ch) const;

  /// Installs the RNG used for loss and jitter draws (borrowed; must
  /// outlive the network or be reset to nullptr). Keeping the stream
  /// injector-owned preserves same-seed reproducibility end to end.
  void set_fault_rng(util::Rng* rng) { fault_rng_ = rng; }

  /// Sends `bytes` of payload from `from` across `ch`; delivery is scheduled
  /// after the channel latency (plus jitter, if configured). `from` must be
  /// an endpoint of `ch`. The delivery event is attributed to `label` by the
  /// event profiler; the unlabeled form uses the interned "net.deliver"
  /// default (hot-path call sites must pass their protocol's label — the
  /// simlint hot-unlabeled-schedule rule enforces it).
  void send(ChannelId ch, NodeId from, Bytes bytes, Payload payload,
            obs::EventLabel label);
  void send(ChannelId ch, NodeId from, Bytes bytes, Payload payload);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t channel_count() const { return channels_.size(); }
  const std::string& node_name(NodeId node) const;

  /// The other endpoint of a channel.
  NodeId peer(ChannelId ch, NodeId self) const;
  NodeId endpoint_a(ChannelId ch) const;
  NodeId endpoint_b(ChannelId ch) const;
  Duration latency(ChannelId ch) const;

  /// Counters for the direction out of `from` on `ch`.
  const DirectionStats& stats_from(ChannelId ch, NodeId from) const;

  /// Network-wide drop accounting by cause.
  const DropStats& drop_stats() const { return drops_; }

  /// Total bytes sent over `ch` in both directions.
  Bytes total_bytes(ChannelId ch) const;

  /// Sum of total_bytes over all channels.
  Bytes total_bytes_all() const;

  /// Resets all channel counters (e.g. to skip a warm-up phase). Drop
  /// counters are reset too.
  void reset_stats();

  Simulator& simulator() { return sim_; }

 private:
  struct NodeState {
    std::string name;
    Handler handler;
    bool up{true};
  };
  struct ChannelState {
    NodeId a{kInvalidNode};
    NodeId b{kInvalidNode};
    Duration latency;
    bool up{true};
    double loss_probability{0.0};
    Duration jitter{Duration::zero()};
    DirectionStats a_to_b;
    DirectionStats b_to_a;
  };

  Simulator& sim_;
  std::vector<NodeState> nodes_;
  std::vector<ChannelState> channels_;
  util::Rng* fault_rng_{nullptr};
  DropStats drops_;
};

}  // namespace scion::sim
