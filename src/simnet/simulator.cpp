#include "simnet/simulator.hpp"

#include <algorithm>

#include "obs/alloc_track.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace scion::sim {

// Once per scheduled event: the queue push is the only permitted growth
// (amortized vector doubling), and Callback keeps closures inline.
SCION_HOT_FN
void Simulator::schedule_at(TimePoint t, obs::EventLabel label, Callback fn) {
  SCION_CHECK(t >= now_, "cannot schedule events in the past");
  queue_.push(Event{t, next_seq_++, label, std::move(fn)});
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::schedule_after(Duration d, obs::EventLabel label,
                               Callback fn) {
  SCION_CHECK(d >= Duration::zero(), "negative delay");
  schedule_at(now_ + d, label, std::move(fn));
}

TimerId Simulator::schedule_periodic(TimePoint first, Duration period,
                                     obs::EventLabel label, Callback fn) {
  SCION_CHECK(period > Duration::zero(), "periodic event needs a positive period");
  const TimerId id{static_cast<std::uint64_t>(periodics_.size())};
  periodics_.push_back(Periodic{period, label, std::move(fn), false});
  schedule_at(first, label, [this, id, first] { fire_periodic(id, first); });
  return id;
}

void Simulator::fire_periodic(TimerId id, TimePoint when) {
  // `periodics_` is a deque, so this reference survives callbacks that
  // register new periodic timers (a vector reallocation would dangle it).
  Periodic& p = periodics_[id.value()];
  if (p.cancelled) return;
  p.fn();
  // Re-check after the callback: a timer that cancels its own id must not
  // leave a tombstone event in the queue (it would keep run() from draining
  // until the next period tick).
  if (p.cancelled) return;
  const TimePoint next = when + p.period;
  schedule_at(next, p.label, [this, id, next] { fire_periodic(id, next); });
}

void Simulator::cancel_periodic(TimerId id) {
  SCION_CHECK(id.value() < periodics_.size(), "unknown periodic event id");
  periodics_[id.value()].cancelled = true;
}

// Executes once per event — the innermost loop of every simulation.
SCION_HOT_FN
void Simulator::pop_and_run() {
  // Move, not copy: steals the callback out of the queue slot.
  // simlint:allow(hot-copy-arg)
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  // The queue invariant every determinism claim rests on: virtual time only
  // moves forward, so same-time events run in scheduling (seq) order.
  SCION_CHECK(ev.time >= now_, "event queue time went backwards");
  now_ = ev.time;
  ++processed_;
  SCION_METRIC_COUNT("simnet.events_processed", 1);
#ifdef SCION_MPR_OBS_ENABLED
  // Event-cost attribution: snapshot the thread's alloc counters and the
  // sanctioned wall clock around the handler, record the delta under the
  // event's label. Write-only (the shard feeds reports, never the
  // simulation), so runs are byte-identical with this on, off, or compiled
  // out — test_determinism proves it.
  if (obs::event_profiling_enabled()) {
    shard_.maybe_sample_queue(now_.ns(), queue_.size());
    const std::uint64_t allocs0 = obs::thread_allocs();
    const std::uint64_t bytes0 = obs::thread_alloc_bytes();
    const std::int64_t wall0 = obs::profiler_wall_now_ns();
    ev.fn();
    shard_.record(ev.label, obs::thread_allocs() - allocs0,
                  obs::thread_alloc_bytes() - bytes0,
                  obs::profiler_wall_now_ns() - wall0);
    return;
  }
#endif
  ev.fn();
}

void Simulator::run() {
  while (!queue_.empty()) pop_and_run();
  publish_metrics();
  shard_.flush();
}

void Simulator::run_until(TimePoint end) {
  while (!queue_.empty() && queue_.top().time <= end) pop_and_run();
  now_ = std::max(now_, end);
  publish_metrics();
  shard_.flush();
}

// Write-only gauge export at the end of each run segment; never read back
// by simulation code, so telemetry cannot influence event order.
void Simulator::publish_metrics() const {
  SCION_METRIC_GAUGE_MAX("simnet.queue_high_water", queue_high_water_);
  SCION_METRIC_GAUGE_MAX("simnet.virtual_time_ns", now_.ns());
}

}  // namespace scion::sim
