#include "simnet/network.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace scion::sim {

NodeId Network::add_node(std::string name) {
  nodes_.push_back(NodeState{std::move(name), Handler{}, true});
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void Network::set_handler(NodeId node, Handler handler) {
  SCION_CHECK(node.value() < nodes_.size(), "node id out of range");
  nodes_[node.value()].handler = std::move(handler);
}

ChannelId Network::add_channel(NodeId a, NodeId b, Duration latency) {
  SCION_CHECK(a.value() < nodes_.size() && b.value() < nodes_.size() && a != b,
              "channel endpoints must be distinct existing nodes");
  SCION_CHECK(latency >= Duration::zero(), "negative channel latency");
  channels_.push_back(
      ChannelState{a, b, latency, true, 0.0, Duration::zero(), {}, {}});
  return ChannelId{static_cast<std::uint32_t>(channels_.size() - 1)};
}

void Network::set_channel_up(ChannelId ch, bool up) {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  channels_[ch.value()].up = up;
}

bool Network::channel_up(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].up;
}

void Network::set_node_up(NodeId node, bool up) {
  SCION_CHECK(node.value() < nodes_.size(), "node id out of range");
  nodes_[node.value()].up = up;
}

bool Network::node_up(NodeId node) const {
  SCION_CHECK(node.value() < nodes_.size(), "node id out of range");
  return nodes_[node.value()].up;
}

void Network::set_loss_probability(ChannelId ch, double p) {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  SCION_CHECK(p >= 0.0 && p <= 1.0, "loss probability out of [0,1]");
  channels_[ch.value()].loss_probability = p;
}

double Network::loss_probability(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].loss_probability;
}

void Network::set_jitter(ChannelId ch, Duration max_jitter) {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  SCION_CHECK(max_jitter >= Duration::zero(), "negative jitter");
  channels_[ch.value()].jitter = max_jitter;
}

Duration Network::jitter(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].jitter;
}

namespace {

// Default attribution for deliveries whose sender did not pass a protocol
// label (interned once at static init; never re-interned on the hot path).
const obs::EventLabel kNetDeliverLabel = obs::event_label("net.deliver");

}  // namespace

void Network::send(ChannelId ch, NodeId from, Bytes bytes, Payload payload) {
  send(ch, from, bytes, std::move(payload), kNetDeliverLabel);
}

// Once per message sent plus once per message delivered (the lambda below):
// the busiest code in every simulation. The delivery closure must stay
// within the Simulator::Callback inline capacity and the payload within
// Payload's — both checked statically right here.
SCION_HOT_FN
void Network::send(ChannelId ch, NodeId from, Bytes bytes,
                   Payload payload, obs::EventLabel label) {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  ChannelState& c = channels_[ch.value()];
  SCION_CHECK(from == c.a || from == c.b, "sender is not a channel endpoint");
  if (!c.up) {  // link failure: message lost at the source
    ++drops_.link_down;
    SCION_METRIC_COUNT("simnet.messages_dropped_link_down", 1);
    return;
  }
  if (!nodes_[from.value()].up) {  // sender AS is down: nothing leaves it
    ++drops_.node_down;
    SCION_METRIC_COUNT("simnet.messages_dropped_node_down", 1);
    return;
  }
  if (c.loss_probability > 0.0) {
    SCION_CHECK(fault_rng_ != nullptr, "loss configured without a fault rng");
    if (fault_rng_->bernoulli(c.loss_probability)) {
      ++drops_.loss;
      SCION_METRIC_COUNT("simnet.messages_dropped_loss", 1);
      SCION_TRACE(obs::Category::kSimnet, sim_.now(), "drop_loss",
                  {"channel", ch}, {"from", from}, {"bytes", bytes});
      return;
    }
  }
  const NodeId to = (from == c.a) ? c.b : c.a;
  DirectionStats& dir = (from == c.a) ? c.a_to_b : c.b_to_a;
  ++dir.messages;
  dir.bytes += bytes;
  SCION_METRIC_COUNT("simnet.messages_sent", 1);
  SCION_METRIC_COUNT("simnet.bytes_sent", bytes.value());
  SCION_METRIC_OBSERVE("simnet.message_bytes", bytes.value());
  Duration delay = c.latency;
  if (c.jitter > Duration::zero()) {
    SCION_CHECK(fault_rng_ != nullptr, "jitter configured without a fault rng");
    delay = delay + Duration::nanoseconds(
                        fault_rng_->uniform_int(0, c.jitter.ns()));
  }
  auto deliver = [this, msg = Message{from, to, ch, bytes,
                                      std::move(payload)}]() mutable {
    // Drop-at-delivery: the transmission already happened (bytes are
    // counted), but the message is lost if the channel went down while
    // it was in flight or the destination node is down on arrival.
    if (!channels_[msg.channel.value()].up) {
      ++drops_.in_flight;
      SCION_METRIC_COUNT("simnet.messages_dropped_in_flight", 1);
      SCION_TRACE(obs::Category::kSimnet, sim_.now(), "drop_in_flight",
                  {"channel", msg.channel}, {"to", msg.to},
                  {"bytes", msg.bytes});
      return;
    }
    if (!nodes_[msg.to.value()].up) {
      ++drops_.node_down;
      SCION_METRIC_COUNT("simnet.messages_dropped_node_down", 1);
      SCION_TRACE(obs::Category::kSimnet, sim_.now(), "drop_node_down",
                  {"channel", msg.channel}, {"to", msg.to},
                  {"bytes", msg.bytes});
      return;
    }
    const Handler& h = nodes_[msg.to.value()].handler;
    if (h) h(msg);
  };
  static_assert(Simulator::Callback::fits_inline<decltype(deliver)>(),
                "delivery closure must not allocate per message");
  sim_.schedule_after(delay, label, std::move(deliver));
}

const std::string& Network::node_name(NodeId node) const {
  SCION_CHECK(node.value() < nodes_.size(), "node id out of range");
  return nodes_[node.value()].name;
}

NodeId Network::peer(ChannelId ch, NodeId self) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  const ChannelState& c = channels_[ch.value()];
  SCION_CHECK(self == c.a || self == c.b, "node is not a channel endpoint");
  return self == c.a ? c.b : c.a;
}

NodeId Network::endpoint_a(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].a;
}

NodeId Network::endpoint_b(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].b;
}

Duration Network::latency(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].latency;
}

const DirectionStats& Network::stats_from(ChannelId ch, NodeId from) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  const ChannelState& c = channels_[ch.value()];
  SCION_CHECK(from == c.a || from == c.b, "sender is not a channel endpoint");
  return from == c.a ? c.a_to_b : c.b_to_a;
}

Bytes Network::total_bytes(ChannelId ch) const {
  SCION_CHECK(ch.value() < channels_.size(), "channel id out of range");
  return channels_[ch.value()].a_to_b.bytes + channels_[ch.value()].b_to_a.bytes;
}

Bytes Network::total_bytes_all() const {
  Bytes sum{};
  for (const auto& c : channels_) sum += c.a_to_b.bytes + c.b_to_a.bytes;
  return sum;
}

void Network::reset_stats() {
  for (auto& c : channels_) {
    c.a_to_b = DirectionStats{};
    c.b_to_a = DirectionStats{};
  }
  drops_ = DropStats{};
}

}  // namespace scion::sim
