// Discrete-event simulation core (the ns-3 substitute).
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "obs/event_profile.hpp"
#include "util/small_fn.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace scion::sim {

using util::Duration;
using util::TimePoint;

/// Handle for a periodic event registered with schedule_periodic(). Strong:
/// a timer id is not a node, channel, or sequence number, and a raw integer
/// does not convert into one.
using TimerId = util::StrongId<struct TimerIdTag, std::uint64_t>;

/// Sentinel for "no timer" (mirrors kInvalidNode / kInvalidChannel).
inline constexpr TimerId kInvalidTimer{
    std::numeric_limits<std::uint64_t>::max()};

/// Event-driven virtual-time scheduler.
class Simulator {
 public:
  /// Move-only with 96 bytes of inline capture storage: enough for every
  /// event-loop closure in the tree (the largest is Network's delivery
  /// lambda, `this` + an 80-byte Message, pinned by a static_assert
  /// there), so scheduling an event never allocates. Larger captures fall
  /// back to the heap and show up in the allocation budgets
  /// (test_alloc_budget).
  using Callback = util::SmallFn<96>;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` under the event-cost attribution
  /// `label` (see obs/event_profile.hpp and DESIGN.md's event-labeling
  /// recipe); `t` must not be in the past.
  void schedule_at(TimePoint t, obs::EventLabel label, Callback fn);

  /// Unlabeled form: the event lands under the "(unlabeled)" default label.
  /// Hot-path call sites must use the labeled overload (enforced by the
  /// simlint hot-unlabeled-schedule rule).
  void schedule_at(TimePoint t, Callback fn) {
    schedule_at(t, obs::EventLabel{}, std::move(fn));
  }

  /// Schedules `fn` after `d` (>= 0) from now.
  void schedule_after(Duration d, obs::EventLabel label, Callback fn);
  void schedule_after(Duration d, Callback fn) {
    schedule_after(d, obs::EventLabel{}, std::move(fn));
  }

  /// Schedules `fn` every `period` starting at `first`, until the simulation
  /// stops. Returns an id usable with cancel_periodic(). Every firing (and
  /// the internal re-arm event) is attributed to `label`.
  ///
  /// Re-entrancy contract (audited; regression tests in test_simnet):
  ///  * a callback may cancel its *own* id: the current firing completes and
  ///    nothing further is scheduled (no tombstone event lingers in the
  ///    queue, so run() drains immediately).
  ///  * a callback may cancel another timer or register new periodic timers;
  ///    the registry uses a deque, so outstanding references stay valid when
  ///    a callback grows it.
  TimerId schedule_periodic(TimePoint first, Duration period,
                            obs::EventLabel label, Callback fn);
  TimerId schedule_periodic(TimePoint first, Duration period, Callback fn) {
    return schedule_periodic(first, period, obs::EventLabel{}, std::move(fn));
  }

  /// Stops future firings of a periodic event. Safe to call from any
  /// callback, including the timer's own.
  void cancel_periodic(TimerId id);

  /// Runs until the queue drains.
  void run();

  /// Runs while events exist with time <= `end`; afterwards now() == end
  /// (or later if already past it).
  void run_until(TimePoint end);

  /// Total callbacks executed so far.
  std::uint64_t events_processed() const { return processed_; }

  /// Events currently pending.
  std::size_t pending() const { return queue_.size(); }

  /// Largest queue depth observed since construction.
  std::size_t queue_high_water() const { return queue_high_water_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    /// Cost-attribution tag; an empty type under SCION_MPR_OBS=OFF, so the
    /// queue slot pays nothing when telemetry is compiled out.
    [[no_unique_address]] obs::EventLabel label;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Periodic {
    Duration period;
    [[no_unique_address]] obs::EventLabel label;
    Callback fn;
    bool cancelled{false};
  };

  void pop_and_run();
  void fire_periodic(TimerId id, TimePoint when);
  void publish_metrics() const;

  TimePoint now_{TimePoint::origin()};
  std::uint64_t next_seq_{0};
  std::uint64_t processed_{0};
  std::size_t queue_high_water_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Deque, not vector: fire_periodic holds a reference across the user
  // callback, and a callback that registers a new periodic timer must not
  // invalidate it (a vector's push_back reallocation would).
  std::deque<Periodic> periodics_;
  // Per-simulator event-cost accumulator (empty type under
  // SCION_MPR_OBS=OFF); folded into obs::EventProfiler::global() at the end
  // of each run segment and on destruction.
  [[no_unique_address]] obs::EventShard shard_;
};

}  // namespace scion::sim
