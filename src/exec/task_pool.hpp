// Deterministic parallel execution for the experiment pipeline.
//
// The paper's evaluation loops are embarrassingly parallel — per-pair
// max-flow evaluation, per-parameter-point grid search, independent series
// runs — but the repository's verification story rests on byte-identical
// outputs (ROADMAP, test_determinism). This layer makes the two compatible:
//
//  - Work is decomposed into *tasks* whose count and content never depend
//    on the job count; `--jobs` only changes how many workers drain the
//    shared index queue.
//  - Results are written into pre-sized slots by task index, so the output
//    vector is order-preserving regardless of completion order.
//  - Telemetry recorded inside a task goes to a private obs::TaskCapture
//    (thread-local metric shard + trace buffer) and is merged in task-index
//    order after the batch — never in completion order (see obs/parallel.hpp).
//  - Tasks needing randomness take a util::Rng::substream(seed, task_index)
//    (parallel_map_seeded), a pure function of the task index.
//
// Contract: run(jobs=J) is byte-identical to run(jobs=1) for every J. The
// simlint `raw-thread` rule bans std::thread/std::async outside this file so
// all parallelism inherits the contract.
//
// Exceptions thrown by task bodies are captured per slot and, after the
// batch completes (every task still runs) and telemetry is merged, the
// lowest-index exception is rethrown — again independent of scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"

namespace scion::exec {

/// Process-wide default worker count used when a config's `jobs` field or a
/// parallel_map call leaves jobs at 0. Set once at startup from --jobs
/// (bench_main, the CLI); defaults to 1 (serial).
std::size_t default_jobs();
void set_default_jobs(std::size_t jobs);

/// 0 -> default_jobs(); anything else clamped to at least 1.
std::size_t resolve_jobs(std::size_t jobs);

/// A fixed-size worker pool executing one batch of index-addressed tasks at
/// a time. `jobs` counts total executors: the caller participates, so a
/// pool with jobs=1 spawns no threads and runs every task inline, and
/// jobs=N spawns N-1 workers.
class TaskPool {
 public:
  explicit TaskPool(std::size_t jobs);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Runs body(0..n-1), blocking until all tasks finished and their
  /// telemetry captures merged in index order. `body` is invoked
  /// concurrently from multiple threads and must only mutate task-local or
  /// per-index state. Not reentrant from within a task on the same pool
  /// (parallel_map builds a fresh pool per call, which nests fine).
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Batch {
    std::size_t n{0};
    const std::function<void(std::size_t)>* body{nullptr};
    std::vector<obs::TaskCapture>* captures{nullptr};
    std::vector<std::exception_ptr>* errors{nullptr};
    std::atomic<std::size_t> next{0};
    std::size_t done{0};  // guarded by the pool mutex
  };

  void worker_loop();
  void work_on(Batch& batch);

  const std::size_t jobs_;
  util::Mutex mu_;
  util::CondVar cv_work_;
  util::CondVar cv_done_;
  std::shared_ptr<Batch> batch_ SCION_GUARDED_BY(mu_);
  std::uint64_t generation_ SCION_GUARDED_BY(mu_) = 0;
  bool stop_ SCION_GUARDED_BY(mu_) = false;
  // Written in the constructor, joined in the destructor; never touched
  // while workers run. simlint:allow(unguarded-shared)
  std::vector<std::thread> threads_;
};

/// Order-preserving parallel map over [0, n): out[i] = fn(i). The job-count
/// determinism contract of TaskPool applies; fn must be safe to invoke
/// concurrently.
template <typename Fn>
auto parallel_map_n(std::size_t n, Fn&& fn, std::size_t jobs = 0) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<std::optional<R>> slots(n);
  TaskPool pool{resolve_jobs(jobs)};
  pool.run(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Order-preserving parallel map over a vector: out[i] = fn(items[i]).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, std::size_t jobs = 0) {
  return parallel_map_n(
      items.size(), [&](std::size_t i) { return fn(items[i]); }, jobs);
}

/// parallel_map where each task additionally receives its own private
/// util::Rng substream derived from (seed, task index) — independent of the
/// worker that runs it and of the job count.
template <typename T, typename Fn>
auto parallel_map_seeded(const std::vector<T>& items, std::uint64_t seed,
                         Fn&& fn, std::size_t jobs = 0) {
  return parallel_map_n(
      items.size(),
      [&](std::size_t i) {
        util::Rng rng = util::Rng::substream(seed, i);
        return fn(items[i], rng);
      },
      jobs);
}

/// Void companion of parallel_map_n for heterogeneous task sets that write
/// into their own result slots.
template <typename Fn>
void parallel_for_n(std::size_t n, Fn&& fn, std::size_t jobs = 0) {
  TaskPool pool{resolve_jobs(jobs)};
  const std::function<void(std::size_t)> body = [&](std::size_t i) { fn(i); };
  pool.run(n, body);
}

}  // namespace scion::exec
