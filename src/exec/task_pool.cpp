#include "exec/task_pool.hpp"

#include "util/check.hpp"

namespace scion::exec {

namespace {

// Set once at startup (bench_main / CLI flag parsing) before any parallel
// region exists; read-only afterwards. simlint:allow(mutable-global)
std::size_t g_default_jobs = 1;

}  // namespace

std::size_t default_jobs() { return g_default_jobs; }

void set_default_jobs(std::size_t jobs) {
  g_default_jobs = jobs == 0 ? 1 : jobs;
}

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs == 0) return default_jobs();
  return jobs;
}

TaskPool::TaskPool(std::size_t jobs) : jobs_{jobs == 0 ? 1 : jobs} {
  threads_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const util::MutexLock lock{mu_};
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      const util::MutexLock lock{mu_};
      while (!stop_ && generation_ == seen) cv_work_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      // Snapshot under the lock: a worker late to one batch can only ever
      // claim from its snapshot, whose index queue is already exhausted, so
      // it can never touch a newer batch's slots through stale pointers.
      batch = batch_;
    }
    work_on(*batch);
  }
}

void TaskPool::work_on(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    obs::TaskCapture& capture = (*batch.captures)[i];
    capture.begin();
    try {
      (*batch.body)(i);
    } catch (...) {
      (*batch.errors)[i] = std::current_exception();
    }
    capture.end();
    {
      const util::MutexLock lock{mu_};
      if (++batch.done == batch.n) cv_done_.notify_all();
    }
  }
}

void TaskPool::run(std::size_t n,
                   const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::vector<obs::TaskCapture> captures(n);
  std::vector<std::exception_ptr> errors(n);
  const auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;
  batch->captures = &captures;
  batch->errors = &errors;
  if (!threads_.empty()) {
    {
      const util::MutexLock lock{mu_};
      batch_ = batch;
      ++generation_;
    }
    cv_work_.notify_all();
  }
  // The caller is an executor too: with jobs=1 this inline loop runs every
  // task (in index order, exactly the serial trajectory).
  work_on(*batch);
  {
    const util::MutexLock lock{mu_};
    while (batch->done != batch->n) cv_done_.wait(mu_);
  }
  // All workers are past their last unlock of mu_ for this batch, which
  // happens-before the wait above returned: captures and errors are safe to
  // read. Merge telemetry first (every task ran, even past failures), then
  // surface the lowest-index failure.
  for (obs::TaskCapture& capture : captures) capture.merge();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace scion::exec
