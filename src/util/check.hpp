// Checked invariants.
//
// SCION_CHECK(expr, msg) and SCION_DCHECK(expr, msg) replace raw assert()
// across the simulator core. Unlike assert they carry a human-readable
// message and their activation is controlled by the build mode, not only by
// NDEBUG:
//
//  - SCION_CHECK: cheap invariants (preconditions, index bounds, monotonic
//    time). Active in debug builds and whenever the build defines
//    SCION_MPR_CHECKED (the `checked`, `asan-ubsan` and `tsan` presets).
//    Compiled out — expression not evaluated — in plain Release.
//  - SCION_DCHECK: expensive invariants (full-structure consistency walks).
//    Active only under SCION_MPR_CHECKED, so even debug builds stay fast.
//
// A failing check prints "<file>:<line>: CHECK failed: <expr> — <msg>" to
// stderr and aborts, which both gtest death tests and sanitizer CI observe.
#pragma once

namespace scion::util {

/// Reports a failed check and aborts. Never returns.
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const char* msg);

}  // namespace scion::util

#if defined(SCION_MPR_CHECKED) || !defined(NDEBUG)
#define SCION_CHECK_ENABLED 1
#else
#define SCION_CHECK_ENABLED 0
#endif

#if defined(SCION_MPR_CHECKED)
#define SCION_DCHECK_ENABLED 1
#else
#define SCION_DCHECK_ENABLED 0
#endif

// The disabled form keeps the expression type-checked (so checked-only code
// cannot rot) but generates no code and evaluates nothing.
#define SCION_CHECK_IMPL_OFF(expr)                  \
  do {                                              \
    if (false) static_cast<void>(expr);             \
  } while (false)

#if SCION_CHECK_ENABLED
#define SCION_CHECK(expr, msg)                                             \
  do {                                                                     \
    if (!(expr)) ::scion::util::check_failed(__FILE__, __LINE__, #expr, msg); \
  } while (false)
#else
#define SCION_CHECK(expr, msg) SCION_CHECK_IMPL_OFF(expr)
#endif

#if SCION_DCHECK_ENABLED
#define SCION_DCHECK(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) ::scion::util::check_failed(__FILE__, __LINE__, #expr, msg); \
  } while (false)
#else
#define SCION_DCHECK(expr, msg) SCION_CHECK_IMPL_OFF(expr)
#endif
