#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string_view>

namespace scion::util {

namespace {

std::string env_key_for(const std::string& key) {
  std::string out = "REPRO_";
  for (char c : key) {
    out += (c == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg{argv[i]};
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string{arg}] = "true";
    } else {
      values_[std::string{arg.substr(0, eq)}] = std::string{arg.substr(eq + 1)};
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  if (const auto it = values_.find(key); it != values_.end()) return it->second;
  // getenv is mt-unsafe only against concurrent setenv; flags are read on
  // the main thread during startup, before any worker exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv(env_key_for(key).c_str())) return env;
  return def;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  return std::strtod(v.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  std::string v = get(key, "");
  if (v.empty()) return def;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

void Flags::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace scion::util
