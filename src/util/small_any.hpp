// Move-only type-erased value with inline storage: std::any without the
// per-message heap allocation.
//
// libstdc++'s std::any keeps only pointer-sized payloads inline, so a
// simnet Message carrying a shared_ptr<const Pcb> (16 bytes) heap-allocates
// on every send. SmallAny<Capacity> stores payloads up to Capacity bytes
// inline (heap fallback above that, caught by the allocation budgets in
// test_alloc_budget) and is move-only, so ref-counted payloads move through
// the network without touching their control blocks.
//
// Type identity uses per-type tag addresses instead of RTTI: get<T>() on a
// SmallAny holding another type is a SCION_CHECK failure (a protocol bug —
// a node decoding a payload type it never receives), not a fallible query;
// get_if<T>() is the fallible form.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace scion::util {

namespace detail {
/// One byte per distinct payload type; the address is the type's identity.
template <typename T>
inline constexpr char small_any_tag = 0;
}  // namespace detail

template <std::size_t Capacity>
class SmallAny {
 public:
  SmallAny() = default;

  template <typename V>
    requires(!std::is_same_v<std::remove_cvref_t<V>, SmallAny>)
  SmallAny(V&& value) {  // NOLINT(google-explicit-constructor)
    using T = std::remove_cvref_t<V>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(buf_)) T(std::forward<V>(value));
      manager_ = &inline_manage<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<V>(value)));
      manager_ = &heap_manage<T>;
    }
    tag_ = &detail::small_any_tag<T>;
  }

  SmallAny(SmallAny&& other) noexcept { move_from(other); }

  SmallAny& operator=(SmallAny&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallAny(const SmallAny&) = delete;
  SmallAny& operator=(const SmallAny&) = delete;

  ~SmallAny() { reset(); }

  bool has_value() const { return tag_ != nullptr; }

  template <typename T>
  bool holds() const {
    return tag_ == &detail::small_any_tag<T>;
  }

  /// The stored value; the stored type must be exactly `T`.
  template <typename T>
  const T& get() const {
    SCION_CHECK(holds<T>(), "SmallAny holds a different payload type");
    return *ptr<T>();
  }

  /// nullptr when empty or holding a different type.
  template <typename T>
  const T* get_if() const {
    return holds<T>() ? ptr<T>() : nullptr;
  }

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= Capacity && alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Manager = void (*)(Op, unsigned char* self, unsigned char* dst);

  template <typename T>
  static void inline_manage(Op op, unsigned char* self, unsigned char* dst) {
    T* v = std::launder(reinterpret_cast<T*>(self));
    if (op == Op::kMoveTo) ::new (static_cast<void*>(dst)) T(std::move(*v));
    v->~T();
  }

  template <typename T>
  static void heap_manage(Op op, unsigned char* self, unsigned char* dst) {
    T** slot = std::launder(reinterpret_cast<T**>(self));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dst)) T*(*slot);
    } else {
      delete *slot;
    }
  }

  template <typename T>
  const T* ptr() const {
    if constexpr (fits_inline<T>()) {
      return std::launder(reinterpret_cast<const T*>(buf_));
    } else {
      return *std::launder(reinterpret_cast<T* const*>(buf_));
    }
  }

  void move_from(SmallAny& other) noexcept {
    if (!other.tag_) return;
    other.manager_(Op::kMoveTo, other.buf_, buf_);
    manager_ = other.manager_;
    tag_ = other.tag_;
    other.manager_ = nullptr;
    other.tag_ = nullptr;
  }

  void reset() noexcept {
    if (!tag_) return;
    manager_(Op::kDestroy, buf_, nullptr);
    manager_ = nullptr;
    tag_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  Manager manager_{nullptr};
  const char* tag_{nullptr};
};

}  // namespace scion::util
