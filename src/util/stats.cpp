#include "util/stats.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace scion::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void EmpiricalCdf::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::quantile(double p) const {
  SCION_CHECK(!values_.empty(), "statistic needs at least one sample");
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  if (values_.size() == 1) return values_.front();
  const double pos = p * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double EmpiricalCdf::min() const {
  SCION_CHECK(!values_.empty(), "statistic needs at least one sample");
  ensure_sorted();
  return values_.front();
}

double EmpiricalCdf::max() const {
  SCION_CHECK(!values_.empty(), "statistic needs at least one sample");
  ensure_sorted();
  return values_.back();
}

double EmpiricalCdf::mean() const {
  if (values_.empty()) return 0.0;
  // Sum over the sorted samples so the floating-point total (and thus the
  // mean) is a pure function of the multiset of values, not insertion order.
  ensure_sorted();
  // simlint:allow(float-accum) — ascending-order sum, canonical per multiset.
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double EmpiricalCdf::fraction_at_most(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

const std::vector<double>& EmpiricalCdf::sorted() const {
  ensure_sorted();
  return values_;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points == 0) return out;
  ensure_sorted();
  points = std::min(points, values_.size());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = points == 1
                         ? 1.0
                         : static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = quantile(p);
    out.emplace_back(x, fraction_at_most(x));
  }
  return out;
}

std::string EmpiricalCdf::summary() const {
  if (values_.empty()) return "(empty)";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu min=%.4g p10=%.4g p50=%.4g p90=%.4g max=%.4g mean=%.4g",
                count(), min(), quantile(0.1), quantile(0.5), quantile(0.9),
                max(), mean());
  return buf;
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    SCION_CHECK(x >= 0.0, "log-scale statistic needs non-negative samples");
    if (x == 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace scion::util
