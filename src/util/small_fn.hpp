// Move-only callable with inline storage: std::function without the
// per-callback heap allocation.
//
// std::function's small-buffer capacity (16 bytes in libstdc++) is smaller
// than almost every capture in the event loop — a delivery lambda carrying
// a simnet Message, a periodic-timer re-arm closure — so scheduling through
// std::function costs one operator-new per event. SmallFn<Capacity> stores
// captures up to Capacity bytes inline and only falls back to the heap for
// larger ones, which the hot-path allocation budgets (test_alloc_budget)
// then catch. It is move-only, so captures can own shared_ptrs without the
// copyability tax std::function imposes.
//
// Scope: void() signature only — exactly what the Simulator schedules. Not
// a general std::function replacement.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace scion::util {

template <std::size_t Capacity>
class SmallFn {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &inline_invoke<Fn>;
      manager_ = &inline_manage<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = &heap_invoke<Fn>;
      manager_ = &heap_manage<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Whether captures of `F` avoid the heap fallback — lets call sites
  /// static_assert that a hot closure stays inline.
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Invoke = void (*)(unsigned char*);
  using Manager = void (*)(Op, unsigned char* self, unsigned char* dst);

  template <typename Fn>
  static void inline_invoke(unsigned char* buf) {
    (*std::launder(reinterpret_cast<Fn*>(buf)))();
  }
  template <typename Fn>
  static void inline_manage(Op op, unsigned char* self, unsigned char* dst) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMoveTo) ::new (static_cast<void*>(dst)) Fn(std::move(*fn));
    fn->~Fn();
  }

  template <typename Fn>
  static void heap_invoke(unsigned char* buf) {
    (**std::launder(reinterpret_cast<Fn**>(buf)))();
  }
  template <typename Fn>
  static void heap_manage(Op op, unsigned char* self, unsigned char* dst) {
    Fn** slot = std::launder(reinterpret_cast<Fn**>(self));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dst)) Fn*(*slot);
    } else {
      delete *slot;
    }
    // The Fn* slot itself is trivially destructible.
  }

  void move_from(SmallFn& other) noexcept {
    if (!other.invoke_) return;
    other.manager_(Op::kMoveTo, other.buf_, buf_);
    invoke_ = other.invoke_;
    manager_ = other.manager_;
    other.invoke_ = nullptr;
    other.manager_ = nullptr;
  }

  void reset() noexcept {
    if (!invoke_) return;
    manager_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manager_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  Invoke invoke_{nullptr};
  Manager manager_{nullptr};
};

}  // namespace scion::util
