// Strong time types used throughout the simulator.
//
// All simulation timestamps are integer nanoseconds since the start of the
// simulation. Strong types keep durations and absolute times from being
// mixed up and make unit mistakes (seconds vs milliseconds) impossible to
// compile.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace scion::util {

/// A span of simulated time. Internally nanoseconds in a signed 64-bit
/// integer, which covers ~292 years — far beyond any simulation horizon.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these over the raw constructor.
  static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1'000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  static constexpr Duration hours(std::int64_t h) { return seconds(h * 3600); }
  static constexpr Duration days(std::int64_t d) { return hours(d * 24); }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr Duration zero() { return Duration{0}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double as_minutes() const { return as_seconds() / 60.0; }
  constexpr double as_hours() const { return as_seconds() / 3600.0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration{-ns_}; }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "10m", "1.5s", "250ms".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// An absolute point on the simulated timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() { return TimePoint{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

}  // namespace scion::util
