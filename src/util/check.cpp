#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace scion::util {

void check_failed(const char* file, int line, const char* expr,
                  const char* msg) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s — %s\n", file, line, expr,
               msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace scion::util
