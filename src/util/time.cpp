#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace scion::util {

namespace {

std::string format_value(double v, const char* unit) {
  char buf[64];
  if (v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f%s", v, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g%s", v, unit);
  }
  return buf;
}

std::string format_ns(std::int64_t ns) {
  const bool neg = ns < 0;
  const double a = std::abs(static_cast<double>(ns));
  std::string s;
  if (a >= 3600e9) {
    s = format_value(a / 3600e9, "h");
  } else if (a >= 60e9) {
    s = format_value(a / 60e9, "m");
  } else if (a >= 1e9) {
    s = format_value(a / 1e9, "s");
  } else if (a >= 1e6) {
    s = format_value(a / 1e6, "ms");
  } else if (a >= 1e3) {
    s = format_value(a / 1e3, "us");
  } else {
    s = format_value(a, "ns");
  }
  return neg ? "-" + s : s;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }

std::string TimePoint::to_string() const { return format_ns(ns_); }

}  // namespace scion::util
