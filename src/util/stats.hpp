// Statistics helpers for the evaluation pipeline: streaming moments,
// empirical CDFs (every figure in the paper is a CDF), and geometric means
// (the diversity score of Section 4.2 is a geometric mean of link counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scion::util {

/// Streaming count/mean/variance/min/max using Welford's algorithm.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Empirical distribution over a set of samples.
///
/// Samples are accumulated with add() and sorted lazily; quantile and
/// fraction queries are then O(log n).
class EmpiricalCdf {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// p-quantile for p in [0, 1], linear interpolation between order
  /// statistics. Requires at least one sample.
  double quantile(double p) const;

  double median() const { return quantile(0.5); }
  double min() const;
  double max() const;
  double mean() const;

  /// Fraction of samples <= x, i.e. the CDF evaluated at x.
  double fraction_at_most(double x) const;

  /// The underlying sorted samples.
  const std::vector<double>& sorted() const;

  /// Evenly spaced (x, F(x)) points suitable for plotting or printing,
  /// at most `points` of them.
  std::vector<std::pair<double, double>> curve(std::size_t points = 32) const;

  /// Renders "p10=.. p50=.. p90=.." style summary.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

/// Geometric mean of non-negative values; zero if any value is zero.
/// Computed in log space to avoid overflow on long paths.
double geometric_mean(const std::vector<double>& xs);

// CDF rendering lives in obs/report.hpp (obs::print_cdf): all result output
// flows through the shared renderer so it is also available as JSON.

}  // namespace scion::util
