// Clang Thread Safety Analysis annotations + annotated lock primitives.
//
// ROADMAP item 2 shards the single serial event loop across workers, and
// the parallel layer already exists (exec::TaskPool, obs shards). Which
// mutable state those workers share, and under which lock, must be
// machine-checked, not tribal knowledge: these macros attach the lock
// protocol to the code (`SCION_GUARDED_BY(mu_)` on a member,
// `SCION_REQUIRES(mu_)` on a function) so Clang's -Wthread-safety proves
// every access site holds the right mutex. The checked and tsan presets
// build with -Wthread-safety -Werror; a missing lock is a compile error
// there. Under GCC (which has no thread-safety analysis) every macro
// expands to nothing, so annotated code costs nothing and builds
// everywhere.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so annotating members with them would verify nothing. Mutex-owning
// classes therefore use the annotated wrappers below:
//
//   util::Mutex      an annotated std::mutex (SCION_CAPABILITY). Satisfies
//                    BasicLockable, so std::condition_variable_any and the
//                    standard lock adapters still work with it.
//   util::MutexLock  annotated RAII scope lock (SCION_SCOPED_CAPABILITY);
//                    the drop-in replacement for std::lock_guard.
//   util::CondVar    std::condition_variable_any over util::Mutex; wait()
//                    declares SCION_REQUIRES(mu), so waiting without the
//                    lock is a compile error under Clang.
//
// Analysis is intraprocedural: predicate lambdas passed into a wait lose
// the lock context, so annotated code writes waits as explicit loops
// (`while (!pred) cv.wait(mu_);`). Quiescent-read accessors (documented
// main-thread-only, no parallel region in flight) opt out with
// SCION_NO_THREAD_SAFETY_ANALYSIS and say why. See DESIGN.md
// "Concurrency discipline" for the full recipe; the static half of the
// same contract (the shared-state inventory) lives in
// tools/simlint_state.hpp.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SCION_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SCION_THREAD_ANNOTATION
#define SCION_THREAD_ANNOTATION(x)  // not Clang: expands to nothing
#endif

// Type declares a lockable capability (classes acting as mutexes).
#define SCION_CAPABILITY(x) SCION_THREAD_ANNOTATION(capability(x))
// RAII type whose lifetime equals the hold of a capability.
#define SCION_SCOPED_CAPABILITY SCION_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only while holding the given mutex.
#define SCION_GUARDED_BY(x) SCION_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the given mutex.
#define SCION_PT_GUARDED_BY(x) SCION_THREAD_ANNOTATION(pt_guarded_by(x))
// Function acquires / releases / tries the listed capabilities.
#define SCION_ACQUIRE(...) \
  SCION_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCION_RELEASE(...) \
  SCION_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCION_TRY_ACQUIRE(...) \
  SCION_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Caller must hold / must not hold the listed capabilities.
#define SCION_REQUIRES(...) \
  SCION_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCION_EXCLUDES(...) \
  SCION_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function returns a reference to the given capability.
#define SCION_RETURN_CAPABILITY(x) SCION_THREAD_ANNOTATION(lock_returned(x))
// Opt-out for functions whose safety argument is extra-lexical (quiescent
// reads, init/teardown); the comment at the site must carry the proof.
#define SCION_NO_THREAD_SAFETY_ANALYSIS \
  SCION_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scion::util {

/// std::mutex with the capability attribute, so members can be declared
/// SCION_GUARDED_BY(mu_) and the analysis has something to track. Satisfies
/// Lockable (lock/unlock/try_lock), so std::condition_variable_any and
/// std::unique_lock accept it directly.
class SCION_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCION_ACQUIRE() { mu_.lock(); }
  void unlock() SCION_RELEASE() { mu_.unlock(); }
  bool try_lock() SCION_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scope lock over util::Mutex — the std::lock_guard replacement for
/// annotated classes. SCION_SCOPED_CAPABILITY tells the analysis the
/// capability is held for exactly this object's lifetime.
class SCION_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCION_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() SCION_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. wait() declares that the caller
/// holds `mu`, so Clang rejects an unlocked wait at compile time. The
/// lambda-predicate overloads are deliberately absent: the analysis is
/// intraprocedural and cannot see the lock inside a predicate lambda, so
/// callers write the loop out (`while (!pred) cv.wait(mu_);`), which also
/// keeps the wakeup condition visible at the wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// The body is opted out of analysis: condition_variable_any's internal
  /// unlock/relock of `mu` is invisible to the checker and would be
  /// misdiagnosed as a double acquire.
  void wait(Mutex& mu) SCION_REQUIRES(mu) SCION_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scion::util
