#include "util/rng.hpp"

#include "util/check.hpp"

#include <cmath>

namespace scion::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SCION_CHECK(lo <= hi, "uniform_int needs lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias: draws are accepted only below
  // `limit`, the largest multiple of `range` representable in 64 bits
  // (limit = range * floor(2^64 / range), computed without overflow as
  // max() - max() % range since max() = 2^64 - 1). Every residue class mod
  // `range` contains exactly limit/range accepted values, so the result is
  // exactly uniform — audited against Lemire's bounded-rejection method,
  // which rejects the identical set of draws for a given range and would
  // only change the constant factor, not the distribution
  // (tests/test_util.cpp UniformIntHasNoModuloBias).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

std::size_t Rng::index(std::size_t n) {
  SCION_CHECK(n > 0, "index needs a non-empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  SCION_CHECK(mean > 0, "exponential needs a positive mean");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double x_min, double alpha) {
  SCION_CHECK(x_min > 0 && alpha > 0, "pareto needs positive scale and shape");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  SCION_CHECK(n >= 1, "zipf needs n >= 1");
  // Rejection-inversion sampling (W. Hormann, G. Derflinger 1996) for the
  // Zipf distribution, valid for any s >= 0.
  if (n == 1) return 1;
  const double q = s;
  auto h = [&](double x) {
    if (std::abs(q - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - q) - 1.0) / (1.0 - q);
  };
  auto h_inv = [&](double x) {
    if (std::abs(q - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - q), 1.0 / (1.0 - q));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    const double kk = static_cast<double>(k == 0 ? 1 : k);
    if (k - x <= 0.5 || u >= h(kk + 0.5) - std::pow(kk, -q)) {
      return k == 0 ? 1 : (k > n ? n : k);
    }
  }
}

Rng Rng::fork() { return Rng{(*this)()}; }

Rng Rng::substream(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t x = seed;
  const std::uint64_t mixed_seed = splitmix64(x);
  x = mixed_seed ^ stream;
  return Rng{splitmix64(x)};
}

}  // namespace scion::util
