// Minimal command-line / environment knob parsing for the bench and example
// binaries. Every harness must run with no arguments (default scale), but
// larger paper-scale runs are reachable via --key=value flags or REPRO_*
// environment variables.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace scion::util {

/// Parsed `--key=value` flags with environment-variable fallback.
///
/// Lookup order for key "scale": the flag `--scale=X`, then the environment
/// variable `REPRO_SCALE`, then the provided default.
class Flags {
 public:
  Flags() = default;

  /// Parses argv, ignoring anything that does not look like --key=value
  /// (so google-benchmark's own flags pass through untouched).
  Flags(int argc, char** argv);

  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  void set(const std::string& key, const std::string& value);

  /// Every explicitly set flag, in key order (for run manifests).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace scion::util
