// Strong domain types: tagged identifiers and byte quantities.
//
// The simulator wires ISD/AS identifiers, per-link interface ids, node and
// channel handles, and byte accounting through beaconing, BGP, and the
// analysis pipeline. All of these are "just integers" on the wire, which
// makes swapped arguments compile silently — exactly the mix-up the AS-level
// multigraph invites (an IfId is *not* a neighbor handle: parallel links
// give one neighbor many interfaces). StrongId turns each identifier into
// its own type so the compiler rejects cross-assignments, and Bytes does the
// same for wire-size accounting. The negative-compilation suite
// (tests/negative_compile/) pins the rejections down.
//
// Design rules:
//   * construction from the representation is explicit; there is no
//     implicit conversion back (call value()).
//   * ids of different tags never compare, convert, or assign to each other.
//   * ids are ordered and hashable so they work as map keys.
//   * Bytes supports the arithmetic a counter needs (+, +=, scaling by a
//     count) but will not silently mix with plain integers.
//
// Rendering goes through the obs layer (obs::TraceField and the table
// renderer accept any type with a value() member); to_string() exists for
// diagnostics only and renders the raw number, so switching a field to a
// strong type never changes serialized output.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace scion::util {

/// A tagged integral identifier. `Tag` is an (usually incomplete) marker
/// type that makes each instantiation a distinct, non-interconvertible type;
/// `Rep` is the wire representation.
template <class Tag, class Rep>
class StrongId {
 public:
  using rep = Rep;

  constexpr StrongId() = default;
  explicit constexpr StrongId(Rep v) : v_{v} {}

  /// The raw representation (for serialization, indexing, and rendering).
  constexpr Rep value() const { return v_; }

  constexpr auto operator<=>(const StrongId&) const = default;

  /// Diagnostic rendering: the raw number, base 10.
  std::string to_string() const { return std::to_string(v_); }

 private:
  Rep v_{};
};

/// A quantity of bytes (wire sizes, channel counters, overhead ledgers).
/// Explicit construction keeps raw counts and byte totals from mixing; the
/// arithmetic below is the closed set a counter needs.
class Bytes {
 public:
  using rep = std::uint64_t;

  constexpr Bytes() = default;
  explicit constexpr Bytes(std::uint64_t n) : n_{n} {}

  static constexpr Bytes zero() { return Bytes{0}; }

  constexpr std::uint64_t value() const { return n_; }

  constexpr Bytes operator+(Bytes o) const { return Bytes{n_ + o.n_}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{n_ - o.n_}; }
  constexpr Bytes& operator+=(Bytes o) { n_ += o.n_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { n_ -= o.n_; return *this; }
  /// Scaling by a count (e.g. bytes-per-entry * entries).
  constexpr Bytes operator*(std::uint64_t k) const { return Bytes{n_ * k}; }

  constexpr auto operator<=>(const Bytes&) const = default;

  /// Diagnostic rendering: the raw byte count, base 10 (no unit suffix, so
  /// emitted artifacts stay byte-identical to the pre-strong-type output).
  std::string to_string() const { return std::to_string(n_); }

 private:
  std::uint64_t n_{0};
};

constexpr Bytes operator*(std::uint64_t k, Bytes b) { return b * k; }

/// Concept matched by StrongId instantiations and Bytes: anything exposing
/// its integral representation via value(). The obs renderer uses this to
/// accept strong types wherever a number is expected.
template <class T>
concept StrongValueType = requires(const T& t) {
  typename T::rep;
  { t.value() } -> std::convertible_to<typename T::rep>;
};

}  // namespace scion::util

template <class Tag, class Rep>
struct std::hash<scion::util::StrongId<Tag, Rep>> {
  std::size_t operator()(const scion::util::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct std::hash<scion::util::Bytes> {
  std::size_t operator()(const scion::util::Bytes& b) const noexcept {
    return std::hash<std::uint64_t>{}(b.value());
  }
};
