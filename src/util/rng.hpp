// Deterministic random number generation.
//
// All randomness in the repository flows through a seeded Rng instance so a
// given experiment configuration reproduces bit-identical results. The
// generator is xoshiro256**, which is fast, has a 256-bit state, and passes
// the usual statistical batteries.
#pragma once

#include <cstdint>
#include <vector>

namespace scion::util {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> facilities when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from the 64-bit seed via splitmix64, as
  /// recommended by the xoshiro authors. There is deliberately no default
  /// seed: every randomness consumer must receive its seed explicitly so
  /// experiment reproducibility is auditable end to end.
  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Pareto-distributed value with scale x_min and shape alpha.
  double pareto(double x_min, double alpha);

  /// Zipf-like rank sample in [1, n]: P(k) proportional to k^-s.
  /// Uses rejection-inversion; O(1) expected time per sample.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derives an independent child generator; handy for giving each
  /// simulated entity its own stream while keeping global determinism.
  Rng fork();

  /// Stateless substream derivation for parallel tasks: the generator for
  /// (seed, stream) is a pure function of the two values, so task `i` of a
  /// parallel_map draws the same sequence no matter which worker runs it or
  /// how many workers exist. Two splitmix64 rounds decorrelate adjacent
  /// stream ids before the constructor expands the result to the full
  /// 256-bit xoshiro state.
  static Rng substream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
};

}  // namespace scion::util
