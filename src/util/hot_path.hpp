// Hot-path region annotations for the simlint `hot-path-cost` analyzer.
//
// The Fig. 5 overhead run spends ~295 of ~297 s in the beaconing inner
// loop (20.6M PCBs received), so per-event heap allocations, large-value
// copies and string formatting there dominate wall time. These macros mark
// the per-event code regions; tools/simlint_hotpath.hpp then flags the
// costly constructs *inside* them (heap allocation, std::string building,
// by-value passing of large domain types, per-event map lookups) and
// emits the deterministic cost report that tools/cost_baseline.json gates.
//
// The macros expand to plain no-op statements — they exist as lexical
// markers for the token-scanning linter (which strips comments, so the
// markers must be real code tokens) and as searchable documentation that a
// region is on the per-PCB / per-update fast path.
//
// Two forms:
//
//   SCION_HOT_FN                          // marks the whole function that
//   void BeaconServer::handle_pcb(...) {  // starts on a following line;
//     ...                                 // region ends at its closing
//   }                                     // brace
//
//   SCION_HOT_PATH_BEGIN(pcb_admission);  // explicit sub-region, for hot
//   ...                                   // loops inside otherwise-cold
//   SCION_HOT_PATH_END();                 // functions (e.g. a constructor
//                                         // installing a hot handler)
//
// Cost findings are suppressed like any other simlint rule, with
// `// simlint:allow(hot-alloc)` etc. on or above the offending line; every
// allow is still counted in the cost report, so suppressed sites cannot
// creep without failing the baseline diff. See DESIGN.md "Hot-path
// annotation recipe".
#pragma once

// The linter scans source text, not preprocessed output, so the expansions
// can be (and are) no-ops: annotated code is zero-cost in every build mode.
#define SCION_HOT_PATH_BEGIN(label) static_assert(true)
#define SCION_HOT_PATH_END() static_assert(true)
#define SCION_HOT_FN
