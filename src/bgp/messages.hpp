// BGP / BGPsec update message structures and wire-size models.
//
// BGP sizes follow the field layout of RFC 4271: one UPDATE carries one set
// of path attributes plus any number of NLRI prefixes, so announcements
// sharing a path aggregate. BGPsec (RFC 8205) signs the path per prefix:
// no aggregation, and every AS hop adds a Secure_Path segment plus a
// signature segment (20-byte SKI + 2-byte length + ECDSA-P384 signature).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topology/ids.hpp"

namespace scion::bgp {

/// A prefix in the simulation: the AS that originates it (one simulated
/// prefix per AS; real per-AS prefix counts are applied at accounting time,
/// mirroring the paper's extrapolation).
using Prefix = topo::AsIndex;

/// Shared AS path (first element = the speaker that sent the update; last =
/// the origin).
using AsPath = std::shared_ptr<const std::vector<topo::AsIndex>>;

/// One UPDATE message: announcements share a single AS path; withdrawals
/// carry none.
struct BgpUpdateMsg {
  std::vector<Prefix> announced;
  AsPath path;  // null iff announced is empty
  std::vector<Prefix> withdrawn;
};

/// Immutable shared UPDATE, the form a message takes on the simulated wire:
/// one allocation when sent, refcount bumps from there to every reader
/// (delivery closure, monitor accounting, RIB ingestion).
using BgpUpdateRef = std::shared_ptr<const BgpUpdateMsg>;

// --- RFC 4271 field sizes -------------------------------------------------
/// Fixed header: marker (16) + length (2) + type (1).
inline constexpr std::size_t kBgpHeaderBytes = 19;
/// Withdrawn-routes length + total-path-attribute length fields.
inline constexpr std::size_t kBgpLengthFieldsBytes = 4;
/// ORIGIN attribute: flags+type+len+value.
inline constexpr std::size_t kBgpOriginAttrBytes = 4;
/// AS_PATH attribute header: flags+type+len + segment type + count.
inline constexpr std::size_t kBgpAsPathAttrHeaderBytes = 5;
/// 4-byte ASN per path hop.
inline constexpr std::size_t kBgpAsnBytes = 4;
/// NEXT_HOP attribute: flags+type+len + IPv4 address.
inline constexpr std::size_t kBgpNextHopAttrBytes = 7;
/// Typical further attributes observed on real announcements (MED,
/// a couple of communities): without them BGP updates come out smaller
/// than RouteViews measurements.
inline constexpr std::size_t kBgpExtraAttrBytes = 24;
/// One NLRI / withdrawn prefix: length octet + up to /32 prefix.
inline constexpr std::size_t kBgpPrefixBytes = 5;

/// Average NLRI per real-world UPDATE: prefixes of one origin do not all
/// share fate, so an event that re-announces an origin's pc prefixes costs
/// about pc / kPrefixesPerRealUpdate updates, not one. Used only by the
/// monthly accounting (BGPsec signs per prefix and is unaffected).
inline constexpr double kPrefixesPerRealUpdate = 2.0;

// --- RFC 8205 field sizes -------------------------------------------------
/// Secure_Path segment per AS: pCount (1) + flags (1) + ASN (4).
inline constexpr std::size_t kBgpsecSecurePathSegmentBytes = 6;
/// Secure_Path length field.
inline constexpr std::size_t kBgpsecSecurePathHeaderBytes = 2;
/// Signature_Block: length (2) + algorithm id (1).
inline constexpr std::size_t kBgpsecSignatureBlockHeaderBytes = 3;
/// Signature segment per AS: SKI (20) + sig length (2) + ECDSA-P384 (96).
inline constexpr std::size_t kBgpsecSignatureSegmentBytes = 20 + 2 + 96;

/// Size of a BGP UPDATE announcing `n_prefixes` over a path of
/// `as_path_len` hops and withdrawing `n_withdrawn`.
util::Bytes bgp_update_size(std::size_t as_path_len, std::size_t n_prefixes,
                            std::size_t n_withdrawn);

/// Size of a BGPsec UPDATE for a single prefix over `as_path_len` hops.
util::Bytes bgpsec_update_size(std::size_t as_path_len);

/// Size of a BGPsec withdrawal (unsigned, like plain BGP).
util::Bytes bgpsec_withdrawal_size();

util::Bytes update_wire_size(const BgpUpdateMsg& msg);

}  // namespace scion::bgp
