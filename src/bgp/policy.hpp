// Gao-Rexford routing policy.
//
// Local preference ranks routes by the business relationship they were
// learned over (customer > peer > provider), and the export rule enforces
// valley-freeness: routes learned from peers or providers are only exported
// to customers. Tier-1 core links behave like peering for policy purposes.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace scion::bgp {

/// The relationship of a neighbor from the local AS's point of view.
enum class Relationship : std::uint8_t { kCustomer, kPeer, kProvider };

const char* to_string(Relationship r);

/// Classifies the far side of `link` as seen from `self`.
Relationship classify(const topo::Topology& topo, topo::LinkIndex link,
                      topo::AsIndex self);

/// Higher is preferred.
constexpr int local_pref(Relationship learned_from) {
  switch (learned_from) {
    case Relationship::kCustomer:
      return 2;
    case Relationship::kPeer:
      return 1;
    case Relationship::kProvider:
      return 0;
  }
  return 0;
}

/// Whether a route learned over `learned_from` may be exported to a
/// neighbor with relationship `to`. Own prefixes are exported everywhere
/// (callers treat self-originated routes as customer routes).
constexpr bool may_export(Relationship learned_from, Relationship to) {
  return learned_from == Relationship::kCustomer || to == Relationship::kCustomer;
}

}  // namespace scion::bgp
