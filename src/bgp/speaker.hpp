// A BGP/BGPsec speaker: one per AS (the paper's SimBGP configuration models
// each AS as border routers in a star around one internal speaker holding
// the LOC_RIB; only the central speaker runs the decision process, so we
// model it directly).
//
// Implements Adj-RIB-In / Loc-RIB / Adj-RIB-Out, the Gao-Rexford decision
// process (local-pref by relationship, then shortest AS path, then lowest
// neighbor id), per-neighbor MRAI batching (15 s in the evaluation), route
// aggregation (announcements sharing a path go into one UPDATE), session
// up/down handling for link-flap churn, and a multipath accessor returning
// the equal-best route set used by the Fig. 6 BGP series.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/messages.hpp"
#include "bgp/policy.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace scion::bgp {

class Speaker {
 public:
  struct NeighborInfo {
    topo::AsIndex as{topo::kInvalidAsIndex};
    Relationship rel{Relationship::kPeer};
  };

  /// A route in Adj-RIB-In (or the Loc-RIB best). `path` starts at the
  /// sending neighbor and ends at the origin; self-originated routes have
  /// an empty path.
  struct Route {
    AsPath path;
    Relationship learned_from{Relationship::kCustomer};
    topo::AsIndex neighbor{topo::kInvalidAsIndex};

    std::size_t length() const { return path ? path->size() : 0; }
  };

  /// By value: flush() hands each UPDATE over by move, so a sink that
  /// wraps it in a BgpUpdateRef takes the prefix vectors without copying.
  using SendFn = std::function<void(topo::AsIndex neighbor, BgpUpdateMsg)>;
  using ScheduleFn =
      std::function<void(util::Duration delay, std::function<void()>)>;

  Speaker(topo::AsIndex self, std::vector<NeighborInfo> neighbors,
          util::Duration mrai, SendFn send, ScheduleFn schedule,
          std::uint64_t seed);

  topo::AsIndex self() const { return self_; }

  /// Originates this AS's own prefix.
  void originate(Prefix p);

  /// Processes an UPDATE received from `from`.
  void handle_update(topo::AsIndex from, const BgpUpdateMsg& msg);

  /// eBGP session to `neighbor` went down: flush its routes and re-decide.
  void session_down(topo::AsIndex neighbor);

  /// Session restored: full table export per policy (a session reset
  /// triggers a full RIB exchange, the dominant churn cost in practice).
  void session_up(topo::AsIndex neighbor);

  bool session_is_up(topo::AsIndex neighbor) const;

  /// Current best route for a prefix (nullopt if unreachable).
  std::optional<Route> best(Prefix p) const;

  /// Equal-best multipath set: every Adj-RIB-In route tying the best on
  /// (local-pref, AS-path length).
  std::vector<Route> multipath(Prefix p) const;

  std::uint64_t updates_sent() const { return updates_sent_; }
  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t best_changes() const { return best_changes_; }

 private:
  struct NeighborState {
    NeighborInfo info;
    bool up{true};
    bool mrai_armed{false};
    /// prefix -> advertised path (what the neighbor believes). Lookup-only,
    /// so the unordered container cannot leak iteration order into output.
    std::unordered_map<Prefix, AsPath> rib_out;
    /// prefix -> path to announce (null = withdraw), flushed on MRAI fire.
    /// Ordered: flush() iterates it, and that order decides UPDATE packing.
    std::map<Prefix, AsPath> pending;
  };

  std::size_t index_of(topo::AsIndex neighbor) const;
  void reevaluate(Prefix p);
  /// Brings one neighbor's Adj-RIB-Out in line with the current best.
  void sync_neighbor(std::size_t idx, Prefix p,
                     const std::optional<Route>& best, const AsPath& export_path);
  void arm_mrai(std::size_t idx);
  void flush(std::size_t idx);
  std::optional<Route> compute_best(Prefix p) const;
  /// Builds [self] + best.path once per re-decision.
  AsPath make_export_path(const Route& best) const;

  topo::AsIndex self_;
  util::Duration mrai_;
  SendFn send_;
  ScheduleFn schedule_;
  util::Rng rng_;

  std::vector<NeighborState> neighbors_;
  std::unordered_map<topo::AsIndex, std::size_t> neighbor_index_;
  /// prefix -> per-neighbor-slot route (empty path = no route). Ordered:
  /// session_down() re-decides every prefix in iteration order, which feeds
  /// the MRAI jitter RNG and therefore the message sequence.
  std::map<Prefix, std::vector<Route>> rib_in_;
  /// Ordered: session_up() replays it as the full-table export.
  std::map<Prefix, Route> loc_rib_;
  std::vector<Prefix> own_prefixes_;

  std::uint64_t updates_sent_{0};
  std::uint64_t updates_received_{0};
  std::uint64_t best_changes_{0};
};

}  // namespace scion::bgp
