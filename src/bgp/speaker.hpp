// A BGP/BGPsec speaker: one per AS (the paper's SimBGP configuration models
// each AS as border routers in a star around one internal speaker holding
// the LOC_RIB; only the central speaker runs the decision process, so we
// model it directly).
//
// Implements Adj-RIB-In / Loc-RIB / Adj-RIB-Out, the Gao-Rexford decision
// process (local-pref by relationship, then shortest AS path, then lowest
// neighbor id), per-neighbor MRAI batching (15 s in the evaluation) with
// seeded jitter, route aggregation (announcements sharing a path go into
// one UPDATE), session up/down handling for link-flap churn, and a
// multipath accessor returning the equal-best route set used by the Fig. 6
// BGP series.
//
// Churn-survival mechanisms (both default-off so steady-state runs are
// byte-identical to the pre-churn configuration):
//
//  - Route-flap damping (RFC 2439 shape): each (neighbor, prefix) carries a
//    penalty charged on withdrawal / path change / session loss, decayed
//    exponentially with a configured half-life. Crossing the suppress
//    threshold removes the route from the decision process until the
//    penalty decays back under the reuse threshold (re-checked by a seeded
//    reuse timer, never by wall-clock polling).
//  - Graceful restart: a session drop marks the neighbor's routes stale
//    instead of flushing them, preserving forwarding through the outage. A
//    stale timer flushes if the session never returns; after it returns,
//    the peer's full-table replay refreshes routes and a re-sync sweep
//    drops whatever stayed stale (the End-of-RIB substitute).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/messages.hpp"
#include "bgp/policy.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace scion::bgp {

/// What a deferred speaker callback is for; the owning simulator maps each
/// kind to its own obs::EventLabel so the event profiler attributes MRAI
/// flushes, damping reuse checks, and graceful-restart sweeps separately.
enum class TimerKind : std::uint8_t {
  kMrai,
  kDamping,
  kGrStale,
};

/// RFC 2439-shaped route-flap damping knobs. Defaults follow the RFC's
/// example figures (penalty 1000 per flap, suppress at 2000, reuse at 750,
/// 15 min half-life, one hour maximum suppression).
struct DampingConfig {
  bool enabled{false};
  double penalty_per_flap{1000.0};
  double suppress_threshold{2000.0};
  double reuse_threshold{750.0};
  util::Duration half_life{util::Duration::minutes(15)};
  /// Bounds suppression via the RFC's penalty ceiling: the penalty is
  /// capped so that decaying to the reuse threshold never takes longer
  /// than this.
  util::Duration max_suppress{util::Duration::hours(1)};
};

struct GracefulRestartConfig {
  bool enabled{false};
  /// How long stale routes survive a dead session before being flushed.
  util::Duration stale_timer{util::Duration::minutes(3)};
  /// After the session returns, how long the peer's full-table replay may
  /// take before still-stale routes are swept (End-of-RIB substitute).
  util::Duration resync_flush_delay{util::Duration::minutes(1)};
};

struct SpeakerOptions {
  util::Duration mrai{util::Duration::seconds(15)};
  /// MRAI jitter amplitude: each flush waits mrai * uniform(1-j, 1+j),
  /// desynchronizing neighbors the way deployed timers do.
  double mrai_jitter{0.2};
  DampingConfig damping{};
  GracefulRestartConfig graceful_restart{};
};

class Speaker {
 public:
  struct NeighborInfo {
    topo::AsIndex as{topo::kInvalidAsIndex};
    Relationship rel{Relationship::kPeer};
  };

  /// A route in Adj-RIB-In (or the Loc-RIB best). `path` starts at the
  /// sending neighbor and ends at the origin; self-originated routes have
  /// an empty path. `stale` marks graceful-restart survivors: still used
  /// for forwarding, flushed if re-sync does not refresh them.
  struct Route {
    AsPath path;
    Relationship learned_from{Relationship::kCustomer};
    topo::AsIndex neighbor{topo::kInvalidAsIndex};
    bool stale{false};

    std::size_t length() const { return path ? path->size() : 0; }
  };

  /// By value: flush() hands each UPDATE over by move, so a sink that
  /// wraps it in a BgpUpdateRef takes the prefix vectors without copying.
  using SendFn = std::function<void(topo::AsIndex neighbor, BgpUpdateMsg)>;
  using ScheduleFn = std::function<void(util::Duration delay, TimerKind kind,
                                        std::function<void()>)>;
  /// The simulator's virtual clock; damping penalty decay is a pure
  /// function of it. May be null when damping is disabled.
  using ClockFn = std::function<util::TimePoint()>;

  Speaker(topo::AsIndex self, std::vector<NeighborInfo> neighbors,
          SpeakerOptions options, SendFn send, ScheduleFn schedule,
          ClockFn clock, std::uint64_t seed);

  topo::AsIndex self() const { return self_; }

  /// Originates this AS's own prefix.
  void originate(Prefix p);

  /// Processes an UPDATE received from `from`.
  void handle_update(topo::AsIndex from, const BgpUpdateMsg& msg);

  /// eBGP session to `neighbor` went down: flush its routes and re-decide.
  /// `forwarding_preserved` means the data plane through the neighbor still
  /// works (a process restart rather than a link loss); only then does
  /// graceful restart retain the routes as stale instead of flushing.
  void session_down(topo::AsIndex neighbor, bool forwarding_preserved = false);

  /// Session restored: full table export per policy (a session reset
  /// triggers a full RIB exchange, the dominant churn cost in practice).
  void session_up(topo::AsIndex neighbor);

  bool session_is_up(topo::AsIndex neighbor) const;

  /// Current best route for a prefix (nullopt if unreachable).
  std::optional<Route> best(Prefix p) const;

  /// Equal-best multipath set: every Adj-RIB-In route tying the best on
  /// (local-pref, AS-path length).
  std::vector<Route> multipath(Prefix p) const;

  std::uint64_t updates_sent() const { return updates_sent_; }
  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t best_changes() const { return best_changes_; }

  /// Damping: (neighbor, prefix) adjacencies currently / ever suppressed.
  std::uint64_t routes_suppressed() const { return routes_suppressed_; }
  std::uint64_t routes_reused() const { return routes_reused_; }
  /// Graceful restart: routes retained as stale across session drops, and
  /// stale routes eventually expired by the stale timer or re-sync sweep.
  std::uint64_t stale_retained() const { return stale_retained_; }
  std::uint64_t stale_expired() const { return stale_expired_; }

  /// True if the (neighbor, prefix) adjacency is damping-suppressed.
  bool is_suppressed(topo::AsIndex neighbor, Prefix p) const;

 private:
  /// Per-(neighbor, prefix) flap-damping state. The penalty decays lazily:
  /// it is only re-evaluated when charged or when a reuse timer fires, so
  /// the figure-of-merit never depends on when an observer looks.
  struct DampingState {
    double penalty{0.0};
    util::TimePoint last_charge{util::TimePoint::origin()};
    bool suppressed{false};
    /// Bumped on every suppress/unsuppress flip; in-flight reuse timers
    /// carry the epoch they were armed under and no-op on mismatch.
    std::uint32_t epoch{0};
  };

  struct NeighborState {
    NeighborInfo info;
    bool up{true};
    bool mrai_armed{false};
    /// prefix -> advertised path (what the neighbor believes). Lookup-only,
    /// so the unordered container cannot leak iteration order into output.
    std::unordered_map<Prefix, AsPath> rib_out;
    /// prefix -> path to announce (null = withdraw), flushed on MRAI fire.
    /// Ordered: flush() iterates it, and that order decides UPDATE packing.
    std::map<Prefix, AsPath> pending;
    /// Damping state per flapped prefix (entries appear on first charge;
    /// steady-state charges are lookups). Ordered for deterministic
    /// debugging walks; never iterated on the hot path.
    std::map<Prefix, DampingState> damping;
    /// Bumped on every session up/down flip; graceful-restart timers
    /// no-op when the session state changed after they were armed.
    std::uint32_t gr_epoch{0};
  };

  std::size_t index_of(topo::AsIndex neighbor) const;
  void reevaluate(Prefix p);
  /// Brings one neighbor's Adj-RIB-Out in line with the current best.
  void sync_neighbor(std::size_t idx, Prefix p,
                     const std::optional<Route>& best, const AsPath& export_path);
  void arm_mrai(std::size_t idx);
  void flush(std::size_t idx);
  std::optional<Route> compute_best(Prefix p) const;
  /// Builds [self] + best.path once per re-decision.
  AsPath make_export_path(const Route& best) const;

  /// Damping machinery: charge one flap against (neighbor idx, prefix);
  /// the caller reevaluates afterwards. Suppression state may flip inside.
  void damping_charge(std::size_t idx, Prefix p);
  void damping_reuse(std::size_t idx, Prefix p, std::uint32_t epoch);
  void arm_reuse_timer(std::size_t idx, Prefix p, DampingState& st);
  bool slot_suppressed(std::size_t idx, Prefix p) const;
  double decayed_penalty(const DampingState& st, util::TimePoint now) const;

  /// Graceful restart: flush every still-stale route of the neighbor
  /// (armed by both the stale timer and the re-sync sweep).
  void flush_stale(std::size_t idx, std::uint32_t epoch);

  topo::AsIndex self_;
  SpeakerOptions options_;
  /// RFC 2439 penalty ceiling derived from max_suppress and half_life.
  double penalty_cap_{0.0};
  SendFn send_;
  ScheduleFn schedule_;
  ClockFn clock_;
  util::Rng rng_;

  std::vector<NeighborState> neighbors_;
  std::unordered_map<topo::AsIndex, std::size_t> neighbor_index_;
  /// prefix -> per-neighbor-slot route (empty path = no route). Ordered:
  /// session_down() re-decides every prefix in iteration order, which feeds
  /// the MRAI jitter RNG and therefore the message sequence.
  std::map<Prefix, std::vector<Route>> rib_in_;
  /// Ordered: session_up() replays it as the full-table export.
  std::map<Prefix, Route> loc_rib_;
  std::vector<Prefix> own_prefixes_;

  std::uint64_t updates_sent_{0};
  std::uint64_t updates_received_{0};
  std::uint64_t best_changes_{0};
  std::uint64_t routes_suppressed_{0};
  std::uint64_t routes_reused_{0};
  std::uint64_t stale_retained_{0};
  std::uint64_t stale_expired_{0};
};

}  // namespace scion::bgp
