#include "bgp/messages.hpp"

namespace scion::bgp {

util::Bytes bgp_update_size(std::size_t as_path_len, std::size_t n_prefixes,
                            std::size_t n_withdrawn) {
  std::size_t size = kBgpHeaderBytes + kBgpLengthFieldsBytes;
  if (n_prefixes > 0) {
    size += kBgpOriginAttrBytes + kBgpNextHopAttrBytes + kBgpExtraAttrBytes +
            kBgpAsPathAttrHeaderBytes + as_path_len * kBgpAsnBytes +
            n_prefixes * kBgpPrefixBytes;
  }
  size += n_withdrawn * kBgpPrefixBytes;
  return util::Bytes{size};
}

util::Bytes bgpsec_update_size(std::size_t as_path_len) {
  return util::Bytes{kBgpHeaderBytes + kBgpLengthFieldsBytes + kBgpOriginAttrBytes +
         kBgpNextHopAttrBytes + kBgpExtraAttrBytes +
         kBgpsecSecurePathHeaderBytes +
         kBgpsecSignatureBlockHeaderBytes +
         as_path_len *
             (kBgpsecSecurePathSegmentBytes + kBgpsecSignatureSegmentBytes) +
         kBgpPrefixBytes};
}

util::Bytes bgpsec_withdrawal_size() {
  return util::Bytes{kBgpHeaderBytes + kBgpLengthFieldsBytes + kBgpPrefixBytes};
}

util::Bytes update_wire_size(const BgpUpdateMsg& msg) {
  const std::size_t path_len = msg.path ? msg.path->size() : 0;
  return bgp_update_size(path_len, msg.announced.size(), msg.withdrawn.size());
}

}  // namespace scion::bgp
