#include "bgp/messages.hpp"

namespace scion::bgp {

std::size_t bgp_update_size(std::size_t as_path_len, std::size_t n_prefixes,
                            std::size_t n_withdrawn) {
  std::size_t size = kBgpHeaderBytes + kBgpLengthFieldsBytes;
  if (n_prefixes > 0) {
    size += kBgpOriginAttrBytes + kBgpNextHopAttrBytes + kBgpExtraAttrBytes +
            kBgpAsPathAttrHeaderBytes + as_path_len * kBgpAsnBytes +
            n_prefixes * kBgpPrefixBytes;
  }
  size += n_withdrawn * kBgpPrefixBytes;
  return size;
}

std::size_t bgpsec_update_size(std::size_t as_path_len) {
  return kBgpHeaderBytes + kBgpLengthFieldsBytes + kBgpOriginAttrBytes +
         kBgpNextHopAttrBytes + kBgpExtraAttrBytes +
         kBgpsecSecurePathHeaderBytes +
         kBgpsecSignatureBlockHeaderBytes +
         as_path_len *
             (kBgpsecSecurePathSegmentBytes + kBgpsecSignatureSegmentBytes) +
         kBgpPrefixBytes;
}

std::size_t bgpsec_withdrawal_size() {
  return kBgpHeaderBytes + kBgpLengthFieldsBytes + kBgpPrefixBytes;
}

std::size_t update_wire_size(const BgpUpdateMsg& msg) {
  const std::size_t path_len = msg.path ? msg.path->size() : 0;
  return bgp_update_size(path_len, msg.announced.size(), msg.withdrawn.size());
}

}  // namespace scion::bgp
