#include "bgp/bgp_sim.hpp"

#include <algorithm>

#include "obs/event_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace scion::bgp {

namespace {

std::uint64_t pair_key(topo::AsIndex a, topo::AsIndex b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Decorrelates the injector's RNG stream from the simulation's own when
/// both derive from the same config seed.
constexpr std::uint64_t kFaultSeedMix = 0x9E3779B97F4A7C15ULL;

// Event-cost attribution labels (interned once at static init).
const obs::EventLabel kUpdateDeliverLabel =
    obs::event_label("bgp.update.deliver");
const obs::EventLabel kUpdateProcessLabel =
    obs::event_label("bgp.update.process");
const obs::EventLabel kMraiTimerLabel = obs::event_label("bgp.timer.mrai");
const obs::EventLabel kDampingTimerLabel =
    obs::event_label("bgp.timer.damping");
const obs::EventLabel kGrStaleTimerLabel =
    obs::event_label("bgp.timer.gr_stale");
const obs::EventLabel kSessionRestartLabel =
    obs::event_label("bgp.session.restart");
const obs::EventLabel kOriginateLabel = obs::event_label("bgp.originate");

obs::EventLabel timer_label(TimerKind kind) {
  switch (kind) {
    case TimerKind::kMrai: return kMraiTimerLabel;
    case TimerKind::kDamping: return kDampingTimerLabel;
    case TimerKind::kGrStale: return kGrStaleTimerLabel;
  }
  return kMraiTimerLabel;
}

}  // namespace

BgpSim::BgpSim(const topo::Topology& topology, BgpSimConfig config)
    : topology_{topology}, config_{config}, net_{sim_}, rng_{config.seed} {
  // Nodes (NodeId == AsIndex by construction).
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    const sim::NodeId node = net_.add_node(topology_.as_id(i).to_string());
    SCION_CHECK(node == node_of(i), "node ids must mirror AS indices");
    (void)node;
  }
  busy_until_.assign(topology_.as_count(), util::TimePoint::origin());

  // One channel per distinct adjacency (a BGP session rides one session
  // regardless of how many parallel physical links the pair shares).
  for (topo::LinkIndex l = 0; l < topology_.link_count(); ++l) {
    const topo::Link& link = topology_.link(l);
    const std::uint64_t key = pair_key(link.a, link.b);
    if (channel_by_pair_.contains(key)) continue;
    const auto latency = util::Duration::nanoseconds(rng_.uniform_int(
        config_.min_latency.ns(), config_.max_latency.ns()));
    const sim::ChannelId ch =
        net_.add_channel(node_of(link.a), node_of(link.b), latency);
    channel_by_pair_.emplace(key, ch);
    adjacencies_.push_back(Adjacency{std::min(link.a, link.b),
                                     std::max(link.a, link.b), ch});
  }

  // Speakers with their neighbor relationship tables.
  speakers_.reserve(topology_.as_count());
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    std::vector<Speaker::NeighborInfo> neighbors;
    std::vector<bool> seen(topology_.as_count(), false);
    for (topo::LinkIndex l : topology_.links_of(i)) {
      const topo::AsIndex n = topology_.neighbor(l, i);
      if (seen[n]) continue;
      seen[n] = true;
      neighbors.push_back(Speaker::NeighborInfo{n, classify(topology_, l, i)});
    }
    // Takes the UPDATE by value: flush() moves it in, and the one
    // make_shared here is the message's single wire-side allocation —
    // everything downstream shares the BgpUpdateRef.
    auto send = [this, i](topo::AsIndex neighbor, BgpUpdateMsg msg) {
      const auto it = channel_by_pair_.find(pair_key(i, neighbor));
      SCION_CHECK(it != channel_by_pair_.end(), "no channel for adjacency");
      const util::Bytes wire = update_wire_size(msg);
      net_.send(it->second, node_of(i), wire,
                std::make_shared<const BgpUpdateMsg>(std::move(msg)),
                kUpdateDeliverLabel);
    };
    auto schedule = [this](util::Duration delay, TimerKind kind,
                           std::function<void()> fn) {
      sim_.schedule_after(delay, timer_label(kind), std::move(fn));
    };
    auto clock = [this] { return sim_.now(); };
    SpeakerOptions options;
    options.mrai = config_.mrai;
    options.mrai_jitter = config_.mrai_jitter;
    options.damping = config_.damping;
    options.graceful_restart = config_.graceful_restart;
    speakers_.push_back(std::make_unique<Speaker>(
        i, std::move(neighbors), options, std::move(send),
        std::move(schedule), std::move(clock), rng_()));
  }

  // Delivery with per-speaker serial processing delay.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    net_.set_handler(node_of(i),
                     [this, i](const sim::Message& msg) { deliver(i, msg); });
  }

  // Origins: all ASes, or a uniform sample for memory-bounded runs.
  origins_.reserve(topology_.as_count());
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) origins_.push_back(i);
  if (config_.sampled_origins > 0 &&
      config_.sampled_origins < origins_.size()) {
    rng_.shuffle(origins_);
    origins_.resize(config_.sampled_origins);
    std::sort(origins_.begin(), origins_.end());
  }

  // Fault injection. The legacy per-adjacency churn knob becomes a flap
  // process in the plan (aggregate rate preserved; the injector picks the
  // failed *link*, and the session reacts only when its shared channel
  // actually changes state, so parallel links keep the session alive).
  faults::FaultPlan plan = config_.faults;
  const bool legacy_only = config_.faults.empty();
  const double flap_rate_per_hour = config_.flaps_per_adjacency_per_day *
                                    static_cast<double>(adjacencies_.size()) /
                                    24.0;
  if (flap_rate_per_hour > 0.0) {
    faults::FlapProcess flap;
    flap.rate_per_hour = flap_rate_per_hour;
    flap.downtime_min = config_.flap_downtime_min;
    flap.downtime_max = config_.flap_downtime_max;
    plan.flaps.push_back(flap);
  }
  if (legacy_only) plan.seed = config_.seed ^ kFaultSeedMix;
  faults::FaultInjector::Hooks hooks;
  hooks.on_link_down = [this](topo::LinkIndex l) { on_link_down(l); };
  hooks.on_link_up = [this](topo::LinkIndex l) { on_link_up(l); };
  hooks.on_session_restart = [this](topo::LinkIndex l, util::Duration d) {
    on_session_restart(l, d);
  };
  hooks.channel_of_link = [this](topo::LinkIndex l) {
    return session_channel(l);
  };
  injector_ = std::make_unique<faults::FaultInjector>(net_, std::move(plan),
                                                      &topology_,
                                                      std::move(hooks));
}

sim::ChannelId BgpSim::session_channel(topo::LinkIndex l) const {
  const topo::Link& link = topology_.link(l);
  return channel_by_pair_.at(pair_key(link.a, link.b));
}

void BgpSim::on_link_down(topo::LinkIndex l) {
  const topo::Link& link = topology_.link(l);
  // A parallel physical link may still carry the session; tear it down
  // only when the shared channel itself went dark.
  if (net_.channel_up(session_channel(l))) return;
  if (!speakers_[link.a]->session_is_up(link.b)) return;
  SCION_METRIC_COUNT("bgp.session_flaps", 1);
  SCION_TRACE(obs::Category::kBgp, sim_.now(), "flap", {"a", link.a},
              {"b", link.b});
  speakers_[link.a]->session_down(link.b);
  speakers_[link.b]->session_down(link.a);
}

void BgpSim::on_link_up(topo::LinkIndex l) {
  const topo::Link& link = topology_.link(l);
  if (!net_.channel_up(session_channel(l))) return;
  if (speakers_[link.a]->session_is_up(link.b)) return;
  speakers_[link.a]->session_up(link.b);
  speakers_[link.b]->session_up(link.a);
}

void BgpSim::on_session_restart(topo::LinkIndex l, util::Duration duration) {
  // The transport stays up; only the protocol session bounces (router /
  // process restart). With graceful restart the stale routes keep
  // forwarding across the gap — without it, the table drains and refills.
  const topo::Link& link = topology_.link(l);
  if (!speakers_[link.a]->session_is_up(link.b)) return;  // already down
  SCION_METRIC_COUNT("bgp.session_restarts", 1);
  SCION_TRACE(obs::Category::kBgp, sim_.now(), "session_restart",
              {"a", link.a}, {"b", link.b}, {"duration_ns", duration.ns()});
  speakers_[link.a]->session_down(link.b, /*forwarding_preserved=*/true);
  speakers_[link.b]->session_down(link.a, /*forwarding_preserved=*/true);
  sim_.schedule_after(duration, kSessionRestartLabel, [this, l] {
    const topo::Link& link = topology_.link(l);
    // A physical outage may have started meanwhile; if so, on_link_up
    // restores the session when the channel itself comes back.
    if (!net_.channel_up(session_channel(l))) return;
    if (speakers_[link.a]->session_is_up(link.b)) return;
    speakers_[link.a]->session_up(link.b);
    speakers_[link.b]->session_up(link.a);
  });
}

void BgpSim::add_monitor(topo::AsIndex as) {
  SCION_CHECK(!ran_, "monitors must be registered before run()");
  monitors_.try_emplace(as);
}

// Once per UPDATE on the wire. The deferred closure captures the shared
// BgpUpdateRef (a refcount bump, not a message copy) and must stay within
// the scheduler callback's inline capture budget.
SCION_HOT_FN
void BgpSim::deliver(topo::AsIndex to, const sim::Message& msg) {
  // Serial processing: each update occupies the speaker for the configured
  // processing delay (5 ms in the evaluation).
  const util::TimePoint start =
      std::max(sim_.now(), busy_until_[to]) + config_.processing_delay;
  busy_until_[to] = start;
  const BgpUpdateRef& update = msg.payload.get<BgpUpdateRef>();
  const topo::AsIndex from = as_of(msg.from);
  SCION_METRIC_OBSERVE("bgp.update_wire_bytes", update_wire_size(*update).value());
  sim_.schedule_at(start, kUpdateProcessLabel, [this, to, from, update] {
    SCION_TRACE(obs::Category::kBgp, sim_.now(), "update", {"to", to},
                {"from", from}, {"announced", update->announced.size()},
                {"withdrawn", update->withdrawn.size()});
    if (measuring_) {
      // Monitor accounting: a handful of registered monitors, only during
      // the measurement window. simlint:allow(hot-map-lookup)
      const auto it = monitors_.find(to);
      if (it != monitors_.end()) {
        ++it->second.raw_messages;
        it->second.raw_bytes += update_wire_size(*update).value();
        account(to, *update);
      }
    }
    speakers_[to]->handle_update(from, *update);
  });
}

void BgpSim::account(topo::AsIndex monitor, const BgpUpdateMsg& msg) {
  MonitorAccount& acc = monitors_.at(monitor);
  const std::size_t events = msg.announced.size() + msg.withdrawn.size();
  if (events == 0) return;
  const std::size_t size = update_wire_size(msg).value();
  const double fixed_share =
      (static_cast<double>(size) -
       static_cast<double>(events) * kBgpPrefixBytes) /
      static_cast<double>(events);
  const std::size_t path_len = msg.path ? msg.path->size() : 0;
  for (Prefix p : msg.announced) {
    MonitorAccount::PerOrigin& o = acc.per_origin[p];
    ++o.announce_events;
    o.path_len_sum += path_len;
    o.fixed_share_sum += fixed_share;
  }
  for (Prefix p : msg.withdrawn) {
    MonitorAccount::PerOrigin& o = acc.per_origin[p];
    ++o.withdraw_events;
    o.fixed_share_sum += fixed_share;
  }
}

void BgpSim::run() {
  SCION_CHECK(!ran_, "BgpSim::run is single-shot");
  ran_ = true;

  // Cold start: every origin announces its prefix, staggered over a few
  // seconds the way real sessions come up.
  for (Prefix p : origins_) {
    const auto offset =
        util::Duration::milliseconds(rng_.uniform_int(0, 5000));
    sim_.schedule_after(offset, kOriginateLabel,
                        [this, p] { speakers_[p]->originate(p); });
  }
  sim_.run_until(util::TimePoint::origin() + config_.convergence_window);
  SCION_TRACE(obs::Category::kBgp, sim_.now(), "converged",
              {"updates_sent", total_updates_sent()},
              {"origins", origins_.size()});

  // Measurement window with churn.
  measuring_ = true;
  measure_start_ = sim_.now();
  net_.reset_stats();
  injector_->arm(measure_start_ + config_.churn_window);
  sim_.run_until(measure_start_ + config_.churn_window);
  measuring_ = false;
}

const MonitorAccount& BgpSim::monitor(topo::AsIndex as) const {
  return monitors_.at(as);
}

double BgpSim::accounting_scale() const {
  // Extrapolate the churn window to 30 days and the sampled origins to the
  // full origin population.
  const double to_month = (30.0 * 24.0) / config_.churn_window.as_hours();
  const double sample_scale =
      static_cast<double>(topology_.as_count()) /
      static_cast<double>(origins_.size());
  return to_month * sample_scale;
}

double BgpSim::monthly_bgp_bytes(
    topo::AsIndex monitor, const std::vector<std::uint32_t>& prefix_counts) const {
  const MonitorAccount& acc = monitors_.at(monitor);
  // Real-world model: an event touching an origin's pc prefixes costs
  // pc / kPrefixesPerRealUpdate updates, each carrying the fixed parts
  // (header + attributes, path-length dependent) plus its share of NLRI.
  const double fixed_base =
      static_cast<double>(bgp_update_size(0, 1, 0).value() - kBgpPrefixBytes);
  const double withdrawal_fixed =
      static_cast<double>(bgp_update_size(0, 0, 1).value() - kBgpPrefixBytes);
  double bytes = 0.0;
  for (const auto& [origin, o] : acc.per_origin) {
    const double pc = static_cast<double>(prefix_counts[origin]);
    const double announce_fixed =
        static_cast<double>(o.announce_events) * fixed_base +
        static_cast<double>(o.path_len_sum) * kBgpAsnBytes;
    const double withdraw_fixed =
        static_cast<double>(o.withdraw_events) * withdrawal_fixed;
    bytes += pc * ((announce_fixed + withdraw_fixed) / kPrefixesPerRealUpdate +
                   static_cast<double>(o.announce_events + o.withdraw_events) *
                       kBgpPrefixBytes);
  }
  return bytes * accounting_scale();
}

double BgpSim::monthly_bgpsec_bytes(
    topo::AsIndex monitor, const std::vector<std::uint32_t>& prefix_counts) const {
  const MonitorAccount& acc = monitors_.at(monitor);
  double bytes = 0.0;
  const double fixed =
      static_cast<double>(bgpsec_update_size(0).value());
  const double per_hop = static_cast<double>(
      kBgpsecSecurePathSegmentBytes + kBgpsecSignatureSegmentBytes);
  for (const auto& [origin, o] : acc.per_origin) {
    const double pc = static_cast<double>(prefix_counts[origin]);
    // BGPsec cannot aggregate: every prefix is its own signed update.
    bytes += pc * (static_cast<double>(o.announce_events) * fixed +
                   static_cast<double>(o.path_len_sum) * per_hop +
                   static_cast<double>(o.withdraw_events) *
                       static_cast<double>(bgpsec_withdrawal_size().value()));
  }
  return bytes * accounting_scale();
}

std::vector<std::vector<topo::LinkIndex>> BgpSim::bgp_link_paths(
    topo::AsIndex src, Prefix t) const {
  std::vector<std::vector<topo::LinkIndex>> out;
  for (const Speaker::Route& route : speakers_[src]->multipath(t)) {
    std::vector<topo::LinkIndex> links;
    topo::AsIndex prev = src;
    if (!route.path) continue;  // own prefix
    for (topo::AsIndex hop : *route.path) {
      // Multipath BGP may balance over all parallel links of each hop.
      for (topo::LinkIndex l : topology_.links_between(prev, hop)) {
        links.push_back(l);
      }
      prev = hop;
    }
    out.push_back(std::move(links));
  }
  return out;
}

bool BgpSim::has_live_route(topo::AsIndex src, Prefix t) const {
  for (const Speaker::Route& route : speakers_[src]->multipath(t)) {
    if (!route.path) return true;  // own prefix
    bool live = true;
    topo::AsIndex prev = src;
    for (topo::AsIndex hop : *route.path) {
      const auto it = channel_by_pair_.find(pair_key(prev, hop));
      if (it == channel_by_pair_.end() || !net_.channel_up(it->second)) {
        live = false;
        break;
      }
      prev = hop;
    }
    if (live) return true;
  }
  return false;
}

std::uint64_t BgpSim::total_updates_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : speakers_) n += s->updates_sent();
  return n;
}

std::uint64_t BgpSim::total_routes_suppressed() const {
  std::uint64_t n = 0;
  for (const auto& s : speakers_) n += s->routes_suppressed();
  return n;
}

std::uint64_t BgpSim::total_routes_reused() const {
  std::uint64_t n = 0;
  for (const auto& s : speakers_) n += s->routes_reused();
  return n;
}

std::uint64_t BgpSim::total_stale_retained() const {
  std::uint64_t n = 0;
  for (const auto& s : speakers_) n += s->stale_retained();
  return n;
}

std::uint64_t BgpSim::total_stale_expired() const {
  std::uint64_t n = 0;
  for (const auto& s : speakers_) n += s->stale_expired();
  return n;
}

}  // namespace scion::bgp
