// Event-driven BGP / BGPsec network simulation (the SimBGP substitute).
//
// Configuration mirrors Section 5.1: each AS is one speaker, MRAI 15 s per
// neighbor, 5 ms processing delay per incoming update. The run has two
// phases: cold-start convergence (warm-up, excluded from accounting) and a
// measurement window driven by a Poisson session-flap churn process. The
// monitors record per-origin update statistics from which monthly BGP and
// BGPsec byte counts are derived, applying per-AS prefix counts exactly as
// the paper extrapolates SimBGP results with RouteViews prefix counts.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bgp/speaker.hpp"
#include "faults/fault_injector.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace scion::bgp {

struct BgpSimConfig {
  util::Duration mrai{util::Duration::seconds(15)};
  /// MRAI jitter amplitude (see SpeakerOptions::mrai_jitter).
  double mrai_jitter{0.2};
  /// Churn-survival mechanisms, both default-off (steady-state runs stay
  /// byte-identical to the pre-churn configuration).
  DampingConfig damping{};
  GracefulRestartConfig graceful_restart{};
  util::Duration processing_delay{util::Duration::milliseconds(5)};
  /// Warm-up: cold-start convergence, excluded from the measurement.
  util::Duration convergence_window{util::Duration::minutes(30)};
  /// Measurement window with churn; extrapolated to a month.
  util::Duration churn_window{util::Duration::hours(2)};
  /// Expected session flaps per adjacency per day (drives steady-state
  /// update volume; see DESIGN.md substitutions).
  double flaps_per_adjacency_per_day{0.2};
  util::Duration flap_downtime_min{util::Duration::seconds(30)};
  util::Duration flap_downtime_max{util::Duration::seconds(120)};
  /// Number of ASes that originate a prefix in the simulation; 0 = all.
  /// Sampling keeps memory bounded; accounting scales by total/sampled.
  std::size_t sampled_origins{0};
  util::Duration min_latency{util::Duration::milliseconds(2)};
  util::Duration max_latency{util::Duration::milliseconds(40)};
  std::uint64_t seed{1};
  /// Additional fault scenario, armed when the measurement window starts.
  /// When this is left empty, the injector (running the legacy churn
  /// process above) is seeded from `seed`; an explicit scenario keeps its
  /// own seed so scenario files replay identically across binaries.
  faults::FaultPlan faults{};
};

/// Per-monitor, per-origin aggregates sufficient to reconstruct monthly BGP
/// and BGPsec byte counts (both size models are affine in path length).
struct MonitorAccount {
  struct PerOrigin {
    std::uint64_t announce_events{0};
    std::uint64_t withdraw_events{0};
    std::uint64_t path_len_sum{0};
    double fixed_share_sum{0.0};
  };
  /// Ordered: monthly_bgp_bytes()/monthly_bgpsec_bytes() accumulate
  /// doubles over this map, and float addition is not associative — an
  /// unordered container would make the reported bytes depend on hash
  /// iteration order.
  std::map<Prefix, PerOrigin> per_origin;
  std::uint64_t raw_messages{0};
  std::uint64_t raw_bytes{0};
};

class BgpSim {
 public:
  BgpSim(const topo::Topology& topology, BgpSimConfig config);

  /// Registers a monitor AS (call before run()).
  void add_monitor(topo::AsIndex as);

  /// Runs convergence + churn (single-shot).
  void run();

  const topo::Topology& topology() const { return topology_; }
  const Speaker& speaker(topo::AsIndex as) const { return *speakers_[as]; }

  /// The ASes that originate a prefix in this run.
  const std::vector<Prefix>& origins() const { return origins_; }

  const MonitorAccount& monitor(topo::AsIndex as) const;

  /// Monthly BGP bytes at a monitor given per-AS prefix counts.
  double monthly_bgp_bytes(topo::AsIndex monitor,
                           const std::vector<std::uint32_t>& prefix_counts) const;

  /// Monthly BGPsec bytes at a monitor given per-AS prefix counts.
  double monthly_bgpsec_bytes(
      topo::AsIndex monitor,
      const std::vector<std::uint32_t>& prefix_counts) const;

  /// Equal-best multipath routes from `src` towards origin `t`, expanded to
  /// inter-AS links (all parallel links of each hop included) — the path
  /// sets for the Fig. 6 BGP series.
  std::vector<std::vector<topo::LinkIndex>> bgp_link_paths(topo::AsIndex src,
                                                           Prefix t) const;

  /// True if `src`'s RIB holds a route to `t` every hop of which rides a
  /// currently-up session channel (the dynamic-resilience connectivity
  /// probe: a stale route through a dead session does not count).
  bool has_live_route(topo::AsIndex src, Prefix t) const;

  std::uint64_t total_updates_sent() const;
  /// Network-wide churn-survival counters, summed over all speakers.
  std::uint64_t total_routes_suppressed() const;
  std::uint64_t total_routes_reused() const;
  std::uint64_t total_stale_retained() const;
  std::uint64_t total_stale_expired() const;
  sim::Simulator& simulator() { return sim_; }
  const sim::Network& network() const { return net_; }

  /// The fault injector driving session churn (always present).
  const faults::FaultInjector& injector() const { return *injector_; }

 private:
  // Node ids mirror AS indices by construction (asserted in the
  // constructor); channels do NOT mirror links here — one BGP session
  // channel serves each distinct adjacency (see channel_by_pair_).
  static sim::NodeId node_of(topo::AsIndex i) { return sim::NodeId{i}; }
  static topo::AsIndex as_of(sim::NodeId n) { return n.value(); }

  void deliver(topo::AsIndex to, const sim::Message& msg);
  void account(topo::AsIndex monitor, const BgpUpdateMsg& msg);
  void on_link_down(topo::LinkIndex l);
  void on_link_up(topo::LinkIndex l);
  void on_session_restart(topo::LinkIndex l, util::Duration duration);
  sim::ChannelId session_channel(topo::LinkIndex l) const;
  double accounting_scale() const;

  const topo::Topology& topology_;
  BgpSimConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Speaker>> speakers_;
  /// adjacency list: distinct neighbor pairs (a < b) and their channel.
  struct Adjacency {
    topo::AsIndex a;
    topo::AsIndex b;
    sim::ChannelId channel;
  };
  std::vector<Adjacency> adjacencies_;
  std::unordered_map<std::uint64_t, sim::ChannelId> channel_by_pair_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::vector<Prefix> origins_;
  std::unordered_map<topo::AsIndex, MonitorAccount> monitors_;
  std::vector<util::TimePoint> busy_until_;
  util::TimePoint measure_start_;
  bool measuring_{false};
  bool ran_{false};
};

}  // namespace scion::bgp
