#include "bgp/policy.hpp"

#include "util/check.hpp"


namespace scion::bgp {

const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kProvider:
      return "provider";
  }
  return "?";
}

Relationship classify(const topo::Topology& topo, topo::LinkIndex link,
                      topo::AsIndex self) {
  const topo::Link& l = topo.link(link);
  SCION_CHECK(l.a == self || l.b == self, "AS is not a link endpoint");
  switch (l.type) {
    case topo::LinkType::kProviderCustomer:
      return l.a == self ? Relationship::kCustomer : Relationship::kProvider;
    case topo::LinkType::kCore:
    case topo::LinkType::kPeer:
      return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

}  // namespace scion::bgp
