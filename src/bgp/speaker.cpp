#include "bgp/speaker.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace scion::bgp {

namespace {

bool contains(const AsPath& path, topo::AsIndex as) {
  return path && std::find(path->begin(), path->end(), as) != path->end();
}

/// Decision-process ordering: higher local-pref, then shorter path, then
/// lowest neighbor id (deterministic tie-break).
bool better(const Speaker::Route& x, const Speaker::Route& y) {
  const int px = local_pref(x.learned_from);
  const int py = local_pref(y.learned_from);
  if (px != py) return px > py;
  if (x.length() != y.length()) return x.length() < y.length();
  return x.neighbor < y.neighbor;
}

bool same_path(const AsPath& a, const AsPath& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return *a == *b;
}

}  // namespace

Speaker::Speaker(topo::AsIndex self, std::vector<NeighborInfo> neighbors,
                 SpeakerOptions options, SendFn send, ScheduleFn schedule,
                 ClockFn clock, std::uint64_t seed)
    : self_{self},
      options_{options},
      send_{std::move(send)},
      schedule_{std::move(schedule)},
      clock_{std::move(clock)},
      rng_{seed} {
  SCION_CHECK(send_ && schedule_, "speaker needs send and schedule hooks");
  SCION_CHECK(!options_.damping.enabled || clock_,
              "flap damping needs the simulator clock for penalty decay");
  if (options_.damping.enabled) {
    const DampingConfig& d = options_.damping;
    SCION_CHECK(d.penalty_per_flap > 0.0 && d.reuse_threshold > 0.0 &&
                    d.suppress_threshold > d.reuse_threshold &&
                    d.half_life > util::Duration::zero(),
                "damping thresholds inverted");
    // RFC 2439 penalty ceiling: a fully charged penalty decays to the
    // reuse threshold within max_suppress.
    penalty_cap_ = d.reuse_threshold *
                   std::exp2(d.max_suppress / d.half_life);
  }
  neighbors_.reserve(neighbors.size());
  for (const NeighborInfo& info : neighbors) {
    neighbor_index_.emplace(info.as, neighbors_.size());
    neighbors_.push_back(NeighborState{info, true, false, {}, {}, {}, 0});
  }
}

std::size_t Speaker::index_of(topo::AsIndex neighbor) const {
  const auto it = neighbor_index_.find(neighbor);
  SCION_CHECK(it != neighbor_index_.end(), "unknown neighbor");
  return it->second;
}

void Speaker::originate(Prefix p) {
  own_prefixes_.push_back(p);
  reevaluate(p);
}

std::optional<Speaker::Route> Speaker::compute_best(Prefix p) const {
  std::optional<Route> best;
  if (std::find(own_prefixes_.begin(), own_prefixes_.end(), p) !=
      own_prefixes_.end()) {
    // Self-originated: empty path, treated as a customer route for export.
    best = Route{nullptr, Relationship::kCustomer, self_};
  }
  const auto it = rib_in_.find(p);
  if (it != rib_in_.end()) {
    for (std::size_t idx = 0; idx < neighbors_.size(); ++idx) {
      const Route& r = it->second[idx];
      if (!r.path) continue;
      // Damping removes suppressed adjacencies from the decision process;
      // graceful-restart stale routes stay eligible (that is the point).
      if (slot_suppressed(idx, p)) continue;
      if (!best || better(r, *best)) best = r;
    }
  }
  return best;
}

bool Speaker::slot_suppressed(std::size_t idx, Prefix p) const {
  if (!options_.damping.enabled) return false;
  // One per candidate slot of a re-decision, damping-enabled runs only.
  // simlint:allow(hot-map-lookup)
  const auto it = neighbors_[idx].damping.find(p);
  return it != neighbors_[idx].damping.end() && it->second.suppressed;
}

bool Speaker::is_suppressed(topo::AsIndex neighbor, Prefix p) const {
  return slot_suppressed(index_of(neighbor), p);
}

double Speaker::decayed_penalty(const DampingState& st,
                                util::TimePoint now) const {
  const double half_lives =
      (now - st.last_charge) / options_.damping.half_life;
  return st.penalty * std::exp2(-half_lives);
}

void Speaker::damping_charge(std::size_t idx, Prefix p) {
  SCION_DCHECK(options_.damping.enabled, "charge with damping off");
  const util::TimePoint now = clock_();
  // Entries appear the first time a prefix flaps on this adjacency;
  // steady-state charges hit the existing node. simlint:allow(hot-alloc)
  // simlint:allow(hot-map-lookup)
  DampingState& st = neighbors_[idx].damping[p];
  st.penalty = std::min(decayed_penalty(st, now) +
                            options_.damping.penalty_per_flap,
                        penalty_cap_);
  st.last_charge = now;
  if (!st.suppressed && st.penalty >= options_.damping.suppress_threshold) {
    st.suppressed = true;
    ++st.epoch;
    ++routes_suppressed_;
    SCION_METRIC_COUNT("bgp.routes_suppressed", 1);
    arm_reuse_timer(idx, p, st);
  }
}

void Speaker::arm_reuse_timer(std::size_t idx, Prefix p, DampingState& st) {
  // Deterministic reuse instant: when the penalty decays to the reuse
  // threshold (capped by max_suppress via the penalty ceiling). Ceil, not
  // truncate: a timer landing a sub-nanosecond early finds the penalty
  // still above threshold and re-arms for 0 ns, looping at one virtual
  // instant without ever decaying.
  const double half_lives =
      std::log2(st.penalty / options_.damping.reuse_threshold);
  const auto delay = util::Duration::nanoseconds(
      static_cast<std::int64_t>(std::ceil(
          static_cast<double>(options_.damping.half_life.ns()) *
          std::max(half_lives, 0.0))));
  const std::uint32_t epoch = st.epoch;
  schedule_(delay, TimerKind::kDamping,
            [this, idx, p, epoch] { damping_reuse(idx, p, epoch); });
}

void Speaker::damping_reuse(std::size_t idx, Prefix p, std::uint32_t epoch) {
  const auto it = neighbors_[idx].damping.find(p);
  if (it == neighbors_[idx].damping.end()) return;
  DampingState& st = it->second;
  if (!st.suppressed || st.epoch != epoch) return;  // re-armed meanwhile
  const util::TimePoint now = clock_();
  if (decayed_penalty(st, now) > options_.damping.reuse_threshold) {
    // Charged again while waiting; re-arm for the new decay horizon.
    st.penalty = decayed_penalty(st, now);
    st.last_charge = now;
    arm_reuse_timer(idx, p, st);
    return;
  }
  st.suppressed = false;
  ++st.epoch;
  ++routes_reused_;
  SCION_METRIC_COUNT("bgp.routes_reused", 1);
  reevaluate(p);  // the adjacency's route is eligible again
}

AsPath Speaker::make_export_path(const Route& best) const {
  auto path = std::make_shared<std::vector<topo::AsIndex>>();
  path->reserve(1 + best.length());
  path->push_back(self_);
  if (best.path) path->insert(path->end(), best.path->begin(), best.path->end());
  return path;
}

void Speaker::sync_neighbor(std::size_t idx, Prefix p,
                            const std::optional<Route>& best,
                            const AsPath& export_path) {
  NeighborState& n = neighbors_[idx];
  if (!n.up) return;
  const bool should = best.has_value() &&
                      may_export(best->learned_from, n.info.rel) &&
                      n.info.as != best->neighbor;
  const auto out_it = n.rib_out.find(p);
  if (should) {
    if (out_it != n.rib_out.end() && same_path(out_it->second, export_path)) {
      return;  // neighbor already has this exact route
    }
    n.rib_out[p] = export_path;
    n.pending[p] = export_path;
    arm_mrai(idx);
  } else if (out_it != n.rib_out.end()) {
    n.rib_out.erase(out_it);
    n.pending[p] = nullptr;  // withdraw
    arm_mrai(idx);
  } else {
    // Neither advertised nor to be advertised; drop any stale pending entry.
    n.pending.erase(p);
  }
}

void Speaker::reevaluate(Prefix p) {
  std::optional<Route> best = compute_best(p);
  const auto loc_it = loc_rib_.find(p);
  const bool had = loc_it != loc_rib_.end();
  const bool changed =
      best.has_value() != had ||
      (best.has_value() && had &&
       (!same_path(best->path, loc_it->second.path) ||
        best->neighbor != loc_it->second.neighbor));
  if (!changed) return;

  ++best_changes_;
  // Loc-RIB consistency: the winning route must be self-originated,
  // learned over a session that is still up, or a graceful-restart stale
  // survivor (session_down without GR flushes its Adj-RIB-In slots before
  // re-deciding; with GR the stale flag licenses the down session).
  SCION_DCHECK(!best || best->neighbor == self_ || best->stale ||
                   neighbors_[index_of(best->neighbor)].up,
               "best route learned from a session that is down");
  if (best) {
    loc_rib_[p] = *best;
  } else {
    loc_rib_.erase(p);
  }

  const AsPath export_path = best ? make_export_path(*best) : nullptr;
  for (std::size_t idx = 0; idx < neighbors_.size(); ++idx) {
    sync_neighbor(idx, p, best, export_path);
  }
}

// Once per delivered UPDATE. The RIB maps are the protocol state itself:
// per-event lookups and growth there are the decision process, not scratch
// churn, and the ordered containers are load-bearing for determinism (see
// the member comments) — hence the allows below.
SCION_HOT_FN
void Speaker::handle_update(topo::AsIndex from, const BgpUpdateMsg& msg) {
  const std::size_t idx = index_of(from);
  NeighborState& n = neighbors_[idx];
  if (!n.up) return;
  ++updates_received_;
  SCION_METRIC_COUNT("bgp.updates_received", 1);
  SCION_METRIC_COUNT("bgp.prefixes_withdrawn", msg.withdrawn.size());
  SCION_METRIC_COUNT("bgp.prefixes_announced", msg.announced.size());

  for (Prefix p : msg.withdrawn) {
    // simlint:allow(hot-map-lookup)
    const auto it = rib_in_.find(p);
    if (it == rib_in_.end() || !it->second[idx].path) continue;
    it->second[idx] = Route{};
    // A withdrawal of a previously held route is one flap (RFC 2439).
    if (options_.damping.enabled) damping_charge(idx, p);
    reevaluate(p);
  }

  if (!msg.announced.empty()) {
    SCION_CHECK(msg.path, "announcement without an AS path");
    if (contains(msg.path, self_)) return;  // AS-path loop, discard
    for (Prefix p : msg.announced) {
      // simlint:allow(hot-alloc) simlint:allow(hot-map-lookup)
      auto [it, inserted] = rib_in_.try_emplace(p);
      // One slot table the first time a prefix is ever seen; steady-state
      // UPDATEs hit the existing row. simlint:allow(hot-alloc)
      if (inserted) it->second.resize(neighbors_.size());
      SCION_DCHECK(it->second.size() == neighbors_.size(),
                   "Adj-RIB-In slot table out of sync with neighbor set");
      // A path change over a held route is one flap; a fresh announcement
      // (including a graceful-restart refresh of the same path) is not.
      if (options_.damping.enabled && it->second[idx].path &&
          !it->second[idx].stale &&
          !same_path(it->second[idx].path, msg.path)) {
        damping_charge(idx, p);
      }
      it->second[idx] = Route{msg.path, n.info.rel, from};
      reevaluate(p);
    }
  }
  SCION_METRIC_GAUGE_MAX("bgp.loc_rib_routes", loc_rib_.size());
  SCION_METRIC_GAUGE_MAX("bgp.rib_in_prefixes", rib_in_.size());
}

void Speaker::session_down(topo::AsIndex neighbor, bool forwarding_preserved) {
  const std::size_t idx = index_of(neighbor);
  NeighborState& n = neighbors_[idx];
  if (!n.up) return;
  n.up = false;
  n.pending.clear();
  n.rib_out.clear();
  ++n.gr_epoch;

  // Graceful restart only helps when the data plane through the neighbor
  // still works (a process restart, not a link loss): retaining a stale
  // route through a dead link would mask live alternatives in the decision
  // process instead of preserving anything.
  if (options_.graceful_restart.enabled && forwarding_preserved) {
    // Preserve forwarding: mark this neighbor's routes stale instead of
    // flushing. They stay in the decision process; the stale timer flushes
    // them if the session never comes back.
    std::size_t retained = 0;
    for (auto& [p, slots] : rib_in_) {
      if (slots[idx].path && !slots[idx].stale) {
        slots[idx].stale = true;
        ++retained;
      }
    }
    stale_retained_ += retained;
    SCION_METRIC_COUNT("bgp.gr_stale_retained", retained);
    if (retained > 0) {
      const std::uint32_t epoch = n.gr_epoch;
      schedule_(options_.graceful_restart.stale_timer, TimerKind::kGrStale,
                [this, idx, epoch] { flush_stale(idx, epoch); });
    }
    return;
  }

  // Drop everything learned from this neighbor and re-decide. Each lost
  // route counts as one flap against its adjacency.
  for (auto& [p, slots] : rib_in_) {
    if (slots[idx].path) {
      slots[idx] = Route{};
      if (options_.damping.enabled) damping_charge(idx, p);
      reevaluate(p);
    }
  }
}

void Speaker::session_up(topo::AsIndex neighbor) {
  const std::size_t idx = index_of(neighbor);
  NeighborState& n = neighbors_[idx];
  if (n.up) return;
  n.up = true;
  ++n.gr_epoch;

  if (options_.graceful_restart.enabled) {
    // Re-sync: the peer replays its full table, refreshing stale routes as
    // the announcements land. Whatever is still stale once the replay
    // window closes no longer exists on the peer and must be swept.
    bool any_stale = false;
    for (const auto& [p, slots] : rib_in_) {
      if (slots[idx].stale) {
        any_stale = true;
        break;
      }
    }
    if (any_stale) {
      const std::uint32_t epoch = n.gr_epoch;
      schedule_(options_.graceful_restart.resync_flush_delay,
                TimerKind::kGrStale,
                [this, idx, epoch] { flush_stale(idx, epoch); });
    }
  }

  // Full table export towards the restored session.
  for (const auto& [p, best] : loc_rib_) {
    sync_neighbor(idx, p, best, make_export_path(best));
  }
}

void Speaker::flush_stale(std::size_t idx, std::uint32_t epoch) {
  NeighborState& n = neighbors_[idx];
  if (n.gr_epoch != epoch) return;  // session flipped since this was armed
  for (auto& [p, slots] : rib_in_) {
    if (slots[idx].stale) {
      slots[idx] = Route{};
      ++stale_expired_;
      SCION_METRIC_COUNT("bgp.gr_stale_expired", 1);
      reevaluate(p);
    }
  }
}

bool Speaker::session_is_up(topo::AsIndex neighbor) const {
  return neighbors_[index_of(neighbor)].up;
}

std::optional<Speaker::Route> Speaker::best(Prefix p) const {
  const auto it = loc_rib_.find(p);
  if (it == loc_rib_.end()) return std::nullopt;
  return it->second;
}

std::vector<Speaker::Route> Speaker::multipath(Prefix p) const {
  std::vector<Route> out;
  const auto best_it = loc_rib_.find(p);
  if (best_it == loc_rib_.end()) return out;
  const Route& best = best_it->second;
  if (best.neighbor == self_) {
    out.push_back(best);  // own prefix
    return out;
  }
  const auto it = rib_in_.find(p);
  if (it == rib_in_.end()) return out;
  for (std::size_t idx = 0; idx < neighbors_.size(); ++idx) {
    const Route& r = it->second[idx];
    if (!r.path) continue;
    if (slot_suppressed(idx, p)) continue;
    if (local_pref(r.learned_from) == local_pref(best.learned_from) &&
        r.length() == best.length()) {
      out.push_back(r);
    }
  }
  return out;
}

void Speaker::arm_mrai(std::size_t idx) {
  NeighborState& n = neighbors_[idx];
  if (n.mrai_armed) return;
  n.mrai_armed = true;
  // Seeded jitter desynchronizes neighbors, as deployed MRAI timers do
  // (+/-20% by default). The draw happens even for zero jitter so the RNG
  // stream is identical across jitter settings.
  const double j = options_.mrai_jitter;
  const auto delay = util::Duration::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(options_.mrai.ns()) * rng_.uniform(1.0 - j, 1.0 + j)));
  schedule_(delay, TimerKind::kMrai, [this, idx] {
    neighbors_[idx].mrai_armed = false;
    flush(idx);
  });
}

void Speaker::flush(std::size_t idx) {
  NeighborState& n = neighbors_[idx];
  if (!n.up || n.pending.empty()) {
    n.pending.clear();
    return;
  }

  // Aggregate: announcements sharing an AS path go into one UPDATE;
  // withdrawals ride along with the first message (RFC 4271 allows both in
  // one UPDATE) or form their own if there is nothing to announce. Groups
  // are kept in first-seen order over the prefix-ordered pending map, so
  // the UPDATE sequence is a pure function of the pending set — keying the
  // groups by path pointer would let heap addresses order the messages.
  std::vector<BgpUpdateMsg> grouped;
  std::unordered_map<const void*, std::size_t> group_of_path;  // lookup only
  std::vector<Prefix> withdrawals;
  for (const auto& [p, path] : n.pending) {
    if (path) {
      const auto [it, inserted] =
          group_of_path.try_emplace(path.get(), grouped.size());
      if (inserted) {
        grouped.emplace_back();
        grouped.back().path = path;
      }
      // Prefixes arrive in ascending order from the ordered pending map.
      grouped[it->second].announced.push_back(p);
    } else {
      withdrawals.push_back(p);
    }
  }
  n.pending.clear();

  if (!withdrawals.empty()) {
    if (!grouped.empty()) {
      grouped.front().withdrawn = std::move(withdrawals);
    } else {
      BgpUpdateMsg msg;
      msg.withdrawn = std::move(withdrawals);
      ++updates_sent_;
      SCION_METRIC_COUNT("bgp.updates_sent", 1);
      send_(n.info.as, std::move(msg));
    }
  }
  for (BgpUpdateMsg& msg : grouped) {
    ++updates_sent_;
    SCION_METRIC_COUNT("bgp.updates_sent", 1);
    send_(n.info.as, std::move(msg));
  }
}

}  // namespace scion::bgp
