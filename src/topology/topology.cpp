#include "topology/topology.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_set>

namespace scion::topo {

std::string IsdAsId::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u-%llu", static_cast<unsigned>(isd().value()),
                static_cast<unsigned long long>(as_number()));
  return buf;
}

IsdAsId IsdAsId::parse(const std::string& s) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) return IsdAsId{};
  unsigned isd = 0;
  unsigned long long as = 0;
  auto r1 = std::from_chars(s.data(), s.data() + dash, isd);
  auto r2 = std::from_chars(s.data() + dash + 1, s.data() + s.size(), as);
  if (r1.ec != std::errc{} || r2.ec != std::errc{}) return IsdAsId{};
  if (isd > 0xFFFF) return IsdAsId{};
  return IsdAsId::make(static_cast<std::uint16_t>(isd), as);
}

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::kCore:
      return "core";
    case LinkType::kProviderCustomer:
      return "pc";
    case LinkType::kPeer:
      return "peer";
  }
  return "?";
}

AsIndex Topology::add_as(IsdAsId id, bool is_core) {
  SCION_CHECK(id.valid(), "AS id must be valid");
  SCION_CHECK(!index_.contains(id), "duplicate AS id");
  const auto idx = static_cast<AsIndex>(ases_.size());
  ases_.push_back(AsState{id, is_core, IfId{1}, {}});
  index_.emplace(id, idx);
  return idx;
}

LinkIndex Topology::add_link(AsIndex a, AsIndex b, LinkType type) {
  SCION_CHECK(a < ases_.size() && b < ases_.size() && a != b,
              "link endpoints must be distinct existing ASes");
  const auto l = static_cast<LinkIndex>(links_.size());
  // Interface ids are allocated sequentially per AS; allocation is the one
  // place arithmetic on an IfId is meaningful, so it is spelled out.
  const IfId if_a = ases_[a].next_if;
  ases_[a].next_if = IfId{static_cast<std::uint16_t>(if_a.value() + 1)};
  const IfId if_b = ases_[b].next_if;
  ases_[b].next_if = IfId{static_cast<std::uint16_t>(if_b.value() + 1)};
  links_.push_back(Link{a, b, if_a, if_b, type});
  ases_[a].links.push_back(l);
  ases_[b].links.push_back(l);
  return l;
}

std::optional<AsIndex> Topology::find(IsdAsId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::span<const LinkIndex> Topology::links_of(AsIndex idx) const {
  SCION_CHECK(idx < ases_.size(), "AS index out of range");
  return ases_[idx].links;
}

AsIndex Topology::neighbor(LinkIndex l, AsIndex self) const {
  const Link& link = links_[l];
  SCION_CHECK(self == link.a || self == link.b, "AS is not a link endpoint");
  return self == link.a ? link.b : link.a;
}

IfId Topology::interface_of(LinkIndex l, AsIndex self) const {
  const Link& link = links_[l];
  SCION_CHECK(self == link.a || self == link.b, "AS is not a link endpoint");
  return self == link.a ? link.if_a : link.if_b;
}

bool Topology::is_provider_side(LinkIndex l, AsIndex self) const {
  const Link& link = links_[l];
  return link.type == LinkType::kProviderCustomer && link.a == self;
}

std::vector<AsIndex> Topology::core_ases() const {
  std::vector<AsIndex> out;
  for (AsIndex i = 0; i < ases_.size(); ++i) {
    if (ases_[i].is_core) out.push_back(i);
  }
  return out;
}

std::vector<LinkIndex> Topology::links_of_type(AsIndex idx, LinkType type) const {
  std::vector<LinkIndex> out;
  for (LinkIndex l : ases_[idx].links) {
    const Link& link = links_[l];
    if (link.type != type) continue;
    if (type == LinkType::kProviderCustomer && link.a != idx) continue;
    out.push_back(l);
  }
  return out;
}

std::vector<LinkIndex> Topology::customer_links(AsIndex idx) const {
  return links_of_type(idx, LinkType::kProviderCustomer);
}

std::vector<LinkIndex> Topology::provider_links(AsIndex idx) const {
  std::vector<LinkIndex> out;
  for (LinkIndex l : ases_[idx].links) {
    const Link& link = links_[l];
    if (link.type == LinkType::kProviderCustomer && link.b == idx) out.push_back(l);
  }
  return out;
}

std::vector<AsIndex> Topology::neighbors_of_type(AsIndex idx, LinkType type) const {
  std::vector<AsIndex> out;
  std::unordered_set<AsIndex> seen;
  for (LinkIndex l : links_of_type(idx, type)) {
    const AsIndex n = neighbor(l, idx);
    if (seen.insert(n).second) out.push_back(n);
  }
  return out;
}

std::size_t Topology::degree(AsIndex idx) const {
  std::unordered_set<AsIndex> seen;
  for (LinkIndex l : ases_[idx].links) seen.insert(neighbor(l, idx));
  return seen.size();
}

std::vector<LinkIndex> Topology::links_between(AsIndex x, AsIndex y) const {
  std::vector<LinkIndex> out;
  for (LinkIndex l : ases_[x].links) {
    if (neighbor(l, x) == y) out.push_back(l);
  }
  return out;
}

std::optional<LinkIndex> Topology::link_by_interface(AsIndex self,
                                                     IfId ifid) const {
  SCION_CHECK(self < ases_.size(), "AS index out of range");
  for (LinkIndex l : ases_[self].links) {
    if (interface_of(l, self) == ifid) return l;
  }
  return std::nullopt;
}

bool Topology::connected() const {
  if (ases_.empty()) return true;
  std::vector<bool> visited(ases_.size(), false);
  std::vector<AsIndex> stack{0};
  visited[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const AsIndex cur = stack.back();
    stack.pop_back();
    for (LinkIndex l : ases_[cur].links) {
      const AsIndex n = neighbor(l, cur);
      if (!visited[n]) {
        visited[n] = true;
        ++count;
        stack.push_back(n);
      }
    }
  }
  return count == ases_.size();
}

Topology Topology::induced_subgraph(std::span<const AsIndex> keep) const {
  Topology out;
  std::unordered_map<AsIndex, AsIndex> remap;
  remap.reserve(keep.size());
  for (AsIndex old : keep) {
    SCION_CHECK(old < ases_.size(), "subgraph keeps an unknown AS");
    remap.emplace(old, out.add_as(ases_[old].id, ases_[old].is_core));
  }
  for (const Link& link : links_) {
    const auto ia = remap.find(link.a);
    const auto ib = remap.find(link.b);
    if (ia != remap.end() && ib != remap.end()) {
      out.add_link(ia->second, ib->second, link.type);
    }
  }
  return out;
}

std::vector<AsIndex> Topology::highest_degree(std::size_t n) const {
  std::vector<AsIndex> order(ases_.size());
  for (AsIndex i = 0; i < ases_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](AsIndex x, AsIndex y) {
    return ases_[x].links.size() > ases_[y].links.size();
  });
  order.resize(std::min(n, order.size()));
  return order;
}

}  // namespace scion::topo
