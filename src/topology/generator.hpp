// Synthetic topology generation (the CAIDA AS-rel-geo substitute).
//
// The paper's evaluation needs three topology families:
//   1. A full Internet-like AS graph with business relationships and
//      parallel inter-AS links (CAIDA AS-rel-geo, 12000 ASes) — used for
//      BGP/BGPsec simulation and as the source for pruning.
//   2. A core network: the n highest-degree ASes of (1), incrementally
//      pruned, all links treated as core links, grouped into ISDs
//      (paper: 2000 cores, 200 ISDs).
//   3. An intra-ISD hierarchy: a few core ASes plus their customer cone
//      (paper: 11 cores + 7017 customers), and a small SCIONLab-like core
//      topology (21 cores, average degree 2).
//
// The generator reproduces the structural properties those experiments
// depend on: a densely meshed top tier, preferential-attachment (power-law)
// provider degrees, valley-free hierarchy by construction (providers always
// joined earlier), peering among similar tiers, and degree-correlated link
// multiplicity (large neighbors interconnect at several PoPs).
#pragma once

#include <cstdint>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace scion::topo {

/// Parameters for the hierarchy generator (families 1 and 3 above).
struct HierarchyConfig {
  /// Total number of ASes, including roots.
  std::size_t n_ases{3000};
  /// Number of top-tier ("root") ASes, fully meshed with core links and
  /// marked as core ASes.
  std::size_t n_roots{12};
  /// Mean number of providers per arriving AS beyond the first
  /// (multi-homing); the count is 1 + a geometric-ish sample.
  double mean_extra_providers{0.8};
  /// Probability an arriving AS also creates one peering link to an AS of
  /// similar age.
  double peer_probability{0.3};
  /// Probability that an inter-AS adjacency gets an additional parallel
  /// link, applied repeatedly (geometric); scaled up for high-degree pairs.
  double parallel_link_probability{0.25};
  /// Hard cap on parallel links per adjacency.
  int max_parallel_links{4};
  /// ISD number used for every AS (re-assigned later for core networks).
  IsdId isd{1};
  std::uint64_t seed{1};
};

/// Generates a connected Internet-like hierarchy. Roots are core ASes
/// interconnected with core links; every other AS attaches to
/// preferentially-chosen earlier ASes with provider-customer links, plus
/// optional peering.
Topology generate_hierarchy(const HierarchyConfig& config);

/// Derives the core network for core-beaconing experiments: keeps the
/// `n_core` highest-degree ASes by incremental pruning (recomputing degrees
/// after each removal, as in Section 5.1), restricts to the largest
/// connected component, marks every AS core, and assigns ISD numbers in
/// `n_isds` round-robin groups. Link *types* (business relationships) are
/// preserved so the same subgraph can drive the BGP comparison; SCION runs
/// use with_all_core_links() on the result. Link indices are identical
/// between the two views, which the Fig. 6 analysis relies on.
Topology make_core_network(const Topology& internet, std::size_t n_core,
                           std::size_t n_isds);

/// Same ASes and links (same indices), every link relabelled as a core
/// link — the SCION view of a core network.
Topology with_all_core_links(const Topology& topo);

/// Parameters for the SCIONLab-like testbed topology (Appendix B):
/// `n_cores` core ASes with average neighbor degree ~2 (a tree plus a few
/// chords), single links.
struct ScionLabConfig {
  std::size_t n_cores{21};
  /// Extra chord edges as a fraction of n_cores (drives avg degree to ~2).
  double extra_edge_fraction{0.1};
  std::uint64_t seed{7};
};

Topology generate_scionlab(const ScionLabConfig& config);

/// A multi-ISD SCION world: per ISD a hierarchy (roots = the ISD core),
/// cores of different ISDs interconnected with core links (ring over ISDs
/// plus random chords). Used by the Table 1 control-plane workload, the
/// examples, and the data-plane tests.
struct MultiIsdConfig {
  std::size_t n_isds{3};
  std::size_t cores_per_isd{2};
  /// ASes per ISD, including its cores.
  std::size_t ases_per_isd{12};
  /// Extra inter-ISD core links beyond the ring, per ISD.
  double extra_core_links_per_isd{1.0};
  double mean_extra_providers{0.8};
  double peer_probability{0.3};
  std::uint64_t seed{11};
};

Topology generate_multi_isd(const MultiIsdConfig& config);

/// Convenience: an intra-ISD topology = hierarchy whose roots are the ISD
/// core. Paper scale: 11 cores, 7017 non-core ASes.
struct IsdConfig {
  std::size_t n_cores{11};
  std::size_t n_ases{1000};  // total, including cores
  IsdId isd{1};
  std::uint64_t seed{3};
};

Topology generate_isd(const IsdConfig& config);

}  // namespace scion::topo
