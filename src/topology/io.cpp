#include "topology/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace scion::topo {

void write_topology(std::ostream& os, const Topology& topo) {
  os << "# scion-mpr topology: " << topo.as_count() << " ASes, "
     << topo.link_count() << " links\n";
  for (AsIndex i = 0; i < topo.as_count(); ++i) {
    os << "as " << topo.as_id(i).to_string() << ' '
       << (topo.is_core(i) ? "core" : "leaf") << '\n';
  }
  for (LinkIndex l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    os << "link " << topo.as_id(link.a).to_string() << ' '
       << topo.as_id(link.b).to_string() << ' ' << to_string(link.type)
       << '\n';
  }
}

std::string topology_to_string(const Topology& topo) {
  std::ostringstream os;
  write_topology(os, topo);
  return os.str();
}

Topology read_topology(std::istream& is) {
  Topology topo;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields{line};
    std::string kind;
    if (!(fields >> kind)) continue;  // blank line

    auto fail = [&](const std::string& why) -> ParseError {
      return ParseError{"line " + std::to_string(line_no) + ": " + why};
    };

    if (kind == "as") {
      std::string id_str, role;
      if (!(fields >> id_str >> role)) throw fail("expected: as <id> core|leaf");
      const IsdAsId id = IsdAsId::parse(id_str);
      if (!id.valid()) throw fail("bad AS id '" + id_str + "'");
      if (role != "core" && role != "leaf") throw fail("bad role '" + role + "'");
      if (topo.find(id)) throw fail("duplicate AS " + id_str);
      topo.add_as(id, role == "core");
    } else if (kind == "link") {
      std::string a_str, b_str, type_str;
      if (!(fields >> a_str >> b_str >> type_str)) {
        throw fail("expected: link <a> <b> core|pc|peer");
      }
      const auto a = topo.find(IsdAsId::parse(a_str));
      const auto b = topo.find(IsdAsId::parse(b_str));
      if (!a) throw fail("unknown AS '" + a_str + "'");
      if (!b) throw fail("unknown AS '" + b_str + "'");
      LinkType type;
      if (type_str == "core") {
        type = LinkType::kCore;
      } else if (type_str == "pc") {
        type = LinkType::kProviderCustomer;
      } else if (type_str == "peer") {
        type = LinkType::kPeer;
      } else {
        throw fail("bad link type '" + type_str + "'");
      }
      if (*a == *b) throw fail("self-link on " + a_str);
      topo.add_link(*a, *b, type);
    } else {
      throw fail("unknown record '" + kind + "'");
    }
  }
  return topo;
}

Topology topology_from_string(const std::string& text) {
  std::istringstream is{text};
  return read_topology(is);
}

}  // namespace scion::topo
