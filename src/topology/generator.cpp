#include "topology/generator.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace scion::topo {

namespace {

using util::Rng;

/// Number of parallel links for a new adjacency: geometric in
/// `base_probability`, boosted by the (log of the) smaller endpoint degree —
/// big networks interconnect at several PoPs.
int sample_multiplicity(Rng& rng, double base_probability, int max_parallel,
                        std::size_t min_endpoint_degree) {
  const double boost =
      1.0 + 0.25 * std::log2(1.0 + static_cast<double>(min_endpoint_degree));
  const double p = std::min(0.9, base_probability * boost);
  int m = 1;
  while (m < max_parallel && rng.bernoulli(p)) ++m;
  return m;
}

void add_parallel_links(Topology& topo, Rng& rng, AsIndex a, AsIndex b,
                        LinkType type, double base_probability,
                        int max_parallel) {
  const std::size_t min_deg = std::min(topo.link_degree(a), topo.link_degree(b));
  const int m =
      sample_multiplicity(rng, base_probability, max_parallel, min_deg);
  for (int i = 0; i < m; ++i) topo.add_link(a, b, type);
}

/// Preferential-attachment choice among ases [0, limit): probability
/// proportional to link_degree + 1.
AsIndex preferential_pick(const Topology& topo, Rng& rng, AsIndex limit) {
  std::uint64_t total = 0;
  for (AsIndex i = 0; i < limit; ++i) total += topo.link_degree(i) + 1;
  std::uint64_t target = static_cast<std::uint64_t>(
      rng.uniform() * static_cast<double>(total));
  for (AsIndex i = 0; i < limit; ++i) {
    const std::uint64_t w = topo.link_degree(i) + 1;
    if (target < w) return i;
    target -= w;
  }
  return limit - 1;
}

}  // namespace

Topology generate_hierarchy(const HierarchyConfig& config) {
  SCION_CHECK(config.n_roots >= 1, "hierarchy needs at least one root");
  SCION_CHECK(config.n_ases >= config.n_roots, "fewer ASes than roots");
  Rng rng{config.seed};
  Topology topo;

  // Roots: full mesh of core links with multiplicity.
  for (std::size_t i = 0; i < config.n_roots; ++i) {
    topo.add_as(IsdAsId::make(config.isd, i + 1), /*is_core=*/true);
  }
  for (AsIndex i = 0; i < config.n_roots; ++i) {
    for (AsIndex j = i + 1; j < config.n_roots; ++j) {
      add_parallel_links(topo, rng, i, j, LinkType::kCore,
                         config.parallel_link_probability * 1.5,
                         config.max_parallel_links);
    }
  }

  // Arrivals: each new AS picks 1 + geometric(mean_extra_providers)
  // distinct providers among earlier ASes, preferentially by degree.
  const double p_more = config.mean_extra_providers /
                        (1.0 + config.mean_extra_providers);
  for (std::size_t n = config.n_roots; n < config.n_ases; ++n) {
    const AsIndex self =
        topo.add_as(IsdAsId::make(config.isd, n + 1), /*is_core=*/false);
    int providers = 1;
    while (rng.bernoulli(p_more) && providers < 8) ++providers;

    std::unordered_set<AsIndex> chosen;
    for (int k = 0; k < providers && chosen.size() < self; ++k) {
      AsIndex provider = preferential_pick(topo, rng, self);
      // A few retries for distinctness; duplicates are simply skipped.
      for (int attempt = 0; attempt < 4 && chosen.contains(provider); ++attempt) {
        provider = preferential_pick(topo, rng, self);
      }
      if (!chosen.insert(provider).second) continue;
      add_parallel_links(topo, rng, provider, self,
                         LinkType::kProviderCustomer,
                         config.parallel_link_probability,
                         config.max_parallel_links);
    }

    // Optional peering with an AS of similar age (similar tier).
    if (self > config.n_roots + 4 && rng.bernoulli(config.peer_probability)) {
      const AsIndex lo = static_cast<AsIndex>(
          std::max<std::int64_t>(config.n_roots,
                                 static_cast<std::int64_t>(self) -
                                     static_cast<std::int64_t>(self) / 2));
      const AsIndex peer =
          lo + static_cast<AsIndex>(rng.index(self - lo));
      if (peer != self && topo.links_between(self, peer).empty()) {
        add_parallel_links(topo, rng, self, peer, LinkType::kPeer,
                           config.parallel_link_probability * 0.5,
                           config.max_parallel_links);
      }
    }
  }
  return topo;
}

Topology make_core_network(const Topology& internet, std::size_t n_core,
                           std::size_t n_isds) {
  SCION_CHECK(n_isds >= 1, "need at least one ISD");
  const std::size_t total = internet.as_count();
  n_core = std::min(n_core, total);

  // Incremental pruning: repeatedly drop the AS with the smallest remaining
  // link degree until n_core remain. Lazy recomputation via counting links
  // to surviving ASes.
  std::vector<bool> alive(total, true);
  std::vector<std::size_t> deg(total, 0);
  for (AsIndex i = 0; i < total; ++i) deg[i] = internet.link_degree(i);

  std::size_t remaining = total;
  while (remaining > n_core) {
    AsIndex victim = kInvalidAsIndex;
    std::size_t best = ~std::size_t{0};
    for (AsIndex i = 0; i < total; ++i) {
      if (alive[i] && deg[i] < best) {
        best = deg[i];
        victim = i;
      }
    }
    alive[victim] = false;
    --remaining;
    for (LinkIndex l : internet.links_of(victim)) {
      const AsIndex n = internet.neighbor(l, victim);
      if (alive[n] && deg[n] > 0) --deg[n];
    }
  }

  // Largest connected component among survivors.
  std::vector<int> component(total, -1);
  int n_components = 0;
  std::vector<std::size_t> comp_size;
  for (AsIndex start = 0; start < total; ++start) {
    if (!alive[start] || component[start] != -1) continue;
    const int c = n_components++;
    comp_size.push_back(0);
    std::vector<AsIndex> stack{start};
    component[start] = c;
    while (!stack.empty()) {
      const AsIndex cur = stack.back();
      stack.pop_back();
      ++comp_size[static_cast<std::size_t>(c)];
      for (LinkIndex l : internet.links_of(cur)) {
        const AsIndex nb = internet.neighbor(l, cur);
        if (alive[nb] && component[nb] == -1) {
          component[nb] = c;
          stack.push_back(nb);
        }
      }
    }
  }
  int largest = 0;
  for (int c = 1; c < n_components; ++c) {
    if (comp_size[static_cast<std::size_t>(c)] >
        comp_size[static_cast<std::size_t>(largest)]) {
      largest = c;
    }
  }

  std::vector<AsIndex> keep;
  for (AsIndex i = 0; i < total; ++i) {
    if (alive[i] && component[i] == largest) keep.push_back(i);
  }
  // Keep highest-degree first so ISD grouping puts big ASes in distinct
  // ISDs' leading positions.
  std::stable_sort(keep.begin(), keep.end(), [&](AsIndex x, AsIndex y) {
    return internet.link_degree(x) > internet.link_degree(y);
  });

  // Rebuild with core-only semantics and fresh ISD assignment: ASes are
  // dealt round-robin into n_isds groups.
  Topology out;
  std::unordered_map<AsIndex, AsIndex> remap;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const IsdId isd = static_cast<IsdId>(1 + i % n_isds);
    const IsdAsId id =
        IsdAsId::make(isd, internet.as_id(keep[i]).as_number());
    remap.emplace(keep[i], out.add_as(id, /*is_core=*/true));
  }
  std::unordered_set<AsIndex> kept(keep.begin(), keep.end());
  for (LinkIndex l = 0; l < internet.link_count(); ++l) {
    const Link& link = internet.link(l);
    if (kept.contains(link.a) && kept.contains(link.b)) {
      out.add_link(remap.at(link.a), remap.at(link.b), link.type);
    }
  }
  return out;
}

Topology with_all_core_links(const Topology& topo) {
  Topology out;
  for (AsIndex i = 0; i < topo.as_count(); ++i) {
    out.add_as(topo.as_id(i), /*is_core=*/true);
  }
  for (LinkIndex l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    out.add_link(link.a, link.b, LinkType::kCore);
  }
  return out;
}

Topology generate_scionlab(const ScionLabConfig& config) {
  SCION_CHECK(config.n_cores >= 2, "SCIONLab topology needs two cores");
  Rng rng{config.seed};
  Topology topo;
  for (std::size_t i = 0; i < config.n_cores; ++i) {
    topo.add_as(IsdAsId::make(static_cast<IsdId>(i + 1), 0xFF00 + i),
                /*is_core=*/true);
  }
  // Random spanning tree: each node attaches to a uniformly chosen earlier
  // node (keeps average degree low, like the real testbed).
  for (AsIndex i = 1; i < config.n_cores; ++i) {
    const AsIndex parent = static_cast<AsIndex>(rng.index(i));
    topo.add_link(parent, i, LinkType::kCore);
  }
  // A few chords.
  const auto extra = static_cast<std::size_t>(
      std::ceil(config.extra_edge_fraction * static_cast<double>(config.n_cores)));
  for (std::size_t e = 0; e < extra; ++e) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const AsIndex a = static_cast<AsIndex>(rng.index(config.n_cores));
      const AsIndex b = static_cast<AsIndex>(rng.index(config.n_cores));
      if (a != b && topo.links_between(a, b).empty()) {
        topo.add_link(a, b, LinkType::kCore);
        break;
      }
    }
  }
  return topo;
}

Topology generate_multi_isd(const MultiIsdConfig& config) {
  SCION_CHECK(config.n_isds >= 1 && config.cores_per_isd >= 1,
              "need at least one ISD with one core");
  SCION_CHECK(config.ases_per_isd >= config.cores_per_isd,
              "fewer ASes per ISD than cores");
  Rng rng{config.seed};
  Topology topo;

  // Per-ISD hierarchies, merged into one topology. AS numbers are made
  // globally readable: ISD i uses numbers i*10000 + k.
  std::vector<std::vector<AsIndex>> cores_of_isd(config.n_isds);
  for (std::size_t isd = 0; isd < config.n_isds; ++isd) {
    HierarchyConfig h;
    h.n_ases = config.ases_per_isd;
    h.n_roots = config.cores_per_isd;
    h.mean_extra_providers = config.mean_extra_providers;
    h.peer_probability = config.peer_probability;
    h.isd = static_cast<IsdId>(isd + 1);
    h.seed = rng();
    const Topology sub = generate_hierarchy(h);

    std::vector<AsIndex> remap(sub.as_count());
    for (AsIndex i = 0; i < sub.as_count(); ++i) {
      const IsdAsId id = IsdAsId::make(
          h.isd, (isd + 1) * 10000 + sub.as_id(i).as_number());
      remap[i] = topo.add_as(id, sub.is_core(i));
      if (sub.is_core(i)) cores_of_isd[isd].push_back(remap[i]);
    }
    for (LinkIndex l = 0; l < sub.link_count(); ++l) {
      const Link& link = sub.link(l);
      topo.add_link(remap[link.a], remap[link.b], link.type);
    }
  }

  // Inter-ISD core connectivity: a ring over ISDs guarantees global
  // reachability; chords add path diversity.
  if (config.n_isds > 1) {
    for (std::size_t isd = 0; isd < config.n_isds; ++isd) {
      const std::size_t next = (isd + 1) % config.n_isds;
      if (config.n_isds == 2 && isd == 1) break;  // avoid a doubled ring link
      const AsIndex a = rng.pick(cores_of_isd[isd]);
      const AsIndex b = rng.pick(cores_of_isd[next]);
      topo.add_link(a, b, LinkType::kCore);
    }
    const auto extra = static_cast<std::size_t>(
        config.extra_core_links_per_isd * static_cast<double>(config.n_isds));
    for (std::size_t e = 0; e < extra; ++e) {
      const std::size_t i1 = rng.index(config.n_isds);
      const std::size_t i2 = rng.index(config.n_isds);
      if (i1 == i2) continue;
      topo.add_link(rng.pick(cores_of_isd[i1]), rng.pick(cores_of_isd[i2]),
                    LinkType::kCore);
    }
  }
  return topo;
}

Topology generate_isd(const IsdConfig& config) {
  HierarchyConfig h;
  h.n_ases = config.n_ases;
  h.n_roots = config.n_cores;
  h.isd = config.isd;
  h.seed = config.seed;
  // Within one ISD the hierarchy is shallower and peering is common.
  h.mean_extra_providers = 0.6;
  h.peer_probability = 0.25;
  return generate_hierarchy(h);
}

}  // namespace scion::topo
