// AS-level multigraph with business relationships.
//
// The unit of link-disjointness throughout the evaluation is the *inter-AS
// link between two interfaces of neighboring ASes* (footnote 1 of the
// paper), so parallel links between an AS pair are first-class: each one has
// its own LinkIndex and its own interface id on both ends.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/ids.hpp"

namespace scion::topo {

/// Business relationship carried by a link.
enum class LinkType : std::uint8_t {
  kCore,              // between core ASes (unordered)
  kProviderCustomer,  // a = provider, b = customer (ordered)
  kPeer,              // settlement-free peering (unordered)
};

const char* to_string(LinkType t);

/// One physical inter-AS link. For kProviderCustomer links, side `a` is the
/// provider and side `b` the customer; for the other types the order is
/// arbitrary but stable.
struct Link {
  AsIndex a{kInvalidAsIndex};
  AsIndex b{kInvalidAsIndex};
  IfId if_a{kNoInterface};
  IfId if_b{kNoInterface};
  LinkType type{LinkType::kCore};
};

/// Mutable AS-level topology.
class Topology {
 public:
  /// Adds an AS; ids must be unique. Returns its dense index.
  AsIndex add_as(IsdAsId id, bool is_core);

  /// Connects two existing, distinct ASes. Interface ids are assigned
  /// sequentially per AS (1-based). Returns the link's index.
  LinkIndex add_link(AsIndex a, AsIndex b, LinkType type);

  std::size_t as_count() const { return ases_.size(); }
  std::size_t link_count() const { return links_.size(); }

  IsdAsId as_id(AsIndex idx) const { return ases_[idx].id; }
  bool is_core(AsIndex idx) const { return ases_[idx].is_core; }
  void set_core(AsIndex idx, bool is_core) { ases_[idx].is_core = is_core; }

  /// Dense index for an IsdAsId, if present.
  std::optional<AsIndex> find(IsdAsId id) const;

  const Link& link(LinkIndex l) const { return links_[l]; }

  /// All link indices incident to an AS.
  std::span<const LinkIndex> links_of(AsIndex idx) const;

  /// The neighbor of `self` across link `l`.
  AsIndex neighbor(LinkIndex l, AsIndex self) const;

  /// The interface id `self` uses on link `l`.
  IfId interface_of(LinkIndex l, AsIndex self) const;

  /// Whether `self` is the provider side of a provider-customer link `l`.
  bool is_provider_side(LinkIndex l, AsIndex self) const;

  /// All core AS indices.
  std::vector<AsIndex> core_ases() const;

  /// Links of a given type incident to `idx` where `idx` is on the provider
  /// side (for kProviderCustomer) or either side (other types).
  std::vector<LinkIndex> links_of_type(AsIndex idx, LinkType type) const;

  /// Customer links of `idx` (provider-customer links where idx is provider).
  std::vector<LinkIndex> customer_links(AsIndex idx) const;

  /// Provider links of `idx` (provider-customer links where idx is customer).
  std::vector<LinkIndex> provider_links(AsIndex idx) const;

  /// Distinct neighbor AS indices reachable over links of `type` from `idx`
  /// (for provider-customer: neighbors where `idx` is the provider).
  std::vector<AsIndex> neighbors_of_type(AsIndex idx, LinkType type) const;

  /// Number of distinct neighbors (any type).
  std::size_t degree(AsIndex idx) const;

  /// Number of incident links (counting multiplicity).
  std::size_t link_degree(AsIndex idx) const { return ases_[idx].links.size(); }

  /// All links between the pair (either orientation).
  std::vector<LinkIndex> links_between(AsIndex x, AsIndex y) const;

  /// The link on which `self` owns interface `ifid`, if any. Interface ids
  /// are unique per AS, so at most one link matches.
  std::optional<LinkIndex> link_by_interface(AsIndex self, IfId ifid) const;

  /// True if every AS can reach every other AS ignoring link direction.
  bool connected() const;

  /// Induced subgraph on `keep` (relationships preserved); the i-th element
  /// of `keep` becomes AsIndex i of the result.
  Topology induced_subgraph(std::span<const AsIndex> keep) const;

  /// The `n` ASes with the highest link_degree, in decreasing order. This is
  /// the paper's pruning rule for building the 2000-AS core network.
  std::vector<AsIndex> highest_degree(std::size_t n) const;

 private:
  struct AsState {
    IsdAsId id;
    bool is_core{false};
    IfId next_if{1};
    std::vector<LinkIndex> links;
  };

  std::vector<AsState> ases_;
  std::vector<Link> links_;
  std::unordered_map<IsdAsId, AsIndex> index_;
};

}  // namespace scion::topo
