// Identifiers for the SCION network model (Section 2.1).
//
// Routing is based on the <ISD, AS> tuple. SCION inherits today's AS numbers
// but extends the namespace to 48 bits; an IsdAsId packs a 16-bit ISD and a
// 48-bit AS number into one 64-bit value, mirroring the production wire
// encoding.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/types.hpp"

namespace scion::topo {

/// Isolation-domain identifier (strong: never interchangeable with an AS
/// number, interface id, or any other 16-bit quantity).
using IsdId = util::StrongId<struct IsdIdTag, std::uint16_t>;

/// Interface identifier, unique within one AS. IfId{0} is reserved ("no
/// interface"), matching SCION's convention. Strong: parallel links mean an
/// interface id is *not* an AS-equivalent neighbor handle, and the type
/// system now enforces that.
using IfId = util::StrongId<struct IfIdTag, std::uint16_t>;
inline constexpr IfId kNoInterface{};

/// Dense index of an AS inside a Topology; used on hot paths. Deliberately a
/// raw integer: dense indices exist to index vectors and iterate ranges, and
/// wrapping them would put .value() on every hot-path subscript. The strong
/// types guard the *identity* handles (IsdId/IfId/IsdAsId, sim::NodeId/
/// ChannelId); mixing an index into one of those no longer compiles.
using AsIndex = std::uint32_t;
inline constexpr AsIndex kInvalidAsIndex = ~AsIndex{0};

/// Dense index of an inter-AS link inside a Topology. A "link" is one
/// physical interconnection between two interfaces; parallel links between
/// the same AS pair have distinct LinkIds. Link-disjointness in the
/// diversity algorithm is defined over these ids.
using LinkIndex = std::uint32_t;
inline constexpr LinkIndex kInvalidLinkIndex = ~LinkIndex{0};

/// The <ISD, AS> routing identifier.
class IsdAsId {
 public:
  constexpr IsdAsId() = default;

  static constexpr IsdAsId make(IsdId isd, std::uint64_t as_number) {
    return IsdAsId{(static_cast<std::uint64_t>(isd.value()) << 48) |
                   (as_number & 0x0000FFFFFFFFFFFFULL)};
  }
  /// Convenience for numeric-literal call sites: the 16-bit ISD number is
  /// wrapped on entry. A strong IfId (or any other StrongId) still does not
  /// convert to the raw parameter, so id mix-ups keep failing to compile.
  static constexpr IsdAsId make(std::uint16_t isd, std::uint64_t as_number) {
    return make(IsdId{isd}, as_number);
  }
  static constexpr IsdAsId from_value(std::uint64_t v) { return IsdAsId{v}; }

  constexpr IsdId isd() const { return IsdId{static_cast<std::uint16_t>(value_ >> 48)}; }
  constexpr std::uint64_t as_number() const { return value_ & 0x0000FFFFFFFFFFFFULL; }
  constexpr std::uint64_t value() const { return value_; }

  constexpr bool valid() const { return value_ != 0; }

  constexpr auto operator<=>(const IsdAsId&) const = default;

  /// "<isd>-<as>", e.g. "1-42".
  std::string to_string() const;

  /// Parses "<isd>-<as>"; returns an invalid id on malformed input.
  static IsdAsId parse(const std::string& s);

 private:
  explicit constexpr IsdAsId(std::uint64_t v) : value_{v} {}
  std::uint64_t value_{0};
};

}  // namespace scion::topo

template <>
struct std::hash<scion::topo::IsdAsId> {
  std::size_t operator()(const scion::topo::IsdAsId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
