// Plain-text serialization of topologies, so experiment inputs can be
// stored, inspected, and replayed.
//
// Format, one record per line ('#' starts a comment):
//   as <isd>-<as> core|leaf
//   link <isd>-<as> <isd>-<as> core|pc|peer
// Link lines may repeat for parallel links; for `pc` links the first AS is
// the provider. ASes must be declared before links referencing them.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topology/topology.hpp"

namespace scion::topo {

/// Error thrown on malformed topology text.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void write_topology(std::ostream& os, const Topology& topo);
std::string topology_to_string(const Topology& topo);

Topology read_topology(std::istream& is);
Topology topology_from_string(const std::string& text);

}  // namespace scion::topo
