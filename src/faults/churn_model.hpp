// Deterministic sustained-churn scenario generator.
//
// A ChurnModel expands one ChurnSpec into a finite, FaultPlan-compatible
// stream of link-down events (each carrying its own downtime). Every
// eligible link runs an independent ON/OFF renewal process with truncated
// Pareto up/down durations — the heavy-tailed minute-to-hour flap
// timescales the SCIONLab path-dynamics study measured on deployed paths —
// optionally shaped into periodic bursts or a ramp.
//
// Determinism: each link draws from util::Rng::substream(stream, link),
// where the stream is a pure function of (plan seed, spec index). The
// expanded events therefore do not depend on candidate order, on other
// specs, on the simulator, or on --jobs; the same plan replays
// byte-identically everywhere. FaultInjector::arm() performs the expansion
// and schedules the events through the same refcounted down/up machinery
// as every other fault.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault_plan.hpp"
#include "topology/topology.hpp"

namespace scion::faults {

class ChurnModel {
 public:
  /// `spec_index` is the spec's position in its plan, decorrelating the
  /// per-link substreams of multiple churn directives in one scenario.
  ChurnModel(ChurnSpec spec, std::size_t spec_index, std::uint64_t plan_seed);

  /// Expands the per-link ON/OFF processes over `candidates` into scheduled
  /// link-down events. Offsets are relative to the arm instant (like every
  /// plan event); downtimes are clipped at the spec window's end, so every
  /// churn outage restores and never exceeds the window. Within one link the
  /// events come out time-ascending.
  std::vector<Event> events(std::span<const topo::LinkIndex> candidates) const;

  const ChurnSpec& spec() const { return spec_; }

 private:
  ChurnSpec spec_;
  std::uint64_t stream_;
};

}  // namespace scion::faults
