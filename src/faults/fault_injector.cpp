#include "faults/fault_injector.hpp"

#include <algorithm>

#include "faults/churn_model.hpp"
#include "obs/event_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace scion::faults {

using util::Duration;
using util::TimePoint;

namespace {

// Event-cost attribution labels (interned once at static init).
const obs::EventLabel kFaultEventLabel = obs::event_label("fault.event");
const obs::EventLabel kFaultRestoreLabel = obs::event_label("fault.restore");
const obs::EventLabel kFaultFlapLabel = obs::event_label("fault.flap");
const obs::EventLabel kFaultChurnLabel = obs::event_label("fault.churn");

}  // namespace

FaultInjector::FaultInjector(sim::Network& net, FaultPlan plan,
                             const topo::Topology* topology, Hooks hooks)
    : net_{net},
      plan_{std::move(plan)},
      topology_{topology},
      hooks_{std::move(hooks)},
      rng_{plan_.seed} {
  link_depth_.assign(link_count(), 0);
  channel_depth_.assign(net_.channel_count(), 0);
  node_depth_.assign(net_.node_count(), 0);
  down_since_.assign(link_count(), util::TimePoint::origin());
}

std::size_t FaultInjector::link_count() const {
  return topology_ != nullptr ? topology_->link_count() : net_.channel_count();
}

sim::ChannelId FaultInjector::channel_of(topo::LinkIndex link) const {
  if (hooks_.channel_of_link) return hooks_.channel_of_link(link);
  return sim::ChannelId{link};
}

void FaultInjector::arm(TimePoint until) {
  SCION_CHECK(!armed_, "fault injector armed twice");
  armed_ = true;
  sim::Simulator& sim = net_.simulator();
  if (plan_.loss_probability > 0.0 || plan_.jitter_max > Duration::zero() ||
      !plan_.flaps.empty()) {
    net_.set_fault_rng(&rng_);
  }
  for (std::uint32_t c = 0; c < net_.channel_count(); ++c) {
    const sim::ChannelId ch{c};
    if (plan_.loss_probability > 0.0) {
      net_.set_loss_probability(ch, plan_.loss_probability);
    }
    if (plan_.jitter_max > Duration::zero()) {
      net_.set_jitter(ch, plan_.jitter_max);
    }
  }
  SCION_TRACE(obs::Category::kFault, sim.now(), "armed",
              {"events", plan_.events.size()}, {"flaps", plan_.flaps.size()},
              {"churn", plan_.churn.size()}, {"loss", plan_.loss_probability},
              {"jitter_ns", plan_.jitter_max.ns()});
  for (const Event& ev : plan_.events) {
    sim.schedule_at(sim.now() + ev.at, kFaultEventLabel,
                    [this, ev] { run_event(ev); });
  }
  for (const FlapProcess& flap : plan_.flaps) {
    start_flap_process(flap, until);
  }
  for (std::size_t i = 0; i < plan_.churn.size(); ++i) {
    start_churn(plan_.churn[i], i, until);
  }
}

void FaultInjector::start_churn(const ChurnSpec& spec, std::size_t spec_idx,
                                TimePoint until) {
  sim::Simulator& sim = net_.simulator();
  // The stream is expanded up front: it is a pure function of
  // (plan seed, spec index, link index), so the run stays byte-identical
  // regardless of what else the simulator schedules meanwhile.
  const ChurnModel model{spec, spec_idx, plan_.seed};
  const std::vector<topo::LinkIndex> candidates = flap_candidates(spec.links);
  std::size_t scheduled = 0;
  for (const Event& ev : model.events(candidates)) {
    const TimePoint at = sim.now() + ev.at;
    if (at > until) continue;  // keep draining simulations terminating
    ++scheduled;
    sim.schedule_at(at, kFaultChurnLabel, [this, ev] {
      ++stats_.churn_events;
      SCION_METRIC_COUNT("faults.churn_events", 1);
      SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "churn",
                  {"link", ev.target}, {"downtime_ns", ev.duration.ns()});
      flap_link_down(ev.target, ev.duration);
    });
  }
  SCION_TRACE(obs::Category::kFault, sim.now(), "churn_armed",
              {"profile", to_string(spec.profile)},
              {"candidates", candidates.size()}, {"events", scheduled});
}

void FaultInjector::skip_event(const Event& ev) {
  ++stats_.events_skipped;
  SCION_METRIC_COUNT("faults.events_skipped", 1);
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "skipped",
              {"kind", to_string(ev.kind)}, {"target", ev.target});
}

void FaultInjector::run_event(const Event& ev) {
  switch (ev.kind) {
    case Event::Kind::kLinkDown:
      if (ev.target >= link_count()) return skip_event(ev);
      inject_link_down(ev.target, ev.duration);
      break;
    case Event::Kind::kLinkUp:
      if (ev.target >= link_count()) return skip_event(ev);
      inject_link_up(ev.target);
      break;
    case Event::Kind::kNodeDown:
      if (ev.target >= net_.node_count()) return skip_event(ev);
      inject_node_down(sim::NodeId{ev.target}, ev.duration);
      break;
    case Event::Kind::kNodeUp:
      if (ev.target >= net_.node_count()) return skip_event(ev);
      inject_node_up(sim::NodeId{ev.target});
      break;
    case Event::Kind::kIsdPartition:
      partition_isd(topo::IsdId{static_cast<std::uint16_t>(ev.target)},
                    ev.duration);
      break;
    case Event::Kind::kSessionRestart:
      if (ev.target >= link_count() || !hooks_.on_session_restart) {
        return skip_event(ev);
      }
      ++stats_.session_restarts;
      SCION_METRIC_COUNT("faults.session_restarts", 1);
      SCION_TRACE(obs::Category::kFault, net_.simulator().now(),
                  "session_restart", {"link", ev.target},
                  {"duration_ns", ev.duration.ns()});
      hooks_.on_session_restart(ev.target, ev.duration);
      break;
  }
}

void FaultInjector::inject_link_down(topo::LinkIndex link, Duration downtime) {
  SCION_CHECK(link < link_depth_.size(), "link index out of range");
  ++stats_.link_down_events;
  SCION_METRIC_COUNT("faults.link_down", 1);
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "link_down",
              {"link", link}, {"downtime_ns", downtime.ns()});
  link_down_ref(link);
  if (downtime > Duration::zero()) {
    net_.simulator().schedule_after(
        downtime, kFaultRestoreLabel, [this, link] { link_down_unref(link); });
  }
}

void FaultInjector::inject_link_up(topo::LinkIndex link) {
  SCION_CHECK(link < link_depth_.size(), "link index out of range");
  link_down_unref(link);
}

void FaultInjector::inject_node_down(sim::NodeId node, Duration downtime) {
  SCION_CHECK(node.value() < node_depth_.size(), "node id out of range");
  ++stats_.node_down_events;
  SCION_METRIC_COUNT("faults.node_down", 1);
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "node_down",
              {"node", node}, {"downtime_ns", downtime.ns()});
  node_down_ref(node);
  if (downtime > Duration::zero()) {
    net_.simulator().schedule_after(
        downtime, kFaultRestoreLabel, [this, node] { node_down_unref(node); });
  }
}

void FaultInjector::inject_node_up(sim::NodeId node) {
  SCION_CHECK(node.value() < node_depth_.size(), "node id out of range");
  node_down_unref(node);
}

bool FaultInjector::link_up(topo::LinkIndex link) const {
  SCION_CHECK(link < link_depth_.size(), "link index out of range");
  return link_depth_[link] == 0;
}

void FaultInjector::partition_isd(topo::IsdId isd, Duration duration) {
  SCION_CHECK(topology_ != nullptr,
              "isd-partition requires a topology-aware injector");
  ++stats_.partitions;
  SCION_METRIC_COUNT("faults.partitions", 1);
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "isd_partition",
              {"isd", isd}, {"duration_ns", duration.ns()});
  // Cut every link with exactly one endpoint inside the target ISD.
  for (topo::LinkIndex l = 0; l < topology_->link_count(); ++l) {
    const topo::Link& link = topology_->link(l);
    const bool a_in = topology_->as_id(link.a).isd() == isd;
    const bool b_in = topology_->as_id(link.b).isd() == isd;
    if (a_in == b_in) continue;
    inject_link_down(l, duration);
  }
}

void FaultInjector::start_flap_process(const FlapProcess& flap,
                                       TimePoint until) {
  SCION_CHECK(flap.rate_per_hour > 0.0, "flap process with zero rate");
  SCION_CHECK(flap.downtime_min <= flap.downtime_max,
              "flap downtime range inverted");
  const std::size_t idx =
      static_cast<std::size_t>(&flap - plan_.flaps.data());
  const double gap_s = rng_.exponential(3600.0 / flap.rate_per_hour);
  const Duration gap =
      Duration::nanoseconds(static_cast<std::int64_t>(gap_s * 1e9));
  const TimePoint at = net_.simulator().now() + gap;
  if (at > until) return;
  net_.simulator().schedule_at(
      at, kFaultFlapLabel, [this, idx, until] { fire_flap(idx, until); });
}

void FaultInjector::fire_flap(std::size_t flap_idx, TimePoint until) {
  const FlapProcess& flap = plan_.flaps[flap_idx];
  const std::vector<topo::LinkIndex> candidates = flap_candidates(flap.links);
  if (!candidates.empty()) {
    const topo::LinkIndex link = candidates[rng_.index(candidates.size())];
    const Duration downtime = Duration::nanoseconds(rng_.uniform_int(
        flap.downtime_min.ns(), flap.downtime_max.ns()));
    ++stats_.flaps;
    SCION_METRIC_COUNT("faults.flaps", 1);
    SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "flap",
                {"link", link}, {"downtime_ns", downtime.ns()});
    flap_link_down(link, downtime);
  }
  start_flap_process(flap, until);
}

void FaultInjector::flap_link_down(topo::LinkIndex link, Duration downtime) {
  inject_link_down(link, downtime);
  if (downtime == Duration::zero()) {
    // inject_link_down treats zero as "permanent" (plan-event semantics);
    // a flap's zero draw instead means a same-instant bounce. Scheduling the
    // restore at now() keeps it a true down->up pair: the refcount fires
    // each hook exactly once, after every event already queued at this
    // instant observed the link down.
    net_.simulator().schedule_after(Duration::zero(), kFaultRestoreLabel,
                                    [this, link] { link_down_unref(link); });
  }
}

std::vector<topo::LinkIndex> FaultInjector::flap_candidates(
    LinkClass link_class) const {
  std::vector<topo::LinkIndex> out;
  const std::size_t n = link_count();
  out.reserve(n);
  for (topo::LinkIndex l = 0; l < n; ++l) {
    if (link_depth_[l] != 0) continue;  // already down: flap something else
    if (link_class != LinkClass::kAll) {
      SCION_CHECK(topology_ != nullptr,
                  "link-class flap filter requires a topology-aware injector");
      const topo::LinkType type = topology_->link(l).type;
      const bool match =
          (link_class == LinkClass::kCore && type == topo::LinkType::kCore) ||
          (link_class == LinkClass::kProviderCustomer &&
           type == topo::LinkType::kProviderCustomer) ||
          (link_class == LinkClass::kPeer && type == topo::LinkType::kPeer);
      if (!match) continue;
    }
    out.push_back(l);
  }
  return out;
}

void FaultInjector::link_down_ref(topo::LinkIndex link) {
  if (++link_depth_[link] != 1) return;  // already down via another outage
  down_since_[link] = net_.simulator().now();
  const sim::ChannelId ch = channel_of(link);
  SCION_CHECK(ch.value() < channel_depth_.size(), "channel id out of range");
  if (++channel_depth_[ch.value()] == 1) net_.set_channel_up(ch, false);
  if (hooks_.on_link_down) hooks_.on_link_down(link);
}

void FaultInjector::link_down_unref(topo::LinkIndex link) {
  if (link_depth_[link] == 0) return;  // saturating: spurious restore
  if (--link_depth_[link] != 0) return;  // another outage still holds it
  const sim::ChannelId ch = channel_of(link);
  if (--channel_depth_[ch.value()] == 0) net_.set_channel_up(ch, true);
  ++stats_.link_up_events;
  SCION_METRIC_COUNT("faults.link_up", 1);
  // The realized blackout of this link across all overlapping outages.
  SCION_METRIC_OBSERVE(
      "faults.link_downtime_s",
      (net_.simulator().now() - down_since_[link]).as_seconds());
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "link_up",
              {"link", link},
              {"downtime_ns", (net_.simulator().now() - down_since_[link]).ns()});
  if (hooks_.on_link_up) hooks_.on_link_up(link);
}

void FaultInjector::node_down_ref(sim::NodeId node) {
  if (++node_depth_[node.value()] != 1) return;
  net_.set_node_up(node, false);
  if (hooks_.on_node_down) hooks_.on_node_down(node);
}

void FaultInjector::node_down_unref(sim::NodeId node) {
  if (node_depth_[node.value()] == 0) return;
  if (--node_depth_[node.value()] != 0) return;
  net_.set_node_up(node, true);
  ++stats_.node_up_events;
  SCION_METRIC_COUNT("faults.node_up", 1);
  SCION_TRACE(obs::Category::kFault, net_.simulator().now(), "node_up",
              {"node", node});
  if (hooks_.on_node_up) hooks_.on_node_up(node);
}

}  // namespace scion::faults
