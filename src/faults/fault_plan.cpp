#include "faults/fault_plan.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

namespace scion::faults {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kAll: return "all";
    case LinkClass::kCore: return "core";
    case LinkClass::kProviderCustomer: return "provider-customer";
    case LinkClass::kPeer: return "peer";
  }
  return "?";
}

const char* to_string(Event::Kind k) {
  switch (k) {
    case Event::Kind::kLinkDown: return "link-down";
    case Event::Kind::kLinkUp: return "link-up";
    case Event::Kind::kNodeDown: return "as-down";
    case Event::Kind::kNodeUp: return "as-up";
    case Event::Kind::kIsdPartition: return "isd-partition";
    case Event::Kind::kSessionRestart: return "session-restart";
  }
  return "?";
}

const char* to_string(ChurnSpec::Profile p) {
  switch (p) {
    case ChurnSpec::Profile::kSteady: return "steady";
    case ChurnSpec::Profile::kBurst: return "burst";
    case ChurnSpec::Profile::kRamp: return "ramp";
  }
  return "?";
}

bool parse_duration(const std::string& text, util::Duration* out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0 || i == text.size()) return false;
  char* end = nullptr;
  const std::string number = text.substr(0, i);
  const double value = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0' || value < 0.0) return false;
  const std::string unit = text.substr(i);
  double ns = 0.0;
  if (unit == "ns") {
    ns = value;
  } else if (unit == "us") {
    ns = value * 1e3;
  } else if (unit == "ms") {
    ns = value * 1e6;
  } else if (unit == "s") {
    ns = value * 1e9;
  } else if (unit == "m") {
    ns = value * 60e9;
  } else if (unit == "h") {
    ns = value * 3600e9;
  } else if (unit == "d") {
    ns = value * 86400e9;
  } else {
    return false;
  }
  *out = util::Duration::nanoseconds(static_cast<std::int64_t>(std::llround(ns)));
  return true;
}

namespace {

bool parse_u32(const std::string& text, std::uint32_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xFFFFFFFFULL) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_link_class(const std::string& text, LinkClass* out) {
  for (const LinkClass c : {LinkClass::kAll, LinkClass::kCore,
                            LinkClass::kProviderCustomer, LinkClass::kPeer}) {
    if (text == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// "30s..2m" → [30s, 2m].
bool parse_duration_range(const std::string& text, util::Duration* lo,
                          util::Duration* hi) {
  const std::size_t sep = text.find("..");
  if (sep == std::string::npos) {
    if (!parse_duration(text, lo)) return false;
    *hi = *lo;
    return true;
  }
  return parse_duration(text.substr(0, sep), lo) &&
         parse_duration(text.substr(sep + 2), hi) && *lo <= *hi;
}

bool fail(std::string* error, int line_no, const std::string& message) {
  std::ostringstream out;
  out << "line " << line_no << ": " << message;
  *error = out.str();
  return false;
}

/// Parses the "at T [for D]" tail common to all scheduled events.
bool parse_event_tail(const std::vector<std::string>& tok, std::size_t from,
                      bool allow_for, Event* ev) {
  if (from >= tok.size() || tok[from] != "at") return false;
  if (from + 1 >= tok.size() || !parse_duration(tok[from + 1], &ev->at)) {
    return false;
  }
  std::size_t i = from + 2;
  if (i < tok.size()) {
    if (!allow_for || tok[i] != "for" || i + 1 >= tok.size()) return false;
    if (!parse_duration(tok[i + 1], &ev->duration)) return false;
    i += 2;
  }
  return i == tok.size();
}

bool parse_profile(const std::string& text, ChurnSpec::Profile* out) {
  for (const ChurnSpec::Profile p :
       {ChurnSpec::Profile::kSteady, ChurnSpec::Profile::kBurst,
        ChurnSpec::Profile::kRamp}) {
    if (text == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

/// "10m..6h@1.1" → truncated-Pareto bounds + shape.
bool parse_tail_range(const std::string& text, util::Duration* lo,
                      util::Duration* hi, double* alpha) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return false;
  return parse_duration_range(text.substr(0, at), lo, hi) &&
         parse_double(text.substr(at + 1), alpha) && *alpha > 0.0;
}

/// churn PROFILE [links CLASS] [fraction F] [up RANGE@ALPHA]
///       [down RANGE@ALPHA] [period P len L] at T for D
bool parse_churn(const std::vector<std::string>& tok, ChurnSpec* spec) {
  if (tok.size() < 2 || !parse_profile(tok[1], &spec->profile)) return false;
  std::size_t i = 2;
  while (i < tok.size() && tok[i] != "at") {
    const std::string& key = tok[i];
    if (key == "links" && i + 1 < tok.size() &&
        parse_link_class(tok[i + 1], &spec->links)) {
      i += 2;
    } else if (key == "fraction" && i + 1 < tok.size() &&
               parse_double(tok[i + 1], &spec->link_fraction) &&
               spec->link_fraction > 0.0 && spec->link_fraction <= 1.0) {
      i += 2;
    } else if (key == "up" && i + 1 < tok.size() &&
               parse_tail_range(tok[i + 1], &spec->up_min, &spec->up_max,
                                &spec->up_alpha) &&
               spec->up_min > util::Duration::zero()) {
      i += 2;
    } else if (key == "down" && i + 1 < tok.size() &&
               parse_tail_range(tok[i + 1], &spec->down_min, &spec->down_max,
                                &spec->down_alpha) &&
               spec->down_min > util::Duration::zero()) {
      i += 2;
    } else if (key == "period" && i + 3 < tok.size() &&
               parse_duration(tok[i + 1], &spec->burst_period) &&
               tok[i + 2] == "len" &&
               parse_duration(tok[i + 3], &spec->burst_len) &&
               spec->burst_len > util::Duration::zero() &&
               spec->burst_len <= spec->burst_period) {
      i += 4;
    } else {
      return false;
    }
  }
  // Mandatory window: "at T for D" with D > 0 (a bounded window is what
  // keeps the expanded event stream finite).
  if (i + 3 >= tok.size() || tok[i] != "at" || tok[i + 2] != "for") {
    return false;
  }
  return parse_duration(tok[i + 1], &spec->start) &&
         parse_duration(tok[i + 3], &spec->duration) &&
         spec->duration > util::Duration::zero() && i + 4 == tok.size();
}

/// Largest unit that divides the duration exactly, so text produced by
/// to_text() reparses to the identical nanosecond count.
std::string format_duration(util::Duration d) {
  const std::int64_t ns = d.ns();
  struct Unit {
    std::int64_t scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {86400000000000LL, "d"}, {3600000000000LL, "h"}, {60000000000LL, "m"},
      {1000000000LL, "s"},     {1000000LL, "ms"},      {1000LL, "us"},
  };
  std::ostringstream out;
  for (const Unit& u : kUnits) {
    if (ns != 0 && ns % u.scale == 0) {
      out << (ns / u.scale) << u.suffix;
      return out.str();
    }
  }
  out << ns << "ns";
  return out.str();
}

std::string format_tail_range(util::Duration lo, util::Duration hi,
                              double alpha) {
  std::ostringstream out;
  out << format_duration(lo) << ".." << format_duration(hi) << '@' << alpha;
  return out.str();
}

}  // namespace

bool FaultPlan::parse(std::istream& in, FaultPlan* plan, std::string* error) {
  *plan = FaultPlan{};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields{line};
    std::vector<std::string> tok;
    for (std::string t; fields >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "seed") {
      if (tok.size() != 2 || !parse_u64(tok[1], &plan->seed)) {
        return fail(error, line_no, "expected: seed N");
      }
    } else if (cmd == "loss") {
      if (tok.size() != 2 || !parse_double(tok[1], &plan->loss_probability) ||
          plan->loss_probability < 0.0 || plan->loss_probability > 1.0) {
        return fail(error, line_no, "expected: loss P with P in [0,1]");
      }
    } else if (cmd == "jitter") {
      if (tok.size() != 2 || !parse_duration(tok[1], &plan->jitter_max)) {
        return fail(error, line_no, "expected: jitter DURATION");
      }
    } else if (cmd == "flap") {
      // flap rate/h R down DMIN..DMAX [links CLASS]
      FlapProcess flap;
      bool ok = tok.size() >= 5 && tok[1] == "rate/h" &&
                parse_double(tok[2], &flap.rate_per_hour) &&
                flap.rate_per_hour > 0.0 && tok[3] == "down" &&
                parse_duration_range(tok[4], &flap.downtime_min,
                                     &flap.downtime_max);
      if (ok && tok.size() == 7) {
        ok = tok[5] == "links" && parse_link_class(tok[6], &flap.links);
      } else if (ok) {
        ok = tok.size() == 5;
      }
      if (!ok) {
        return fail(error, line_no,
                    "expected: flap rate/h R down DMIN..DMAX [links "
                    "all|core|provider-customer|peer]");
      }
      plan->flaps.push_back(flap);
    } else if (cmd == "churn") {
      ChurnSpec spec;
      if (!parse_churn(tok, &spec)) {
        return fail(error, line_no,
                    "expected: churn steady|burst|ramp [links CLASS] "
                    "[fraction F] [up LO..HI@ALPHA] [down LO..HI@ALPHA] "
                    "[period P len L] at T for D (D > 0)");
      }
      plan->churn.push_back(spec);
    } else {
      Event ev;
      bool allow_for = true;
      if (cmd == "link-down") {
        ev.kind = Event::Kind::kLinkDown;
      } else if (cmd == "link-up") {
        ev.kind = Event::Kind::kLinkUp;
        allow_for = false;
      } else if (cmd == "as-down") {
        ev.kind = Event::Kind::kNodeDown;
      } else if (cmd == "as-up") {
        ev.kind = Event::Kind::kNodeUp;
        allow_for = false;
      } else if (cmd == "isd-partition") {
        ev.kind = Event::Kind::kIsdPartition;
      } else if (cmd == "session-restart") {
        ev.kind = Event::Kind::kSessionRestart;
      } else {
        return fail(error, line_no, "unknown directive '" + cmd + "'");
      }
      if (tok.size() < 2 || !parse_u32(tok[1], &ev.target) ||
          !parse_event_tail(tok, 2, allow_for, &ev)) {
        return fail(error, line_no,
                    "expected: " + std::string{to_string(ev.kind)} +
                        (allow_for ? " TARGET at T [for D]" : " TARGET at T"));
      }
      plan->events.push_back(ev);
    }
  }
  return true;
}

bool FaultPlan::parse_file(const std::string& path, FaultPlan* plan,
                           std::string* error) {
  std::ifstream in{path};
  if (!in) {
    *error = "cannot open fault scenario file: " + path;
    return false;
  }
  return parse(in, plan, error);
}

namespace {

/// Shortest decimal that reparses to the identical double (strtod and
/// to_chars agree on round-tripping), keeping to_text() loss-free.
std::string format_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::to_string(v);
}

}  // namespace

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  out << "seed " << seed << '\n';
  if (loss_probability != 0.0) {
    out << "loss " << format_double(loss_probability) << '\n';
  }
  if (jitter_max != util::Duration::zero()) {
    out << "jitter " << format_duration(jitter_max) << '\n';
  }
  for (const FlapProcess& f : flaps) {
    out << "flap rate/h " << format_double(f.rate_per_hour) << " down "
        << format_duration(f.downtime_min) << ".."
        << format_duration(f.downtime_max) << " links " << to_string(f.links)
        << '\n';
  }
  for (const ChurnSpec& c : churn) {
    out << "churn " << to_string(c.profile) << " links " << to_string(c.links)
        << " fraction " << format_double(c.link_fraction) << " up "
        << format_tail_range(c.up_min, c.up_max, c.up_alpha) << " down "
        << format_tail_range(c.down_min, c.down_max, c.down_alpha);
    if (c.profile == ChurnSpec::Profile::kBurst) {
      out << " period " << format_duration(c.burst_period) << " len "
          << format_duration(c.burst_len);
    }
    out << " at " << format_duration(c.start) << " for "
        << format_duration(c.duration) << '\n';
  }
  for (const Event& ev : events) {
    out << to_string(ev.kind) << ' ' << ev.target << " at "
        << format_duration(ev.at);
    if (ev.duration != util::Duration::zero()) {
      out << " for " << format_duration(ev.duration);
    }
    out << '\n';
  }
  return out.str();
}

bool operator==(const Event& a, const Event& b) {
  return a.kind == b.kind && a.target == b.target && a.at == b.at &&
         a.duration == b.duration;
}

bool operator==(const FlapProcess& a, const FlapProcess& b) {
  return a.rate_per_hour == b.rate_per_hour &&
         a.downtime_min == b.downtime_min && a.downtime_max == b.downtime_max &&
         a.links == b.links;
}

bool operator==(const ChurnSpec& a, const ChurnSpec& b) {
  return a.profile == b.profile && a.links == b.links &&
         a.link_fraction == b.link_fraction && a.up_min == b.up_min &&
         a.up_max == b.up_max && a.up_alpha == b.up_alpha &&
         a.down_min == b.down_min && a.down_max == b.down_max &&
         a.down_alpha == b.down_alpha && a.start == b.start &&
         a.duration == b.duration && a.burst_period == b.burst_period &&
         a.burst_len == b.burst_len;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.events == b.events && a.flaps == b.flaps && a.churn == b.churn &&
         a.loss_probability == b.loss_probability &&
         a.jitter_max == b.jitter_max && a.seed == b.seed;
}

}  // namespace scion::faults
