#include "faults/fault_plan.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

namespace scion::faults {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kAll: return "all";
    case LinkClass::kCore: return "core";
    case LinkClass::kProviderCustomer: return "provider-customer";
    case LinkClass::kPeer: return "peer";
  }
  return "?";
}

const char* to_string(Event::Kind k) {
  switch (k) {
    case Event::Kind::kLinkDown: return "link-down";
    case Event::Kind::kLinkUp: return "link-up";
    case Event::Kind::kNodeDown: return "as-down";
    case Event::Kind::kNodeUp: return "as-up";
    case Event::Kind::kIsdPartition: return "isd-partition";
  }
  return "?";
}

bool parse_duration(const std::string& text, util::Duration* out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0 || i == text.size()) return false;
  char* end = nullptr;
  const std::string number = text.substr(0, i);
  const double value = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0' || value < 0.0) return false;
  const std::string unit = text.substr(i);
  double ns = 0.0;
  if (unit == "ns") {
    ns = value;
  } else if (unit == "us") {
    ns = value * 1e3;
  } else if (unit == "ms") {
    ns = value * 1e6;
  } else if (unit == "s") {
    ns = value * 1e9;
  } else if (unit == "m") {
    ns = value * 60e9;
  } else if (unit == "h") {
    ns = value * 3600e9;
  } else if (unit == "d") {
    ns = value * 86400e9;
  } else {
    return false;
  }
  *out = util::Duration::nanoseconds(static_cast<std::int64_t>(std::llround(ns)));
  return true;
}

namespace {

bool parse_u32(const std::string& text, std::uint32_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xFFFFFFFFULL) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_link_class(const std::string& text, LinkClass* out) {
  for (const LinkClass c : {LinkClass::kAll, LinkClass::kCore,
                            LinkClass::kProviderCustomer, LinkClass::kPeer}) {
    if (text == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// "30s..2m" → [30s, 2m].
bool parse_duration_range(const std::string& text, util::Duration* lo,
                          util::Duration* hi) {
  const std::size_t sep = text.find("..");
  if (sep == std::string::npos) {
    if (!parse_duration(text, lo)) return false;
    *hi = *lo;
    return true;
  }
  return parse_duration(text.substr(0, sep), lo) &&
         parse_duration(text.substr(sep + 2), hi) && *lo <= *hi;
}

bool fail(std::string* error, int line_no, const std::string& message) {
  std::ostringstream out;
  out << "line " << line_no << ": " << message;
  *error = out.str();
  return false;
}

/// Parses the "at T [for D]" tail common to all scheduled events.
bool parse_event_tail(const std::vector<std::string>& tok, std::size_t from,
                      bool allow_for, Event* ev) {
  if (from >= tok.size() || tok[from] != "at") return false;
  if (from + 1 >= tok.size() || !parse_duration(tok[from + 1], &ev->at)) {
    return false;
  }
  std::size_t i = from + 2;
  if (i < tok.size()) {
    if (!allow_for || tok[i] != "for" || i + 1 >= tok.size()) return false;
    if (!parse_duration(tok[i + 1], &ev->duration)) return false;
    i += 2;
  }
  return i == tok.size();
}

}  // namespace

bool FaultPlan::parse(std::istream& in, FaultPlan* plan, std::string* error) {
  *plan = FaultPlan{};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields{line};
    std::vector<std::string> tok;
    for (std::string t; fields >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "seed") {
      if (tok.size() != 2 || !parse_u64(tok[1], &plan->seed)) {
        return fail(error, line_no, "expected: seed N");
      }
    } else if (cmd == "loss") {
      if (tok.size() != 2 || !parse_double(tok[1], &plan->loss_probability) ||
          plan->loss_probability < 0.0 || plan->loss_probability > 1.0) {
        return fail(error, line_no, "expected: loss P with P in [0,1]");
      }
    } else if (cmd == "jitter") {
      if (tok.size() != 2 || !parse_duration(tok[1], &plan->jitter_max)) {
        return fail(error, line_no, "expected: jitter DURATION");
      }
    } else if (cmd == "flap") {
      // flap rate/h R down DMIN..DMAX [links CLASS]
      FlapProcess flap;
      bool ok = tok.size() >= 5 && tok[1] == "rate/h" &&
                parse_double(tok[2], &flap.rate_per_hour) &&
                flap.rate_per_hour > 0.0 && tok[3] == "down" &&
                parse_duration_range(tok[4], &flap.downtime_min,
                                     &flap.downtime_max);
      if (ok && tok.size() == 7) {
        ok = tok[5] == "links" && parse_link_class(tok[6], &flap.links);
      } else if (ok) {
        ok = tok.size() == 5;
      }
      if (!ok) {
        return fail(error, line_no,
                    "expected: flap rate/h R down DMIN..DMAX [links "
                    "all|core|provider-customer|peer]");
      }
      plan->flaps.push_back(flap);
    } else {
      Event ev;
      bool allow_for = true;
      if (cmd == "link-down") {
        ev.kind = Event::Kind::kLinkDown;
      } else if (cmd == "link-up") {
        ev.kind = Event::Kind::kLinkUp;
        allow_for = false;
      } else if (cmd == "as-down") {
        ev.kind = Event::Kind::kNodeDown;
      } else if (cmd == "as-up") {
        ev.kind = Event::Kind::kNodeUp;
        allow_for = false;
      } else if (cmd == "isd-partition") {
        ev.kind = Event::Kind::kIsdPartition;
      } else {
        return fail(error, line_no, "unknown directive '" + cmd + "'");
      }
      if (tok.size() < 2 || !parse_u32(tok[1], &ev.target) ||
          !parse_event_tail(tok, 2, allow_for, &ev)) {
        return fail(error, line_no,
                    "expected: " + std::string{to_string(ev.kind)} +
                        (allow_for ? " TARGET at T [for D]" : " TARGET at T"));
      }
      plan->events.push_back(ev);
    }
  }
  return true;
}

bool FaultPlan::parse_file(const std::string& path, FaultPlan* plan,
                           std::string* error) {
  std::ifstream in{path};
  if (!in) {
    *error = "cannot open fault scenario file: " + path;
    return false;
  }
  return parse(in, plan, error);
}

}  // namespace scion::faults
