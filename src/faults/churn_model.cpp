#include "faults/churn_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace scion::faults {

using util::Duration;

namespace {

/// Truncated Pareto on [lo, hi] by inverse CDF (util::Rng::pareto is the
/// unbounded law; flap durations need both the heavy tail and a hard cap so
/// one draw cannot out-live the churn window by hours).
Duration truncated_pareto(util::Rng& rng, Duration lo, Duration hi,
                          double alpha) {
  if (lo >= hi) return lo;
  const double x_min = static_cast<double>(lo.ns());
  const double x_max = static_cast<double>(hi.ns());
  const double ratio = std::pow(x_min / x_max, alpha);
  const double u = rng.uniform();
  const double x = x_min * std::pow(1.0 - u * (1.0 - ratio), -1.0 / alpha);
  const auto ns = static_cast<std::int64_t>(x);
  return std::clamp(Duration::nanoseconds(ns), lo, hi);
}

}  // namespace

ChurnModel::ChurnModel(ChurnSpec spec, std::size_t spec_index,
                       std::uint64_t plan_seed)
    : spec_{spec},
      // Golden-ratio multiple decorrelates specs sharing one plan seed.
      stream_{plan_seed ^
              (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(spec_index + 1))} {
  SCION_CHECK(spec_.duration > Duration::zero(),
              "churn window must have positive duration");
  SCION_CHECK(spec_.up_min > Duration::zero() &&
                  spec_.down_min > Duration::zero(),
              "churn up/down minima must be positive");
  SCION_CHECK(spec_.up_min <= spec_.up_max &&
                  spec_.down_min <= spec_.down_max,
              "churn up/down ranges inverted");
  SCION_CHECK(spec_.link_fraction > 0.0 && spec_.link_fraction <= 1.0,
              "churn link fraction outside (0, 1]");
  if (spec_.profile == ChurnSpec::Profile::kBurst) {
    SCION_CHECK(spec_.burst_len > Duration::zero() &&
                    spec_.burst_len <= spec_.burst_period,
                "churn burst length must be in (0, period]");
  }
}

std::vector<Event> ChurnModel::events(
    std::span<const topo::LinkIndex> candidates) const {
  std::vector<Event> out;
  const Duration end = spec_.start + spec_.duration;
  for (const topo::LinkIndex link : candidates) {
    util::Rng rng = util::Rng::substream(stream_, link);
    if (spec_.link_fraction < 1.0 && rng.uniform() >= spec_.link_fraction) {
      continue;
    }
    // The link starts its window up; the first down event arrives after one
    // up-period, so arming churn never fails links at t=0 simultaneously.
    Duration t =
        spec_.start + truncated_pareto(rng, spec_.up_min, spec_.up_max,
                                       spec_.up_alpha);
    while (t < end) {
      Duration down = truncated_pareto(rng, spec_.down_min, spec_.down_max,
                                       spec_.down_alpha);
      if (t + down > end) down = end - t;  // restore inside the window
      bool keep = true;
      switch (spec_.profile) {
        case ChurnSpec::Profile::kSteady:
          break;
        case ChurnSpec::Profile::kBurst: {
          // Only onsets inside a burst window fail; the downtime itself
          // elapses in real time (an outage may outlast its burst).
          const std::int64_t phase =
              (t - spec_.start).ns() % spec_.burst_period.ns();
          keep = phase < spec_.burst_len.ns();
          break;
        }
        case ChurnSpec::Profile::kRamp:
          // Thinning: acceptance probability ramps 0 -> 1 across the
          // window, so churn intensity grows linearly.
          keep = rng.uniform() <
                 (t - spec_.start).as_seconds() / spec_.duration.as_seconds();
          break;
      }
      if (keep && down > Duration::zero()) {
        out.push_back(Event{Event::Kind::kLinkDown, link, t, down});
      }
      t = t + down +
          truncated_pareto(rng, spec_.up_min, spec_.up_max, spec_.up_alpha);
    }
  }
  return out;
}

}  // namespace scion::faults
