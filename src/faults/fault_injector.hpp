// Executes a FaultPlan against a sim::Network (the "how" of fault
// injection).
//
// The injector owns the plan's RNG, schedules every one-shot event and
// stochastic flap on the network's simulator, flips channel/node state, and
// notifies the owning simulator through Hooks so protocol logic (SCMP
// revocation, BGP session teardown, beacon-store eviction) can react. All
// three simulators (BeaconingSim, ControlPlaneSim, BgpSim) consume this one
// implementation; none keeps bespoke failure code.
//
// Links vs channels: scenarios target topology LinkIndex values. Most
// simulators create one channel per link (identity mapping), but e.g.
// BgpSim multiplexes parallel links onto one session channel — the
// channel_of_link hook captures that mapping. Down-state is reference
// counted per link and per channel, so overlapping outages (a flap during
// an ISD partition) restore correctly: a channel comes back up only when
// every outage holding it down has ended, and hooks fire only on actual
// down/up transitions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "simnet/network.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace scion::faults {

/// Counters for everything the injector did; plain data so tests work with
/// telemetry compiled out.
struct FaultInjectorStats {
  std::uint64_t link_down_events{0};
  std::uint64_t link_up_events{0};
  std::uint64_t node_down_events{0};
  std::uint64_t node_up_events{0};
  std::uint64_t flaps{0};
  std::uint64_t partitions{0};
  /// Link-down events fired by expanded churn specs.
  std::uint64_t churn_events{0};
  /// Session-restart events handed to the simulator (skipped when the
  /// simulator installs no on_session_restart hook).
  std::uint64_t session_restarts{0};
  /// Scenario events whose target was out of range for this topology
  /// (scenarios are portable across topology sizes; extra targets are
  /// skipped, not fatal).
  std::uint64_t events_skipped{0};
};

class FaultInjector {
 public:
  struct Hooks {
    /// Fired when a link transitions up->down / down->up (after the
    /// network state changed). The simulator reacts here: revoke paths,
    /// tear down sessions, evict beacons.
    std::function<void(topo::LinkIndex)> on_link_down;
    std::function<void(topo::LinkIndex)> on_link_up;
    /// Fired when a node (AS) transitions up->down / down->up.
    std::function<void(sim::NodeId)> on_node_down;
    std::function<void(sim::NodeId)> on_node_up;
    /// Fired for kSessionRestart events: the transport carried by `link`
    /// stays up, but the protocol session riding it drops for the given
    /// duration. Simulators without session state leave this unset and the
    /// event is counted as skipped.
    std::function<void(topo::LinkIndex, util::Duration)> on_session_restart;
    /// Maps a topology link to its network channel. Defaults to identity
    /// (the ChannelId == LinkIndex invariant most simulators keep).
    std::function<sim::ChannelId(topo::LinkIndex)> channel_of_link;
  };

  /// `topology` is optional but required for ISD partitions, AS-outage
  /// bounds checks, and link-class flap filters; without it the link space
  /// is assumed to be [0, net.channel_count()). Borrowed pointers must
  /// outlive the injector.
  FaultInjector(sim::Network& net, FaultPlan plan,
                const topo::Topology* topology = nullptr, Hooks hooks = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Starts the scenario: installs loss/jitter and the fault RNG on the
  /// network, schedules every event at now()+offset, and starts the flap
  /// processes. Flap processes stop scheduling past `until` so simulations
  /// that drain the event queue terminate. Call at the start of the
  /// measurement window, once.
  void arm(util::TimePoint until = util::TimePoint::max());

  /// Direct injection, usable with or without a plan (this is what
  /// ControlPlaneSim::fail_link delegates to). `downtime` of zero means
  /// the outage is permanent until inject_link_up.
  void inject_link_down(topo::LinkIndex link, util::Duration downtime);
  void inject_link_up(topo::LinkIndex link);
  void inject_node_down(sim::NodeId node, util::Duration downtime);
  void inject_node_up(sim::NodeId node);

  /// True if no outage currently holds the link down.
  bool link_up(topo::LinkIndex link) const;

  const FaultInjectorStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  util::Rng& rng() { return rng_; }

 private:
  void run_event(const Event& ev);
  void start_flap_process(const FlapProcess& flap, util::TimePoint until);
  void fire_flap(std::size_t flap_idx, util::TimePoint until);
  void start_churn(const ChurnSpec& spec, std::size_t spec_idx,
                   util::TimePoint until);
  /// Down-then-restore used by flap and churn paths: unlike plan events,
  /// a zero downtime here means "bounce now", not "permanent" — the restore
  /// is scheduled unconditionally so a degenerate flap still fires the down
  /// and up hooks exactly once each.
  void flap_link_down(topo::LinkIndex link, util::Duration downtime);
  std::vector<topo::LinkIndex> flap_candidates(LinkClass link_class) const;
  void partition_isd(topo::IsdId isd, util::Duration duration);

  /// Reference-counted down state; hooks fire on 0->1 / 1->0 transitions.
  void link_down_ref(topo::LinkIndex link);
  void link_down_unref(topo::LinkIndex link);
  void node_down_ref(sim::NodeId node);
  void node_down_unref(sim::NodeId node);

  sim::ChannelId channel_of(topo::LinkIndex link) const;
  std::size_t link_count() const;
  void skip_event(const Event& ev);

  sim::Network& net_;
  FaultPlan plan_;
  const topo::Topology* topology_;
  Hooks hooks_;
  util::Rng rng_;
  std::vector<std::uint32_t> link_depth_;
  std::vector<std::uint32_t> channel_depth_;
  std::vector<std::uint32_t> node_depth_;
  /// When each link's current outage began (valid while depth > 0); feeds
  /// the faults.link_downtime_s recovery histogram.
  std::vector<util::TimePoint> down_since_;
  FaultInjectorStats stats_;
  bool armed_{false};
};

}  // namespace scion::faults
