// Declarative fault scenarios (the "what" of fault injection).
//
// A FaultPlan is pure data: a list of scheduled one-shot events (link
// down/up, AS outage, ISD partition) plus seeded stochastic processes
// (Poisson link flaps with a downtime distribution, per-channel message
// loss, latency jitter). Plans can be built programmatically or parsed from
// a small text format so the same scenario file drives the CLI, the
// benches, and the tests:
//
//   # dyn_resilience.faults — comments start with '#'
//   seed 42
//   loss 0.01
//   jitter 5ms
//   flap rate/h 12 down 30s..2m links provider-customer
//   link-down 7 at 10s for 1m
//   as-down 3 at 30s for 2m
//   isd-partition 2 at 5m for 1m
//
// All event times are offsets from the instant the FaultInjector is armed
// (normally the start of the measurement window), so one scenario is
// meaningful across simulators with different warm-up phases. Everything
// stochastic derives from `seed` via util::Rng — same plan, same seed,
// byte-identical run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace scion::faults {

/// Which links a stochastic flap process may pick from.
enum class LinkClass : std::uint8_t {
  kAll,
  kCore,
  kProviderCustomer,
  kPeer,
};

const char* to_string(LinkClass c);

/// One scheduled fault event. `at` is an offset from the arm instant;
/// `duration` of zero means the outage is permanent (restore it with an
/// explicit *-up event if desired). Up events ignore `duration`.
struct Event {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kNodeDown,   // AS outage: the control service of `target` goes dark
    kNodeUp,
    kIsdPartition,  // every link with exactly one endpoint in ISD `target`
  };

  Kind kind{Kind::kLinkDown};
  std::uint32_t target{0};  // LinkIndex, AsIndex, or IsdId depending on kind
  util::Duration at{util::Duration::zero()};
  util::Duration duration{util::Duration::zero()};
};

const char* to_string(Event::Kind k);

/// A Poisson process of link flaps: failures arrive at `rate_per_hour`
/// (network-wide, over the eligible link class), each taking a uniformly
/// distributed downtime in [downtime_min, downtime_max].
struct FlapProcess {
  double rate_per_hour{0.0};
  util::Duration downtime_min{util::Duration::seconds(30)};
  util::Duration downtime_max{util::Duration::minutes(2)};
  LinkClass links{LinkClass::kAll};
};

/// A full scenario. Default-constructed plans are empty (no faults).
struct FaultPlan {
  std::vector<Event> events;
  std::vector<FlapProcess> flaps;
  /// Applied to every channel when the injector is armed.
  double loss_probability{0.0};
  util::Duration jitter_max{util::Duration::zero()};
  /// Seed for all stochastic draws (flap timing, loss, jitter).
  std::uint64_t seed{1};

  bool empty() const {
    return events.empty() && flaps.empty() && loss_probability == 0.0 &&
           jitter_max == util::Duration::zero();
  }

  /// Parses the text scenario format described above. Returns false and
  /// fills `*error` (with a line number) on malformed input; the plan is
  /// left in an unspecified state on failure.
  static bool parse(std::istream& in, FaultPlan* plan, std::string* error);

  /// Convenience: parse from a file path.
  static bool parse_file(const std::string& path, FaultPlan* plan,
                         std::string* error);
};

/// Parses a duration literal like "250ms", "1.5s", "2m", "1h", "30s".
/// Units: ns, us, ms, s, m, h, d. Returns false on malformed input.
bool parse_duration(const std::string& text, util::Duration* out);

}  // namespace scion::faults
