// Declarative fault scenarios (the "what" of fault injection).
//
// A FaultPlan is pure data: a list of scheduled one-shot events (link
// down/up, AS outage, ISD partition) plus seeded stochastic processes
// (Poisson link flaps with a downtime distribution, per-channel message
// loss, latency jitter). Plans can be built programmatically or parsed from
// a small text format so the same scenario file drives the CLI, the
// benches, and the tests:
//
//   # dyn_resilience.faults — comments start with '#'
//   seed 42
//   loss 0.01
//   jitter 5ms
//   flap rate/h 12 down 30s..2m links provider-customer
//   link-down 7 at 10s for 1m
//   as-down 3 at 30s for 2m
//   isd-partition 2 at 5m for 1m
//   session-restart 4 at 8m for 45s
//   churn steady links peer fraction 0.5 up 10m..6h@1.1
//       down 30s..10m@1.3 at 0s for 2h     (one line in the file)
//
// All event times are offsets from the instant the FaultInjector is armed
// (normally the start of the measurement window), so one scenario is
// meaningful across simulators with different warm-up phases. Everything
// stochastic derives from `seed` via util::Rng — same plan, same seed,
// byte-identical run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace scion::faults {

/// Which links a stochastic flap process may pick from.
enum class LinkClass : std::uint8_t {
  kAll,
  kCore,
  kProviderCustomer,
  kPeer,
};

const char* to_string(LinkClass c);

/// One scheduled fault event. `at` is an offset from the arm instant;
/// `duration` of zero means the outage is permanent (restore it with an
/// explicit *-up event if desired). Up events ignore `duration`.
struct Event {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kNodeDown,   // AS outage: the control service of `target` goes dark
    kNodeUp,
    kIsdPartition,  // every link with exactly one endpoint in ISD `target`
    /// Control-plane session restart on link `target`: the transport stays
    /// up but the protocol session drops for `duration` (router reboot /
    /// process restart). Simulators without session state skip it.
    kSessionRestart,
  };

  Kind kind{Kind::kLinkDown};
  std::uint32_t target{0};  // LinkIndex, AsIndex, or IsdId depending on kind
  util::Duration at{util::Duration::zero()};
  util::Duration duration{util::Duration::zero()};
};

const char* to_string(Event::Kind k);

/// A Poisson process of link flaps: failures arrive at `rate_per_hour`
/// (network-wide, over the eligible link class), each taking a uniformly
/// distributed downtime in [downtime_min, downtime_max].
struct FlapProcess {
  double rate_per_hour{0.0};
  util::Duration downtime_min{util::Duration::seconds(30)};
  util::Duration downtime_max{util::Duration::minutes(2)};
  LinkClass links{LinkClass::kAll};
};

/// A sustained-churn process: every eligible link (independently, with
/// probability `link_fraction`) alternates ON/OFF with heavy-tailed
/// (truncated Pareto) up and down durations, calibrated by default to the
/// minute-to-hour flap timescales of the SCIONLab path-dynamics study.
/// The whole process is a pure function of (plan seed, spec index, link
/// index) — the event stream is expanded up front, so it is byte-identical
/// across binaries, simulators, and --jobs settings.
struct ChurnSpec {
  enum class Profile : std::uint8_t {
    kSteady,  // stationary ON/OFF renewal process over [start, start+duration)
    kBurst,   // down events only inside periodic burst windows
    kRamp,    // down-event probability ramps 0 -> 1 across the window
  };

  Profile profile{Profile::kSteady};
  LinkClass links{LinkClass::kAll};
  /// Fraction of eligible links that participate (drawn per link).
  double link_fraction{1.0};
  /// Up-time distribution: truncated Pareto on [up_min, up_max], shape
  /// `up_alpha` (heavier tail for smaller alpha).
  util::Duration up_min{util::Duration::minutes(10)};
  util::Duration up_max{util::Duration::hours(6)};
  double up_alpha{1.1};
  /// Down-time distribution, same family.
  util::Duration down_min{util::Duration::seconds(30)};
  util::Duration down_max{util::Duration::minutes(10)};
  double down_alpha{1.3};
  /// Window, as offsets from the arm instant. `duration` must be > 0: the
  /// generator walks virtual time across the window, so a bounded window is
  /// what makes the expanded event stream finite.
  util::Duration start{util::Duration::zero()};
  util::Duration duration{util::Duration::hours(1)};
  /// kBurst only: bursts of length `burst_len` every `burst_period`.
  util::Duration burst_period{util::Duration::minutes(10)};
  util::Duration burst_len{util::Duration::minutes(2)};
};

const char* to_string(ChurnSpec::Profile p);

/// A full scenario. Default-constructed plans are empty (no faults).
struct FaultPlan {
  std::vector<Event> events;
  std::vector<FlapProcess> flaps;
  std::vector<ChurnSpec> churn;
  /// Applied to every channel when the injector is armed.
  double loss_probability{0.0};
  util::Duration jitter_max{util::Duration::zero()};
  /// Seed for all stochastic draws (flap timing, loss, jitter).
  std::uint64_t seed{1};

  bool empty() const {
    return events.empty() && flaps.empty() && churn.empty() &&
           loss_probability == 0.0 && jitter_max == util::Duration::zero();
  }

  /// Parses the text scenario format described above. Returns false and
  /// fills `*error` (with a line number) on malformed input; the plan is
  /// left in an unspecified state on failure.
  static bool parse(std::istream& in, FaultPlan* plan, std::string* error);

  /// Convenience: parse from a file path.
  static bool parse_file(const std::string& path, FaultPlan* plan,
                         std::string* error);

  /// Serializes the plan back to the text format. parse(to_text(p)) yields
  /// a plan equal to p (durations print in the largest unit that divides
  /// them exactly, so the round trip is loss-free).
  std::string to_text() const;
};

bool operator==(const Event& a, const Event& b);
bool operator==(const FlapProcess& a, const FlapProcess& b);
bool operator==(const ChurnSpec& a, const ChurnSpec& b);
bool operator==(const FaultPlan& a, const FaultPlan& b);

/// Parses a duration literal like "250ms", "1.5s", "2m", "1h", "30s".
/// Units: ns, us, ms, s, m, h, d. Returns false on malformed input.
bool parse_duration(const std::string& text, util::Duration* out);

}  // namespace scion::faults
