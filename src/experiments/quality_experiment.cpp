#include "experiments/quality_experiment.hpp"

#include <memory>

#include "analysis/path_quality.hpp"
#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"

namespace scion::exp {

namespace {

std::unique_ptr<ctrl::BeaconingSim> run_beaconing(
    const topo::Topology& scion_view, ctrl::AlgorithmKind algorithm,
    std::size_t storage_limit, const QualityConfig& config) {
  ctrl::BeaconingSimConfig c;
  c.server.algorithm = algorithm;
  c.server.mode = ctrl::BeaconingMode::kCore;
  c.server.storage_limit = storage_limit;
  c.server.dissemination_limit = config.dissemination_limit;
  c.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    c.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  c.sim_duration = config.sim_duration;
  c.seed = config.seed;
  auto sim = std::make_unique<ctrl::BeaconingSim>(scion_view, c);
  sim->run();
  return sim;
}

std::string limit_name(std::size_t limit) {
  return limit == 0 ? "inf" : std::to_string(limit);
}

}  // namespace

double QualityResult::fraction_of_optimal(const QualitySeries& s) const {
  double sum = 0, opt = 0;
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    sum += s.values[i];
    opt += optimum[i];
  }
  return opt > 0 ? sum / opt : 0.0;
}

QualityResult run_quality_experiment(const topo::Topology& bgp_view,
                                     const topo::Topology& scion_view,
                                     const QualityConfig& config) {
  QualityResult result;
  util::Rng rng{config.seed ^ 0xFACE};

  // Sampled distinct AS pairs.
  const std::size_t n = scion_view.as_count();
  const std::size_t max_pairs = n * (n - 1) / 2;
  const std::size_t want = std::min(config.sampled_pairs, max_pairs);
  while (result.pairs.size() < want) {
    const auto a = static_cast<topo::AsIndex>(rng.index(n));
    const auto b = static_cast<topo::AsIndex>(rng.index(n));
    if (a == b) continue;
    result.pairs.emplace_back(std::min(a, b), std::max(a, b));
  }

  analysis::QualityEvaluator evaluator{scion_view};
  for (const auto& [s, t] : result.pairs) {
    result.optimum.push_back(evaluator.optimal(s, t));
  }

  // SCION runs: evaluate the paths from origin t stored at s plus the
  // reverse direction (segments are direction-agnostic at link level).
  auto evaluate_sim = [&](ctrl::BeaconingSim& sim, const std::string& name) {
    QualitySeries series;
    series.name = name;
    series.values.reserve(result.pairs.size());
    for (const auto& [s, t] : result.pairs) {
      std::vector<std::vector<topo::LinkIndex>> paths =
          sim.paths_at(s, scion_view.as_id(t));
      std::vector<std::vector<topo::LinkIndex>> reverse =
          sim.paths_at(t, scion_view.as_id(s));
      paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                   std::make_move_iterator(reverse.end()));
      series.values.push_back(evaluator.of_paths(paths, s, t));
    }
    result.series.push_back(std::move(series));
  };

  obs::ProfilePhase beaconing_phase{"quality.beaconing"};
  for (const std::size_t limit : config.baseline_storage_limits) {
    auto sim = run_beaconing(scion_view, ctrl::AlgorithmKind::kBaseline,
                             limit, config);
    evaluate_sim(*sim, "SCION Baseline (" + limit_name(limit) + ")");
  }
  for (const std::size_t limit : config.diversity_storage_limits) {
    auto sim = run_beaconing(scion_view, ctrl::AlgorithmKind::kDiversity,
                             limit, config);
    evaluate_sim(*sim, "SCION Diversity (" + limit_name(limit) + ")");
  }
  beaconing_phase.stop();

  if (config.include_bgp) {
    obs::ProfilePhase phase{"quality.bgp"};
    bgp::BgpSimConfig bc;
    bc.seed = config.seed;
    // Only convergence matters for path quality; skip churn.
    bc.churn_window = util::Duration::minutes(5);
    bc.flaps_per_adjacency_per_day = 0.0;
    bgp::BgpSim bgp_sim{bgp_view, bc};
    bgp_sim.run();

    QualitySeries series;
    series.name = "BGP (multipath)";
    for (const auto& [s, t] : result.pairs) {
      auto paths = bgp_sim.bgp_link_paths(s, t);
      auto reverse = bgp_sim.bgp_link_paths(t, s);
      paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                   std::make_move_iterator(reverse.end()));
      series.values.push_back(evaluator.of_paths(paths, s, t));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

obs::Table resilience_table(const QualityResult& r, int max_optimum) {
  std::vector<obs::Column> columns{obs::Column{"optimum", obs::Align::kLeft, 10},
                                   obs::Column{"#pairs", obs::Align::kRight, 8}};
  for (const QualitySeries& s : r.series) {
    columns.push_back(obs::Column{s.name, obs::Align::kRight, 22});
  }
  obs::Table t{"Resilience: average min #failing links disconnecting a pair, "
               "grouped by the pair's optimum",
               columns};
  for (int v = 1; v <= max_optimum; ++v) {
    std::size_t count = 0;
    std::vector<double> sums(r.series.size(), 0.0);
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
      if (r.optimum[i] != v) continue;
      ++count;
      for (std::size_t k = 0; k < r.series.size(); ++k) {
        sums[k] += r.series[k].values[i];
      }
    }
    if (count == 0) continue;
    std::vector<std::string> cells{std::to_string(v), obs::fmt_u64(count)};
    for (const double sum : sums) {
      cells.push_back(obs::fmt_f(sum / static_cast<double>(count), 2));
    }
    t.row(cells);
  }
  return t;
}

void print_resilience(const QualityResult& r, int max_optimum) {
  obs::print_line("");
  obs::print(resilience_table(r, max_optimum).to_text());
}

obs::Table capacity_table(const QualityResult& r) {
  obs::Table t{"Capacity in multiples of inter-AS links (CDF over pairs)",
               {obs::Column{"Series", obs::Align::kLeft, 28},
                obs::Column{"Distribution", obs::Align::kLeft, 36},
                obs::Column{"Fraction of optimal", obs::Align::kRight, 19}}};
  for (const QualitySeries& s : r.series) {
    util::EmpiricalCdf cdf;
    for (const int v : s.values) cdf.add(v);
    t.row({s.name, cdf.summary(), obs::fmt_f(r.fraction_of_optimal(s), 3)});
  }
  util::EmpiricalCdf optimum_cdf;
  for (const int v : r.optimum) optimum_cdf.add(v);
  t.row({"All Paths (optimum)", optimum_cdf.summary(), ""});
  return t;
}

void print_capacity(const QualityResult& r) {
  obs::print_line("");
  obs::print(capacity_table(r).to_text());
}

}  // namespace scion::exp
