#include "experiments/quality_experiment.hpp"

#include <cstdio>
#include <memory>

#include "analysis/path_quality.hpp"
#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "util/stats.hpp"

namespace scion::exp {

namespace {

std::unique_ptr<ctrl::BeaconingSim> run_beaconing(
    const topo::Topology& scion_view, ctrl::AlgorithmKind algorithm,
    std::size_t storage_limit, const QualityConfig& config) {
  ctrl::BeaconingSimConfig c;
  c.server.algorithm = algorithm;
  c.server.mode = ctrl::BeaconingMode::kCore;
  c.server.storage_limit = storage_limit;
  c.server.dissemination_limit = config.dissemination_limit;
  c.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    c.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  c.sim_duration = config.sim_duration;
  c.seed = config.seed;
  auto sim = std::make_unique<ctrl::BeaconingSim>(scion_view, c);
  sim->run();
  return sim;
}

std::string limit_name(std::size_t limit) {
  return limit == 0 ? "inf" : std::to_string(limit);
}

}  // namespace

double QualityResult::fraction_of_optimal(const QualitySeries& s) const {
  double sum = 0, opt = 0;
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    sum += s.values[i];
    opt += optimum[i];
  }
  return opt > 0 ? sum / opt : 0.0;
}

QualityResult run_quality_experiment(const topo::Topology& bgp_view,
                                     const topo::Topology& scion_view,
                                     const QualityConfig& config) {
  QualityResult result;
  util::Rng rng{config.seed ^ 0xFACE};

  // Sampled distinct AS pairs.
  const std::size_t n = scion_view.as_count();
  const std::size_t max_pairs = n * (n - 1) / 2;
  const std::size_t want = std::min(config.sampled_pairs, max_pairs);
  while (result.pairs.size() < want) {
    const auto a = static_cast<topo::AsIndex>(rng.index(n));
    const auto b = static_cast<topo::AsIndex>(rng.index(n));
    if (a == b) continue;
    result.pairs.emplace_back(std::min(a, b), std::max(a, b));
  }

  analysis::QualityEvaluator evaluator{scion_view};
  for (const auto& [s, t] : result.pairs) {
    result.optimum.push_back(evaluator.optimal(s, t));
  }

  // SCION runs: evaluate the paths from origin t stored at s plus the
  // reverse direction (segments are direction-agnostic at link level).
  auto evaluate_sim = [&](ctrl::BeaconingSim& sim, const std::string& name) {
    QualitySeries series;
    series.name = name;
    series.values.reserve(result.pairs.size());
    for (const auto& [s, t] : result.pairs) {
      std::vector<std::vector<topo::LinkIndex>> paths =
          sim.paths_at(s, scion_view.as_id(t));
      std::vector<std::vector<topo::LinkIndex>> reverse =
          sim.paths_at(t, scion_view.as_id(s));
      paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                   std::make_move_iterator(reverse.end()));
      series.values.push_back(evaluator.of_paths(paths, s, t));
    }
    result.series.push_back(std::move(series));
  };

  for (const std::size_t limit : config.baseline_storage_limits) {
    auto sim = run_beaconing(scion_view, ctrl::AlgorithmKind::kBaseline,
                             limit, config);
    evaluate_sim(*sim, "SCION Baseline (" + limit_name(limit) + ")");
  }
  for (const std::size_t limit : config.diversity_storage_limits) {
    auto sim = run_beaconing(scion_view, ctrl::AlgorithmKind::kDiversity,
                             limit, config);
    evaluate_sim(*sim, "SCION Diversity (" + limit_name(limit) + ")");
  }

  if (config.include_bgp) {
    bgp::BgpSimConfig bc;
    bc.seed = config.seed;
    // Only convergence matters for path quality; skip churn.
    bc.churn_window = util::Duration::minutes(5);
    bc.flaps_per_adjacency_per_day = 0.0;
    bgp::BgpSim bgp_sim{bgp_view, bc};
    bgp_sim.run();

    QualitySeries series;
    series.name = "BGP (multipath)";
    for (const auto& [s, t] : result.pairs) {
      auto paths = bgp_sim.bgp_link_paths(s, t);
      auto reverse = bgp_sim.bgp_link_paths(t, s);
      paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                   std::make_move_iterator(reverse.end()));
      series.values.push_back(evaluator.of_paths(paths, s, t));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

void print_resilience(const QualityResult& r, int max_optimum) {
  std::printf("\nResilience: average min #failing links disconnecting a pair, "
              "grouped by the pair's optimum\n");
  std::printf("  %-10s %8s", "optimum", "#pairs");
  for (const QualitySeries& s : r.series) std::printf(" %22s", s.name.c_str());
  std::printf("\n");
  for (int v = 1; v <= max_optimum; ++v) {
    std::size_t count = 0;
    std::vector<double> sums(r.series.size(), 0.0);
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
      if (r.optimum[i] != v) continue;
      ++count;
      for (std::size_t k = 0; k < r.series.size(); ++k) {
        sums[k] += r.series[k].values[i];
      }
    }
    if (count == 0) continue;
    std::printf("  %-10d %8zu", v, count);
    for (const double sum : sums) {
      std::printf(" %22.2f", sum / static_cast<double>(count));
    }
    std::printf("\n");
  }
}

void print_capacity(const QualityResult& r) {
  std::printf("\nCapacity in multiples of inter-AS links (CDF over pairs)\n");
  util::EmpiricalCdf optimum_cdf;
  for (const int v : r.optimum) optimum_cdf.add(v);
  for (const QualitySeries& s : r.series) {
    util::EmpiricalCdf cdf;
    for (const int v : s.values) cdf.add(v);
    std::printf("  %-28s %s  | fraction of optimal: %.3f\n", s.name.c_str(),
                cdf.summary().c_str(),
                r.fraction_of_optimal(s));
  }
  std::printf("  %-28s %s\n", "All Paths (optimum)", optimum_cdf.summary().c_str());
}

}  // namespace scion::exp
