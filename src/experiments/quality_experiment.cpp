#include "experiments/quality_experiment.hpp"

#include <algorithm>
#include <memory>

#include "analysis/path_quality.hpp"
#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"

namespace scion::exp {

namespace {

std::unique_ptr<ctrl::BeaconingSim> run_beaconing(
    const topo::Topology& scion_view, ctrl::AlgorithmKind algorithm,
    std::size_t storage_limit, const QualityConfig& config) {
  ctrl::BeaconingSimConfig c;
  c.server.algorithm = algorithm;
  c.server.mode = ctrl::BeaconingMode::kCore;
  c.server.storage_limit = storage_limit;
  c.server.dissemination_limit = config.dissemination_limit;
  c.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    c.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  c.sim_duration = config.sim_duration;
  c.seed = config.seed;
  auto sim = std::make_unique<ctrl::BeaconingSim>(scion_view, c);
  sim->run();
  return sim;
}

std::string limit_name(std::size_t limit) {
  return limit == 0 ? "inf" : std::to_string(limit);
}

/// One series to evaluate — the unit of parallelism for the per-series
/// stage. Building the spec list up front keeps the task decomposition (and
/// so the telemetry merge order) independent of the job count.
struct SeriesSpec {
  enum class Kind { kBaseline, kDiversity, kBgp };
  Kind kind{Kind::kBaseline};
  std::size_t storage_limit{0};
  std::string name;
};

}  // namespace

double QualityResult::fraction_of_optimal(const QualitySeries& s) const {
  double sum = 0, opt = 0;
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    sum += s.values[i];
    opt += optimum[i];
  }
  return opt > 0 ? sum / opt : 0.0;
}

QualityResult run_quality_experiment(const topo::Topology& bgp_view,
                                     const topo::Topology& scion_view,
                                     const QualityConfig& config) {
  QualityResult result;
  util::Rng rng{config.seed ^ 0xFACE};

  // Sampled distinct AS pairs (dedicated helper: the old rejection loop here
  // only rejected a == b and could sample the same pair repeatedly).
  const std::size_t n = scion_view.as_count();
  result.pairs = sample_distinct_pairs(rng, n, config.sampled_pairs);

  // Per-pair optimum, each task on its own copy of the full flow network
  // (max_flow mutates graph state; see QualityEvaluator::optimal).
  analysis::QualityEvaluator evaluator{scion_view};
  {
    obs::ProfilePhase phase{"quality.optimum"};
    result.optimum = exec::parallel_map(
        result.pairs,
        [&](const std::pair<topo::AsIndex, topo::AsIndex>& pr) {
          analysis::FlowGraph g = evaluator.full_graph();
          return g.max_flow(pr.first, pr.second);
        },
        config.jobs);
  }

  // SCION runs: evaluate the paths from origin t stored at s plus the
  // reverse direction (segments are direction-agnostic at link level).
  // of_paths is const and thread-safe, so tasks share `evaluator`.
  auto evaluate_sim = [&](ctrl::BeaconingSim& sim, const std::string& name) {
    QualitySeries series;
    series.name = name;
    series.values.reserve(result.pairs.size());
    for (const auto& [s, t] : result.pairs) {
      std::vector<std::vector<topo::LinkIndex>> paths =
          sim.paths_at(s, scion_view.as_id(t));
      std::vector<std::vector<topo::LinkIndex>> reverse =
          sim.paths_at(t, scion_view.as_id(s));
      paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                   std::make_move_iterator(reverse.end()));
      series.values.push_back(evaluator.of_paths(paths, s, t));
    }
    return series;
  };

  // Every series (simulation + per-pair min-cut) is an independent task;
  // parallel_map keeps the traditional order baseline, diversity, BGP.
  std::vector<SeriesSpec> specs;
  for (const std::size_t limit : config.baseline_storage_limits) {
    specs.push_back({SeriesSpec::Kind::kBaseline, limit,
                     "SCION Baseline (" + limit_name(limit) + ")"});
  }
  for (const std::size_t limit : config.diversity_storage_limits) {
    specs.push_back({SeriesSpec::Kind::kDiversity, limit,
                     "SCION Diversity (" + limit_name(limit) + ")"});
  }
  if (config.include_bgp) {
    specs.push_back({SeriesSpec::Kind::kBgp, 0, "BGP (multipath)"});
  }

  result.series = exec::parallel_map(
      specs,
      [&](const SeriesSpec& spec) {
        if (spec.kind == SeriesSpec::Kind::kBgp) {
          obs::ProfilePhase phase{"quality.bgp"};
          bgp::BgpSimConfig bc;
          bc.seed = config.seed;
          // Only convergence matters for path quality; skip churn.
          bc.churn_window = util::Duration::minutes(5);
          bc.flaps_per_adjacency_per_day = 0.0;
          bgp::BgpSim bgp_sim{bgp_view, bc};
          bgp_sim.run();

          QualitySeries series;
          series.name = spec.name;
          series.values.reserve(result.pairs.size());
          for (const auto& [s, t] : result.pairs) {
            auto paths = bgp_sim.bgp_link_paths(s, t);
            auto reverse = bgp_sim.bgp_link_paths(t, s);
            paths.insert(paths.end(),
                         std::make_move_iterator(reverse.begin()),
                         std::make_move_iterator(reverse.end()));
            series.values.push_back(evaluator.of_paths(paths, s, t));
          }
          return series;
        }
        obs::ProfilePhase phase{"quality.beaconing"};
        const auto algorithm = spec.kind == SeriesSpec::Kind::kBaseline
                                   ? ctrl::AlgorithmKind::kBaseline
                                   : ctrl::AlgorithmKind::kDiversity;
        auto sim =
            run_beaconing(scion_view, algorithm, spec.storage_limit, config);
        return evaluate_sim(*sim, spec.name);
      },
      config.jobs);
  return result;
}

obs::Table resilience_table(const QualityResult& r, int max_optimum) {
  std::vector<obs::Column> columns{obs::Column{"optimum", obs::Align::kLeft, 10},
                                   obs::Column{"#pairs", obs::Align::kRight, 8}};
  for (const QualitySeries& s : r.series) {
    columns.push_back(obs::Column{s.name, obs::Align::kRight, 22});
  }
  obs::Table t{"Resilience: average min #failing links disconnecting a pair, "
               "grouped by the pair's optimum",
               columns};
  for (int v = 1; v <= max_optimum; ++v) {
    std::size_t count = 0;
    std::vector<double> sums(r.series.size(), 0.0);
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
      if (r.optimum[i] != v) continue;
      ++count;
      for (std::size_t k = 0; k < r.series.size(); ++k) {
        sums[k] += r.series[k].values[i];
      }
    }
    if (count == 0) continue;
    std::vector<std::string> cells{std::to_string(v), obs::fmt_u64(count)};
    for (const double sum : sums) {
      cells.push_back(obs::fmt_f(sum / static_cast<double>(count), 2));
    }
    t.row(cells);
  }
  return t;
}

void print_resilience(const QualityResult& r, int max_optimum) {
  obs::print_line("");
  obs::print(resilience_table(r, max_optimum).to_text());
}

obs::Table capacity_table(const QualityResult& r) {
  obs::Table t{"Capacity in multiples of inter-AS links (CDF over pairs)",
               {obs::Column{"Series", obs::Align::kLeft, 28},
                obs::Column{"Distribution", obs::Align::kLeft, 36},
                obs::Column{"Fraction of optimal", obs::Align::kRight, 19}}};
  for (const QualitySeries& s : r.series) {
    util::EmpiricalCdf cdf;
    for (const int v : s.values) cdf.add(v);
    t.row({s.name, cdf.summary(), obs::fmt_f(r.fraction_of_optimal(s), 3)});
  }
  util::EmpiricalCdf optimum_cdf;
  for (const int v : r.optimum) optimum_cdf.add(v);
  t.row({"All Paths (optimum)", optimum_cdf.summary(), ""});
  return t;
}

void print_capacity(const QualityResult& r) {
  obs::print_line("");
  obs::print(capacity_table(r).to_text());
}

}  // namespace scion::exp
