// Dynamic resilience under churn: while the quality experiment (Fig. 6a)
// scores the *static* disseminated path sets by min-cut, this experiment
// runs the control planes through a live fault scenario and measures how
// fast each one recovers end-to-end connectivity — the operator-visible
// metric of the deployment sections (3.3, 4.1).
//
// All series replay the *same* FaultPlan (the two topology views share link
// indices), so the comparison is paired: the same links fail at the same
// virtual times for SCION baseline, SCION diversity, and BGP. A periodic
// read-only probe walks each sampled AS pair's currently-known paths and
// checks whether at least one is fully up; an up->down->up transition of a
// pair yields one recovery-time sample (time from losing the last live
// path to the control plane exposing a live one again).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "faults/fault_injector.hpp"
#include "simnet/network.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

#include "experiments/scale.hpp"

namespace scion::obs {
class Table;
}

namespace scion::exp {

struct DynResilienceConfig {
  std::size_t sampled_pairs{60};
  /// Measurement window under churn (after each system's own warm-up /
  /// convergence phase).
  util::Duration sim_duration{util::Duration::hours(1)};
  /// Beacon-store population time before measurement starts (SCION runs).
  util::Duration warmup{util::Duration::minutes(30)};
  /// Connectivity probe cadence; recovery times are quantized to it.
  util::Duration probe_interval{util::Duration::seconds(10)};
  std::size_t dissemination_limit{5};
  std::size_t storage_limit{60};
  bool include_bgp{true};
  /// Fault scenario shared by all series. When empty, a default churn
  /// scenario is synthesized from the three knobs below.
  faults::FaultPlan faults{};
  double default_flap_rate_per_hour{60.0};
  util::Duration default_downtime_min{util::Duration::seconds(30)};
  util::Duration default_downtime_max{util::Duration::minutes(3)};
  std::uint64_t seed{1};
  /// Worker count for the independent series runs (0 = exec::default_jobs()).
  /// Results are byte-identical for any value.
  std::size_t jobs{0};
};

struct DynResilienceSeries {
  std::string name;
  /// Seconds from a pair losing its last live path to the control plane
  /// exposing a live one again (one sample per recovered outage).
  util::EmpiricalCdf recovery_seconds;
  std::uint64_t outages{0};
  std::uint64_t recovered{0};
  /// Outages still unresolved when the run ended.
  std::uint64_t unrecovered{0};
  /// Fraction of (pair, probe) samples with a live path.
  double availability{0.0};
  std::uint64_t probes{0};
  std::uint64_t probes_up{0};
  faults::FaultInjectorStats fault_stats;
  sim::DropStats drops;
  /// SCION series only: stored PCBs evicted by revocations.
  std::uint64_t pcbs_revoked{0};
};

struct DynResilienceResult {
  std::vector<std::pair<topo::AsIndex, topo::AsIndex>> pairs;
  std::vector<DynResilienceSeries> series;
};

/// Runs SCION baseline, SCION diversity, and (optionally) BGP through the
/// configured fault scenario on the two views of the same core network.
DynResilienceResult run_dyn_resilience_experiment(
    const topo::Topology& bgp_view, const topo::Topology& scion_view,
    const DynResilienceConfig& config);

obs::Table dyn_resilience_table(const DynResilienceResult& r);
void print_dyn_resilience(const DynResilienceResult& r);

}  // namespace scion::exp
