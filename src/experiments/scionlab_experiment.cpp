#include "experiments/scionlab_experiment.hpp"

#include "core/beaconing_sim.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"

namespace scion::exp {

ScionLabResult run_scionlab_experiment(const Scale& scale) {
  ScionLabResult result;

  topo::ScionLabConfig config;
  config.n_cores = scale.scionlab_cores;
  config.seed = scale.seed + 7;
  const topo::Topology testbed = topo::generate_scionlab(config);

  // Figs. 7/8: quality with SCIONLab-style storage limits; the
  // "measurement" is the deployed algorithm = baseline(5), produced by the
  // same run (the paper itself reports the two behave identically).
  QualityConfig quality;
  quality.diversity_storage_limits = {5, 10, 15, 60};
  quality.baseline_storage_limits = {5};
  quality.include_bgp = false;
  quality.sampled_pairs = scale.sampled_pairs;
  quality.sim_duration = scale.quality_duration;
  quality.seed = scale.seed;
  result.quality =
      run_quality_experiment(testbed, testbed, quality);

  // Fig. 9: per-interface bandwidth of baseline core beaconing. Real
  // crypto enabled — the testbed numbers include full-size signed PCBs and
  // the topology is small.
  obs::ProfilePhase bandwidth_phase{"scionlab.bandwidth"};
  ctrl::BeaconingSimConfig c;
  c.server.algorithm = ctrl::AlgorithmKind::kBaseline;
  c.server.mode = ctrl::BeaconingMode::kCore;
  c.server.storage_limit = 5;
  c.sim_duration = scale.quality_duration;
  c.seed = scale.seed;
  ctrl::BeaconingSim sim{testbed, c};
  sim.run();
  const double seconds = c.sim_duration.as_seconds();
  for (const ctrl::InterfaceUsage& usage : sim.interface_usage()) {
    result.bandwidth.add(static_cast<double>(usage.bytes.value()) / seconds);
  }
  result.fraction_below_4kbps = result.bandwidth.fraction_at_most(4000.0);
  return result;
}

void print_scionlab_bandwidth(const ScionLabResult& r) {
  obs::print_line("\nFig. 9 — core beaconing bandwidth per interface (B/s)");
  obs::print_cdf("SCIONLab baseline", r.bandwidth, 10);
  obs::print_line("  fraction of interfaces below 4 KB/s: " +
                  obs::fmt_f(r.fraction_below_4kbps, 2));
}

}  // namespace scion::exp
