// Appendix B / Figs. 7-9: the SCIONLab testbed cross-validation.
//
// The paper validates the simulator against the real 21-core testbed by
// simulating the same topology; the "Measurement" series behaves like the
// baseline algorithm with storage limit 5 (the deployed path selection).
// We reproduce that methodology on a generated SCIONLab-like topology.
#pragma once

#include "experiments/quality_experiment.hpp"
#include "util/stats.hpp"

namespace scion::exp {

struct ScionLabResult {
  QualityResult quality;           // Figs. 7 and 8 series
  util::EmpiricalCdf bandwidth;    // Fig. 9: bytes/s per core interface
  double fraction_below_4kbps{0};  // paper: ~80 % of interfaces < 4 KB/s
};

ScionLabResult run_scionlab_experiment(const Scale& scale);

void print_scionlab_bandwidth(const ScionLabResult& r);

}  // namespace scion::exp
