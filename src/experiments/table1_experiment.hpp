// Table 1: path management overhead comparison — scope and frequency of
// every SCION control-plane component under a mixed workload on a
// multi-ISD topology.
#pragma once

#include "analysis/overhead.hpp"
#include "experiments/scale.hpp"

namespace scion::exp {

struct Table1Config {
  topo::MultiIsdConfig topology{};
  util::Duration sim_duration{util::Duration::hours(1)};
  double lookups_per_second{2.0};
  double link_failures_per_hour{4.0};
  std::uint64_t seed{5};
};

struct Table1Result {
  analysis::OverheadLedger ledger;
  util::Duration window;
  std::uint64_t participants{0};
  std::uint64_t lookups{0};
  std::uint64_t paths_resolved{0};
};

Table1Result run_table1_experiment(const Table1Config& config);

void print_table1(const Table1Result& r);

}  // namespace scion::exp
