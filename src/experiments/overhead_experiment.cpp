#include "experiments/overhead_experiment.hpp"

#include <algorithm>

#include "analysis/overhead.hpp"
#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"

namespace scion::exp {

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Runs one core-beaconing simulation and returns the monthly PCB bytes
/// received by each monitor (matched into the core network by AS number),
/// plus the per-monitor stored path counts.
struct CoreRun {
  std::vector<double> monthly_bytes;
  std::vector<double> stored_paths;
  double paths_per_origin{0};
};

CoreRun run_core(const topo::Topology& scion_view,
                 ctrl::AlgorithmKind algorithm, const Scale& scale,
                 const std::vector<std::uint64_t>& monitor_as_numbers) {
  ctrl::BeaconingSimConfig config;
  config.server.algorithm = algorithm;
  config.server.mode = ctrl::BeaconingMode::kCore;
  config.server.storage_limit = 60;
  config.server.dissemination_limit = 5;
  config.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  config.sim_duration = scale.beaconing_duration;
  // Measure the periodic regime (see BeaconingSimConfig::warmup).
  config.warmup = config.server.pcb_lifetime;
  config.seed = scale.seed;
  ctrl::BeaconingSim sim{scion_view, config};
  sim.run();

  CoreRun result;
  double total_paths = 0;
  double total_origins = 0;
  for (const std::uint64_t as_number : monitor_as_numbers) {
    const topo::AsIndex idx = find_by_as_number(scion_view, as_number);
    if (idx == topo::kInvalidAsIndex) continue;
    const auto& stats = sim.server(idx).stats();
    result.monthly_bytes.push_back(analysis::extrapolate_to_month(
        stats.bytes_received, scale.beaconing_duration));
    const auto& store = sim.server(idx).store();
    result.stored_paths.push_back(static_cast<double>(store.total_stored()));
    total_paths += static_cast<double>(store.total_stored());
    total_origins += static_cast<double>(store.origins().size());
  }
  result.paths_per_origin = total_origins > 0 ? total_paths / total_origins : 0;
  return result;
}

}  // namespace

OverheadResult run_overhead_experiment(const Scale& scale) {
  OverheadResult r;

  // --- Internet topology, monitors, prefix counts -------------------------
  obs::ProfilePhase topology_phase{"overhead.topology"};
  const topo::Topology internet = build_internet(scale);
  const std::vector<topo::AsIndex> monitors =
      pick_monitors(internet, scale.monitors);
  std::vector<std::uint64_t> monitor_as_numbers;
  for (const topo::AsIndex m : monitors) {
    monitor_as_numbers.push_back(internet.as_id(m).as_number());
  }
  const std::vector<std::uint32_t> prefixes = prefix_counts(internet, scale.seed);
  topology_phase.stop();

  // --- Four independent simulations, one task each ------------------------
  // BGP/BGPsec, core baseline, core diversity, and intra-ISD each build
  // their own simulator and write into their own slot below; the only
  // shared state (internet, nets, prefixes, monitor lists) is read-only.
  const CoreNetworks nets = build_core_networks(scale, internet);
  CoreRun baseline;
  CoreRun diversity;

  exec::parallel_for_n(4, [&](std::size_t unit) {
    switch (unit) {
      case 0: {
        // --- BGP / BGPsec on the full topology ---------------------------
        obs::ProfilePhase phase{"overhead.bgp"};
        bgp::BgpSimConfig bgp_config;
        bgp_config.sampled_origins = scale.bgp_sampled_origins;
        bgp_config.churn_window = scale.bgp_churn_window;
        bgp_config.seed = scale.seed;
        bgp::BgpSim bgp_sim{internet, bgp_config};
        for (const topo::AsIndex m : monitors) bgp_sim.add_monitor(m);
        bgp_sim.run();
        for (const topo::AsIndex m : monitors) {
          r.bgp.push_back(bgp_sim.monthly_bgp_bytes(m, prefixes));
          r.bgpsec.push_back(bgp_sim.monthly_bgpsec_bytes(m, prefixes));
        }
        break;
      }
      case 1: {
        // --- SCION core beaconing, baseline ------------------------------
        obs::ProfilePhase phase{"overhead.beaconing"};
        baseline = run_core(nets.scion_view, ctrl::AlgorithmKind::kBaseline,
                            scale, monitor_as_numbers);
        break;
      }
      case 2: {
        // --- SCION core beaconing, diversity ------------------------------
        obs::ProfilePhase phase{"overhead.beaconing"};
        diversity = run_core(nets.scion_view, ctrl::AlgorithmKind::kDiversity,
                             scale, monitor_as_numbers);
        break;
      }
      default: {
        // --- SCION intra-ISD beaconing (baseline) -------------------------
        obs::ProfilePhase phase{"overhead.intra_isd"};
        topo::IsdConfig isd_config;
        isd_config.n_cores = scale.isd_cores;
        isd_config.n_ases = scale.isd_ases;
        isd_config.seed = scale.seed + 17;
        const topo::Topology isd = topo::generate_isd(isd_config);

        ctrl::BeaconingSimConfig config;
        config.server.algorithm = ctrl::AlgorithmKind::kBaseline;
        config.server.mode = ctrl::BeaconingMode::kIntraIsd;
        config.server.compute_crypto = false;
        config.sim_duration = scale.beaconing_duration;
        config.warmup = config.server.pcb_lifetime;
        config.seed = scale.seed;
        ctrl::BeaconingSim sim{isd, config};
        sim.run();

        // Monitors map to the largest non-core ASes of the ISD by degree
        // rank (core ASes receive no intra-ISD PCBs; see DESIGN.md).
        std::vector<topo::AsIndex> ranked;
        for (const topo::AsIndex idx : isd.highest_degree(isd.as_count())) {
          if (!isd.is_core(idx)) ranked.push_back(idx);
          if (ranked.size() >= monitors.size()) break;
        }
        for (const topo::AsIndex idx : ranked) {
          r.intra_baseline.push_back(analysis::extrapolate_to_month(
              sim.server(idx).stats().bytes_received,
              scale.beaconing_duration));
        }
        break;
      }
    }
  });
  r.core_baseline = baseline.monthly_bytes;
  r.core_diversity = diversity.monthly_bytes;
  r.diversity_paths_per_origin = diversity.paths_per_origin;

  // --- Relative-to-BGP CDFs ------------------------------------------------
  obs::ProfilePhase analysis_phase{"overhead.analysis"};
  for (std::size_t i = 0; i < r.bgp.size(); ++i) {
    if (r.bgp[i] <= 0) continue;
    r.bgpsec_rel.add(r.bgpsec[i] / r.bgp[i]);
    if (i < r.core_baseline.size() && r.core_baseline[i] > 0) {
      r.core_baseline_rel.add(r.core_baseline[i] / r.bgp[i]);
    }
    if (i < r.core_diversity.size() && r.core_diversity[i] > 0) {
      r.core_diversity_rel.add(r.core_diversity[i] / r.bgp[i]);
    }
    if (i < r.intra_baseline.size() && r.intra_baseline[i] > 0) {
      r.intra_rel.add(r.intra_baseline[i] / r.bgp[i]);
    }
  }

  // --- Section 5.2 per-path overhead ---------------------------------------
  // BGP/BGPsec disseminate one path per (monitor, prefix); SCION stores up
  // to the storage limit of paths per origin.
  {
    std::vector<double> per_path_bgp, per_path_bgpsec, per_path_b, per_path_d;
    double total_prefixes = 0;
    for (const std::uint32_t c : prefixes) total_prefixes += c;
    for (std::size_t i = 0; i < r.bgp.size(); ++i) {
      per_path_bgp.push_back(r.bgp[i] / total_prefixes);
      per_path_bgpsec.push_back(r.bgpsec[i] / total_prefixes);
    }
    for (std::size_t i = 0; i < baseline.monthly_bytes.size(); ++i) {
      if (baseline.stored_paths[i] > 0) {
        per_path_b.push_back(baseline.monthly_bytes[i] /
                             baseline.stored_paths[i]);
      }
      if (i < diversity.monthly_bytes.size() && diversity.stored_paths[i] > 0) {
        per_path_d.push_back(diversity.monthly_bytes[i] /
                             diversity.stored_paths[i]);
      }
    }
    r.per_path_bgp = median(per_path_bgp);
    r.per_path_bgpsec = median(per_path_bgpsec);
    r.per_path_core_baseline = median(per_path_b);
    r.per_path_core_diversity = median(per_path_d);
  }
  return r;
}

void print_overhead_result(const OverheadResult& r) {
  obs::print_line(
      "\nFig. 5 — monthly control-plane overhead relative to BGP "
      "(CDF over monitors)");
  obs::print_cdf("BGPsec / BGP", r.bgpsec_rel, 8);
  obs::print_cdf("SCION core baseline / BGP", r.core_baseline_rel, 8);
  obs::print_cdf("SCION core diversity / BGP", r.core_diversity_rel, 8);
  obs::print_cdf("SCION intra-ISD baseline / BGP", r.intra_rel, 8);

  obs::print_line("\nSection 5.2 — medians across monitors");
  obs::print_line("  monthly bytes: BGP=" + obs::fmt_g(median(r.bgp), 3) +
                  " BGPsec=" + obs::fmt_g(median(r.bgpsec), 3) +
                  " core-baseline=" + obs::fmt_g(median(r.core_baseline), 3) +
                  " core-diversity=" + obs::fmt_g(median(r.core_diversity), 3) +
                  " intra=" + obs::fmt_g(median(r.intra_baseline), 3));
  obs::print_line("  per-path overhead (bytes/month/path): BGP=" +
                  obs::fmt_g(r.per_path_bgp, 3) +
                  " BGPsec=" + obs::fmt_g(r.per_path_bgpsec, 3) +
                  " core-baseline=" + obs::fmt_g(r.per_path_core_baseline, 3) +
                  " core-diversity=" + obs::fmt_g(r.per_path_core_diversity, 3));
  obs::print_line("  diversity paths stored per origin at monitors: " +
                  obs::fmt_f(r.diversity_paths_per_origin, 1));
}

}  // namespace scion::exp
