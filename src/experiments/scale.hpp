// Experiment scaling knobs.
//
// The paper's simulations run at Internet scale (12000-AS topology, 2000
// core ASes in 200 ISDs, a 7028-AS ISD). The default scale here is chosen
// so that the full bench suite completes on a laptop while preserving every
// qualitative result; `--paper` (or individual flags / REPRO_* environment
// variables) raises the sizes towards the paper's.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace scion::exp {

struct Scale {
  // Full Internet-like topology (paper: 12000).
  std::size_t internet_ases{800};
  std::size_t n_tier1{8};
  // Core network derived by pruning (paper: 2000 cores, 200 ISDs). The
  // pruned core is dense (the top of the hierarchy), so baseline flooding
  // cost grows ~ cores x core-links; the default keeps the whole bench
  // suite laptop-sized.
  std::size_t core_ases{64};
  std::size_t core_isds{8};
  // Intra-ISD topology (paper: 11 cores + 7017 customers).
  std::size_t isd_ases{300};
  std::size_t isd_cores{11};
  // SCIONLab-like testbed (paper: 21 cores).
  std::size_t scionlab_cores{21};
  // RouteViews-style monitors (paper: 26).
  std::size_t monitors{10};
  // AS pairs sampled for the path-quality figures.
  std::size_t sampled_pairs{120};
  // Prefix-origin sample for the BGP simulation (memory bound).
  std::size_t bgp_sampled_origins{150};
  // Overhead measurement window (paper: 6 h), preceded by one PCB lifetime
  // of warm-up so both algorithms are measured in their periodic regime.
  util::Duration beaconing_duration{util::Duration::hours(6)};
  // Shorter horizon for the path-quality figures: the disseminated path
  // sets saturate once initial exploration completes.
  util::Duration quality_duration{util::Duration::hours(2)};
  // BGP churn measurement window.
  util::Duration bgp_churn_window{util::Duration::hours(1)};
  std::uint64_t seed{1};

  /// Resolves from --key=value flags / REPRO_* env. `--paper` selects the
  /// paper-scale preset before individual overrides apply.
  static Scale from_flags(const util::Flags& flags);

  /// The paper-scale preset (hours of runtime, tens of GB of memory).
  static Scale paper();
};

/// The full Internet-like topology for this scale.
topo::Topology build_internet(const Scale& scale);

/// The two views of the core network (same AS/link indices): `bgp_view`
/// keeps business relationships, `scion_view` has every link as a core link.
struct CoreNetworks {
  topo::Topology bgp_view;
  topo::Topology scion_view;
};
CoreNetworks build_core_networks(const Scale& scale,
                                 const topo::Topology& internet);

/// Heavy-tailed per-AS prefix counts (RouteViews substitute): large transit
/// ASes originate orders of magnitude more prefixes than stubs.
std::vector<std::uint32_t> prefix_counts(const topo::Topology& internet,
                                         std::uint64_t seed);

/// Monitor ASes: the `n` highest link-degree ASes (RouteViews peers are
/// large, well-connected networks).
std::vector<topo::AsIndex> pick_monitors(const topo::Topology& topo,
                                         std::size_t n);

/// Finds the AS with the same 48-bit AS number in another topology (ISD
/// renumbering preserves AS numbers), kInvalidAsIndex if pruned away.
topo::AsIndex find_by_as_number(const topo::Topology& topo,
                                std::uint64_t as_number);

/// Samples `want` DISTINCT unordered AS pairs (s < t) from `n` ASes.
///
/// Shared by the quality and resilience experiments, whose hand-rolled
/// rejection loops only rejected s == t and happily re-sampled the same
/// pair — at small scales the figures then averaged duplicate pairs with
/// extra weight. Three regimes, all deterministic in `rng`:
///   - want >= n*(n-1)/2: every pair, enumerated in (s, t) index order
///     (no sampling, no rng draws);
///   - dense requests (within ~1/3 of the population): Fisher-Yates
///     shuffle-truncate over the full enumeration, so no rejection loop can
///     stall;
///   - sparse requests: rejection sampling against an ordered set.
/// Returned pairs are in sampling order (callers' figures index by pair).
std::vector<std::pair<topo::AsIndex, topo::AsIndex>> sample_distinct_pairs(
    util::Rng& rng, std::size_t n, std::size_t want);

}  // namespace scion::exp
