// Fig. 5: distribution over monitor ASes of monthly control-plane overhead
// relative to BGP, for BGPsec, SCION core beaconing (baseline and
// diversity-based), and SCION intra-ISD beaconing (baseline). Also derives
// the Section 5.2 headline numbers (orders of magnitude between protocols,
// overhead per constructed path).
#pragma once

#include "experiments/scale.hpp"
#include "util/stats.hpp"

namespace scion::exp {

struct OverheadResult {
  /// Per-monitor monthly bytes.
  std::vector<double> bgp;
  std::vector<double> bgpsec;
  std::vector<double> core_baseline;
  std::vector<double> core_diversity;
  std::vector<double> intra_baseline;

  /// Relative-to-BGP CDFs (the Fig. 5 series).
  util::EmpiricalCdf bgpsec_rel;
  util::EmpiricalCdf core_baseline_rel;
  util::EmpiricalCdf core_diversity_rel;
  util::EmpiricalCdf intra_rel;

  /// Section 5.2: median monthly bytes per disseminated path at a monitor.
  double per_path_bgp{0};
  double per_path_bgpsec{0};
  double per_path_core_baseline{0};
  double per_path_core_diversity{0};

  /// Average number of paths per origin stored at a monitor (diversity run).
  double diversity_paths_per_origin{0};
};

OverheadResult run_overhead_experiment(const Scale& scale);

/// Prints the Fig. 5 CDFs and the Section 5.2 summary lines.
void print_overhead_result(const OverheadResult& r);

}  // namespace scion::exp
