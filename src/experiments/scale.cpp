#include "experiments/scale.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace scion::exp {

Scale Scale::paper() {
  Scale s;
  s.internet_ases = 12000;
  s.n_tier1 = 20;
  s.core_ases = 2000;
  s.core_isds = 200;
  s.isd_ases = 7028;
  s.isd_cores = 11;
  s.monitors = 26;
  s.sampled_pairs = 1000;
  s.bgp_sampled_origins = 600;
  s.beaconing_duration = util::Duration::hours(6);
  s.bgp_churn_window = util::Duration::hours(2);
  return s;
}

Scale Scale::from_flags(const util::Flags& flags) {
  Scale s = flags.get_bool("paper", false) ? Scale::paper() : Scale{};
  s.internet_ases = static_cast<std::size_t>(
      flags.get_int("internet-ases", static_cast<std::int64_t>(s.internet_ases)));
  s.core_ases = static_cast<std::size_t>(
      flags.get_int("core-ases", static_cast<std::int64_t>(s.core_ases)));
  s.core_isds = static_cast<std::size_t>(
      flags.get_int("core-isds", static_cast<std::int64_t>(s.core_isds)));
  s.isd_ases = static_cast<std::size_t>(
      flags.get_int("isd-ases", static_cast<std::int64_t>(s.isd_ases)));
  s.monitors = static_cast<std::size_t>(
      flags.get_int("monitors", static_cast<std::int64_t>(s.monitors)));
  s.sampled_pairs = static_cast<std::size_t>(
      flags.get_int("pairs", static_cast<std::int64_t>(s.sampled_pairs)));
  s.bgp_sampled_origins = static_cast<std::size_t>(flags.get_int(
      "bgp-origins", static_cast<std::int64_t>(s.bgp_sampled_origins)));
  s.beaconing_duration = util::Duration::minutes(flags.get_int(
      "beaconing-minutes",
      static_cast<std::int64_t>(s.beaconing_duration.as_minutes())));
  s.quality_duration = util::Duration::minutes(flags.get_int(
      "quality-minutes",
      static_cast<std::int64_t>(s.quality_duration.as_minutes())));
  s.bgp_churn_window = util::Duration::minutes(flags.get_int(
      "churn-minutes",
      static_cast<std::int64_t>(s.bgp_churn_window.as_minutes())));
  s.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(s.seed)));
  // A generic multiplier for quick scaling experiments.
  const double scale = flags.get_double("scale", 1.0);
  if (scale != 1.0) {
    auto mul = [scale](std::size_t v) {
      return static_cast<std::size_t>(
          std::max(1.0, std::round(static_cast<double>(v) * scale)));
    };
    s.internet_ases = mul(s.internet_ases);
    s.core_ases = mul(s.core_ases);
    s.core_isds = mul(s.core_isds);
    s.isd_ases = mul(s.isd_ases);
    s.sampled_pairs = mul(s.sampled_pairs);
    s.bgp_sampled_origins = mul(s.bgp_sampled_origins);
  }
  return s;
}

topo::Topology build_internet(const Scale& scale) {
  topo::HierarchyConfig config;
  config.n_ases = scale.internet_ases;
  config.n_roots = scale.n_tier1;
  config.seed = scale.seed;
  return topo::generate_hierarchy(config);
}

CoreNetworks build_core_networks(const Scale& scale,
                                 const topo::Topology& internet) {
  CoreNetworks nets;
  nets.bgp_view =
      topo::make_core_network(internet, scale.core_ases, scale.core_isds);
  nets.scion_view = topo::with_all_core_links(nets.bgp_view);
  return nets;
}

std::vector<std::uint32_t> prefix_counts(const topo::Topology& internet,
                                         std::uint64_t seed) {
  util::Rng rng{seed ^ 0xBEEF};
  std::vector<std::uint32_t> counts(internet.as_count(), 1);
  for (topo::AsIndex i = 0; i < internet.as_count(); ++i) {
    // Pareto tail scaled by connectivity: hubs originate far more prefixes.
    const double degree_boost =
        1.0 + std::log2(1.0 + static_cast<double>(internet.link_degree(i)));
    const double raw = rng.pareto(0.8, 1.1) * degree_boost;
    counts[i] = static_cast<std::uint32_t>(
        std::clamp(raw, 1.0, 30000.0));
  }
  return counts;
}

std::vector<topo::AsIndex> pick_monitors(const topo::Topology& topo,
                                         std::size_t n) {
  return topo.highest_degree(n);
}

topo::AsIndex find_by_as_number(const topo::Topology& topo,
                                std::uint64_t as_number) {
  for (topo::AsIndex i = 0; i < topo.as_count(); ++i) {
    if (topo.as_id(i).as_number() == as_number) return i;
  }
  return topo::kInvalidAsIndex;
}

std::vector<std::pair<topo::AsIndex, topo::AsIndex>> sample_distinct_pairs(
    util::Rng& rng, std::size_t n, std::size_t want) {
  using Pair = std::pair<topo::AsIndex, topo::AsIndex>;
  std::vector<Pair> pairs;
  if (n < 2 || want == 0) return pairs;
  const std::size_t max_pairs = n * (n - 1) / 2;
  if (want >= max_pairs) {
    // Saturated request: full enumeration, no rng draws at all.
    pairs.reserve(max_pairs);
    for (std::size_t s = 0; s + 1 < n; ++s) {
      for (std::size_t t = s + 1; t < n; ++t) {
        pairs.emplace_back(static_cast<topo::AsIndex>(s),
                           static_cast<topo::AsIndex>(t));
      }
    }
    return pairs;
  }
  if (want * 3 >= max_pairs) {
    // Dense request: rejection would stall near saturation, so shuffle the
    // full enumeration and truncate (partial Fisher-Yates).
    std::vector<Pair> all;
    all.reserve(max_pairs);
    for (std::size_t s = 0; s + 1 < n; ++s) {
      for (std::size_t t = s + 1; t < n; ++t) {
        all.emplace_back(static_cast<topo::AsIndex>(s),
                         static_cast<topo::AsIndex>(t));
      }
    }
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng.index(all.size() - i);
      std::swap(all[i], all[j]);
    }
    all.resize(want);
    return all;
  }
  // Sparse request: rejection sampling, deduped against everything drawn so
  // far (pairs are normalized s < t, so (a, b) and (b, a) collide).
  std::set<Pair> seen;
  pairs.reserve(want);
  while (pairs.size() < want) {
    auto s = static_cast<topo::AsIndex>(rng.index(n));
    auto t = static_cast<topo::AsIndex>(rng.index(n));
    if (s == t) continue;
    if (s > t) std::swap(s, t);
    if (!seen.emplace(s, t).second) continue;
    pairs.emplace_back(s, t);
  }
  SCION_CHECK(pairs.size() == want, "sampler must deliver the requested pair count");
  return pairs;
}

}  // namespace scion::exp
