#include "experiments/resilience_experiment.hpp"

#include <algorithm>

#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
#include "obs/event_profile.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"

namespace scion::exp {

namespace {

// Event-cost attribution label for the connectivity probe timers.
const obs::EventLabel kProbeLabel = obs::event_label("experiment.probe");

/// Per-pair connectivity state machine fed by the periodic probe.
struct PairState {
  bool seen{false};
  bool up{false};
  bool in_outage{false};
  util::TimePoint down_since;
};

/// Feeds one probe round into the state machines. `pair_up(i)` answers
/// whether sampled pair i currently has a live path.
template <typename PairUpFn>
void probe_round(DynResilienceSeries& series, std::vector<PairState>& states,
                 util::TimePoint now, PairUpFn&& pair_up) {
  for (std::size_t i = 0; i < states.size(); ++i) {
    const bool up = pair_up(i);
    ++series.probes;
    if (up) ++series.probes_up;
    PairState& st = states[i];
    if (st.seen) {
      if (st.up && !up) {
        st.in_outage = true;
        st.down_since = now;
        ++series.outages;
      } else if (!st.up && up && st.in_outage) {
        series.recovery_seconds.add((now - st.down_since).as_seconds());
        ++series.recovered;
        st.in_outage = false;
      }
    }
    st.seen = true;
    st.up = up;
  }
}

void finalize(DynResilienceSeries& series, const std::vector<PairState>& states) {
  for (const PairState& st : states) {
    if (st.in_outage) ++series.unrecovered;
  }
  series.availability =
      series.probes > 0 ? static_cast<double>(series.probes_up) /
                              static_cast<double>(series.probes)
                        : 0.0;
}

/// One stored path is live iff every link it traverses is currently up.
bool any_path_live(const std::vector<std::vector<topo::LinkIndex>>& paths,
                   const sim::Network& net) {
  for (const auto& path : paths) {
    if (path.empty()) continue;
    const bool live =
        std::all_of(path.begin(), path.end(), [&net](topo::LinkIndex l) {
          return net.channel_up(static_cast<sim::ChannelId>(l));
        });
    if (live) return true;
  }
  return false;
}

}  // namespace

DynResilienceResult run_dyn_resilience_experiment(
    const topo::Topology& bgp_view, const topo::Topology& scion_view,
    const DynResilienceConfig& config) {
  DynResilienceResult result;
  util::Rng rng{config.seed ^ 0xD15C0};

  // Sampled distinct AS pairs (the probe population). The dedicated helper
  // dedupes; the old loop here could probe the same pair twice.
  const std::size_t n = scion_view.as_count();
  result.pairs = sample_distinct_pairs(rng, n, config.sampled_pairs);

  // The shared scenario: both views have identical link indices, so every
  // series sees the same faults at the same virtual times.
  faults::FaultPlan plan = config.faults;
  if (plan.empty() && config.default_flap_rate_per_hour > 0.0) {
    faults::FlapProcess flap;
    flap.rate_per_hour = config.default_flap_rate_per_hour;
    flap.downtime_min = config.default_downtime_min;
    flap.downtime_max = config.default_downtime_max;
    plan.flaps.push_back(flap);
    plan.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
  }

  // Every series simulates the same fault scenario on its own simulator and
  // network instance; nothing is shared mutably across series, so the three
  // runs are independent tasks.
  const auto run_scion = [&](ctrl::AlgorithmKind algorithm,
                             const std::string& name) {
    obs::ProfilePhase phase{"dyn_resilience." + name};
    ctrl::BeaconingSimConfig c;
    c.server.algorithm = algorithm;
    c.server.mode = ctrl::BeaconingMode::kCore;
    c.server.storage_limit = config.storage_limit;
    c.server.dissemination_limit = config.dissemination_limit;
    c.server.compute_crypto = false;
    if (algorithm == ctrl::AlgorithmKind::kDiversity) {
      c.server.store_policy = ctrl::StorePolicy::kDiversityAware;
    }
    c.sim_duration = config.sim_duration;
    c.warmup = config.warmup;
    c.seed = config.seed;
    c.faults = plan;
    ctrl::BeaconingSim sim{scion_view, c};

    DynResilienceSeries series;
    series.name = name;
    std::vector<PairState> states(result.pairs.size());
    const util::TimePoint measure_start =
        util::TimePoint::origin() + config.warmup;
    sim.simulator().schedule_periodic(
        measure_start + config.probe_interval, config.probe_interval,
        kProbeLabel, [&] {
          probe_round(series, states, sim.simulator().now(), [&](std::size_t i) {
            const auto [s, t] = result.pairs[i];
            std::vector<std::vector<topo::LinkIndex>> paths =
                sim.paths_at(s, scion_view.as_id(t));
            std::vector<std::vector<topo::LinkIndex>> reverse =
                sim.paths_at(t, scion_view.as_id(s));
            paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                         std::make_move_iterator(reverse.end()));
            return any_path_live(paths, sim.network());
          });
        });
    sim.run();
    finalize(series, states);
    if (sim.injector() != nullptr) series.fault_stats = sim.injector()->stats();
    series.drops = sim.network().drop_stats();
    series.pcbs_revoked = sim.aggregate_stats().pcbs_revoked;
    return series;
  };

  const auto run_bgp = [&]() {
    obs::ProfilePhase phase{"dyn_resilience.BGP"};
    bgp::BgpSimConfig bc;
    bc.seed = config.seed;
    bc.convergence_window = config.warmup;
    bc.churn_window = config.sim_duration;
    bc.flaps_per_adjacency_per_day = 0.0;  // churn comes from the shared plan
    bc.faults = plan;
    bgp::BgpSim sim{bgp_view, bc};

    DynResilienceSeries series;
    series.name = "BGP";
    std::vector<PairState> states(result.pairs.size());
    const util::TimePoint measure_start =
        util::TimePoint::origin() + config.warmup;
    sim.simulator().schedule_periodic(
        measure_start + config.probe_interval, config.probe_interval,
        kProbeLabel, [&] {
          probe_round(series, states, sim.simulator().now(), [&](std::size_t i) {
            const auto [s, t] = result.pairs[i];
            return sim.has_live_route(s, t) && sim.has_live_route(t, s);
          });
        });
    sim.run();
    finalize(series, states);
    series.fault_stats = sim.injector().stats();
    series.drops = sim.network().drop_stats();
    return series;
  };

  const std::size_t n_series = config.include_bgp ? 3 : 2;
  result.series = exec::parallel_map_n(
      n_series,
      [&](std::size_t i) {
        switch (i) {
          case 0:
            return run_scion(ctrl::AlgorithmKind::kBaseline, "SCION Baseline");
          case 1:
            return run_scion(ctrl::AlgorithmKind::kDiversity,
                             "SCION Diversity");
          default:
            return run_bgp();
        }
      },
      config.jobs);

  return result;
}

obs::Table dyn_resilience_table(const DynResilienceResult& r) {
  obs::Table t{
      "Dynamic resilience: recovery time from pair outage to first live "
      "path (probe-quantized), under the shared fault scenario",
      {obs::Column{"Series", obs::Align::kLeft, 18},
       obs::Column{"Recovery time [s]", obs::Align::kLeft, 40},
       obs::Column{"Outages", obs::Align::kRight, 9},
       obs::Column{"Recovered", obs::Align::kRight, 10},
       obs::Column{"Stuck", obs::Align::kRight, 7},
       obs::Column{"Availability", obs::Align::kRight, 13},
       obs::Column{"Faults", obs::Align::kRight, 8},
       obs::Column{"Revoked PCBs", obs::Align::kRight, 13}}};
  for (const DynResilienceSeries& s : r.series) {
    t.row({s.name,
           s.recovery_seconds.empty() ? "(no recoveries)"
                                      : s.recovery_seconds.summary(),
           obs::fmt_u64(s.outages), obs::fmt_u64(s.recovered),
           obs::fmt_u64(s.unrecovered), obs::fmt_f(s.availability, 4),
           obs::fmt_u64(s.fault_stats.link_down_events),
           obs::fmt_u64(s.pcbs_revoked)});
  }
  return t;
}

void print_dyn_resilience(const DynResilienceResult& r) {
  obs::print_line("");
  obs::print(dyn_resilience_table(r).to_text());
}

}  // namespace scion::exp
