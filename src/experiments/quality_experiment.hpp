// Figs. 6a/6b (core network) and 7/8 (SCIONLab): failure resilience and
// maximum capacity of the disseminated path sets, per algorithm and PCB
// storage limit, against the optimum and BGP multipath.
#pragma once

#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "experiments/scale.hpp"

namespace scion::obs {
class Table;
}

namespace scion::exp {

struct QualityConfig {
  /// Diversity runs, one per storage limit (0 = unlimited).
  std::vector<std::size_t> diversity_storage_limits{15, 30, 60, 0};
  /// Baseline runs, one per storage limit.
  std::vector<std::size_t> baseline_storage_limits{60};
  /// Include the BGP multipath series (needs the relationship-preserving
  /// view of the same topology).
  bool include_bgp{true};
  std::size_t sampled_pairs{200};
  util::Duration sim_duration{util::Duration::hours(6)};
  std::size_t dissemination_limit{5};
  std::uint64_t seed{1};
  /// Worker count for the per-pair min-cut and per-series evaluation
  /// (0 = exec::default_jobs()). Results are byte-identical for any value.
  std::size_t jobs{0};
};

struct QualitySeries {
  std::string name;
  /// Min-cut / max-flow value per sampled pair (aligned with `pairs`).
  std::vector<int> values;
};

struct QualityResult {
  std::vector<std::pair<topo::AsIndex, topo::AsIndex>> pairs;
  std::vector<int> optimum;
  std::vector<QualitySeries> series;

  /// Sum(series)/Sum(optimum): the "fraction of optimal capacity" numbers
  /// quoted in Section 5.3.
  double fraction_of_optimal(const QualitySeries& s) const;
};

/// Runs the beaconing configurations on `scion_view`, BGP on `bgp_view`
/// (same indices), samples AS pairs, and evaluates min-cut per pair.
QualityResult run_quality_experiment(const topo::Topology& bgp_view,
                                     const topo::Topology& scion_view,
                                     const QualityConfig& config);

/// Fig. 6a/7 table: per optimum value, the pair count and each series'
/// average achieved resilience.
obs::Table resilience_table(const QualityResult& r, int max_optimum);
void print_resilience(const QualityResult& r, int max_optimum);

/// Fig. 6b/8 table: capacity CDFs per series plus fraction of optimal.
obs::Table capacity_table(const QualityResult& r);
void print_capacity(const QualityResult& r);

}  // namespace scion::exp
