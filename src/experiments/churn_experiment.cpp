#include "experiments/churn_experiment.hpp"

#include <algorithm>

#include "bgp/bgp_sim.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
#include "obs/event_profile.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"

#include "experiments/scale.hpp"

namespace scion::exp {

namespace {

// Event-cost attribution label for the connectivity probe timers.
const obs::EventLabel kProbeLabel = obs::event_label("experiment.probe");

/// Decorrelates the synthesized scenario and its session-restart draws from
/// every other use of the experiment seed.
constexpr std::uint64_t kChurnSeedMix = 0xC0FFEE9E3779B97FULL;

/// Per-pair connectivity state machine fed by the periodic probe.
struct PairState {
  bool seen{false};
  bool up{false};
  bool in_outage{false};
  util::TimePoint down_since;
};

template <typename PairUpFn>
void probe_round(ChurnSeries& series, std::vector<PairState>& states,
                 util::TimePoint now, PairUpFn&& pair_up) {
  for (std::size_t i = 0; i < states.size(); ++i) {
    const bool up = pair_up(i);
    ++series.probes;
    if (up) ++series.probes_up;
    PairState& st = states[i];
    if (st.seen) {
      if (st.up && !up) {
        st.in_outage = true;
        st.down_since = now;
        ++series.outages;
      } else if (!st.up && up && st.in_outage) {
        series.convergence_seconds.add((now - st.down_since).as_seconds());
        ++series.recovered;
        st.in_outage = false;
      }
    }
    st.seen = true;
    st.up = up;
  }
}

void finalize(ChurnSeries& series, const std::vector<PairState>& states) {
  for (const PairState& st : states) {
    if (st.in_outage) ++series.unrecovered;
  }
  series.availability =
      series.probes > 0 ? static_cast<double>(series.probes_up) /
                              static_cast<double>(series.probes)
                        : 0.0;
  series.amplification =
      series.control_messages_clean > 0
          ? static_cast<double>(series.control_messages) /
                static_cast<double>(series.control_messages_clean)
          : 0.0;
}

/// One stored path is live iff every link it traverses is currently up.
bool any_path_live(const std::vector<std::vector<topo::LinkIndex>>& paths,
                   const sim::Network& net) {
  for (const auto& path : paths) {
    if (path.empty()) continue;
    const bool live =
        std::all_of(path.begin(), path.end(), [&net](topo::LinkIndex l) {
          return net.channel_up(static_cast<sim::ChannelId>(l));
        });
    if (live) return true;
  }
  return false;
}

}  // namespace

ChurnResult run_churn_experiment(const topo::Topology& bgp_view,
                                 const topo::Topology& scion_view,
                                 const ChurnConfig& config) {
  ChurnResult result;
  util::Rng rng{config.seed ^ 0xC4C4};

  const std::size_t n = scion_view.as_count();
  result.pairs = sample_distinct_pairs(rng, n, config.sampled_pairs);

  // The shared scenario: both views have identical link indices, so every
  // series sees the same churn at the same virtual times.
  faults::FaultPlan plan = config.faults;
  if (plan.empty()) {
    plan.seed = config.seed ^ kChurnSeedMix;
    faults::ChurnSpec churn;
    churn.profile = faults::ChurnSpec::Profile::kSteady;
    churn.links = faults::LinkClass::kAll;
    churn.link_fraction = config.churn_link_fraction;
    churn.up_min = config.churn_up_min;
    churn.up_max = config.churn_up_max;
    churn.up_alpha = config.churn_up_alpha;
    churn.down_min = config.churn_down_min;
    churn.down_max = config.churn_down_max;
    churn.down_alpha = config.churn_down_alpha;
    churn.start = util::Duration::zero();
    churn.duration = config.sim_duration;
    plan.churn.push_back(churn);

    // Session restarts spread evenly across the window, on links drawn from
    // a dedicated substream (link indices are shared by both views).
    util::Rng restart_rng = util::Rng::substream(plan.seed, 0x5E55);
    for (std::size_t i = 0; i < config.session_restarts; ++i) {
      faults::Event ev;
      ev.kind = faults::Event::Kind::kSessionRestart;
      ev.target = static_cast<std::uint32_t>(restart_rng.uniform_int(
          std::int64_t{0},
          static_cast<std::int64_t>(bgp_view.link_count()) - 1));
      ev.at = util::Duration::nanoseconds(config.sim_duration.ns() *
                                          static_cast<std::int64_t>(i + 1) /
                                          static_cast<std::int64_t>(
                                              config.session_restarts + 1));
      ev.duration = config.session_restart_duration;
      plan.events.push_back(ev);
    }
  }
  const faults::FaultPlan clean_plan{};  // the paired fault-free replica

  // Each series runs the scenario and a clean replica on its own simulator
  // instances; nothing is shared mutably, so the five series are
  // independent tasks.
  const auto run_bgp = [&](const std::string& name, bool damping_on,
                           bool gr_on) {
    obs::ProfilePhase phase{"churn." + name};
    const auto make_config = [&](const faults::FaultPlan& p) {
      bgp::BgpSimConfig bc;
      bc.seed = config.seed;
      bc.convergence_window = config.warmup;
      bc.churn_window = config.sim_duration;
      bc.flaps_per_adjacency_per_day = 0.0;  // churn comes from the plan
      bc.damping = config.damping;
      bc.damping.enabled = damping_on;
      bc.graceful_restart = config.graceful_restart;
      bc.graceful_restart.enabled = gr_on;
      bc.faults = p;
      return bc;
    };

    ChurnSeries series;
    series.name = name;
    {
      bgp::BgpSim clean{bgp_view, make_config(clean_plan)};
      clean.run();
      series.control_messages_clean = clean.total_updates_sent();
    }
    bgp::BgpSim sim{bgp_view, make_config(plan)};
    std::vector<PairState> states(result.pairs.size());
    const util::TimePoint measure_start =
        util::TimePoint::origin() + config.warmup;
    sim.simulator().schedule_periodic(
        measure_start + config.probe_interval, config.probe_interval,
        kProbeLabel, [&] {
          probe_round(series, states, sim.simulator().now(), [&](std::size_t i) {
            const auto [s, t] = result.pairs[i];
            return sim.has_live_route(s, t) && sim.has_live_route(t, s);
          });
        });
    sim.run();
    series.control_messages = sim.total_updates_sent();
    series.routes_suppressed = sim.total_routes_suppressed();
    series.routes_reused = sim.total_routes_reused();
    series.stale_retained = sim.total_stale_retained();
    series.stale_expired = sim.total_stale_expired();
    series.fault_stats = sim.injector().stats();
    finalize(series, states);
    return series;
  };

  const auto run_scion = [&](const std::string& name, bool robust) {
    obs::ProfilePhase phase{"churn." + name};
    const auto make_config = [&](const faults::FaultPlan& p) {
      ctrl::BeaconingSimConfig c;
      c.server.algorithm = ctrl::AlgorithmKind::kBaseline;
      c.server.mode = ctrl::BeaconingMode::kCore;
      c.server.storage_limit = config.storage_limit;
      c.server.dissemination_limit = config.dissemination_limit;
      c.server.compute_crypto = false;
      if (robust) {
        c.server.stale_quarantine = true;
        c.server.reorigination.enabled = true;
      }
      c.sim_duration = config.sim_duration;
      c.warmup = config.warmup;
      c.seed = config.seed;
      c.faults = p;
      return c;
    };

    ChurnSeries series;
    series.name = name;
    {
      ctrl::BeaconingSim clean{scion_view, make_config(clean_plan)};
      clean.run();
      series.control_messages_clean = clean.total_pcbs_sent();
    }
    ctrl::BeaconingSim sim{scion_view, make_config(plan)};
    std::vector<PairState> states(result.pairs.size());
    const util::TimePoint measure_start =
        util::TimePoint::origin() + config.warmup;
    sim.simulator().schedule_periodic(
        measure_start + config.probe_interval, config.probe_interval,
        kProbeLabel, [&] {
          probe_round(series, states, sim.simulator().now(), [&](std::size_t i) {
            const auto [s, t] = result.pairs[i];
            std::vector<std::vector<topo::LinkIndex>> paths =
                sim.paths_at(s, scion_view.as_id(t));
            std::vector<std::vector<topo::LinkIndex>> reverse =
                sim.paths_at(t, scion_view.as_id(s));
            paths.insert(paths.end(), std::make_move_iterator(reverse.begin()),
                         std::make_move_iterator(reverse.end()));
            return any_path_live(paths, sim.network());
          });
        });
    sim.run();
    series.control_messages = sim.total_pcbs_sent();
    const ctrl::BeaconServerStats agg = sim.aggregate_stats();
    series.pcbs_quarantined = agg.pcbs_quarantined;
    series.pcbs_revalidated = agg.pcbs_revalidated;
    series.reoriginations = agg.reoriginations;
    if (sim.injector() != nullptr) series.fault_stats = sim.injector()->stats();
    finalize(series, states);
    return series;
  };

  result.series = exec::parallel_map_n(
      5,
      [&](std::size_t i) {
        switch (i) {
          case 0:
            return run_bgp("BGP", /*damping_on=*/false, /*gr_on=*/false);
          case 1:
            return run_bgp("BGP Damping", /*damping_on=*/true, /*gr_on=*/false);
          case 2:
            return run_bgp("BGP GR", /*damping_on=*/false, /*gr_on=*/true);
          case 3:
            return run_scion("SCION Baseline", /*robust=*/false);
          default:
            return run_scion("SCION Robust", /*robust=*/true);
        }
      },
      config.jobs);

  return result;
}

obs::Table churn_table(const ChurnResult& r) {
  obs::Table t{
      "Sustained churn: convergence lag from pair outage to first live path "
      "(probe-quantized), availability, and churn/clean traffic ratio",
      {obs::Column{"Series", obs::Align::kLeft, 16},
       obs::Column{"Convergence lag [s]", obs::Align::kLeft, 38},
       obs::Column{"Outages", obs::Align::kRight, 9},
       obs::Column{"Availability", obs::Align::kRight, 13},
       obs::Column{"Amplif.", obs::Align::kRight, 9},
       obs::Column{"Suppressed", obs::Align::kRight, 11},
       obs::Column{"Stale kept", obs::Align::kRight, 11},
       obs::Column{"Quarantined", obs::Align::kRight, 12},
       obs::Column{"Re-origin", obs::Align::kRight, 10}}};
  for (const ChurnSeries& s : r.series) {
    t.row({s.name,
           s.convergence_seconds.empty() ? "(no recoveries)"
                                         : s.convergence_seconds.summary(),
           obs::fmt_u64(s.outages), obs::fmt_f(s.availability, 4),
           obs::fmt_f(s.amplification, 2), obs::fmt_u64(s.routes_suppressed),
           obs::fmt_u64(s.stale_retained), obs::fmt_u64(s.pcbs_quarantined),
           obs::fmt_u64(s.reoriginations)});
  }
  return t;
}

void print_churn(const ChurnResult& r) {
  obs::print_line("");
  obs::print(churn_table(r).to_text());
}

}  // namespace scion::exp
