// Sustained churn: control-plane survival mechanisms under a heavy-tailed
// link-flap process (the operator-facing counterpart of the dynamic
// resilience experiment). Every series replays the *same* churn scenario —
// a seeded per-link ON/OFF process plus scheduled session restarts — and is
// paired with a clean (fault-free) replica of itself, so the reported
// control-message amplification isolates what churn costs each mechanism.
//
// Series:
//   BGP           — plain speakers (no damping, no graceful restart)
//   BGP Damping   — RFC 2439-shaped route-flap damping enabled
//   BGP GR        — graceful restart: session restarts retain stale routes
//   SCION Baseline— beaconing as-is (revocation evicts stored PCBs)
//   SCION Robust  — staleness quarantine + re-origination backoff
//
// Per series: a convergence-lag CDF (probe-quantized time from losing the
// last live path to regaining one), availability, suppressed/reused and
// stale-retained/expired counters, and the churn/clean traffic ratio.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bgp/speaker.hpp"
#include "faults/fault_injector.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace scion::obs {
class Table;
}

namespace scion::exp {

struct ChurnConfig {
  std::size_t sampled_pairs{40};
  /// Measurement window under churn (after each system's warm-up).
  util::Duration sim_duration{util::Duration::hours(1)};
  util::Duration warmup{util::Duration::minutes(30)};
  /// Connectivity probe cadence; convergence lags are quantized to it.
  util::Duration probe_interval{util::Duration::seconds(10)};
  std::size_t dissemination_limit{5};
  std::size_t storage_limit{60};
  /// Shared scenario. When empty, a steady heavy-tailed churn process plus
  /// `session_restarts` scheduled restarts is synthesized from the knobs
  /// below (aggressive timescales, so damping demonstrably engages).
  faults::FaultPlan faults{};
  double churn_link_fraction{0.5};
  util::Duration churn_up_min{util::Duration::minutes(2)};
  util::Duration churn_up_max{util::Duration::minutes(20)};
  double churn_up_alpha{1.1};
  util::Duration churn_down_min{util::Duration::seconds(30)};
  util::Duration churn_down_max{util::Duration::minutes(3)};
  double churn_down_alpha{1.3};
  std::size_t session_restarts{4};
  util::Duration session_restart_duration{util::Duration::seconds(90)};
  /// Mechanism parameters (the `enabled` flags are overridden per series).
  bgp::DampingConfig damping{};
  bgp::GracefulRestartConfig graceful_restart{};
  std::uint64_t seed{1};
  /// Worker count for the independent series runs (0 = exec::default_jobs()).
  /// Results are byte-identical for any value.
  std::size_t jobs{0};
};

struct ChurnSeries {
  std::string name;
  /// Seconds from a pair losing its last live path to the control plane
  /// exposing a live one again (one sample per recovered outage).
  util::EmpiricalCdf convergence_seconds;
  std::uint64_t outages{0};
  std::uint64_t recovered{0};
  std::uint64_t unrecovered{0};
  /// Fraction of (pair, probe) samples with a live path.
  double availability{0.0};
  std::uint64_t probes{0};
  std::uint64_t probes_up{0};
  /// Control messages under churn vs. the same series run without faults.
  /// amplification = churn / clean (0 if clean is 0). BGP counts UPDATEs
  /// over the whole run (steady-state BGP is silent, so the cold-start
  /// convergence common to both runs is the natural denominator); SCION
  /// counts PCBs sent in the measurement window (beaconing is periodic, so
  /// the clean window itself carries the steady-state rate).
  std::uint64_t control_messages{0};
  std::uint64_t control_messages_clean{0};
  double amplification{0.0};
  /// BGP damping counters (zero for other series).
  std::uint64_t routes_suppressed{0};
  std::uint64_t routes_reused{0};
  /// BGP graceful-restart counters (zero for other series).
  std::uint64_t stale_retained{0};
  std::uint64_t stale_expired{0};
  /// SCION robustness counters (zero for other series).
  std::uint64_t pcbs_quarantined{0};
  std::uint64_t pcbs_revalidated{0};
  std::uint64_t reoriginations{0};
  faults::FaultInjectorStats fault_stats;
};

struct ChurnResult {
  std::vector<std::pair<topo::AsIndex, topo::AsIndex>> pairs;
  std::vector<ChurnSeries> series;
};

/// Runs all five series (each paired with its clean replica) through the
/// shared churn scenario on the two views of the same core network.
ChurnResult run_churn_experiment(const topo::Topology& bgp_view,
                                 const topo::Topology& scion_view,
                                 const ChurnConfig& config);

obs::Table churn_table(const ChurnResult& r);
void print_churn(const ChurnResult& r);

}  // namespace scion::exp
