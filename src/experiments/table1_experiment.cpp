#include "experiments/table1_experiment.hpp"

#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "scion/control_plane_sim.hpp"

namespace scion::exp {

Table1Result run_table1_experiment(const Table1Config& config) {
  obs::ProfilePhase topology_phase{"table1.topology"};
  const topo::Topology world = topo::generate_multi_isd(config.topology);
  topology_phase.stop();

  obs::ProfilePhase sim_phase{"table1.control_plane"};
  svc::ControlPlaneSimConfig c;
  c.sim_duration = config.sim_duration;
  c.lookups_per_second = config.lookups_per_second;
  c.link_failures_per_hour = config.link_failures_per_hour;
  c.seed = config.seed;
  svc::ControlPlaneSim sim{world, c};
  sim.run();

  Table1Result result;
  result.ledger = sim.ledger();
  result.window = config.sim_duration;
  result.participants = world.as_count();
  result.lookups = sim.lookups_performed();
  result.paths_resolved = sim.paths_resolved();
  return result;
}

void print_table1(const Table1Result& r) {
  obs::print_line("\nTable 1 — path management overhead comparison (measured)");
  r.ledger.print("  SCION control-plane components", r.window,
                 r.participants);
  obs::print_line("  workload: " + obs::fmt_u64(r.lookups) +
                  " endpoint lookups resolved " +
                  obs::fmt_u64(r.paths_resolved) + " paths");
}

}  // namespace scion::exp
