// Parameter fitting for the diversity algorithm (Section 4.2: "for a given
// topology, we find suitable parameters by first performing a grid search
// with exponentially spaced values ... followed by a grid search with
// linearly spaced values").
//
// The objective balances path quality (capacity achieved as a fraction of
// optimal over sampled pairs) against control-plane overhead (bytes,
// normalized by the baseline algorithm's bytes on the same topology).
#pragma once

#include <vector>

#include "core/beaconing_sim.hpp"

namespace scion::ctrl {

struct GridSearchConfig {
  /// Simulated duration per evaluated parameter point.
  util::Duration sim_duration{util::Duration::hours(2)};
  /// AS pairs sampled for the quality term.
  std::size_t sampled_pairs{60};
  /// Weight of the overhead penalty: objective = quality - weight * relative
  /// overhead (relative to the baseline algorithm; typically << 1 for any
  /// sane parameters, so small weights suffice).
  double overhead_weight{0.5};
  /// Exponentially spaced candidates for the coarse pass.
  std::vector<double> coarse_alpha{0.5, 2.0, 8.0};
  std::vector<double> coarse_beta{1.0, 3.0, 9.0};
  std::vector<double> coarse_gamma{1.0, 2.0, 4.0};
  /// Linear refinement steps around the coarse winner (+/- step, per axis).
  int refine_steps{1};
  double refine_fraction{0.5};
  std::uint64_t seed{1};
  /// Worker count for the per-point evaluations (0 = exec::default_jobs()).
  /// The winner and the evaluation log are byte-identical for any value.
  std::size_t jobs{0};
};

struct EvaluatedPoint {
  DiversityParams params;
  double quality{0.0};    // capacity fraction of optimal
  double overhead{0.0};   // bytes relative to baseline
  double objective{0.0};  // quality - weight * overhead
};

struct GridSearchResult {
  EvaluatedPoint best;
  std::vector<EvaluatedPoint> evaluated;  // in evaluation order
  util::Bytes baseline_bytes{};
};

/// Evaluates one parameter point (exposed for tests and examples).
EvaluatedPoint evaluate_diversity_params(const topo::Topology& scion_view,
                                         const DiversityParams& params,
                                         const GridSearchConfig& config,
                                         util::Bytes baseline_bytes);

/// Runs the coarse exponential pass followed by the linear refinement.
GridSearchResult grid_search_diversity_params(const topo::Topology& scion_view,
                                              const GridSearchConfig& config);

}  // namespace scion::ctrl
