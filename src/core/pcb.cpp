#include "core/pcb.hpp"

#include "util/check.hpp"

namespace scion::ctrl {

namespace {

/// Serializes the signed fields of an entry into a hasher.
void hash_entry_fields(crypto::Sha256& h, const AsEntry& e) {
  h.update_u64(e.isd_as.value());
  h.update_u16(e.in_if.value());
  h.update_u16(e.out_if.value());
  h.update_u32(e.ingress_latency_us);
  h.update(std::span<const std::uint8_t>{e.hop_mac.data(), e.hop_mac.size()});
  h.update_u16(static_cast<std::uint16_t>(e.peers.size()));
  for (const PeerEntry& p : e.peers) {
    h.update_u64(p.peer_as.value());
    h.update_u16(p.peer_if.value());
    h.update(std::span<const std::uint8_t>{p.hop_mac.data(), p.hop_mac.size()});
  }
}

std::uint32_t expiry_unix(TimePoint expiry) {
  return static_cast<std::uint32_t>(expiry.ns() / 1'000'000'000);
}

}  // namespace

Pcb Pcb::originate(IsdAsId origin, IfId out_if, TimePoint timestamp,
                   Duration lifetime, const crypto::SigningKey& signing_key,
                   const crypto::ForwardingKey& forwarding_key) {
  SCION_CHECK(lifetime > Duration::zero(), "PCB lifetime must be positive");
  Pcb pcb{timestamp, timestamp + lifetime};
  AsEntry entry;
  entry.isd_as = origin;
  entry.in_if = topo::kNoInterface;
  entry.out_if = out_if;
  entry.hop_mac = crypto::hop_mac(forwarding_key, entry.in_if.value(), entry.out_if.value(),
                                  expiry_unix(pcb.expiry_), crypto::HopMac{});
  entry.signature = crypto::sign(signing_key, pcb.signing_digest(entry));
  pcb.entries_.push_back(std::move(entry));
  return pcb;
}

Pcb Pcb::originate_unsigned(IsdAsId origin, IfId out_if, TimePoint timestamp,
                            Duration lifetime) {
  SCION_CHECK(lifetime > Duration::zero(), "PCB lifetime must be positive");
  Pcb pcb{timestamp, timestamp + lifetime};
  AsEntry entry;
  entry.isd_as = origin;
  entry.in_if = topo::kNoInterface;
  entry.out_if = out_if;
  pcb.entries_.push_back(std::move(entry));
  return pcb;
}

Pcb Pcb::extend_unsigned(IsdAsId as, IfId in_if, IfId out_if,
                         std::vector<PeerEntry> peers,
                         std::uint32_t ingress_latency_us) const {
  SCION_CHECK(!entries_.empty(), "cannot extend an empty PCB");
  AsEntry entry;
  entry.isd_as = as;
  entry.in_if = in_if;
  entry.out_if = out_if;
  entry.ingress_latency_us = ingress_latency_us;
  entry.peers = std::move(peers);
  return extend(std::move(entry));
}

bool Pcb::contains_as(IsdAsId as) const {
  for (const AsEntry& e : entries_) {
    if (e.isd_as == as) return true;
  }
  return false;
}

util::Bytes Pcb::wire_size() const {
  std::size_t size = kPcbHeaderBytes;
  for (const AsEntry& e : entries_) {
    size += kAsEntryFixedBytes + crypto::kSignatureBytes +
            e.peers.size() * kPeerEntryBytes;
    if (carries_latency_) size += kLatencyMetadataBytes;
  }
  return util::Bytes{size};
}

std::uint64_t Pcb::total_latency_us() const {
  std::uint64_t total = 0;
  for (const AsEntry& e : entries_) total += e.ingress_latency_us;
  return total;
}

Pcb Pcb::extend(AsEntry next) const {
  SCION_CHECK(!entries_.empty(), "cannot extend an empty PCB");
  // Propagation must filter looping PCBs before extending; a loop here
  // would invalidate the hop-field chain downstream.
  SCION_DCHECK(!contains_as(next.isd_as), "AS already on the PCB path");
  Pcb out{timestamp_, expiry_};
  out.carries_latency_ = carries_latency_;
  out.entries_ = entries_;
  out.entries_.push_back(std::move(next));
  return out;
}

crypto::Sha256Digest Pcb::signing_digest(const AsEntry& candidate) const {
  crypto::Sha256 h;
  h.update("scion-mpr/pcb/v1");
  // Segment info. The origin id lives in entries_[0] once present; hashing
  // the timestamps here binds every signature to the instance.
  h.update_u64(timestamp_.ns() < 0 ? 0 : static_cast<std::uint64_t>(timestamp_.ns()));
  h.update_u64(expiry_.ns() < 0 ? 0 : static_cast<std::uint64_t>(expiry_.ns()));
  for (const AsEntry& e : entries_) {
    hash_entry_fields(h, e);
    h.update(std::span<const std::uint8_t>{e.signature.bytes});
  }
  hash_entry_fields(h, candidate);
  return h.finalize();
}

Pcb Pcb::extend_signed(IsdAsId as, IfId in_if, IfId out_if,
                       std::vector<PeerEntry> peers,
                       const crypto::SigningKey& signing_key,
                       const crypto::ForwardingKey& forwarding_key,
                       std::uint32_t ingress_latency_us) const {
  SCION_CHECK(!entries_.empty(), "cannot extend an empty PCB");
  AsEntry entry;
  entry.isd_as = as;
  entry.in_if = in_if;
  entry.out_if = out_if;
  entry.ingress_latency_us = ingress_latency_us;
  entry.peers = std::move(peers);
  entry.hop_mac = crypto::hop_mac(forwarding_key, in_if.value(), out_if.value(),
                                  expiry_unix(expiry_), entries_.back().hop_mac);
  // Peer hop fields authorize entering this AS over the peering interface
  // instead of in_if; their MACs chain off the same predecessor.
  for (PeerEntry& p : entry.peers) {
    p.hop_mac = crypto::hop_mac(forwarding_key, p.peer_if.value(), out_if.value(),
                                expiry_unix(expiry_), entries_.back().hop_mac);
  }
  entry.signature = crypto::sign(signing_key, signing_digest(entry));
  return extend(std::move(entry));
}

bool Pcb::verify(crypto::KeyStore& keys) const {
  // Rebuild the chain of signing digests prefix by prefix.
  Pcb prefix{timestamp_, expiry_};
  for (const AsEntry& e : entries_) {
    const crypto::Sha256Digest digest = prefix.signing_digest(e);
    if (!keys.verify_by(e.isd_as.value(), digest, e.signature)) return false;
    prefix.entries_.push_back(e);
  }
  return !entries_.empty();
}

std::uint64_t Pcb::path_key() const {
  crypto::Sha256 h;
  h.update("scion-mpr/path-key/v1");
  for (const AsEntry& e : entries_) {
    h.update_u64(e.isd_as.value());
    h.update_u16(e.in_if.value());
    h.update_u16(e.out_if.value());
  }
  return h.finalize().prefix64();
}

}  // namespace scion::ctrl
