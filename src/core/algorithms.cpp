#include "core/algorithms.hpp"

#include <algorithm>

namespace scion::ctrl {

LinkCanonicalizer as_pair_canonicalizer(const topo::Topology& topology) {
  // Precompute representative (lowest) link index per AS pair.
  auto mapping = std::make_shared<std::vector<topo::LinkIndex>>(
      topology.link_count(), topo::kInvalidLinkIndex);
  for (topo::LinkIndex l = 0; l < topology.link_count(); ++l) {
    const topo::Link& link = topology.link(l);
    const auto parallel = topology.links_between(link.a, link.b);
    (*mapping)[l] = *std::min_element(parallel.begin(), parallel.end());
  }
  return [mapping](topo::LinkIndex l) { return (*mapping)[l]; };
}

const char* to_string(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kBaseline:
      return "baseline";
    case AlgorithmKind::kDiversity:
      return "diversity";
  }
  return "?";
}

std::vector<Candidate> baseline_select(std::span<const StoredPcb> bucket,
                                       topo::IsdAsId neighbor_as,
                                       topo::LinkIndex egress,
                                       std::size_t limit, TimePoint now) {
  std::vector<const StoredPcb*> eligible;
  eligible.reserve(bucket.size());
  for (const StoredPcb& s : bucket) {
    if (s.pcb->expired(now)) continue;
    if (s.stale()) continue;  // quarantined: a link on the path is down
    if (s.pcb->contains_as(neighbor_as)) continue;  // loop prevention
    eligible.push_back(&s);
  }
  // Shortest path first; among equal lengths prefer the freshest instance;
  // final tie on the stable path key for determinism.
  std::sort(eligible.begin(), eligible.end(),
            [](const StoredPcb* x, const StoredPcb* y) {
              if (x->pcb->hops() != y->pcb->hops())
                return x->pcb->hops() < y->pcb->hops();
              if (x->pcb->timestamp() != y->pcb->timestamp())
                return x->pcb->timestamp() > y->pcb->timestamp();
              return x->path_key < y->path_key;
            });
  if (eligible.size() > limit) eligible.resize(limit);

  std::vector<Candidate> out;
  out.reserve(eligible.size());
  for (const StoredPcb* s : eligible) out.push_back(Candidate{s, egress});
  return out;
}

LinkHistoryTable& DiversityState::history(topo::IsdAsId origin,
                                          topo::IsdAsId neighbor_as) {
  return history_[PairKey{origin.value(), neighbor_as.value()}];
}

void DiversityState::expire(TimePoint now) {
  // Erase-only sweep; remove_path decrements commute, so visit order is
  // irrelevant. simlint:allow(unordered-iter)
  for (auto it = sent_.begin(); it != sent_.end();) {
    if (it->second.instance_expiry <= now) {
      if (params_.decrement_on_expiry) {
        history(it->second.origin, it->second.neighbor)
            .remove_path(it->second.links);
      }
      it = sent_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Candidate> DiversityState::select_and_commit(
    std::span<const StoredPcb> bucket, topo::IsdAsId origin,
    topo::IsdAsId neighbor_as, std::span<const topo::LinkIndex> egress_links,
    std::size_t limit, TimePoint now) {
  std::vector<Candidate> selected;
  if (egress_links.empty() || bucket.empty()) return selected;

  LinkHistoryTable& table = history(origin, neighbor_as);
  std::vector<topo::LinkIndex> candidate_links;

  // Guards against reselecting a combination within this call; the fresh
  // sent record already suppresses it for sane parameters, but user-chosen
  // parameters must not be able to produce duplicates.
  std::vector<SentKey> chosen_this_call;

  while (selected.size() < limit) {
    const StoredPcb* best = nullptr;
    topo::LinkIndex best_egress = topo::kInvalidLinkIndex;
    double best_score = 0.0;

    for (const StoredPcb& s : bucket) {
      if (s.pcb->expired(now)) continue;
      if (s.stale()) continue;  // quarantined: a link on the path is down
      if (s.pcb->contains_as(neighbor_as)) continue;  // loop prevention
      for (topo::LinkIndex egress : egress_links) {
        const SentKey key{s.path_key, egress};
        if (std::find(chosen_this_call.begin(), chosen_this_call.end(), key) !=
            chosen_this_call.end()) {
          continue;
        }
        ++evaluations_;

        double score = 0.0;
        const auto sent_it = sent_.find(key);
        const bool previously_sent =
            sent_it != sent_.end() && sent_it->second.instance_expiry > now;
        if (previously_sent) {
          score = score_previously_sent(
              sent_it->second.diversity,
              sent_it->second.instance_expiry - now,
              s.pcb->remaining_lifetime(now), params_);
        } else {
          candidate_links.assign(s.links.begin(), s.links.end());
          candidate_links.push_back(egress);
          if (canonicalizer_) {
            for (topo::LinkIndex& l : candidate_links) l = canonicalizer_(l);
          }
          const double d = diversity_score(table, candidate_links, params_);
          score = score_fresh(d, s.pcb->age(now), s.pcb->lifetime(), params_);
          // Latency extension: penalize high-latency candidates before the
          // threshold check (no effect when latency_weight is 0).
          score *= latency_factor(s.pcb->total_latency_us(), params_);
        }

        if (score <= params_.score_threshold) {
          ++suppressed_;
          continue;
        }
        // Strictly-greater comparison plus deterministic tie-breaks:
        // longer remaining lifetime, then fewer hops, then stable key.
        bool better = score > best_score;
        if (!better && score == best_score && best != nullptr) {
          if (s.pcb->expiry() != best->pcb->expiry()) {
            better = s.pcb->expiry() > best->pcb->expiry();
          } else if (s.pcb->hops() != best->pcb->hops()) {
            better = s.pcb->hops() < best->pcb->hops();
          } else {
            better = SentKey{s.path_key, egress}.path_key <
                     SentKey{best->path_key, best_egress}.path_key;
          }
        }
        if (better) {
          best = &s;
          best_egress = egress;
          best_score = score;
        }
      }
    }

    if (best == nullptr) break;  // nothing above the threshold

    const SentKey key{best->path_key, best_egress};
    candidate_links.assign(best->links.begin(), best->links.end());
    candidate_links.push_back(best_egress);
    commit_send(key, origin, neighbor_as, candidate_links,
                best->pcb->timestamp(), best->pcb->expiry(), now);

    chosen_this_call.push_back(key);
    selected.push_back(Candidate{best, best_egress});
  }
  return selected;
}

void DiversityState::commit_send(const SentKey& key, topo::IsdAsId origin,
                                 topo::IsdAsId neighbor_as,
                                 std::span<const topo::LinkIndex> links,
                                 TimePoint instance_timestamp,
                                 TimePoint instance_expiry, TimePoint now) {
  LinkHistoryTable& table = history(origin, neighbor_as);
  const std::vector<topo::LinkIndex> canonical = canon(links);
  // "If a path is sent again, its corresponding timers in Sent PCBs List
  // get updated": a refresh of a still-valid sent path updates the
  // instance timers only — counters are not re-incremented and the stored
  // diversity score persists from the original send (recomputing it under
  // the since-grown counters would drive refreshed paths' scores to zero
  // and connectivity maintenance would die out after a few lifetimes).
  const auto sent_it = sent_.find(key);
  const bool counted =
      sent_it != sent_.end() && sent_it->second.instance_expiry > now;
  if (counted) {
    sent_it->second.instance_timestamp = instance_timestamp;
    sent_it->second.instance_expiry = instance_expiry;
    return;
  }

  table.add_path(canonical);
  SentRecord record;
  record.origin = origin;
  record.neighbor = neighbor_as;
  record.diversity = diversity_score(table, canonical, params_);
  record.instance_timestamp = instance_timestamp;
  record.instance_expiry = instance_expiry;
  // Canonicalized: expire() must decrement exactly what was incremented.
  record.links = canonical;
  sent_[key] = std::move(record);
}

std::vector<topo::LinkIndex> DiversityState::canon(
    std::span<const topo::LinkIndex> links) const {
  std::vector<topo::LinkIndex> out(links.begin(), links.end());
  if (canonicalizer_) {
    for (topo::LinkIndex& l : out) l = canonicalizer_(l);
  }
  return out;
}

}  // namespace scion::ctrl
