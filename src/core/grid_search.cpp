#include "core/grid_search.hpp"

#include <algorithm>

#include "analysis/path_quality.hpp"
#include "exec/task_pool.hpp"

namespace scion::ctrl {

namespace {

util::Bytes run_bytes(const topo::Topology& scion_view,
                      const BeaconingSimConfig& config) {
  BeaconingSim sim{scion_view, config};
  sim.run();
  return sim.total_bytes();
}

BeaconingSimConfig base_config(const GridSearchConfig& config) {
  BeaconingSimConfig c;
  c.server.compute_crypto = false;
  c.sim_duration = config.sim_duration;
  c.seed = config.seed;
  return c;
}

}  // namespace

EvaluatedPoint evaluate_diversity_params(const topo::Topology& scion_view,
                                         const DiversityParams& params,
                                         const GridSearchConfig& config,
                                         util::Bytes baseline_bytes) {
  BeaconingSimConfig c = base_config(config);
  c.server.algorithm = AlgorithmKind::kDiversity;
  c.server.store_policy = StorePolicy::kDiversityAware;
  c.server.diversity = params;
  BeaconingSim sim{scion_view, c};
  sim.run();

  analysis::QualityEvaluator evaluator{scion_view};
  util::Rng rng{config.seed ^ 0x6412D};
  double achieved = 0.0, optimal = 0.0;
  for (std::size_t i = 0; i < config.sampled_pairs; ++i) {
    const auto a = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    const auto b = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    if (a == b) continue;
    auto paths = sim.paths_at(a, scion_view.as_id(b));
    auto reverse = sim.paths_at(b, scion_view.as_id(a));
    paths.insert(paths.end(), reverse.begin(), reverse.end());
    achieved += evaluator.of_paths(paths, a, b);
    optimal += evaluator.optimal(a, b);
  }

  EvaluatedPoint point;
  point.params = params;
  point.quality = optimal > 0 ? achieved / optimal : 0.0;
  point.overhead =
      baseline_bytes > util::Bytes::zero()
          ? static_cast<double>(sim.total_bytes().value()) /
                static_cast<double>(baseline_bytes.value())
          : 0.0;
  point.objective = point.quality - config.overhead_weight * point.overhead;
  return point;
}

GridSearchResult grid_search_diversity_params(const topo::Topology& scion_view,
                                              const GridSearchConfig& config) {
  GridSearchResult result;

  // Baseline reference for the overhead normalization.
  BeaconingSimConfig baseline = base_config(config);
  baseline.server.algorithm = AlgorithmKind::kBaseline;
  result.baseline_bytes = run_bytes(scion_view, baseline);

  // Each point evaluation is pure (own sim, own evaluator, own rng seeded
  // from the config), so a pass fans out over all its points and then folds
  // the winner sequentially in evaluation order — the strict `>` keeps the
  // earliest-evaluated point on ties, exactly like the serial loop did.
  auto evaluate_all = [&](const std::vector<DiversityParams>& points) {
    const std::vector<EvaluatedPoint> evaluated = exec::parallel_map(
        points,
        [&](const DiversityParams& params) {
          return evaluate_diversity_params(scion_view, params, config,
                                           result.baseline_bytes);
        },
        config.jobs);
    for (const EvaluatedPoint& point : evaluated) {
      result.evaluated.push_back(point);
      if (result.evaluated.size() == 1 ||
          point.objective > result.best.objective) {
        result.best = point;
      }
    }
  };

  // Coarse pass: exponentially spaced values.
  std::vector<DiversityParams> coarse;
  for (const double alpha : config.coarse_alpha) {
    for (const double beta : config.coarse_beta) {
      for (const double gamma : config.coarse_gamma) {
        DiversityParams params;
        params.alpha = alpha;
        params.beta = beta;
        params.gamma = gamma;
        coarse.push_back(params);
      }
    }
  }
  evaluate_all(coarse);

  // Fine pass: linear steps around the coarse winner, one axis at a time.
  const DiversityParams center = result.best.params;
  std::vector<DiversityParams> fine;
  for (int step = 1; step <= config.refine_steps; ++step) {
    const double f = config.refine_fraction * step;
    for (const double direction : {-1.0, 1.0}) {
      DiversityParams p = center;
      p.alpha = std::max(0.0, center.alpha * (1.0 + direction * f));
      fine.push_back(p);
      p = center;
      p.beta = std::max(0.0, center.beta * (1.0 + direction * f));
      fine.push_back(p);
      p = center;
      p.gamma = std::max(0.0, center.gamma * (1.0 + direction * f));
      fine.push_back(p);
    }
  }
  evaluate_all(fine);
  return result;
}

}  // namespace scion::ctrl
