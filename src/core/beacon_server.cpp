#include "core/beacon_server.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

#include <algorithm>
#include <array>
#include <map>

namespace scion::ctrl {

namespace {

/// Stable identity for a would-be origin PCB leaving on a given interface:
/// lets the origin's own sends participate in the sent-PCBs suppression.
std::uint64_t origin_path_key(topo::IsdAsId origin, topo::IfId out_if) {
  crypto::Sha256 h;
  h.update("scion-mpr/origin-path-key/v1");
  h.update_u64(origin.value());
  h.update_u16(out_if.value());
  return h.finalize().prefix64();
}

}  // namespace

BeaconServer::BeaconServer(const topo::Topology& topology, topo::AsIndex self,
                           BeaconServerConfig config, crypto::KeyStore& keys,
                           std::uint64_t key_domain_seed, SendFn send)
    : topology_{topology},
      self_{self},
      self_id_{topology.as_id(self)},
      config_{config},
      keys_{keys},
      signing_key_{keys.key_for(self_id_.value())},
      forwarding_key_{
          crypto::ForwardingKey::derive(self_id_.value(), key_domain_seed)},
      send_{std::move(send)},
      store_{config.storage_limit, config.store_policy},
      backoff_rng_{util::Rng::substream(config.backoff_seed, self)} {
  SCION_CHECK(send_, "beacon server needs a send hook");
  SCION_CHECK(!config_.reorigination.enabled || config_.schedule,
              "reorigination backoff needs a schedule hook");
  if (config_.reorigination.enabled) {
    const auto& b = config_.reorigination;
    SCION_CHECK(b.base > Duration::zero() && b.max >= b.base &&
                    b.multiplier >= 1.0 && b.jitter >= 0.0 && b.jitter < 1.0,
                "reorigination backoff parameters out of range");
  }
  SCION_CHECK(config_.stale_timeout > Duration::zero(),
              "staleness timeout must be positive");
  if (config_.algorithm == AlgorithmKind::kDiversity) {
    diversity_ = std::make_unique<DiversityState>(
        config_.diversity, config_.diversity_link_canonicalizer);
  }

  // Precompute propagation groups and origination links.
  const bool core_mode = config_.mode == BeaconingMode::kCore;
  std::map<topo::AsIndex, std::vector<topo::LinkIndex>> grouped;
  if (core_mode) {
    if (topology_.is_core(self_)) {
      for (topo::LinkIndex l :
           topology_.links_of_type(self_, topo::LinkType::kCore)) {
        grouped[topology_.neighbor(l, self_)].push_back(l);
      }
    }
  } else {
    // Intra-ISD: PCBs flow uni-directionally towards customers.
    for (topo::LinkIndex l : topology_.customer_links(self_)) {
      grouped[topology_.neighbor(l, self_)].push_back(l);
    }
  }
  for (auto& [neighbor, links] : grouped) {
    propagation_groups_.push_back(
        NeighborGroup{neighbor, topology_.as_id(neighbor), std::move(links)});
  }
  if (topology_.is_core(self_)) {
    for (const NeighborGroup& g : propagation_groups_) {
      origination_links_.insert(origination_links_.end(), g.links.begin(),
                                g.links.end());
    }
    std::sort(origination_links_.begin(), origination_links_.end());
  }
}

// Once per received PCB. Writes into the caller's scratch vector, which
// keeps its capacity across PCBs — resolution itself never allocates once
// the scratch has grown to the longest path seen.
SCION_HOT_FN
bool BeaconServer::resolve_links(const Pcb& pcb, topo::LinkIndex ingress,
                                 std::vector<topo::LinkIndex>& out) const {
  out.clear();
  const auto& entries = pcb.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto as = topology_.find(entries[i].isd_as);
    if (!as) return false;
    const auto link = topology_.link_by_interface(*as, entries[i].out_if);
    if (!link) return false;
    // The link must lead to the next AS on the path (or to us for the last
    // entry), entering on the interface recorded there.
    const topo::AsIndex next_as = topology_.neighbor(*link, *as);
    const topo::IfId next_in = topology_.interface_of(*link, next_as);
    if (i + 1 < entries.size()) {
      const auto expected = topology_.find(entries[i + 1].isd_as);
      if (!expected || next_as != *expected) return false;
      if (next_in != entries[i + 1].in_if) return false;
    } else {
      if (next_as != self_ || *link != ingress) return false;
    }
    // simlint:allow(hot-alloc) — scratch capacity persists across PCBs.
    out.push_back(*link);
  }
  return true;
}

// The beaconing inner loop: every PCB the network delivers lands here.
SCION_HOT_FN
void BeaconServer::handle_pcb(const PcbRef& pcb, topo::LinkIndex ingress,
                              TimePoint now) {
  SCION_CHECK(pcb && !pcb->entries().empty(), "received PCB must be non-empty");
  ++stats_.pcbs_received;
  stats_.bytes_received += pcb->wire_size();
  SCION_METRIC_COUNT("beacon.pcbs_received", 1);

  if (pcb->expired(now)) return;
  if (pcb->contains_as(self_id_)) {
    ++stats_.loops_dropped;
    SCION_METRIC_COUNT("beacon.loops_dropped", 1);
    return;
  }
  if (config_.compute_crypto && config_.verify_signatures &&
      !pcb->verify(keys_)) {
    ++stats_.verify_failures;
    SCION_METRIC_COUNT("beacon.verify_failures", 1);
    return;
  }
  if (!resolve_links(*pcb, ingress, resolve_scratch_)) {
    ++stats_.resolve_failures;
    SCION_METRIC_COUNT("beacon.resolve_failures", 1);
    return;
  }

  // Span-based admission: the store copies the links only if it admits the
  // PCB, so the common rejected/stale case allocates nothing (the insert
  // call itself is not container growth).
  const auto outcome =
      // simlint:allow(hot-alloc)
      store_.insert(pcb, resolve_scratch_, now, pcb->path_key());
  if (outcome == BeaconStore::InsertOutcome::kRejected ||
      outcome == BeaconStore::InsertOutcome::kStale) {
    ++stats_.store_rejected;
    SCION_METRIC_COUNT("beacon.store_rejected", 1);
  }
}

void BeaconServer::on_interval(TimePoint now) {
  const std::size_t expired = store_.expire(now);
  if (expired > 0) {
    SCION_METRIC_COUNT("beacon.pcbs_expired", expired);
    SCION_TRACE(obs::Category::kBeacon, now, "expire",
                {"as", self_id_.to_string()}, {"expired", expired});
  }
  if (config_.stale_quarantine) {
    const std::size_t stale_out =
        store_.expire_stale(now, config_.stale_timeout);
    if (stale_out > 0) {
      stats_.pcbs_stale_expired += stale_out;
      SCION_METRIC_COUNT("beacon.pcbs_stale_expired", stale_out);
      SCION_TRACE(obs::Category::kBeacon, now, "stale_expire",
                  {"as", self_id_.to_string()}, {"expired", stale_out});
    }
  }
  SCION_METRIC_GAUGE_MAX("beacon.store_occupancy", store_.total_stored());
  if (diversity_) diversity_->expire(now);
  originate(now);
  propagate(now);
}

void BeaconServer::on_link_down(topo::LinkIndex link, TimePoint now) {
  if (config_.reorigination.enabled) {
    // Invalidate any pending retry for the link and mark it down so an
    // already-queued callback becomes a no-op.
    BackoffState& st = backoff_[link];
    ++st.epoch;
    st.down = true;
  }
  if (config_.stale_quarantine) {
    const std::size_t quarantined = store_.mark_link_stale(link, now);
    if (quarantined == 0) return;
    stats_.pcbs_quarantined += quarantined;
    SCION_METRIC_COUNT("beacon.pcbs_quarantined", quarantined);
    SCION_TRACE(obs::Category::kBeacon, now, "quarantine",
                {"as", self_id_.to_string()}, {"link", link},
                {"quarantined", quarantined});
    return;
  }
  const std::size_t revoked = store_.drop_link(link);
  if (revoked == 0) return;
  stats_.pcbs_revoked += revoked;
  SCION_METRIC_COUNT("beacon.pcbs_revoked", revoked);
  SCION_TRACE(obs::Category::kBeacon, now, "revoke",
              {"as", self_id_.to_string()}, {"link", link},
              {"revoked", revoked});
}

void BeaconServer::on_link_up(topo::LinkIndex link, TimePoint now) {
  if (config_.stale_quarantine) {
    const std::size_t revalidated = store_.revalidate_link(link);
    if (revalidated > 0) {
      stats_.pcbs_revalidated += revalidated;
      SCION_METRIC_COUNT("beacon.pcbs_revalidated", revalidated);
      SCION_TRACE(obs::Category::kBeacon, now, "revalidate",
                  {"as", self_id_.to_string()}, {"link", link},
                  {"revalidated", revalidated});
    }
  }
  if (config_.reorigination.enabled &&
      std::binary_search(origination_links_.begin(), origination_links_.end(),
                         link)) {
    schedule_reorigination(link, now);
  }
}

void BeaconServer::schedule_reorigination(topo::LinkIndex link, TimePoint now) {
  const auto& b = config_.reorigination;
  BackoffState& st = backoff_[link];
  st.down = false;
  // A link that stayed up long enough since its previous recovery earns a
  // fresh (fast) retry schedule; a flapping link keeps escalating.
  if (st.last_recovery != TimePoint{} &&
      now - st.last_recovery > b.stable_reset) {
    st.attempts = 0;
  }
  st.last_recovery = now;
  double scale = 1.0;
  for (std::uint32_t i = 0; i < st.attempts; ++i) scale *= b.multiplier;
  const double capped = std::min(static_cast<double>(b.base.ns()) * scale,
                                 static_cast<double>(b.max.ns()));
  // The jitter draw happens on every recovery (even with jitter == 0) so
  // the stream position is independent of the configured amplitude.
  const double jittered =
      capped * backoff_rng_.uniform(1.0 - b.jitter, 1.0 + b.jitter);
  const auto delay = Duration::nanoseconds(static_cast<std::int64_t>(jittered));
  ++st.attempts;
  const std::uint32_t epoch = st.epoch;
  SCION_TRACE(obs::Category::kBeacon, now, "reorigin_scheduled",
              {"as", self_id_.to_string()}, {"link", link},
              {"delay_ns", delay.ns()});
  config_.schedule(delay, [this, link, epoch](TimePoint fire_now) {
    const auto it = backoff_.find(link);
    if (it == backoff_.end() || it->second.epoch != epoch ||
        it->second.down) {
      return;  // link flapped again before the retry fired
    }
    ++stats_.reoriginations;
    SCION_METRIC_COUNT("beacon.reoriginations", 1);
    SCION_TRACE(obs::Category::kBeacon, fire_now, "reoriginate",
                {"as", self_id_.to_string()}, {"link", link});
    send_origin_pcb(link, fire_now);
  });
}

std::vector<PeerEntry> BeaconServer::peer_entries() const {
  std::vector<PeerEntry> peers;
  if (!config_.include_peer_entries) return peers;
  for (topo::LinkIndex l :
       topology_.links_of_type(self_, topo::LinkType::kPeer)) {
    PeerEntry p;
    p.peer_as = topology_.as_id(topology_.neighbor(l, self_));
    p.peer_if = topology_.interface_of(l, self_);
    // The peer hop MAC authorizes entering via the peer interface; chained
    // later when the entry MAC is computed.
    p.hop_mac = crypto::HopMac{};
    peers.push_back(p);
  }
  return peers;
}

void BeaconServer::send_origin_pcb(topo::LinkIndex egress, TimePoint now) {
  const topo::IfId out_if = topology_.interface_of(egress, self_);
  Pcb origin_pcb =
      config_.compute_crypto
          ? Pcb::originate(self_id_, out_if, now, config_.pcb_lifetime,
                           signing_key_, forwarding_key_)
          : Pcb::originate_unsigned(self_id_, out_if, now,
                                    config_.pcb_lifetime);
  if (config_.include_latency_metadata) origin_pcb.enable_latency_extension();
  auto pcb = std::make_shared<const Pcb>(std::move(origin_pcb));
  ++stats_.pcbs_originated;
  ++stats_.pcbs_sent;
  stats_.bytes_sent += pcb->wire_size();
  SCION_METRIC_COUNT("beacon.pcbs_originated", 1);
  SCION_METRIC_COUNT("beacon.pcbs_sent", 1);
  SCION_METRIC_OBSERVE("beacon.pcb_wire_bytes", pcb->wire_size().value());
  SCION_TRACE(obs::Category::kBeacon, now, "originate",
              {"as", self_id_.to_string()}, {"egress_if", out_if});
  send_(egress, pcb);
}

void BeaconServer::originate(TimePoint now) {
  if (!topology_.is_core(self_)) return;
  if (diversity_) {
    originate_diversity(now);
    return;
  }
  // Baseline: one fresh PCB per egress interface per interval.
  for (topo::LinkIndex l : origination_links_) send_origin_pcb(l, now);
}

void BeaconServer::originate_diversity(TimePoint now) {
  // Origination participates in the same scoring as propagation: a fresh
  // origin PCB on a link is a one-link path from self to the neighbor, and
  // its sent record suppresses redundant re-origination while the neighbor
  // still holds a valid instance.
  DiversityState& div = *diversity_;
  const DiversityParams& params = div.params();
  for (const NeighborGroup& group : propagation_groups_) {
    LinkHistoryTable& table = div.history(self_id_, group.neighbor_id);
    std::size_t sent_count = 0;
    std::vector<topo::LinkIndex> chosen;
    while (sent_count < config_.dissemination_limit) {
      topo::LinkIndex best = topo::kInvalidLinkIndex;
      double best_score = 0.0;
      for (topo::LinkIndex l : group.links) {
        if (std::find(chosen.begin(), chosen.end(), l) != chosen.end()) continue;
        const SentKey key{origin_path_key(self_id_, topology_.interface_of(l, self_)), l};
        double score = 0.0;
        // Peek at the sent list through select-independent bookkeeping: we
        // duplicate minimal logic here because origin PCBs are not stored.
        const auto& sent = div.sent();
        const auto it = sent.find(key);
        const std::array<topo::LinkIndex, 1> link_path{l};
        if (it != sent.end() && it->second.instance_expiry > now) {
          score = score_previously_sent(it->second.diversity,
                                        it->second.instance_expiry - now,
                                        config_.pcb_lifetime, params);
        } else {
          const double d = diversity_score(table, link_path, params);
          score = score_fresh(d, Duration::zero(), config_.pcb_lifetime, params);
        }
        if (score > params.score_threshold && score > best_score) {
          best = l;
          best_score = score;
        }
      }
      if (best == topo::kInvalidLinkIndex) break;
      chosen.push_back(best);
      const std::array<topo::LinkIndex, 1> link_path{best};
      div.commit_send(
          SentKey{origin_path_key(self_id_, topology_.interface_of(best, self_)),
                  best},
          self_id_, group.neighbor_id, link_path, now,
          now + config_.pcb_lifetime, now);
      send_origin_pcb(best, now);
      ++sent_count;
    }
  }
}

// Once per propagated PCB each interval. The extend + one make_shared per
// sent PCB is the message's intrinsic cost: the wire object must outlive
// this call, shared by every queued delivery.
SCION_HOT_FN
void BeaconServer::send_extended(const StoredPcb& stored,
                                 topo::LinkIndex egress, TimePoint now) {
  const topo::IfId in_if = topology_.interface_of(stored.links.back(), self_);
  const topo::IfId out_if = topology_.interface_of(egress, self_);
  std::uint32_t ingress_latency_us = 0;
  if (config_.include_latency_metadata && config_.link_latency_us) {
    ingress_latency_us = config_.link_latency_us(stored.links.back());
  }
  // The one wire-object allocation per sent PCB: the extended message must
  // outlive this call, shared by every queued delivery.
  // simlint:allow(hot-alloc)
  auto pcb = std::make_shared<const Pcb>(
      config_.compute_crypto
          ? stored.pcb->extend_signed(self_id_, in_if, out_if, peer_entries(),
                                      signing_key_, forwarding_key_,
                                      ingress_latency_us)
          : stored.pcb->extend_unsigned(self_id_, in_if, out_if,
                                        peer_entries(), ingress_latency_us));
  ++stats_.pcbs_sent;
  stats_.bytes_sent += pcb->wire_size();
  SCION_METRIC_COUNT("beacon.pcbs_sent", 1);
  SCION_METRIC_OBSERVE("beacon.pcb_wire_bytes", pcb->wire_size().value());
  // Trace fields are lazy: to_string runs only with a sink installed and
  // the category enabled, never in measured runs.
  // simlint:allow(hot-string)
  SCION_TRACE(obs::Category::kBeacon, now, "propagate",
              // simlint:allow(hot-string)
              {"as", self_id_.to_string()},
              // simlint:allow(hot-string)
              {"origin", stored.pcb->origin().to_string()},
              {"hops", pcb->hops()}, {"egress_if", out_if});
  send_(egress, pcb);
}

void BeaconServer::propagate(TimePoint now) {
  const TimePoint t = now;
  const std::vector<topo::IsdAsId> origins = store_.origins();
  for (const NeighborGroup& group : propagation_groups_) {
    for (const topo::IsdAsId origin : origins) {
      if (origin == group.neighbor_id) continue;  // one-link loop
      const std::vector<StoredPcb>& bucket = store_.for_origin(origin);
      if (bucket.empty()) continue;
      if (diversity_) {
        const std::vector<Candidate> selected = diversity_->select_and_commit(
            bucket, origin, group.neighbor_id, group.links,
            config_.dissemination_limit, t);
        for (const Candidate& c : selected) send_extended(*c.stored, c.egress, t);
      } else {
        for (topo::LinkIndex l : group.links) {
          const std::vector<Candidate> selected = baseline_select(
              bucket, group.neighbor_id, l, config_.dissemination_limit, t);
          for (const Candidate& c : selected) send_extended(*c.stored, c.egress, t);
        }
      }
    }
  }
}

}  // namespace scion::ctrl
