// The two path construction (propagation) algorithms of Section 4.2.
//
// Baseline: at every beaconing interval, for each [origin AS, egress
// interface] pair, disseminate the `limit` shortest stored PCBs, regardless
// of what was sent before. This is the algorithm the production network and
// SCIONLab run; it optimizes the same metric as BGP (AS-path length) and
// resends aggressively.
//
// Path-diversity-based (Algorithm 1): per [origin AS, neighbor AS] pair,
// greedily select up to `limit` (PCB, egress interface) combinations with
// the highest final score (scoring.hpp), stopping early when no candidate
// reaches the score threshold. Selected paths update the Link History Table
// and the Sent PCBs List, which both persist across intervals — that memory
// is what suppresses redundant retransmissions and steers selection toward
// link-disjoint paths.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "core/beacon_store.hpp"
#include "core/scoring.hpp"
#include "topology/topology.hpp"

namespace scion::ctrl {

/// Canonicalizer collapsing all parallel links between an AS pair onto one
/// representative id — turns the diversity algorithm's link-disjointness
/// into AS-pair-disjointness (ablation, Section 4.2).
LinkCanonicalizer as_pair_canonicalizer(const topo::Topology& topology);

enum class AlgorithmKind : std::uint8_t { kBaseline, kDiversity };

const char* to_string(AlgorithmKind k);

/// A (stored PCB, egress link) combination chosen for dissemination.
struct Candidate {
  const StoredPcb* stored{nullptr};
  topo::LinkIndex egress{topo::kInvalidLinkIndex};
};

/// Baseline selection for one [origin, egress interface] pair: the `limit`
/// shortest valid PCBs (ties: fresher instance first), excluding paths that
/// already contain the neighbor AS (loop prevention).
std::vector<Candidate> baseline_select(std::span<const StoredPcb> bucket,
                                       topo::IsdAsId neighbor_as,
                                       topo::LinkIndex egress,
                                       std::size_t limit, TimePoint now);

/// Mutable state of the diversity algorithm in one beacon server: the Link
/// History Tables (per [origin, neighbor]) and the Sent PCBs Lists (per
/// egress interface, flattened into one map keyed by path+egress).
class DiversityState {
 public:
  explicit DiversityState(DiversityParams params,
                          LinkCanonicalizer canonicalizer = {})
      : params_{params}, canonicalizer_{std::move(canonicalizer)} {}

  const DiversityParams& params() const { return params_; }

  /// Purges sent records whose sent instance expired and rolls their links
  /// out of the history tables ("valid paths" only, Section 4.2).
  void expire(TimePoint now);

  /// Algorithm 1 for one [origin, neighbor] pair. Returns the selected
  /// combinations (at most `limit`) and commits them: link counters are
  /// incremented and sent records written, affecting later iterations and
  /// intervals. `egress_links` are the parallel links towards the neighbor.
  std::vector<Candidate> select_and_commit(
      std::span<const StoredPcb> bucket, topo::IsdAsId origin,
      topo::IsdAsId neighbor_as,
      std::span<const topo::LinkIndex> egress_links, std::size_t limit,
      TimePoint now);

  /// Records a send outside select_and_commit (used for origin PCBs, which
  /// are not in the beacon store): increments the link counters unless this
  /// path+egress is still counted from a valid earlier send, then writes
  /// the sent record with the post-increment diversity score.
  void commit_send(const SentKey& key, topo::IsdAsId origin,
                   topo::IsdAsId neighbor_as,
                   std::span<const topo::LinkIndex> links,
                   TimePoint instance_timestamp, TimePoint instance_expiry,
                   TimePoint now);

  /// Number of score evaluations performed so far (processing-cost metric).
  std::uint64_t evaluations() const { return evaluations_; }

  /// Candidates whose score fell below the threshold (suppression metric).
  std::uint64_t suppressed() const { return suppressed_; }

  const SentPcbsList& sent() const { return sent_; }

  /// The Link History Table for a pair (creating it on first use).
  LinkHistoryTable& history(topo::IsdAsId origin, topo::IsdAsId neighbor_as);

 private:
  struct PairKey {
    std::uint64_t origin;
    std::uint64_t neighbor;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      return static_cast<std::size_t>(
          (k.origin * 0x9E3779B97F4A7C15ULL) ^ (k.neighbor + 0x7F4A7C15ULL));
    }
  };

  /// Applies the canonicalizer (identity when unset).
  std::vector<topo::LinkIndex> canon(
      std::span<const topo::LinkIndex> links) const;

  DiversityParams params_;
  LinkCanonicalizer canonicalizer_;
  std::unordered_map<PairKey, LinkHistoryTable, PairKeyHash> history_;
  SentPcbsList sent_;
  std::uint64_t evaluations_{0};
  std::uint64_t suppressed_{0};
};

}  // namespace scion::ctrl
