#include "core/beaconing_sim.hpp"

#include "obs/event_profile.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"


#include "crypto/signature.hpp"

namespace scion::ctrl {

namespace {

/// One key store shared by all servers of a simulation (stands in for the
/// ISD trust infrastructure).
constexpr std::uint64_t kKeyDomainSeed = crypto::kDefaultKeyDomainSeed;

// Event-cost attribution labels (interned once at static init; see
// DESIGN.md's event-labeling recipe).
const obs::EventLabel kPropagateLabel = obs::event_label("beacon.propagate");
const obs::EventLabel kIntervalLabel = obs::event_label("beacon.interval");
const obs::EventLabel kReoriginLabel = obs::event_label("beacon.reorigin");

/// Folded into the sim seed for the reorigination jitter streams, so they
/// are decorrelated from every other use of the seed without consuming the
/// constructor RNG (which would shift all existing baselines).
constexpr std::uint64_t kReoriginSeedMix = 0xB5297A4D3C5B9BD5ULL;

}  // namespace

BeaconingSim::BeaconingSim(const topo::Topology& topology,
                           BeaconingSimConfig config)
    : topology_{topology}, config_{config}, net_{sim_} {
  util::Rng rng{config_.seed};

  // Nodes and channels. Nodes are created in AS-index order and channels in
  // link order, so node_of()/channel_of() are identity mappings; the asserts
  // below pin that invariant.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    const sim::NodeId node = net_.add_node(topology_.as_id(i).to_string());
    SCION_CHECK(node == node_of(i), "node ids must mirror AS indices");
    (void)node;
  }
  for (topo::LinkIndex l = 0; l < topology_.link_count(); ++l) {
    const topo::Link& link = topology_.link(l);
    const auto latency = util::Duration::nanoseconds(rng.uniform_int(
        config_.min_latency.ns(), config_.max_latency.ns()));
    const sim::ChannelId ch =
        net_.add_channel(node_of(link.a), node_of(link.b), latency);
    SCION_CHECK(ch == channel_of(l), "channel ids must mirror link indices");
    (void)ch;
  }

  // Servers. The key store must outlive the servers; keep it static per
  // simulation via a shared_ptr captured by the send lambdas' owner.
  keys_ = std::make_unique<crypto::KeyStore>(kKeyDomainSeed);
  BeaconServerConfig server_config = config_.server;
  if (!server_config.schedule) {
    server_config.schedule = [this](util::Duration delay,
                                    std::function<void(TimePoint)> fn) {
      sim_.schedule_after(delay, kReoriginLabel,
                          [this, fn = std::move(fn)] { fn(sim_.now()); });
    };
  }
  if (server_config.backoff_seed == 0) {
    server_config.backoff_seed = config_.seed ^ kReoriginSeedMix;
  }
  if (server_config.include_latency_metadata && !server_config.link_latency_us) {
    // Each AS "measures" its links: expose the simulated channel latency.
    server_config.link_latency_us = [this](topo::LinkIndex l) {
      return static_cast<std::uint32_t>(net_.latency(channel_of(l)).ns() / 1000);
    };
  }
  servers_.reserve(topology_.as_count());
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    auto send = [this, i](topo::LinkIndex egress, const PcbRef& pcb) {
      net_.send(channel_of(egress), node_of(i), pcb->wire_size(), pcb,
                kPropagateLabel);
    };
    servers_.push_back(std::make_unique<BeaconServer>(
        topology_, i, server_config, *keys_, kKeyDomainSeed, std::move(send)));
  }

  // Delivery: the channel id is the ingress link.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    net_.set_handler(node_of(i), [this, i](const sim::Message& msg) {
      SCION_HOT_PATH_BEGIN(beaconing_delivery);
      const PcbRef& pcb = msg.payload.get<PcbRef>();
      servers_[i]->handle_pcb(pcb, link_of(msg.channel), sim_.now());
      SCION_HOT_PATH_END();
    });
  }

  // Periodic intervals with deterministic per-AS phase offsets, so the
  // network does not beacon in lock-step.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    const auto offset = util::Duration::nanoseconds(
        rng.uniform_int(0, config_.server.interval.ns() - 1));
    sim_.schedule_periodic(
        util::TimePoint::origin() + offset, config_.server.interval,
        kIntervalLabel, [this, i] { servers_[i]->on_interval(sim_.now()); });
  }

  // Fault scenario: a downed link stops carrying PCBs (the network drops
  // them) and both endpoint ASes evict every stored PCB that traverses it,
  // standing in for the SCMP revocation flood of Section 2.2.
  if (!config_.faults.empty()) {
    faults::FaultInjector::Hooks hooks;
    hooks.on_link_down = [this](topo::LinkIndex l) {
      const topo::Link& link = topology_.link(l);
      servers_[link.a]->on_link_down(l, sim_.now());
      servers_[link.b]->on_link_down(l, sim_.now());
    };
    hooks.on_link_up = [this](topo::LinkIndex l) {
      const topo::Link& link = topology_.link(l);
      servers_[link.a]->on_link_up(l, sim_.now());
      servers_[link.b]->on_link_up(l, sim_.now());
    };
    injector_ = std::make_unique<faults::FaultInjector>(
        net_, config_.faults, &topology_, std::move(hooks));
  }
}

void BeaconingSim::run() {
  SCION_CHECK(!ran_, "run() is single-shot");
  ran_ = true;
  if (config_.warmup > util::Duration::zero()) {
    sim_.run_until(util::TimePoint::origin() + config_.warmup);
    net_.reset_stats();
    for (const auto& server : servers_) server->reset_stats();
  }
  const util::TimePoint end =
      util::TimePoint::origin() + config_.warmup + config_.sim_duration;
  if (injector_) injector_->arm(end);
  sim_.run_until(end);
  SCION_METRIC_GAUGE_MAX("beacon.total_pcbs_sent", total_pcbs_sent());
}

std::vector<InterfaceUsage> BeaconingSim::interface_usage() const {
  std::vector<InterfaceUsage> out;
  out.reserve(2 * topology_.link_count());
  for (topo::LinkIndex l = 0; l < topology_.link_count(); ++l) {
    const topo::Link& link = topology_.link(l);
    for (const topo::AsIndex from : {link.a, link.b}) {
      const sim::DirectionStats& s = net_.stats_from(channel_of(l), node_of(from));
      out.push_back(InterfaceUsage{l, from, s.messages, s.bytes});
    }
  }
  return out;
}

std::uint64_t BeaconingSim::total_pcbs_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s->stats().pcbs_sent;
  return n;
}

BeaconServerStats BeaconingSim::aggregate_stats() const {
  BeaconServerStats agg;
  for (const auto& s : servers_) {
    const BeaconServerStats& st = s->stats();
    agg.pcbs_received += st.pcbs_received;
    agg.bytes_received += st.bytes_received;
    agg.pcbs_sent += st.pcbs_sent;
    agg.bytes_sent += st.bytes_sent;
    agg.pcbs_originated += st.pcbs_originated;
    agg.loops_dropped += st.loops_dropped;
    agg.verify_failures += st.verify_failures;
    agg.resolve_failures += st.resolve_failures;
    agg.store_rejected += st.store_rejected;
    agg.pcbs_revoked += st.pcbs_revoked;
    agg.pcbs_quarantined += st.pcbs_quarantined;
    agg.pcbs_revalidated += st.pcbs_revalidated;
    agg.pcbs_stale_expired += st.pcbs_stale_expired;
    agg.reoriginations += st.reoriginations;
  }
  return agg;
}

std::vector<std::vector<topo::LinkIndex>> BeaconingSim::paths_at(
    topo::AsIndex at, topo::IsdAsId origin) const {
  std::vector<std::vector<topo::LinkIndex>> out;
  for (const StoredPcb& s : servers_[at]->store().for_origin(origin)) {
    if (s.stale()) continue;  // quarantined: not a usable path right now
    out.push_back(s.links);
  }
  return out;
}

}  // namespace scion::ctrl
