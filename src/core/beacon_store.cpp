#include "core/beacon_store.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace scion::ctrl {

namespace {

/// Baseline ordering used to pick eviction victims: longer paths are worse,
/// ties broken towards earlier expiry.
bool shortest_fresh_better(const StoredPcb& x, const StoredPcb& y) {
  if (x.pcb->hops() != y.pcb->hops()) return x.pcb->hops() < y.pcb->hops();
  return x.pcb->expiry() > y.pcb->expiry();
}

/// Redundancy of a candidate path against the bucket coverage counts.
double redundancy(const StoredPcb& entry,
                  const std::unordered_map<topo::LinkIndex, int>& coverage) {
  if (entry.links.empty()) return 0.0;
  double sum = 0.0;
  for (topo::LinkIndex l : entry.links) {
    const auto it = coverage.find(l);
    sum += it == coverage.end() ? 0.0 : static_cast<double>(it->second);
  }
  return sum / static_cast<double>(entry.links.size());
}

}  // namespace

BeaconStore::InsertOutcome BeaconStore::insert(StoredPcb entry) {
  SCION_CHECK(entry.pcb && !entry.pcb->entries().empty(),
              "stored PCB must be non-empty");
  SCION_CHECK(entry.links.size() == entry.pcb->hops(),
              "resolved link sequence must cover every hop");
  auto& bucket = buckets_[entry.pcb->origin()];

  // Same path already stored? Keep the newest instance only.
  for (StoredPcb& existing : bucket) {
    if (existing.path_key == entry.path_key) {
      if (entry.pcb->timestamp() > existing.pcb->timestamp()) {
        existing = std::move(entry);
        return InsertOutcome::kRefreshed;
      }
      return InsertOutcome::kStale;
    }
  }

  if (limit_ == 0 || bucket.size() < limit_) {
    bucket.push_back(std::move(entry));
    SCION_DCHECK(limit_ == 0 || bucket.size() <= limit_,
                 "bucket grew past the per-origin storage limit");
    return InsertOutcome::kInserted;
  }
  SCION_DCHECK(bucket.size() == limit_,
               "a full bucket must hold exactly the storage limit");

  bool candidate_wins = false;
  const std::size_t victim = pick_victim(bucket, entry, candidate_wins);
  if (!candidate_wins) return InsertOutcome::kRejected;
  bucket[victim] = std::move(entry);
  return InsertOutcome::kReplaced;
}

std::size_t BeaconStore::pick_victim(const std::vector<StoredPcb>& bucket,
                                     const StoredPcb& candidate,
                                     bool& candidate_wins) const {
  SCION_CHECK(!bucket.empty(), "victim selection needs a non-empty bucket");
  // Replacement requires a *strictly better path*. Freshness must not break
  // ties between different paths: fresh instances arrive every beaconing
  // interval, and letting them rotate equal-quality paths through a full
  // bucket manufactures endless "never sent before" paths downstream,
  // defeating the diversity algorithm's retransmission suppression (fresh
  // instances of an already-stored path are handled by kRefreshed above).
  if (policy_ == StorePolicy::kShortestFresh) {
    // Victim = the longest stored path.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (shortest_fresh_better(bucket[worst], bucket[i])) worst = i;
    }
    candidate_wins = candidate.pcb->hops() < bucket[worst].pcb->hops();
    return worst;
  }

  // kDiversityAware: coverage of each link across the bucket.
  std::unordered_map<topo::LinkIndex, int> coverage;
  for (const StoredPcb& e : bucket) {
    for (topo::LinkIndex l : e.links) ++coverage[l];
  }
  std::size_t worst = 0;
  double worst_red = -1.0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    // Exclude the entry's own contribution arithmetically: it adds exactly
    // one to each of its links' coverage counts.
    double sum = 0.0;
    for (topo::LinkIndex l : bucket[i].links) {
      sum += static_cast<double>(coverage.at(l) - 1);
    }
    const double red =
        bucket[i].links.empty()
            ? 0.0
            : sum / static_cast<double>(bucket[i].links.size());
    if (red > worst_red ||
        (red == worst_red && shortest_fresh_better(bucket[worst], bucket[i]))) {
      worst_red = red;
      worst = i;
    }
  }
  const double cand_red = redundancy(candidate, coverage);
  candidate_wins = cand_red < worst_red;  // strictly more diverse only
  return worst;
}

std::size_t BeaconStore::expire(TimePoint now) {
  std::size_t expired = 0;
  // Erase-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    expired += std::erase_if(
        bucket, [now](const StoredPcb& e) { return e.pcb->expired(now); });
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::size_t BeaconStore::drop_link(topo::LinkIndex link) {
  std::size_t dropped = 0;
  // Erase-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    dropped += std::erase_if(bucket, [link](const StoredPcb& e) {
      return std::find(e.links.begin(), e.links.end(), link) != e.links.end();
    });
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

const std::vector<StoredPcb>& BeaconStore::for_origin(IsdAsId origin) const {
  static const std::vector<StoredPcb> kEmpty;
  const auto it = buckets_.find(origin);
  return it == buckets_.end() ? kEmpty : it->second;
}

std::vector<IsdAsId> BeaconStore::origins() const {
  std::vector<IsdAsId> out;
  out.reserve(buckets_.size());
  // Collection order is erased by the sort below. simlint:allow(unordered-iter)
  for (const auto& [origin, bucket] : buckets_) {
    if (!bucket.empty()) out.push_back(origin);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t BeaconStore::total_stored() const {
  std::size_t n = 0;
  // Commutative integer sum. simlint:allow(unordered-iter)
  for (const auto& [origin, bucket] : buckets_) n += bucket.size();
  return n;
}

}  // namespace scion::ctrl
