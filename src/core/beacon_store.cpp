#include "core/beacon_store.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace scion::ctrl {

namespace {

/// Baseline ordering used to pick eviction victims: longer paths are worse,
/// ties broken towards earlier expiry.
bool shortest_fresh_better(const StoredPcb& x, const StoredPcb& y) {
  if (x.pcb->hops() != y.pcb->hops()) return x.pcb->hops() < y.pcb->hops();
  return x.pcb->expiry() > y.pcb->expiry();
}

/// Coverage count of one link in the scratch table (0 when absent).
int coverage_of(const std::vector<std::pair<topo::LinkIndex, int>>& coverage,
                topo::LinkIndex l) {
  for (const auto& [link, n] : coverage) {
    if (link == l) return n;
  }
  return 0;
}

/// Redundancy of a candidate path against the bucket coverage counts.
double redundancy(std::span<const topo::LinkIndex> links,
                  const std::vector<std::pair<topo::LinkIndex, int>>& coverage) {
  if (links.empty()) return 0.0;
  double sum = 0.0;
  for (topo::LinkIndex l : links) {
    sum += static_cast<double>(coverage_of(coverage, l));
  }
  return sum / static_cast<double>(links.size());
}

}  // namespace

BeaconStore::InsertOutcome BeaconStore::insert(StoredPcb entry) {
  return insert(entry.pcb, entry.links, entry.received_at, entry.path_key);
}

// Once per received PCB that survives verification. Only an admitted
// candidate may allocate (its link vector); the reject/stale paths are
// allocation-free.
SCION_HOT_FN
BeaconStore::InsertOutcome BeaconStore::insert(
    const PcbRef& pcb, std::span<const topo::LinkIndex> links,
    TimePoint received_at, std::uint64_t path_key) {
  SCION_CHECK(pcb && !pcb->entries().empty(), "stored PCB must be non-empty");
  SCION_CHECK(links.size() == pcb->hops(),
              "resolved link sequence must cover every hop");
  // The bucket map is the store itself, one lookup per received PCB.
  // simlint:allow(hot-map-lookup) simlint:allow(hot-alloc)
  auto& bucket = buckets_[pcb->origin()];

  // Same path already stored? Keep the newest instance only. Same path key
  // means the same link sequence, so the slot's vector is reused as-is.
  for (StoredPcb& existing : bucket) {
    if (existing.path_key == path_key) {
      if (pcb->timestamp() > existing.pcb->timestamp()) {
        existing.pcb = pcb;
        existing.received_at = received_at;
        return InsertOutcome::kRefreshed;
      }
      return InsertOutcome::kStale;
    }
  }

  if (limit_ == 0 || bucket.size() < limit_) {
    // Admitted: this copy is the entry's one link-vector allocation.
    // simlint:allow(hot-alloc)
    bucket.push_back(StoredPcb{pcb,
                               {links.begin(), links.end()},
                               received_at, path_key});
    SCION_DCHECK(limit_ == 0 || bucket.size() <= limit_,
                 "bucket grew past the per-origin storage limit");
    return InsertOutcome::kInserted;
  }
  SCION_DCHECK(bucket.size() == limit_,
               "a full bucket must hold exactly the storage limit");

  bool candidate_wins = false;
  const std::size_t victim = pick_victim(bucket, pcb, links, candidate_wins);
  if (!candidate_wins) return InsertOutcome::kRejected;
  StoredPcb& slot = bucket[victim];
  slot.pcb = pcb;
  // simlint:allow(hot-alloc) — assign reuses the victim's capacity.
  slot.links.assign(links.begin(), links.end());
  slot.received_at = received_at;
  slot.path_key = path_key;
  // The victim's quarantine state dies with it; the new path is admitted
  // fresh (a PCB can only arrive over a live path).
  slot.stale_links = 0;
  slot.stale_since = TimePoint{};
  return InsertOutcome::kReplaced;
}

// Runs whenever a PCB hits a full bucket — the steady state of every
// long simulation.
SCION_HOT_FN
std::size_t BeaconStore::pick_victim(const std::vector<StoredPcb>& bucket,
                                     const PcbRef& candidate,
                                     std::span<const topo::LinkIndex> candidate_links,
                                     bool& candidate_wins) const {
  SCION_CHECK(!bucket.empty(), "victim selection needs a non-empty bucket");
  // Replacement requires a *strictly better path*. Freshness must not break
  // ties between different paths: fresh instances arrive every beaconing
  // interval, and letting them rotate equal-quality paths through a full
  // bucket manufactures endless "never sent before" paths downstream,
  // defeating the diversity algorithm's retransmission suppression (fresh
  // instances of an already-stored path are handled by kRefreshed above).
  if (policy_ == StorePolicy::kShortestFresh) {
    // Victim = the longest stored path.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (shortest_fresh_better(bucket[worst], bucket[i])) worst = i;
    }
    candidate_wins = candidate->hops() < bucket[worst].pcb->hops();
    return worst;
  }

  // kDiversityAware: coverage of each link across the bucket, tallied in
  // the reused scratch table (allocation-free once warm).
  coverage_scratch_.clear();
  for (const StoredPcb& e : bucket) {
    for (topo::LinkIndex l : e.links) {
      bool found = false;
      for (auto& [link, n] : coverage_scratch_) {
        if (link == l) {
          ++n;
          found = true;
          break;
        }
      }
      // simlint:allow(hot-alloc) — capacity is retained across calls.
      if (!found) coverage_scratch_.emplace_back(l, 1);
    }
  }
  std::size_t worst = 0;
  double worst_red = -1.0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    // Exclude the entry's own contribution arithmetically: it adds exactly
    // one to each of its links' coverage counts.
    double sum = 0.0;
    for (topo::LinkIndex l : bucket[i].links) {
      sum += static_cast<double>(coverage_of(coverage_scratch_, l) - 1);
    }
    const double red =
        bucket[i].links.empty()
            ? 0.0
            : sum / static_cast<double>(bucket[i].links.size());
    if (red > worst_red ||
        (red == worst_red && shortest_fresh_better(bucket[worst], bucket[i]))) {
      worst_red = red;
      worst = i;
    }
  }
  const double cand_red = redundancy(candidate_links, coverage_scratch_);
  candidate_wins = cand_red < worst_red;  // strictly more diverse only
  return worst;
}

std::size_t BeaconStore::expire(TimePoint now) {
  std::size_t expired = 0;
  // Erase-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    expired += std::erase_if(
        bucket, [now](const StoredPcb& e) { return e.pcb->expired(now); });
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::size_t BeaconStore::drop_link(topo::LinkIndex link) {
  std::size_t dropped = 0;
  // Erase-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    dropped += std::erase_if(bucket, [link](const StoredPcb& e) {
      return std::find(e.links.begin(), e.links.end(), link) != e.links.end();
    });
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t BeaconStore::mark_link_stale(topo::LinkIndex link, TimePoint now) {
  std::size_t quarantined = 0;
  // Count-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto& [origin, bucket] : buckets_) {
    for (StoredPcb& e : bucket) {
      const auto hits = static_cast<std::uint16_t>(
          std::count(e.links.begin(), e.links.end(), link));
      if (hits == 0) continue;
      if (e.stale_links == 0) {
        e.stale_since = now;
        ++quarantined;
      }
      e.stale_links = static_cast<std::uint16_t>(e.stale_links + hits);
    }
  }
  return quarantined;
}

std::size_t BeaconStore::revalidate_link(topo::LinkIndex link) {
  std::size_t revalidated = 0;
  // Count-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto& [origin, bucket] : buckets_) {
    for (StoredPcb& e : bucket) {
      const auto hits = static_cast<std::uint16_t>(
          std::count(e.links.begin(), e.links.end(), link));
      if (hits == 0 || e.stale_links == 0) continue;
      // Saturating: an entry admitted mid-outage starts fresh, so the
      // restore may release more holds than were ever taken on it.
      e.stale_links =
          e.stale_links > hits
              ? static_cast<std::uint16_t>(e.stale_links - hits)
              : std::uint16_t{0};
      if (e.stale_links == 0) {
        e.stale_since = TimePoint{};
        ++revalidated;
      }
    }
  }
  return revalidated;
}

std::size_t BeaconStore::expire_stale(TimePoint now, Duration timeout) {
  std::size_t expired = 0;
  // Erase-only sweep; no cross-bucket state, order-insensitive (the count
  // is a pure function of the multiset of entries).
  // simlint:allow(unordered-iter)
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    expired += std::erase_if(bucket, [now, timeout](const StoredPcb& e) {
      return e.stale() && now - e.stale_since > timeout;
    });
    if (bucket.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

const std::vector<StoredPcb>& BeaconStore::for_origin(IsdAsId origin) const {
  static const std::vector<StoredPcb> kEmpty;
  const auto it = buckets_.find(origin);
  return it == buckets_.end() ? kEmpty : it->second;
}

std::vector<IsdAsId> BeaconStore::origins() const {
  std::vector<IsdAsId> out;
  out.reserve(buckets_.size());
  // Collection order is erased by the sort below. simlint:allow(unordered-iter)
  for (const auto& [origin, bucket] : buckets_) {
    if (!bucket.empty()) out.push_back(origin);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t BeaconStore::total_stored() const {
  std::size_t n = 0;
  // Commutative integer sum. simlint:allow(unordered-iter)
  for (const auto& [origin, bucket] : buckets_) n += bucket.size();
  return n;
}

}  // namespace scion::ctrl
