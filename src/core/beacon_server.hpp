// The beacon server of one AS's Control Service (Section 2.2).
//
// Every beaconing interval the server (1) expires stale state, (2) if it is
// a core AS, originates fresh PCBs, and (3) selects received PCBs to
// propagate using the configured path construction algorithm. Incoming PCBs
// are loop-checked, signature-verified, resolved against the topology, and
// inserted into the beacon store.
//
// The server is deliberately decoupled from the event-driven network: it
// emits PCBs through a send callback and is driven by on_interval() /
// handle_pcb(), so unit tests can drive it directly and the simulator wires
// it to channels.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/algorithms.hpp"
#include "core/beacon_store.hpp"
#include "crypto/hopfield_mac.hpp"
#include "crypto/signature.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace scion::ctrl {

/// Which level of the routing hierarchy the server participates in
/// (Section 2.2): selective flooding among core ASes, or uni-directional
/// provider-to-customer dissemination inside an ISD.
enum class BeaconingMode : std::uint8_t { kCore, kIntraIsd };

struct BeaconServerConfig {
  AlgorithmKind algorithm{AlgorithmKind::kBaseline};
  BeaconingMode mode{BeaconingMode::kCore};
  /// Beaconing interval (paper: 10 minutes).
  util::Duration interval{util::Duration::minutes(10)};
  /// PCB validity period set by the origin (paper: 6 hours).
  util::Duration pcb_lifetime{util::Duration::hours(6)};
  /// Max PCBs per origin AS per interval: per egress interface for the
  /// baseline, per neighbor AS for the diversity algorithm (Section 5.1).
  std::size_t dissemination_limit{5};
  /// Max PCBs per origin AS in the store; 0 = unlimited (Section 5.1).
  std::size_t storage_limit{60};
  StorePolicy store_policy{StorePolicy::kShortestFresh};
  DiversityParams diversity{};
  /// Optional link remapping for the diversity algorithm's history tables
  /// (see LinkCanonicalizer; used by the AS-disjointness ablation).
  LinkCanonicalizer diversity_link_canonicalizer{};
  /// Latency metadata extension: carry per-entry ingress-link latency in
  /// PCBs (adds kLatencyMetadataBytes per entry on the wire). Requires
  /// link_latency_us.
  bool include_latency_metadata{false};
  /// Measured latency of a link in microseconds (the AS's own monitoring
  /// of its inter-domain links); wired by the simulation.
  std::function<std::uint32_t(topo::LinkIndex)> link_latency_us{};
  /// Advertise this AS's peering links inside propagated PCBs (intra-ISD
  /// beaconing; enables data-plane peering shortcuts).
  bool include_peer_entries{false};
  /// Verify the full signature chain of received PCBs.
  bool verify_signatures{true};
  /// Compute real signatures/MACs on sent PCBs. Disable for large-scale
  /// overhead simulations: wire sizes are identical (the fields are still
  /// carried, zeroed), but signing/verification CPU cost is avoided.
  /// Implies verify_signatures = false.
  bool compute_crypto{true};
  /// Staleness-aware revalidation: on_link_down quarantines stored PCBs
  /// riding the link instead of evicting them, on_link_up releases the
  /// quarantine, and entries continuously stale for longer than
  /// `stale_timeout` are evicted each interval. A short flap then costs no
  /// store rebuild. Default off: revocation evicts, as before.
  bool stale_quarantine{false};
  util::Duration stale_timeout{util::Duration::minutes(30)};
  /// Beacon re-origination retry on interface recovery (core ASes only):
  /// instead of waiting for the next interval, the origin re-beacons on the
  /// recovered link after an exponential-backoff delay, so one recovery is
  /// fast but a flapping interface does not amplify control traffic.
  struct ReoriginationBackoff {
    bool enabled{false};
    /// First-retry delay; doubles (times `multiplier`) per recent recovery.
    util::Duration base{util::Duration::seconds(5)};
    double multiplier{2.0};
    util::Duration max{util::Duration::minutes(10)};
    /// Multiplicative jitter amplitude: delay *= U[1-jitter, 1+jitter].
    double jitter{0.1};
    /// A link stable for this long gets its attempt counter reset.
    util::Duration stable_reset{util::Duration::minutes(10)};
  };
  ReoriginationBackoff reorigination{};
  /// Schedules `fn` to run after `delay`; the callback receives the fire
  /// time (the server keeps no clock). Wired by the simulation; required
  /// when reorigination.enabled.
  std::function<void(util::Duration, std::function<void(TimePoint)>)>
      schedule{};
  /// Seed for the re-origination jitter stream (folded with the AS index,
  /// so every server draws independently of the others).
  std::uint64_t backoff_seed{0};
};

struct BeaconServerStats {
  std::uint64_t pcbs_received{0};
  util::Bytes bytes_received{};
  std::uint64_t pcbs_sent{0};
  util::Bytes bytes_sent{};
  std::uint64_t pcbs_originated{0};
  std::uint64_t loops_dropped{0};
  std::uint64_t verify_failures{0};
  std::uint64_t resolve_failures{0};
  std::uint64_t store_rejected{0};
  /// Stored PCBs evicted because a link they traverse was revoked.
  std::uint64_t pcbs_revoked{0};
  /// Stored PCBs quarantined (fresh -> stale) by link failures.
  std::uint64_t pcbs_quarantined{0};
  /// Quarantined PCBs that became fully fresh again on link recovery.
  std::uint64_t pcbs_revalidated{0};
  /// Quarantined PCBs evicted after exceeding the staleness timeout.
  std::uint64_t pcbs_stale_expired{0};
  /// Backoff-scheduled re-originations actually sent.
  std::uint64_t reoriginations{0};
};

class BeaconServer {
 public:
  /// Sends a PCB out of `egress` (a link this AS is an endpoint of).
  using SendFn = std::function<void(topo::LinkIndex egress, const PcbRef&)>;

  BeaconServer(const topo::Topology& topology, topo::AsIndex self,
               BeaconServerConfig config, crypto::KeyStore& keys,
               std::uint64_t key_domain_seed, SendFn send);

  /// Ingests a PCB received on `ingress` at time `now`.
  void handle_pcb(const PcbRef& pcb, topo::LinkIndex ingress, TimePoint now);

  /// Runs one beaconing interval at time `now`.
  void on_interval(TimePoint now);

  /// Reacts to `link` going down (this AS saw an interface fail, or an
  /// SCMP revocation for it arrived): every stored PCB traversing the link
  /// is evicted so it is neither registered nor propagated further, and the
  /// diversity history no longer credits it. With stale_quarantine on, the
  /// PCBs are quarantined instead of evicted.
  void on_link_down(topo::LinkIndex link, TimePoint now);

  /// Reacts to `link` recovering: releases the staleness quarantine (when
  /// enabled) and, for a core AS with reorigination backoff enabled,
  /// schedules a retried origin PCB on the link after the backoff delay.
  void on_link_up(topo::LinkIndex link, TimePoint now);

  topo::AsIndex self() const { return self_; }
  topo::IsdAsId self_id() const { return self_id_; }
  const BeaconStore& store() const { return store_; }
  BeaconStore& mutable_store() { return store_; }
  const BeaconServerStats& stats() const { return stats_; }

  /// Zeroes the counters (used to exclude a warm-up phase from accounting).
  void reset_stats() { stats_ = BeaconServerStats{}; }

  /// Diversity-algorithm state; null when running the baseline.
  const DiversityState* diversity_state() const { return diversity_.get(); }

 private:
  /// Links this server propagates on, grouped per neighbor AS.
  struct NeighborGroup {
    topo::AsIndex neighbor;
    topo::IsdAsId neighbor_id;
    std::vector<topo::LinkIndex> links;
  };

  /// Per-link reorigination backoff state. `epoch` invalidates scheduled
  /// retries when the link goes down again before they fire.
  struct BackoffState {
    std::uint32_t attempts{0};
    std::uint32_t epoch{0};
    bool down{false};
    TimePoint last_recovery{};
  };

  void originate(TimePoint now);
  void originate_diversity(TimePoint now);
  void schedule_reorigination(topo::LinkIndex link, TimePoint now);
  void propagate(TimePoint now);
  void send_extended(const StoredPcb& stored, topo::LinkIndex egress,
                     TimePoint now);
  void send_origin_pcb(topo::LinkIndex egress, TimePoint now);
  std::vector<PeerEntry> peer_entries() const;

  /// Resolves a PCB's entry chain to topology links into `out` (cleared
  /// first); false on mismatch. Callers pass a reused scratch vector so a
  /// rejected PCB costs no allocation.
  bool resolve_links(const Pcb& pcb, topo::LinkIndex ingress,
                     std::vector<topo::LinkIndex>& out) const;

  const topo::Topology& topology_;
  topo::AsIndex self_;
  topo::IsdAsId self_id_;
  BeaconServerConfig config_;
  crypto::KeyStore& keys_;
  crypto::SigningKey signing_key_;
  crypto::ForwardingKey forwarding_key_;
  SendFn send_;
  BeaconStore store_;
  std::unique_ptr<DiversityState> diversity_;
  std::vector<NeighborGroup> propagation_groups_;
  std::vector<topo::LinkIndex> origination_links_;
  BeaconServerStats stats_;
  /// Reused by handle_pcb() for link resolution (capacity persists).
  std::vector<topo::LinkIndex> resolve_scratch_;
  /// Jitter stream for reorigination backoff; a pure function of
  /// (backoff_seed, self), so runs are deterministic under any scheduling.
  util::Rng backoff_rng_;
  /// Ordered so no behavior ever depends on hash iteration (lookups only).
  std::map<topo::LinkIndex, BackoffState> backoff_;
};

}  // namespace scion::ctrl
