// Per-AS beacon database.
//
// The store keeps, for every origin AS, up to `per_origin_limit` valid PCBs
// (the paper's "PCB storage limit", varied between 15/30/60/unlimited in the
// evaluation). Two replacement policies are provided:
//  - kShortestFresh: keep the shortest paths, break ties by freshness. This
//    matches the baseline path construction algorithm's preference.
//  - kDiversityAware: evict the entry whose links are most redundant with
//    the rest of the bucket, so storage pressure does not destroy the very
//    diversity the propagation algorithm tries to build (ablation axis).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/pcb.hpp"
#include "topology/ids.hpp"

namespace scion::ctrl {

/// A PCB at rest, with its inter-AS link sequence resolved against the
/// topology (one LinkIndex per AS entry: the link that entry's out_if sent
/// the PCB over; the last one is the link it reached us on).
struct StoredPcb {
  PcbRef pcb;
  std::vector<topo::LinkIndex> links;
  TimePoint received_at;
  std::uint64_t path_key{0};
  /// Staleness quarantine: how many of this entry's links are currently
  /// down (maintained by mark_link_stale / revalidate_link), and when the
  /// entry first went stale. Stale entries are skipped by selection and
  /// path resolution but stay stored, so a short link flap does not thrash
  /// the store; expire_stale() evicts long-stale entries.
  std::uint16_t stale_links{0};
  TimePoint stale_since{};

  bool stale() const { return stale_links > 0; }
};

enum class StorePolicy : std::uint8_t { kShortestFresh, kDiversityAware };

class BeaconStore {
 public:
  enum class InsertOutcome : std::uint8_t {
    kInserted,    // stored as a new path
    kRefreshed,   // replaced an older instance of the same path
    kReplaced,    // evicted a worse path to make room
    kRejected,    // bucket full and the candidate is not better
    kStale,       // older instance of an already-stored path
  };

  /// `per_origin_limit` of 0 means unlimited.
  explicit BeaconStore(std::size_t per_origin_limit,
                       StorePolicy policy = StorePolicy::kShortestFresh)
      : limit_{per_origin_limit}, policy_{policy} {}

  InsertOutcome insert(StoredPcb entry);

  /// Admission without a pre-built entry: the stored link vector is
  /// allocated (or a victim's capacity reused) only when the candidate is
  /// actually admitted, so a rejected or stale PCB costs no allocation
  /// here. This is the beacon server's hot-path entry point.
  InsertOutcome insert(const PcbRef& pcb, std::span<const topo::LinkIndex> links,
                       TimePoint received_at, std::uint64_t path_key);

  /// Drops expired PCBs everywhere; returns how many were dropped.
  std::size_t expire(TimePoint now);

  /// Drops every stored PCB whose link sequence traverses `link` (the
  /// SCMP-revocation reaction to an interface going down); returns how many
  /// were dropped.
  std::size_t drop_link(topo::LinkIndex link);

  /// Staleness-aware alternative to drop_link: quarantines entries riding
  /// `link` instead of evicting them. Returns how many entries went from
  /// fresh to stale.
  std::size_t mark_link_stale(topo::LinkIndex link, TimePoint now);

  /// The link recovered: releases its hold on quarantined entries. Returns
  /// how many entries became fully fresh again. Saturating per entry, so an
  /// entry admitted mid-outage never underflows on the restore.
  std::size_t revalidate_link(topo::LinkIndex link);

  /// Evicts entries that have been continuously stale for longer than
  /// `timeout`; returns how many were evicted.
  std::size_t expire_stale(TimePoint now, Duration timeout);

  /// Stored PCBs for one origin (possibly empty). Pointers/references are
  /// invalidated by insert/expire.
  const std::vector<StoredPcb>& for_origin(IsdAsId origin) const;

  /// All origins that currently have at least one stored PCB.
  std::vector<IsdAsId> origins() const;

  std::size_t total_stored() const;
  std::size_t per_origin_limit() const { return limit_; }

 private:
  std::size_t pick_victim(const std::vector<StoredPcb>& bucket,
                          const PcbRef& candidate,
                          std::span<const topo::LinkIndex> candidate_links,
                          bool& candidate_wins) const;

  std::size_t limit_;
  StorePolicy policy_;
  std::unordered_map<IsdAsId, std::vector<StoredPcb>> buckets_;
  /// Per-link coverage counts reused across kDiversityAware victim picks.
  /// A flat vector with linear scans: buckets hold at most the storage
  /// limit (tens) of short paths, and unlike a hash map the scratch keeps
  /// its capacity between inserts.
  mutable std::vector<std::pair<topo::LinkIndex, int>> coverage_scratch_;
};

}  // namespace scion::ctrl
