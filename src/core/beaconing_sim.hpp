// Whole-network beaconing simulation (the experiment driver for Sections
// 5.1-5.2): one node per AS, one bidirectional channel per inter-AS link
// (ChannelId == LinkIndex by construction), one beacon server per AS fired
// periodically with a deterministic per-AS phase offset.
#pragma once

#include <memory>
#include <vector>

#include "core/beacon_server.hpp"
#include "faults/fault_injector.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace scion::ctrl {

struct BeaconingSimConfig {
  BeaconServerConfig server;
  /// Simulated duration (paper: 6 hours).
  util::Duration sim_duration{util::Duration::hours(6)};
  /// Warm-up excluded from all byte/message accounting. The Fig. 5
  /// methodology extrapolates a measured window to a month by the
  /// *periodicity* of announcements; the diversity algorithm only becomes
  /// periodic once its initial exploration has quiesced (one PCB lifetime
  /// is a safe bound), while the baseline is periodic from the start.
  util::Duration warmup{util::Duration::zero()};
  /// Propagation latency range for inter-AS links.
  util::Duration min_latency{util::Duration::milliseconds(2)};
  util::Duration max_latency{util::Duration::milliseconds(40)};
  std::uint64_t seed{1};
  /// Fault scenario, armed when the measurement window starts (event
  /// offsets are relative to the end of warm-up). Empty = no faults.
  faults::FaultPlan faults{};
};

/// Per-interface outbound usage (one row per link direction), the raw data
/// behind the overhead CDFs (Fig. 5, Fig. 9).
struct InterfaceUsage {
  topo::LinkIndex link{topo::kInvalidLinkIndex};
  topo::AsIndex from{topo::kInvalidAsIndex};
  std::uint64_t messages{0};
  util::Bytes bytes{};
};

class BeaconingSim {
 public:
  BeaconingSim(const topo::Topology& topology, BeaconingSimConfig config);

  /// Runs the configured duration (callable once).
  void run();

  const topo::Topology& topology() const { return topology_; }
  const BeaconServer& server(topo::AsIndex as) const { return *servers_[as]; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Network& network() const { return net_; }

  /// The fault injector executing config.faults; null when the plan is
  /// empty.
  const faults::FaultInjector* injector() const { return injector_.get(); }

  /// Outbound usage of every interface (two rows per link).
  std::vector<InterfaceUsage> interface_usage() const;

  /// Total PCB bytes sent network-wide.
  util::Bytes total_bytes() const { return net_.total_bytes_all(); }

  /// Total PCBs sent network-wide.
  std::uint64_t total_pcbs_sent() const;

  /// Aggregated stats over all servers.
  BeaconServerStats aggregate_stats() const;

  /// The link paths from `origin` currently stored at `at` — the set of
  /// disseminated path segments used by the path-quality analysis.
  std::vector<std::vector<topo::LinkIndex>> paths_at(topo::AsIndex at,
                                                     topo::IsdAsId origin) const;

 private:
  /// Identity mappings between topology handles and simnet handles, pinned
  /// by construction-time asserts: nodes are added in AS-index order and
  /// channels in link order. All AsIndex/LinkIndex <-> NodeId/ChannelId
  /// crossings go through these, so the conversion is auditable in one
  /// place instead of scattered casts.
  static sim::NodeId node_of(topo::AsIndex i) { return sim::NodeId{i}; }
  static sim::ChannelId channel_of(topo::LinkIndex l) {
    return sim::ChannelId{l};
  }
  static topo::LinkIndex link_of(sim::ChannelId ch) { return ch.value(); }

  const topo::Topology& topology_;
  BeaconingSimConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<crypto::KeyStore> keys_;
  std::vector<std::unique_ptr<BeaconServer>> servers_;
  std::unique_ptr<faults::FaultInjector> injector_;
  bool ran_{false};
};

}  // namespace scion::ctrl
