// Link-diversity scoring for the path-diversity-based path construction
// algorithm (Section 4.2 and Appendix A).
//
// Per [origin AS, neighbor AS] pair the beacon server keeps a Link History
// Table mapping each inter-AS link to a counter: the number of valid
// (previously sent, unexpired) paths from that origin to that neighbor that
// contain the link. The diversity score of a candidate path is derived from
// the geometric mean of its links' counters; the final score additionally
// weighs the PCB's age/lifetime (Eq. 2) or, for previously sent paths, the
// remaining lifetimes of the sent vs the current instance (Eq. 3):
//
//     score = diversity^g   if previously sent          (Eq. 1)
//     score = diversity^f   otherwise
//     f = alpha * age / lifetime                        (Eq. 2)
//     g = (beta * sent_remaining / current_remaining)^gamma   (Eq. 3)
//
// Orientation note: the paper scales the geometric mean into [0, 1] by the
// "maximum acceptable geometric mean" but leaves the polarity implicit. We
// resolve it from the three stated objectives (preserve connectivity /
// discover new paths / save bandwidth), which require score 1 to be best:
//     diversity = 1 - min(1, geometric_mean / max_geometric_mean)
// so a path containing any never-used link has geometric mean 0 and
// diversity 1 (the "prefer PCBs containing new links" rationale), and a
// fully redundant path scores 0 and is never sent. The score recorded in
// the Sent PCBs List is computed *after* that send's counter increments, so
// a just-sent path always has diversity < 1 and is suppressed while fresh —
// otherwise the bandwidth-saving objective could never trigger for fully
// disjoint paths.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/ids.hpp"
#include "util/time.hpp"

namespace scion::ctrl {

using util::Duration;
using util::TimePoint;

/// Tunables of the diversity algorithm. Defaults were fitted with
/// GridSearch (see grid_search.hpp) on the generated core topologies; the
/// paper likewise fits them per topology with a coarse-then-fine grid
/// search.
struct DiversityParams {
  /// Age sensitivity for not-previously-sent paths (Eq. 2). The paper
  /// fits this per topology *and PCB lifetime*: with a 10-minute interval
  /// and 6-hour lifetime, age/lifetime advances in steps of 1/36, so alpha
  /// must be of order lifetime/interval for age to suppress redundant
  /// paths within a few intervals — otherwise every young PCB scores ~1
  /// and the whole footprint re-floods each lifetime.
  double alpha{20.0};
  /// Remaining-lifetime-ratio scale for previously sent paths (Eq. 3).
  double beta{3.0};
  /// Exponent sharpening the previously-sent suppression (Eq. 3).
  double gamma{2.0};
  /// Minimum final score a candidate must reach to be disseminated.
  double score_threshold{0.5};
  /// Latency-optimization extension (Section 4.2, "Optimizing for other
  /// Criteria"): 0 disables it; otherwise candidate scores are multiplied
  /// by latency_factor() computed from the PCB's disseminated latency
  /// metadata, steering dissemination towards low-latency paths.
  double latency_weight{0.0};
  /// "Maximum acceptable geometric mean" of link counters; higher means a
  /// link may be reused by more paths before its redundancy saturates.
  /// This is the main overhead/coverage knob: at 1.0 only paths containing
  /// a never-used link are disseminated (cheapest); larger values explore
  /// more redundant paths. Default fitted on the generated core networks.
  double max_geometric_mean{2.0};
  /// Whether a sent path's expiry decrements its links' counters. The
  /// paper's "number of times the link is part of a valid path" is
  /// ambiguous; decrementing makes every stored path's coverage lapse once
  /// per lifetime, so the entire footprint re-floods cyclically and the
  /// overhead win over the baseline collapses to a small factor (kept as
  /// an ablation). Cumulative counters (default) converge to refreshing a
  /// minimal link-covering set — the behavior consistent with the paper's
  /// measured two-orders-of-magnitude reduction.
  bool decrement_on_expiry{false};
};

/// Optional remapping of link ids before they enter the Link History
/// Tables. Identity (null) gives the paper's link-disjointness; mapping all
/// parallel links of an AS pair to one id gives AS-disjointness — the
/// alternative Section 4.2 argues against ("we choose link instead of AS
/// disjointness ... since AS failures are unlikely events"), kept as an
/// ablation axis.
using LinkCanonicalizer = std::function<topo::LinkIndex(topo::LinkIndex)>;

/// Link History Table for one [origin AS, neighbor AS] pair.
class LinkHistoryTable {
 public:
  /// Increments the counter of every link on a sent path.
  void add_path(std::span<const topo::LinkIndex> links);

  /// Decrements the counters when a sent path expires; counters never go
  /// below zero.
  void remove_path(std::span<const topo::LinkIndex> links);

  int counter(topo::LinkIndex link) const;

  /// Geometric mean of the counters of `links`; 0 if any counter is 0.
  double geometric_mean(std::span<const topo::LinkIndex> links) const;

  std::size_t distinct_links() const { return counters_.size(); }

 private:
  std::unordered_map<topo::LinkIndex, int> counters_;
};

/// Diversity score in [0, 1]; 1 = fully disjoint from previously sent
/// paths, 0 = at or beyond the acceptable redundancy.
double diversity_score(const LinkHistoryTable& history,
                       std::span<const topo::LinkIndex> path_links,
                       const DiversityParams& params);

/// Final score for a path never sent before (Eqs. 1 and 2).
double score_fresh(double diversity, Duration age, Duration lifetime,
                   const DiversityParams& params);

/// Final score for a previously sent path (Eqs. 1 and 3); `stored_diversity`
/// is the diversity recorded at send time.
double score_previously_sent(double stored_diversity, Duration sent_remaining,
                             Duration current_remaining,
                             const DiversityParams& params);

/// Multiplier in (0, 1] applied to a candidate's score when the latency
/// extension is active: halves per (latency_weight x 50 ms) of accumulated
/// path latency, so low-latency paths win ties and high-latency detours
/// fall below the threshold sooner.
double latency_factor(std::uint64_t path_latency_us,
                      const DiversityParams& params);

/// One record in the Sent PCBs List of an egress interface.
struct SentRecord {
  topo::IsdAsId origin;
  topo::IsdAsId neighbor;
  /// Diversity score at send time (after its own counter increments).
  double diversity{0.0};
  /// Timestamps of the instance that was sent.
  TimePoint instance_timestamp;
  TimePoint instance_expiry;
  /// The path's links including the egress link (for counter decrement).
  std::vector<topo::LinkIndex> links;
};

/// Key of a sent path: the stored PCB's path identity plus the egress link
/// it was sent on.
struct SentKey {
  std::uint64_t path_key{0};
  topo::LinkIndex egress{topo::kInvalidLinkIndex};

  bool operator==(const SentKey&) const = default;
};

struct SentKeyHash {
  std::size_t operator()(const SentKey& k) const noexcept {
    return static_cast<std::size_t>(
        (k.path_key ^ (static_cast<std::uint64_t>(k.egress) + 1)) *
        0x9E3779B97F4A7C15ULL);
  }
};

using SentPcbsList = std::unordered_map<SentKey, SentRecord, SentKeyHash>;

}  // namespace scion::ctrl
