#include "core/scoring.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cmath>

namespace scion::ctrl {

void LinkHistoryTable::add_path(std::span<const topo::LinkIndex> links) {
  for (topo::LinkIndex l : links) ++counters_[l];
}

void LinkHistoryTable::remove_path(std::span<const topo::LinkIndex> links) {
  for (topo::LinkIndex l : links) {
    const auto it = counters_.find(l);
    if (it == counters_.end()) continue;
    if (--it->second <= 0) counters_.erase(it);
  }
}

int LinkHistoryTable::counter(topo::LinkIndex link) const {
  const auto it = counters_.find(link);
  return it == counters_.end() ? 0 : it->second;
}

double LinkHistoryTable::geometric_mean(
    std::span<const topo::LinkIndex> links) const {
  if (links.empty()) return 0.0;
  double log_sum = 0.0;
  for (topo::LinkIndex l : links) {
    const int c = counter(l);
    if (c == 0) return 0.0;  // a single new link makes the path fully fresh
    log_sum += std::log(static_cast<double>(c));
  }
  return std::exp(log_sum / static_cast<double>(links.size()));
}

double diversity_score(const LinkHistoryTable& history,
                       std::span<const topo::LinkIndex> path_links,
                       const DiversityParams& params) {
  SCION_CHECK(params.max_geometric_mean > 0.0,
              "diversity normalization needs a positive maximum");
  const double gm = history.geometric_mean(path_links);
  return 1.0 - std::min(1.0, gm / params.max_geometric_mean);
}

double score_fresh(double diversity, Duration age, Duration lifetime,
                   const DiversityParams& params) {
  SCION_CHECK(lifetime > Duration::zero(), "PCB lifetime must be positive");
  diversity = std::clamp(diversity, 0.0, 1.0);
  // Zero diversity means the path is at/beyond the acceptable redundancy;
  // it must never be sent (std::pow(0, 0) == 1 would say otherwise for a
  // brand-new PCB).
  if (diversity == 0.0) return 0.0;
  const double ratio =
      std::clamp(age / lifetime, 0.0, 1.0);
  const double f = params.alpha * ratio;  // Eq. 2
  return std::pow(diversity, f);          // Eq. 1, not-previously-sent branch
}

double score_previously_sent(double stored_diversity, Duration sent_remaining,
                             Duration current_remaining,
                             const DiversityParams& params) {
  stored_diversity = std::clamp(stored_diversity, 0.0, 1.0);
  if (stored_diversity == 0.0) return 0.0;
  // A sent instance that already expired is handled by the caller (the
  // record is purged); clamp defensively anyway.
  const double sent_rem = std::max(0.0, sent_remaining.as_seconds());
  const double cur_rem = std::max(1e-9, current_remaining.as_seconds());
  const double g = std::pow(params.beta * sent_rem / cur_rem, params.gamma);  // Eq. 3
  return std::pow(stored_diversity, g);  // Eq. 1, previously-sent branch
}

double latency_factor(std::uint64_t path_latency_us,
                      const DiversityParams& params) {
  if (params.latency_weight <= 0.0) return 1.0;
  const double latency_ms = static_cast<double>(path_latency_us) / 1000.0;
  return std::pow(2.0, -params.latency_weight * latency_ms / 50.0);
}

}  // namespace scion::ctrl
