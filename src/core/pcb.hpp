// Path-segment Construction Beacons (Section 2.2).
//
// A PCB is initiated by a core AS and extended hop by hop: before
// propagating, each AS appends an entry with its <ISD, AS> number, the
// ingress/egress interface ids of the traversed links, a chained hop-field
// MAC for the data plane, and a signature over everything so far. The PCB
// carries an initiation and an expiration timestamp set by the origin.
//
// Wire sizes are computed from the documented field layout below; they are
// what the overhead evaluation (Fig. 5, Fig. 9) counts on the links.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/hopfield_mac.hpp"
#include "crypto/signature.hpp"
#include "topology/ids.hpp"
#include "util/time.hpp"

namespace scion::ctrl {

using topo::IfId;
using topo::IsdAsId;
using util::Duration;
using util::TimePoint;

/// A peering link advertised inside an AS entry (enables shortcut /
/// valley-free peering paths in the data plane, Section 2.2).
struct PeerEntry {
  IsdAsId peer_as;
  IfId peer_if{topo::kNoInterface};  // our interface towards the peer
  crypto::HopMac hop_mac{};

  bool operator==(const PeerEntry&) const = default;
};

/// One AS's contribution to a PCB.
struct AsEntry {
  IsdAsId isd_as;
  /// Interface the PCB entered this AS on; kNoInterface at the origin.
  IfId in_if{topo::kNoInterface};
  /// Interface the PCB left this AS on.
  IfId out_if{topo::kNoInterface};
  /// Optional metadata extension (Section 4.2, "Optimizing for other
  /// Criteria"): measured latency of the ingress link in microseconds.
  /// Carried on the wire only when the PCB has the latency extension.
  std::uint32_t ingress_latency_us{0};
  /// Chained hop-field MAC for the data plane (Section 2.3).
  crypto::HopMac hop_mac{};
  /// Advertised peering links (optional, intra-ISD beaconing only).
  std::vector<PeerEntry> peers;
  /// Signature over the segment info and all entries up to and including
  /// this one (sans this signature).
  crypto::Signature signature{};
};

/// Wire-size model (documented constants; see DESIGN.md).
/// Header: origin (8) + timestamp (8) + expiry (8).
inline constexpr std::size_t kPcbHeaderBytes = 24;
/// Entry fixed part: ISD-AS (8) + in/out ifids (4) + hop field
/// (expiry/mac/flags, 8+6) + MTU and certificate pointer (8).
inline constexpr std::size_t kAsEntryFixedBytes = 34;
/// Peer entry: peer ISD-AS (8) + ifid (2) + hop MAC (6).
inline constexpr std::size_t kPeerEntryBytes = 16;
/// Latency metadata extension: 4 bytes per AS entry when carried.
inline constexpr std::size_t kLatencyMetadataBytes = 4;

/// A path-segment construction beacon. Immutable once built; propagation
/// produces a new PCB via extend().
class Pcb {
 public:
  /// Creates a signed origin PCB leaving `origin` on `out_if`.
  static Pcb originate(IsdAsId origin, IfId out_if, TimePoint timestamp,
                       Duration lifetime,
                       const crypto::SigningKey& signing_key,
                       const crypto::ForwardingKey& forwarding_key);

  /// Crypto-free variant for large-scale overhead simulations: signature
  /// and MAC fields are zeroed (wire sizes are unchanged — the fields are
  /// still carried). Never use where the data plane or verify() matter.
  static Pcb originate_unsigned(IsdAsId origin, IfId out_if,
                                TimePoint timestamp, Duration lifetime);

  IsdAsId origin() const { return entries_.front().isd_as; }
  TimePoint timestamp() const { return timestamp_; }
  TimePoint expiry() const { return expiry_; }
  Duration lifetime() const { return expiry_ - timestamp_; }

  Duration age(TimePoint now) const { return now - timestamp_; }
  Duration remaining_lifetime(TimePoint now) const { return expiry_ - now; }
  bool expired(TimePoint now) const { return now >= expiry_; }

  const std::vector<AsEntry>& entries() const { return entries_; }

  /// Number of inter-AS links a receiver of this PCB is away from the
  /// origin (= number of entries: each entry contributes one traversed
  /// link via its out_if).
  std::size_t hops() const { return entries_.size(); }

  /// Whether an AS already appears in the path (loop prevention).
  bool contains_as(IsdAsId as) const;

  /// Whether the latency metadata extension is carried (adds
  /// kLatencyMetadataBytes per entry on the wire).
  bool carries_latency() const { return carries_latency_; }
  void enable_latency_extension() { carries_latency_ = true; }

  /// Sum of the per-entry ingress latencies (microseconds) — the
  /// disseminated latency estimate of the path.
  std::uint64_t total_latency_us() const;

  /// Total bytes on the wire.
  util::Bytes wire_size() const;

  /// Returns a copy extended by `next`: the AS `next.isd_as` appends its
  /// entry (signature must already be filled by the caller via
  /// sign_next_entry()). Prefer extend_signed().
  Pcb extend(AsEntry next) const;

  /// Digest covering the segment info, entries [0, n) in full, and the
  /// candidate entry's fields without its signature — the value the n-th
  /// AS signs.
  crypto::Sha256Digest signing_digest(const AsEntry& candidate) const;

  /// Convenience: builds, MACs (chaining from the last entry), signs and
  /// appends an entry for `as` with the given interfaces.
  Pcb extend_signed(IsdAsId as, IfId in_if, IfId out_if,
                    std::vector<PeerEntry> peers,
                    const crypto::SigningKey& signing_key,
                    const crypto::ForwardingKey& forwarding_key,
                    std::uint32_t ingress_latency_us = 0) const;

  /// Crypto-free extension counterpart of originate_unsigned().
  Pcb extend_unsigned(IsdAsId as, IfId in_if, IfId out_if,
                      std::vector<PeerEntry> peers,
                      std::uint32_t ingress_latency_us = 0) const;

  /// Verifies every entry's signature against `keys` (keyed by
  /// IsdAsId::value()). Returns false on any mismatch.
  bool verify(crypto::KeyStore& keys) const;

  /// Stable identifier of the AS+interface sequence (independent of the
  /// instance timestamp): two PCBs with equal path_key describe the same
  /// path. Used by the beacon store and the sent-PCBs list.
  std::uint64_t path_key() const;

 private:
  Pcb(TimePoint timestamp, TimePoint expiry) : timestamp_{timestamp}, expiry_{expiry} {}

  TimePoint timestamp_;
  TimePoint expiry_;
  bool carries_latency_{false};
  std::vector<AsEntry> entries_;
};

using PcbRef = std::shared_ptr<const Pcb>;

}  // namespace scion::ctrl
