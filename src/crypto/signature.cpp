#include "crypto/signature.hpp"

#include <cstring>

namespace scion::crypto {

SigningKey SigningKey::derive(SignerId signer, std::uint64_t domain_seed) {
  Sha256 h;
  h.update("scion-mpr/signing-key/v1");
  h.update_u64(domain_seed);
  h.update_u64(signer);
  SigningKey key;
  key.secret = h.finalize().bytes;
  return key;
}

namespace {

Signature expand_to_signature(const SigningKey& key, const Sha256Digest& digest) {
  // Expand 32-byte HMAC outputs to the 96-byte ECDSA-P384 wire size by
  // counter-mode chaining (HKDF-expand style).
  Signature sig;
  for (std::uint8_t counter = 0; counter < 3; ++counter) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>{digest.bytes});
    const std::uint8_t c = counter;
    h.update(std::span<const std::uint8_t>{&c, 1});
    const Sha256Digest block =
        hmac_sha256(std::span<const std::uint8_t>{key.secret},
                    std::span<const std::uint8_t>{h.finalize().bytes});
    std::memcpy(sig.bytes.data() + counter * 32, block.bytes.data(), 32);
  }
  return sig;
}

}  // namespace

Signature sign(const SigningKey& key, std::span<const std::uint8_t> data) {
  return expand_to_signature(key, sha256(data));
}

Signature sign(const SigningKey& key, const Sha256Digest& digest) {
  return expand_to_signature(key, digest);
}

bool verify(const SigningKey& key, std::span<const std::uint8_t> data,
            const Signature& sig) {
  return sign(key, data) == sig;
}

bool verify(const SigningKey& key, const Sha256Digest& digest,
            const Signature& sig) {
  return sign(key, digest) == sig;
}

const SigningKey& KeyStore::key_for(SignerId signer) {
  auto [it, inserted] = keys_.try_emplace(signer);
  if (inserted) it->second = SigningKey::derive(signer, domain_seed_);
  return it->second;
}

bool KeyStore::verify_by(SignerId signer, const Sha256Digest& digest,
                         const Signature& sig) {
  return verify(key_for(signer), digest, sig);
}

}  // namespace scion::crypto
