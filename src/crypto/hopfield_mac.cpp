#include "crypto/hopfield_mac.hpp"

#include <cstring>

namespace scion::crypto {

ForwardingKey ForwardingKey::derive(std::uint64_t as_id,
                                    std::uint64_t domain_seed) {
  Sha256 h;
  h.update("scion-mpr/forwarding-key/v1");
  h.update_u64(domain_seed);
  h.update_u64(as_id);
  ForwardingKey key;
  key.secret = h.finalize().bytes;
  return key;
}

HopMac hop_mac(const ForwardingKey& key, std::uint16_t ingress_if,
               std::uint16_t egress_if, std::uint32_t expiry_unix,
               const HopMac& prev_mac) {
  Sha256 input;
  input.update_u16(ingress_if);
  input.update_u16(egress_if);
  input.update_u32(expiry_unix);
  input.update(std::span<const std::uint8_t>{prev_mac.data(), prev_mac.size()});
  const Sha256Digest full =
      hmac_sha256(std::span<const std::uint8_t>{key.secret},
                  std::span<const std::uint8_t>{input.finalize().bytes});
  HopMac mac{};
  std::memcpy(mac.data(), full.bytes.data(), mac.size());
  return mac;
}

}  // namespace scion::crypto
