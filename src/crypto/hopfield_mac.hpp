// Hop-field MACs for Packet-Carried Forwarding State (Section 2.3).
//
// Each hop field authenticates (ingress interface, egress interface,
// expiration) under the AS's forwarding key and chains over the previous hop
// field's MAC, preventing path splicing and alteration. SCION truncates the
// MAC to 6 bytes on the wire; we do the same.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/sha256.hpp"

namespace scion::crypto {

/// Wire size of a truncated hop-field MAC.
inline constexpr std::size_t kHopMacBytes = 6;

using HopMac = std::array<std::uint8_t, kHopMacBytes>;

/// Per-AS forwarding key (distinct from the control-plane signing key).
struct ForwardingKey {
  std::array<std::uint8_t, 32> secret{};

  static ForwardingKey derive(std::uint64_t as_id, std::uint64_t domain_seed);
};

/// Computes the chained hop-field MAC.
///
/// `prev_mac` is the MAC of the previous hop field in the segment (all-zero
/// for the first hop), which creates the chaining that makes segments
/// append-only.
HopMac hop_mac(const ForwardingKey& key, std::uint16_t ingress_if,
               std::uint16_t egress_if, std::uint32_t expiry_unix,
               const HopMac& prev_mac);

}  // namespace scion::crypto
