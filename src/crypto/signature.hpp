// Control-plane signature model.
//
// The paper assumes ECDSA-P384 signatures on PCB AS entries and BGPsec
// update path segments. For the overhead and path-quality evaluation only
// the *wire size* and the append-only/tamper-evident semantics matter, so we
// model signatures as 96-byte tags derived from HMAC-SHA-256 under a
// per-signer secret (see DESIGN.md, substitutions table). Verification
// recomputes the tag under the registered signer key: forging or mutating a
// signed message without the signer's key is detected, exactly the property
// beaconing relies on.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "crypto/sha256.hpp"

namespace scion::crypto {

/// Wire size of an ECDSA-P384 signature (two 384-bit integers).
inline constexpr std::size_t kSignatureBytes = 96;

/// Default key-derivation domain shared by simulations: every component of
/// one simulated world (beacon servers, path servers, data plane) must
/// derive signing/forwarding keys under the same domain seed.
inline constexpr std::uint64_t kDefaultKeyDomainSeed = 0x5C10;

/// A modeled ECDSA-P384 signature.
struct Signature {
  std::array<std::uint8_t, kSignatureBytes> bytes{};
  bool operator==(const Signature&) const = default;
};

/// Identifies a signer (an AS) in the key registry.
using SignerId = std::uint64_t;

/// Per-signer secret used by the signature model.
struct SigningKey {
  std::array<std::uint8_t, 32> secret{};

  /// Derives a deterministic key for a signer; in a real deployment this is
  /// the AS's control-plane key issued under the ISD's TRC.
  static SigningKey derive(SignerId signer, std::uint64_t domain_seed);
};

/// Signs `data` under `key`. Deterministic.
Signature sign(const SigningKey& key, std::span<const std::uint8_t> data);
Signature sign(const SigningKey& key, const Sha256Digest& digest);

/// Verifies `sig` over `data` under `key`.
bool verify(const SigningKey& key, std::span<const std::uint8_t> data,
            const Signature& sig);
bool verify(const SigningKey& key, const Sha256Digest& digest,
            const Signature& sig);

/// Registry of signer keys, standing in for the TRC/certificate
/// infrastructure: verifiers look up the signer's key by id.
class KeyStore {
 public:
  explicit KeyStore(std::uint64_t domain_seed = 0xC0DE) : domain_seed_{domain_seed} {}

  /// Returns (creating on first use) the key for a signer.
  const SigningKey& key_for(SignerId signer);

  /// Verifies a signature by `signer` over `digest`.
  bool verify_by(SignerId signer, const Sha256Digest& digest, const Signature& sig);

 private:
  std::uint64_t domain_seed_;
  std::unordered_map<SignerId, SigningKey> keys_;
};

}  // namespace scion::crypto
