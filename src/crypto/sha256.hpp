// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for PCB/BGPsec signature modelling and hop-field MACs. The streaming
// interface avoids buffering whole messages when hashing serialized
// structures field by field.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace scion::crypto {

/// A 256-bit digest.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  bool operator==(const Sha256Digest&) const = default;

  /// Lowercase hex rendering.
  std::string hex() const;

  /// First 8 bytes as a little-endian integer; convenient as a hash-map key.
  std::uint64_t prefix64() const;
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Appends an integer in big-endian byte order (fixed width).
  void update_u16(std::uint16_t v);
  void update_u32(std::uint32_t v);
  void update_u64(std::uint64_t v);

  /// Finishes and returns the digest; the hasher must not be reused after.
  Sha256Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

/// One-shot convenience.
Sha256Digest sha256(std::span<const std::uint8_t> data);
Sha256Digest sha256(std::string_view s);

/// HMAC-SHA-256 (RFC 2104).
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

}  // namespace scion::crypto
