// Per-task telemetry capture for deterministic parallel execution.
//
// The problem: metrics and traces are recorded from inside simulation code
// that the task pool (src/exec) may run on any worker thread, in any
// completion order — but the telemetry outputs must be byte-identical for
// every --jobs value. A global mutex would serialize the hot path AND still
// leave the *order* (and therefore floating-point histogram sums and trace
// line order) dependent on scheduling.
//
// The solution: one TaskCapture per task, not per worker. While a task
// executes, its capture installs a thread-local MetricShard (obs/metrics)
// and a thread-local TraceSink override (obs/trace) writing to a private
// buffer, so the task's recordings never touch shared state. After the
// whole batch completes, the pool merges captures strictly in task-index
// order into the enclosing context — the outer task's capture for nested
// parallelism, or the registry roots / process-wide sink at top level.
// Since the task decomposition itself is independent of the job count, the
// merged result equals what a --jobs=1 run produces, byte for byte.
#pragma once

#include <memory>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scion::obs {

class TaskCapture {
 public:
  TaskCapture() = default;
  TaskCapture(const TaskCapture&) = delete;
  TaskCapture& operator=(const TaskCapture&) = delete;

  /// Starts capturing on the calling (worker) thread. Installs the shard
  /// and, when tracing is active, a buffer sink with the parent's category
  /// mask.
  void begin();

  /// Stops capturing on the calling (worker) thread; restores whatever was
  /// installed before begin().
  void end();

  /// Folds this capture into the context active on the *calling* thread
  /// (the pool's caller after the batch): an enclosing task's shard/sink if
  /// one is installed, otherwise the registry roots and process-wide sink.
  /// Call in task-index order.
  void merge();

 private:
  MetricShard shard_;
  std::ostringstream trace_buf_;
  std::unique_ptr<TraceSink> trace_sink_;
  MetricShard* prev_shard_{nullptr};
  TraceSink* prev_override_{nullptr};
};

}  // namespace scion::obs
