#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event_profile.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"

namespace scion::obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kVirtualPid = 2;
constexpr int kLabelTid = 1000;

void append_metadata(JsonWriter& w, int pid, std::string_view what,
                     std::string_view name, int tid = 0) {
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", pid);
  if (what == "thread_name") w.kv("tid", tid);
  w.key("args").begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const PhaseProfiler& phases,
                              const EventProfiler& events,
                              const ChromeTraceOptions& options) {
  const auto spans = phases.spans();
  auto labels = events.label_snapshot();
  const auto timeline = events.queue_timeline();

  // Rebase wall timestamps to the earliest span so ts values stay small.
  std::int64_t base_ns = 0;
  if (!spans.empty()) {
    base_ns = spans.front().start_ns;
    for (const auto& s : spans) base_ns = std::min(base_ns, s.start_ns);
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  append_metadata(w, kWallPid, "process_name", "wall time");
  append_metadata(w, kVirtualPid, "process_name", "virtual time");
  append_metadata(w, kWallPid, "thread_name", "event labels (top-K)",
                  kLabelTid);

  for (const auto& s : spans) {
    w.begin_object();
    w.kv("name", std::string_view{s.name});
    w.kv("ph", "X");
    w.kv("pid", kWallPid);
    w.kv("tid", static_cast<std::int64_t>(s.thread_ordinal));
    w.kv("ts", static_cast<double>(s.start_ns - base_ns) / 1e3);
    w.kv("dur", static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    w.end_object();
  }

  // Top-K labels by handler wall time, laid end to end as aggregate slices
  // (an accumulated-cost view, not a timeline of individual events).
  std::sort(labels.begin(), labels.end(), [](const auto& a, const auto& b) {
    if (a.second.wall_ns != b.second.wall_ns) {
      return a.second.wall_ns > b.second.wall_ns;
    }
    return a.first < b.first;
  });
  if (labels.size() > options.top_k_labels) {
    labels.resize(options.top_k_labels);
  }
  double cursor_us = 0.0;
  for (const auto& [name, s] : labels) {
    const double dur_us = static_cast<double>(s.wall_ns) / 1e3;
    w.begin_object();
    w.kv("name", std::string_view{name});
    w.kv("ph", "X");
    w.kv("pid", kWallPid);
    w.kv("tid", kLabelTid);
    w.kv("ts", cursor_us);
    w.kv("dur", dur_us);
    w.key("args").begin_object();
    w.kv("events", s.events);
    w.kv("allocs", s.allocs);
    w.kv("alloc_bytes", s.alloc_bytes);
    w.end_object();
    w.end_object();
    cursor_us += dur_us;
  }

  for (const QueueSample& s : timeline) {
    w.begin_object();
    w.kv("name", "queue_depth");
    w.kv("ph", "C");
    w.kv("pid", kVirtualPid);
    w.kv("ts", static_cast<double>(s.t_ns) / 1e3);
    w.key("args").begin_object();
    w.kv("depth", s.depth);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return std::move(w).take();
}

bool write_chrome_trace(const std::string& path,
                        const ChromeTraceOptions& options) {
  std::ofstream out{path};
  if (!out) {
    std::cerr << "obs: cannot open --chrome-trace-out file " << path << '\n';
    return false;
  }
  out << chrome_trace_json(PhaseProfiler::global(), EventProfiler::global(),
                           options)
      << '\n';
  return true;
}

}  // namespace scion::obs
