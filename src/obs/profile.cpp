#include "obs/profile.hpp"

#include <chrono>

#include "obs/alloc_track.hpp"
#include "obs/json.hpp"

namespace scion::obs {

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler profiler;
  return profiler;
}

void PhaseProfiler::record(std::string_view name, std::int64_t wall_ns,
                           std::uint64_t allocs, std::uint64_t alloc_bytes) {
  const std::lock_guard<std::mutex> lock{mu_};
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string{name}, Phase{}).first;
  }
  ++it->second.calls;
  it->second.wall_ns += wall_ns;
  it->second.allocs += allocs;
  it->second.alloc_bytes += alloc_bytes;
}

void PhaseProfiler::reset() {
  const std::lock_guard<std::mutex> lock{mu_};
  phases_.clear();
}

std::string PhaseProfiler::to_json() const {
  JsonWriter w;
  w.begin_array();
  for (const auto& [name, p] : phases_) {
    w.begin_object();
    w.kv("phase", std::string_view{name});
    w.kv("calls", p.calls);
    w.kv("wall_ns", p.wall_ns);
    w.kv("wall_s", static_cast<double>(p.wall_ns) / 1e9);
    w.kv("allocs", p.allocs);
    w.kv("alloc_bytes", p.alloc_bytes);
    w.end_object();
  }
  w.end_array();
  return std::move(w).take();
}

#ifdef SCION_MPR_OBS_ENABLED

namespace {

// The single sanctioned wall-clock read in the tree. Safe for determinism:
// the value only ever flows into PhaseProfiler accumulators, which nothing
// in the simulation reads back (see the header comment for the full proof).
std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(  // simlint:allow(wall-clock)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProfilePhase::ProfilePhase(std::string_view name)
    : name_{name},
      start_ns_{wall_now_ns()},
      start_allocs_{thread_allocs()},
      start_alloc_bytes_{thread_alloc_bytes()} {}

void ProfilePhase::stop() {
  if (stopped_) return;
  stopped_ = true;
  PhaseProfiler::global().record(name_, wall_now_ns() - start_ns_,
                                 thread_allocs() - start_allocs_,
                                 thread_alloc_bytes() - start_alloc_bytes_);
}

ProfilePhase::~ProfilePhase() { stop(); }

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
