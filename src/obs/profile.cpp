#include "obs/profile.hpp"

#include <atomic>
#include <chrono>

#include "obs/alloc_track.hpp"
#include "obs/json.hpp"

namespace scion::obs {

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler profiler;
  return profiler;
}

void PhaseProfiler::record(std::string_view name, std::int64_t wall_ns,
                           std::uint64_t allocs, std::uint64_t alloc_bytes) {
  const util::MutexLock lock{mu_};
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string{name}, Phase{}).first;
  }
  ++it->second.calls;
  it->second.wall_ns += wall_ns;
  it->second.allocs += allocs;
  it->second.alloc_bytes += alloc_bytes;
}

void PhaseProfiler::record_span(std::string_view name, std::int64_t start_ns,
                                std::int64_t end_ns,
                                std::uint32_t thread_ordinal) {
  const util::MutexLock lock{mu_};
  if (spans_.size() >= kMaxSpans) return;
  spans_.push_back(Span{std::string{name}, start_ns, end_ns, thread_ordinal});
}

std::vector<PhaseProfiler::Span> PhaseProfiler::spans() const {
  const util::MutexLock lock{mu_};
  return spans_;
}

void PhaseProfiler::reset() {
  const util::MutexLock lock{mu_};
  phases_.clear();
  spans_.clear();
}

std::string PhaseProfiler::to_json() const {
  const util::MutexLock lock{mu_};
  JsonWriter w;
  w.begin_array();
  for (const auto& [name, p] : phases_) {
    w.begin_object();
    w.kv("phase", std::string_view{name});
    w.kv("calls", p.calls);
    w.kv("wall_ns", p.wall_ns);
    w.kv("wall_s", static_cast<double>(p.wall_ns) / 1e9);
    w.kv("allocs", p.allocs);
    w.kv("alloc_bytes", p.alloc_bytes);
    w.end_object();
  }
  w.end_array();
  return std::move(w).take();
}

#ifdef SCION_MPR_OBS_ENABLED

// The single sanctioned wall-clock read in the tree. Safe for determinism:
// the value only ever flows into PhaseProfiler / EventProfiler
// accumulators, which nothing in the simulation reads back (see the header
// comment for the full proof).
std::int64_t profiler_wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(  // simlint:allow(wall-clock)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

// Per-thread phase stack head (innermost active phase) for nested alloc
// attribution, plus a stable small ordinal per thread for trace slices.
// simlint:allow(mutable-global) — strictly thread-private phase stack head.
thread_local ProfilePhase* t_current_phase = nullptr;

std::uint32_t thread_ordinal() {
  // Monotonic ordinal source; atomic, and the value feeds only wall-clock
  // trace slices, never simulation state. simlint:allow(mutable-global)
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

ProfilePhase::ProfilePhase(std::string_view name)
    : name_{name},
      start_ns_{profiler_wall_now_ns()},
      start_allocs_{thread_allocs()},
      start_alloc_bytes_{thread_alloc_bytes()},
      parent_{t_current_phase} {
  t_current_phase = this;
}

void ProfilePhase::stop() {
  if (stopped_) return;
  stopped_ = true;
  const std::int64_t end_ns = profiler_wall_now_ns();
  // Raw delta over the whole interval; what the children already claimed is
  // subtracted so allocations land in the innermost active phase only.
  const std::uint64_t raw_allocs = thread_allocs() - start_allocs_;
  const std::uint64_t raw_bytes = thread_alloc_bytes() - start_alloc_bytes_;
  PhaseProfiler::global().record(name_, end_ns - start_ns_,
                                 raw_allocs - child_allocs_,
                                 raw_bytes - child_alloc_bytes_);
  PhaseProfiler::global().record_span(name_, start_ns_, end_ns,
                                      thread_ordinal());
  if (t_current_phase == this) t_current_phase = parent_;
  if (parent_ != nullptr) {
    parent_->child_allocs_ += raw_allocs;
    parent_->child_alloc_bytes_ += raw_bytes;
  }
}

ProfilePhase::~ProfilePhase() { stop(); }

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
