// Wall-clock phase profiling: where does a run's real time go?
//
// ProfilePhase is an RAII scope around one pipeline stage (topology
// generation, beaconing, BGP, analysis). On destruction the elapsed wall
// time is accumulated into the process-wide PhaseProfiler under the phase's
// name; the ObsSession / bench report dumps the table as JSON.
//
// This file's .cpp is the ONLY sanctioned wall-clock site in the tree (one
// simlint:allow(wall-clock) on the single steady_clock read). Determinism
// proof: wall-clock values flow exclusively into PhaseProfiler's own
// accumulators and from there into emitted reports; no simulation code ever
// reads PhaseProfiler state, virtual time never depends on it, and with
// SCION_MPR_OBS=OFF the clock is not read at all — same-seed simulation
// output is byte-identical either way (test_determinism).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace scion::obs {

class PhaseProfiler {
 public:
  struct Phase {
    std::uint64_t calls{0};
    std::int64_t wall_ns{0};
    /// Calling-thread operator-new calls/bytes inside the phase, summed
    /// over calls. Always 0 when SCION_MPR_ALLOC_TRACK is off. Unlike
    /// wall_ns these ARE deterministic (same code path, same counts), which
    /// is what lets test_alloc_budget gate allocations-per-event budgets.
    std::uint64_t allocs{0};
    std::uint64_t alloc_bytes{0};
  };

  static PhaseProfiler& global();

  /// Thread-safe: phases may close on worker threads during a parallel
  /// region (the accumulators are coarse per-stage scopes, not hot-path).
  /// Call counts stay deterministic across --jobs values; wall times are
  /// wall times and never feed determinism-compared output.
  void record(std::string_view name, std::int64_t wall_ns,
              std::uint64_t allocs = 0, std::uint64_t alloc_bytes = 0);
  /// Main thread only, with no parallel region in flight.
  const std::map<std::string, Phase, std::less<>>& phases() const {
    return phases_;
  }
  void reset();

  /// [{"phase": "beaconing", "calls": 2, "wall_ns": ..., "wall_s": ...,
  ///   "allocs": ..., "alloc_bytes": ...}, ...]
  /// The alloc keys are present in every build (0 without
  /// SCION_MPR_ALLOC_TRACK) so the BENCH_*.json phase schema is stable.
  std::string to_json() const;

 private:
  std::mutex mu_;
  std::map<std::string, Phase, std::less<>> phases_;
};

#ifdef SCION_MPR_OBS_ENABLED

class ProfilePhase {
 public:
  explicit ProfilePhase(std::string_view name);
  ~ProfilePhase();

  /// Ends the phase early (before scope exit); idempotent.
  void stop();

  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  std::string name_;
  std::int64_t start_ns_;
  std::uint64_t start_allocs_;
  std::uint64_t start_alloc_bytes_;
  bool stopped_{false};
};

#else

/// Telemetry compiled out: no clock read, no state, guaranteed zero cost.
class ProfilePhase {
 public:
  explicit ProfilePhase(std::string_view) {}
  void stop() {}
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;
};

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
