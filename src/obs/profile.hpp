// Wall-clock phase profiling: where does a run's real time go?
//
// ProfilePhase is an RAII scope around one pipeline stage (topology
// generation, beaconing, BGP, analysis). On destruction the elapsed wall
// time is accumulated into the process-wide PhaseProfiler under the phase's
// name; the ObsSession / bench report dumps the table as JSON.
//
// This file's .cpp is the ONLY sanctioned wall-clock site in the tree (one
// simlint:allow(wall-clock) on the single steady_clock read). Determinism
// proof: wall-clock values flow exclusively into PhaseProfiler's own
// accumulators and from there into emitted reports; no simulation code ever
// reads PhaseProfiler state, virtual time never depends on it, and with
// SCION_MPR_OBS=OFF the clock is not read at all — same-seed simulation
// output is byte-identical either way (test_determinism).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_safety.hpp"

namespace scion::obs {

class PhaseProfiler {
 public:
  struct Phase {
    std::uint64_t calls{0};
    std::int64_t wall_ns{0};
    /// Calling-thread operator-new calls/bytes inside the phase, summed
    /// over calls. Always 0 when SCION_MPR_ALLOC_TRACK is off. Unlike
    /// wall_ns these ARE deterministic (same code path, same counts), which
    /// is what lets test_alloc_budget gate allocations-per-event budgets.
    /// Nested phases attribute to the innermost active phase: a parent's
    /// counters exclude what its children already claimed.
    std::uint64_t allocs{0};
    std::uint64_t alloc_bytes{0};
  };

  /// One closed ProfilePhase interval, kept (bounded) for the Chrome-trace
  /// exporter. Wall-clock data only; never determinism-compared.
  struct Span {
    std::string name;
    std::int64_t start_ns{0};
    std::int64_t end_ns{0};
    std::uint32_t thread_ordinal{0};
  };

  static PhaseProfiler& global();

  /// Thread-safe: phases may close on worker threads during a parallel
  /// region (the accumulators are coarse per-stage scopes, not hot-path).
  /// Call counts stay deterministic across --jobs values; wall times are
  /// wall times and never feed determinism-compared output.
  void record(std::string_view name, std::int64_t wall_ns,
              std::uint64_t allocs = 0, std::uint64_t alloc_bytes = 0)
      SCION_EXCLUDES(mu_);
  /// Logs one closed phase interval for the Chrome-trace export. Capped at
  /// kMaxSpans (further spans still accumulate via record(), they just stop
  /// appearing as individual trace slices).
  void record_span(std::string_view name, std::int64_t start_ns,
                   std::int64_t end_ns, std::uint32_t thread_ordinal)
      SCION_EXCLUDES(mu_);
  /// Main thread only, with no parallel region in flight — quiescence the
  /// lock analysis cannot prove, hence the explicit opt-out.
  const std::map<std::string, Phase, std::less<>>& phases() const
      SCION_NO_THREAD_SAFETY_ANALYSIS {
    return phases_;
  }
  /// Snapshot of the span log (main thread / reporting only).
  std::vector<Span> spans() const SCION_EXCLUDES(mu_);
  void reset() SCION_EXCLUDES(mu_);

  /// [{"phase": "beaconing", "calls": 2, "wall_ns": ..., "wall_s": ...,
  ///   "allocs": ..., "alloc_bytes": ...}, ...]
  /// The alloc keys are present in every build (0 without
  /// SCION_MPR_ALLOC_TRACK) so the BENCH_*.json phase schema is stable.
  std::string to_json() const SCION_EXCLUDES(mu_);

 private:
  static constexpr std::size_t kMaxSpans = 4096;

  mutable util::Mutex mu_;
  std::map<std::string, Phase, std::less<>> phases_ SCION_GUARDED_BY(mu_);
  std::vector<Span> spans_ SCION_GUARDED_BY(mu_);
};

#ifdef SCION_MPR_OBS_ENABLED

/// The single sanctioned wall-clock read in the tree (implemented in
/// profile.cpp next to its simlint:allow). ProfilePhase and the event loop's
/// EventProfiler instrumentation both route through it; the values flow only
/// into write-only profiler accumulators, never back into simulation state.
std::int64_t profiler_wall_now_ns();

class ProfilePhase {
 public:
  explicit ProfilePhase(std::string_view name);
  ~ProfilePhase();

  /// Ends the phase early (before scope exit); idempotent.
  ///
  /// Nesting contract: phases on one thread form a LIFO stack; allocations
  /// are attributed to the *innermost* active phase (a parent's counters
  /// exclude its children's). Phases must stop in reverse order of
  /// construction on a given thread (scope-based RAII guarantees this).
  void stop();

  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  std::string name_;
  std::int64_t start_ns_;
  std::uint64_t start_allocs_;
  std::uint64_t start_alloc_bytes_;
  /// The phase this one nested inside (same thread), if any; children add
  /// their full allocation delta here so the parent can subtract it.
  ProfilePhase* parent_{nullptr};
  std::uint64_t child_allocs_{0};
  std::uint64_t child_alloc_bytes_{0};
  bool stopped_{false};
};

#else

/// Telemetry compiled out: no clock read, no state, guaranteed zero cost.
class ProfilePhase {
 public:
  explicit ProfilePhase(std::string_view) {}
  void stop() {}
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;
};

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
