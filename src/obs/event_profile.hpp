// Event-level cost attribution: which *event kinds* consume the run?
//
// Every callback scheduled on sim::Simulator (and every message delivery in
// sim::Network) carries a static EventLabel ("beacon.propagate",
// "bgp.update.deliver", "timer.mrai", ...). The event loop attributes — per
// label — event counts, operator-new calls/bytes (obs::alloc_track), and
// handler wall time (routed through profiler_wall_now_ns(), the single
// sanctioned wall-clock site in obs/profile.cpp), plus a queue-depth
// timeline sampled on a deterministic virtual-time grid. The result lands
// in the `event_profile` section of every BENCH_*.json and feeds the
// Chrome-trace exporter (obs/chrome_trace.hpp).
//
// Determinism contract (the same one metrics/trace/profile obey):
//  * write-only — nothing in the simulation reads profiler state, so
//    attribution cannot perturb event order (proved in test_determinism
//    with profiling on, off, and compiled out);
//  * event/alloc counts and queue-depth samples are deterministic (same
//    seed, same code path); wall_ns values are wall times and are kept in
//    separate keys, exactly like the phase profile;
//  * per-Simulator EventShards merge into the global profiler with
//    commutative operations only (integer addition, per-timestamp max), so
//    results are byte-identical at any --jobs=N.
//
// With SCION_MPR_OBS=OFF the label is an empty type, event_label() returns
// it without interning, and the event loop's record path compiles out.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_safety.hpp"

namespace scion::obs {

#ifdef SCION_MPR_OBS_ENABLED

/// A static event-kind tag. Trivially copyable, 4 bytes; id 0 is the
/// reserved "(unlabeled)" default every un-annotated schedule gets.
class EventLabel {
 public:
  constexpr EventLabel() = default;
  constexpr std::uint32_t id() const { return id_; }
  constexpr bool is_default() const { return id_ == 0; }

 private:
  friend class EventProfiler;
  constexpr explicit EventLabel(std::uint32_t id) : id_{id} {}
  std::uint32_t id_{0};
};

namespace detail {
extern std::atomic<bool> g_event_profiling_enabled;
}  // namespace detail

/// Runtime switch checked once per event (relaxed load). Defaults to on;
/// the determinism suite proves on/off runs are byte-identical.
inline bool event_profiling_enabled() {
  return detail::g_event_profiling_enabled.load(std::memory_order_relaxed);
}

#else  // !SCION_MPR_OBS_ENABLED

/// Telemetry compiled out: an empty tag ([[no_unique_address]] members cost
/// nothing), so label plumbing survives in signatures at zero size/cost.
class EventLabel {
 public:
  constexpr EventLabel() = default;
  constexpr std::uint32_t id() const { return 0; }
  constexpr bool is_default() const { return true; }
};

inline constexpr bool event_profiling_enabled() { return false; }

#endif  // SCION_MPR_OBS_ENABLED

/// Interns `name` into the global label table and returns its handle.
/// Allocates only on the first sighting of a name — call sites keep the
/// result in a file-scope constant (see DESIGN.md's event-labeling recipe),
/// so the hot path never re-interns. With SCION_MPR_OBS=OFF this returns
/// the empty label without touching any registry.
EventLabel event_label(std::string_view name);

/// Per-label accumulators. `events`, `allocs`, `alloc_bytes` are
/// deterministic; `wall_ns` is wall time (nondeterministic by nature) and
/// is emitted under separate keys.
struct LabelStats {
  std::uint64_t events{0};
  std::uint64_t allocs{0};
  std::uint64_t alloc_bytes{0};
  std::int64_t wall_ns{0};
};

/// One queue-depth observation at a virtual-time grid point.
struct QueueSample {
  std::int64_t t_ns{0};
  std::uint64_t depth{0};
};

/// Process-wide event-cost aggregate. Like PhaseProfiler the class exists
/// in every build (so report emission is unconditional); with telemetry
/// compiled out it simply never receives data.
class EventProfiler {
 public:
  static EventProfiler& global();

  /// Interns a label name (id 0 = "(unlabeled)" is pre-registered).
  /// Thread-safe; the table survives reset_counters() because call sites
  /// cache handles in file-scope constants.
  EventLabel intern(std::string_view name) SCION_EXCLUDES(mu_);

  /// Label table lookups (main thread / reporting only).
  std::size_t label_count() const SCION_EXCLUDES(mu_);
  std::string label_name(std::uint32_t id) const SCION_EXCLUDES(mu_);

  /// Merges one shard's per-label stats (indexed by label id; addition) and
  /// queue samples (per-timestamp max). Both operations commute, so merge
  /// order — and therefore --jobs=N scheduling — cannot change the result.
  void merge(const std::vector<LabelStats>& stats,
             const std::vector<QueueSample>& samples) SCION_EXCLUDES(mu_);

  /// Runtime enable/disable of the per-event record path (both orders are
  /// proven byte-identical in test_determinism).
  void set_enabled(bool on);
  bool enabled() const;

  /// Clears accumulated stats and queue samples but keeps the intern table
  /// (file-scope label constants hold baked-in ids). ObsSession calls this
  /// so every harness run starts from zero.
  void reset_counters() SCION_EXCLUDES(mu_);

  /// Totals across all labels; `attributed` excludes the default label.
  std::uint64_t total_events() const SCION_EXCLUDES(mu_);
  std::uint64_t attributed_events() const SCION_EXCLUDES(mu_);

  /// Top-k labels by allocation count, descending (ties: label name order).
  /// Used by check_alloc_budget to point a budget breach at its handler.
  std::vector<std::pair<std::string, std::uint64_t>> top_allocating_labels(
      std::size_t k) const SCION_EXCLUDES(mu_);

  /// Snapshot for the Chrome-trace exporter: (name, stats) sorted by name,
  /// plus the merged queue timeline sorted by time.
  std::vector<std::pair<std::string, LabelStats>> label_snapshot() const
      SCION_EXCLUDES(mu_);
  std::vector<QueueSample> queue_timeline() const SCION_EXCLUDES(mu_);

  /// The `event_profile` report section:
  /// {"enabled": ..., "total_events": ..., "attributed_events": ...,
  ///  "queue_samples": [{"t_ns":...,"depth":...}, ...],
  ///  "labels": [{"label":...,"events":...,"allocs":...,"alloc_bytes":...,
  ///              "wall_ns":...,"wall_s":...}, ...]}
  /// Labels sort by name; all keys except wall_ns/wall_s are deterministic.
  std::string to_json() const SCION_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // id -> name and name -> id halves of the intern table.
  std::vector<std::string> names_ SCION_GUARDED_BY(mu_);
  std::map<std::string, std::uint32_t, std::less<>> ids_
      SCION_GUARDED_BY(mu_);
  // id -> merged stats; t_ns -> max queue depth.
  std::vector<LabelStats> stats_ SCION_GUARDED_BY(mu_);
  std::map<std::int64_t, std::uint64_t> queue_ SCION_GUARDED_BY(mu_);
};

#ifdef SCION_MPR_OBS_ENABLED

/// Per-Simulator accumulator: dense per-label counters plus a queue-depth
/// timeline on a deterministic virtual-time grid. No locking on the record
/// path — each Simulator is single-threaded; the only synchronization is
/// flush(), which folds the shard into the global profiler under its mutex
/// (once per run segment / destruction, never per event).
class EventShard {
 public:
  EventShard() = default;
  ~EventShard() { flush(); }

  EventShard(const EventShard&) = delete;
  EventShard& operator=(const EventShard&) = delete;

  /// Accumulates one executed event under `label`.
  void record(EventLabel label, std::uint64_t allocs,
              std::uint64_t alloc_bytes, std::int64_t wall_ns) {
    const std::uint32_t id = label.id();
    if (id >= stats_.size()) stats_.resize(id + 1);
    LabelStats& s = stats_[id];
    ++s.events;
    s.allocs += allocs;
    s.alloc_bytes += alloc_bytes;
    s.wall_ns += wall_ns;
  }

  /// Records the queue depth if virtual time crossed the next grid point.
  /// Grid timestamps are multiples of the sampling interval, so they merge
  /// stably across Simulators; when the timeline would exceed its cap the
  /// interval doubles and off-grid samples are dropped (bounded memory,
  /// still deterministic).
  void maybe_sample_queue(std::int64_t t_ns, std::uint64_t depth) {
    if (t_ns < next_sample_ns_) return;
    const std::int64_t grid = t_ns - t_ns % interval_ns_;
    samples_.push_back(QueueSample{grid, depth});
    next_sample_ns_ = grid + interval_ns_;
    if (samples_.size() >= kMaxSamples) decimate();
  }

  /// Folds the shard into EventProfiler::global() and clears it. Called at
  /// the end of every run segment and from the destructor.
  void flush();

 private:
  static constexpr std::size_t kMaxSamples = 512;

  void decimate() {
    interval_ns_ *= 2;
    std::size_t kept = 0;
    for (const QueueSample& s : samples_) {
      if (s.t_ns % interval_ns_ == 0) samples_[kept++] = s;
    }
    samples_.resize(kept);
  }

  std::vector<LabelStats> stats_;
  std::vector<QueueSample> samples_;
  std::int64_t next_sample_ns_{0};
  std::int64_t interval_ns_{100'000'000};  // 100 ms of virtual time
};

#else  // !SCION_MPR_OBS_ENABLED

/// Compiled out: no state, no code.
class EventShard {
 public:
  void flush() {}
};

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
