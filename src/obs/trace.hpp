// Structured event tracing: JSONL streams instead of stdout noise.
//
// A TraceSink turns simulation events (beacon origination/propagation/
// expiry, BGP updates and convergence, SIG failover, link failures) into
// one JSON object per line:
//
//   {"t":360000000000,"cat":"beacon","ev":"originate","as":"1-17","egress":42}
//
// `t` is the *virtual* timestamp in nanoseconds — traces never touch the
// wall clock. Categories can be enabled individually (--trace-filter), so a
// 12000-AS run can stream only the beacon churn it is being debugged for.
// Like the metrics registry this is write-only: nothing in the simulation
// reads the sink, so tracing cannot perturb results (proved by
// test_determinism's telemetry ON/OFF comparison). The SCION_TRACE macro
// compiles to nothing when SCION_MPR_OBS=OFF.
#pragma once

#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.hpp"
#include "util/types.hpp"

namespace scion::obs {

enum class Category : std::uint8_t {
  kSimnet = 0,
  kBeacon,
  kBgp,
  kScion,
  kSig,
  kExperiment,
  kFault,
  /// Event-label diagnostics (label-table dumps, event-profile summaries).
  kEvent,
  kCount,
};

const char* to_string(Category c);
std::optional<Category> category_from_string(std::string_view name);

/// One key/value field of a trace event. Integer and floating arguments
/// are captured by constrained templates so call sites can pass any
/// arithmetic type without ambiguity.
struct TraceField {
  enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };

  template <std::signed_integral T>
    requires(!std::same_as<T, bool>)
  TraceField(std::string_view k, T v)
      : key{k}, kind{Kind::kInt}, i{static_cast<std::int64_t>(v)} {}

  template <std::unsigned_integral T>
    requires(!std::same_as<T, bool>)
  TraceField(std::string_view k, T v)
      : key{k}, kind{Kind::kUint}, u{static_cast<std::uint64_t>(v)} {}

  template <std::floating_point T>
  TraceField(std::string_view k, T v)
      : key{k}, kind{Kind::kDouble}, d{static_cast<double>(v)} {}

  /// Strong ids and byte quantities render as their raw representation, so
  /// retrofitting a field to a strong type never changes the JSONL output.
  template <util::StrongValueType T>
  TraceField(std::string_view k, const T& v) : TraceField{k, v.value()} {}

  TraceField(std::string_view k, bool v) : key{k}, kind{Kind::kBool}, b{v} {}
  TraceField(std::string_view k, std::string_view v)
      : key{k}, kind{Kind::kString}, s{v} {}
  TraceField(std::string_view k, const char* v)
      : TraceField{k, std::string_view{v}} {}
  TraceField(std::string_view k, const std::string& v)
      : TraceField{k, std::string_view{v}} {}

  std::string_view key;
  Kind kind{Kind::kInt};
  std::int64_t i{0};
  std::uint64_t u{0};
  double d{0.0};
  bool b{false};
  std::string s;
};

class TraceSink {
 public:
  /// Writes JSONL to `out` (borrowed; must outlive the sink). All
  /// categories start enabled.
  explicit TraceSink(std::ostream& out);

  void enable(Category c, bool on = true);
  void enable_all();
  void disable_all();
  bool enabled(Category c) const {
    return (mask_ & (1u << static_cast<unsigned>(c))) != 0;
  }

  /// Applies a comma-separated category filter ("beacon,bgp"); "all" or the
  /// empty string enables everything. Returns false (and changes nothing)
  /// on an unknown category name.
  bool set_filter(std::string_view csv);

  /// Emits one event line (no-op when the category is filtered out).
  void event(util::TimePoint t, Category c, std::string_view name,
             std::initializer_list<TraceField> fields);

  /// Appends pre-rendered JSONL text (a task capture's buffer) verbatim and
  /// accounts its event count. Used by the deterministic parallel merge:
  /// per-task buffers land here in task-index order.
  void write_raw(std::string_view text, std::uint64_t events);

  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }

  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream& out_;
  std::uint32_t mask_;
  std::uint64_t events_written_{0};
};

/// The sink used by SCION_TRACE on the calling thread: the thread-local
/// override when a task capture is active (see obs/parallel.hpp), otherwise
/// the process-wide sink. nullptr (the default) means tracing is off.
TraceSink* trace_sink();
/// Installs the process-wide sink. Not owning — installers keep the sink
/// and stream alive. Main thread only (never call during a parallel region).
void set_trace_sink(TraceSink* sink);
/// Redirects this thread's SCION_TRACE output (nullptr to clear); returns
/// the previous override. The task pool brackets every task with this.
TraceSink* set_thread_trace_override(TraceSink* sink);

}  // namespace scion::obs

// Usage:
//   SCION_TRACE(obs::Category::kBeacon, now, "originate",
//               {"as", self_id_.to_string()}, {"egress", egress});
// The field list (and every argument expression) is only evaluated when a
// sink is installed and the category is enabled.
#ifdef SCION_MPR_OBS_ENABLED

#define SCION_TRACE(category, now, event_name, ...)                            \
  do {                                                                         \
    ::scion::obs::TraceSink* scion_trace_sink_ = ::scion::obs::trace_sink();   \
    if (scion_trace_sink_ != nullptr &&                                        \
        scion_trace_sink_->enabled(category)) {                                \
      scion_trace_sink_->event((now), (category), (event_name),                \
                               {__VA_ARGS__});                                 \
    }                                                                          \
  } while (0)

#else

// sizeof keeps category/now/event_name type-checked and "used" (so a
// parameter only read by traces does not warn in OFF builds) without
// evaluating anything; the field list is dropped entirely.
#define SCION_TRACE(category, now, event_name, ...) \
  do {                                              \
    (void)sizeof(category);                         \
    (void)sizeof(now);                              \
    (void)sizeof(event_name);                       \
  } while (0)

#endif  // SCION_MPR_OBS_ENABLED
