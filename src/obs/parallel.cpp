#include "obs/parallel.hpp"

namespace scion::obs {

void TaskCapture::begin() {
  prev_shard_ = set_current_shard(&shard_);
  // trace_sink() here resolves the worker thread's context: the enclosing
  // task's buffer sink for nested parallelism (same thread), else the
  // process-wide sink. Either way the capture inherits its category mask so
  // filtering behaves exactly as in a serial run.
  if (TraceSink* parent = trace_sink(); parent != nullptr) {
    trace_sink_ = std::make_unique<TraceSink>(trace_buf_);
    trace_sink_->set_mask(parent->mask());
    prev_override_ = set_thread_trace_override(trace_sink_.get());
  }
}

void TaskCapture::end() {
  set_current_shard(prev_shard_);
  prev_shard_ = nullptr;
  if (trace_sink_ != nullptr) {
    set_thread_trace_override(prev_override_);
    prev_override_ = nullptr;
  }
}

void TaskCapture::merge() {
  if (!shard_.empty()) {
    if (MetricShard* parent = current_shard(); parent != nullptr) {
      shard_.merge_into_shard(*parent);
    } else {
      shard_.merge_into_registry();
    }
  }
  if (trace_sink_ != nullptr && trace_sink_->events_written() > 0) {
    if (TraceSink* parent = trace_sink(); parent != nullptr) {
      parent->write_raw(trace_buf_.str(), trace_sink_->events_written());
    }
  }
}

}  // namespace scion::obs
