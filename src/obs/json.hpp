// Minimal JSON emission and parsing for the telemetry layer.
//
// JsonWriter builds syntactically valid JSON incrementally (comma handling
// via a state stack); JsonValue/parse_json is the matching reader used by
// the schema checker (tools/obs_check) and the round-trip tests. Neither
// aims to be a general-purpose JSON library: no unicode escapes beyond
// pass-through UTF-8, numbers are doubles or 64-bit integers, and the
// parser rejects anything the writer cannot produce.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace scion::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Streaming JSON builder. Misuse (value without key inside an object,
/// unbalanced end_*) is a programming error caught by SCION_CHECK.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"key":`; must be inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value_null();

  /// Splices a pre-rendered JSON fragment in value position.
  JsonWriter& value_raw(std::string_view json);

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() && { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  // One frame per open object/array: whether a separator is needed before
  // the next element, and whether we are inside an object (expecting keys).
  struct Frame {
    bool needs_comma{false};
    bool is_object{false};
    bool have_key{false};
  };
  std::vector<Frame> stack_;
};

/// Parsed JSON document (object keys ordered for deterministic dumps).
struct JsonValue {
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Storage v{nullptr};

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_object() const { return std::holds_alternative<Object>(v); }

  bool as_bool() const { return std::get<bool>(v); }
  double as_number() const { return std::get<double>(v); }
  const std::string& as_string() const { return std::get<std::string>(v); }
  const Array& as_array() const { return std::get<Array>(v); }
  const Object& as_object() const { return std::get<Object>(v); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (must consume all non-whitespace input).
/// Returns nullopt and fills `error` (if given) on malformed input.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace scion::obs
