// Shared result rendering: one place that turns experiment results into
// aligned text tables (and JSON), instead of printf formatting copy-pasted
// across experiment drivers.
//
// obs::print/print_line are the sanctioned stdout sites for src/ — the
// simlint raw-output rule flags direct std::cout/printf anywhere else in
// simulation code, which keeps result output flowing through this renderer
// (and therefore convertible to JSON for the telemetry outputs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace scion::obs {

class JsonWriter;

enum class Align : std::uint8_t { kLeft, kRight };

struct Column {
  std::string header;
  Align align{Align::kLeft};
  /// Minimum cell width; grows to fit the widest cell.
  int min_width{0};
};

/// A titled table of pre-formatted cells. to_text() renders the classic
/// two-space-indented aligned layout the experiment drivers always printed;
/// append_json() emits the same data as an array of row objects keyed by
/// column header.
class Table {
 public:
  Table(std::string title, std::vector<Column> columns);

  Table& row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Title line, header line, then one line per row (trailing spaces
  /// trimmed). Ends with '\n'.
  std::string to_text() const;

  /// {"title": ..., "columns": [...], "rows": [{header: cell, ...}, ...]}
  void append_json(JsonWriter& w) const;

 private:
  std::string title_;
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Decimal rendering helpers for table cells.
std::string fmt_u64(std::uint64_t v);
std::string fmt_i64(std::int64_t v);
std::string fmt_f(double v, int precision);
/// %g-style shortest-ish rendering with `sig` significant digits.
std::string fmt_g(double v, int sig = 6);

/// The sanctioned stdout sites (see header comment). print() writes the
/// text verbatim; print_line() appends '\n'.
void print(std::string_view text);
void print_line(std::string_view text);

/// Renders a CDF summary plus `points` curve samples, matching the layout
/// previously provided by util::print_cdf.
void print_cdf(std::string_view name, const util::EmpiricalCdf& cdf,
               std::size_t points);

/// Appends {"summary": ..., "curve": [[x, F(x)], ...]} for a CDF.
void append_cdf_json(JsonWriter& w, const util::EmpiricalCdf& cdf,
                     std::size_t points);

}  // namespace scion::obs
