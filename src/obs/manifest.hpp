// Run manifests: every experiment or bench output records how it was made.
//
// A RunManifest captures the reproduction context of one run — binary name,
// seed, all explicitly set flags, build mode, sanitizers, git revision —
// and is embedded in every metrics/bench JSON the telemetry layer emits.
// Given only an output file, `manifest.seed` + `manifest.flags` + the named
// binary reproduce the run exactly (same-seed runs are byte-identical;
// tests/test_determinism.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace scion::util {
class Flags;
}

namespace scion::obs {

struct RunManifest {
  std::string binary;
  std::uint64_t seed{0};
  /// Explicitly set --key=value flags, in key order.
  std::map<std::string, std::string> flags;
  std::string build_type;  // CMAKE_BUILD_TYPE at compile time
  std::string git_sha;     // short sha, "unknown" outside a git checkout
  std::string sanitizers;  // SCION_MPR_SANITIZE value, "off" when disabled
  bool checked{false};     // SCION_MPR_CHECKED invariants compiled in
  bool obs_enabled{true};  // telemetry compiled in (always true when emitted
                           // by this library, recorded for completeness)

  /// Fills build metadata from compile-time definitions plus the given
  /// run parameters.
  static RunManifest capture(std::string_view binary,
                             const util::Flags& flags, std::uint64_t seed);

  /// {"binary": ..., "seed": ..., "flags": {...}, ...}
  std::string to_json() const;

  /// Writes the manifest's members into an already-open JSON object.
  void append_fields(class JsonWriter& w) const;
};

}  // namespace scion::obs
