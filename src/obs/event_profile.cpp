#include "obs/event_profile.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace scion::obs {

#ifdef SCION_MPR_OBS_ENABLED
namespace detail {
// Runtime profiling switch; atomic with relaxed ordering, and on/off runs
// are proven byte-identical. simlint:allow(mutable-global)
std::atomic<bool> g_event_profiling_enabled{true};
}  // namespace detail
#endif

EventProfiler& EventProfiler::global() {
  static EventProfiler profiler;
  return profiler;
}

EventLabel EventProfiler::intern(std::string_view name) {
#ifdef SCION_MPR_OBS_ENABLED
  SCION_CHECK(!name.empty(), "event label name must not be empty");
  const util::MutexLock lock{mu_};
  if (names_.empty()) {
    names_.emplace_back("(unlabeled)");
    ids_.emplace(names_.front(), 0u);
  }
  if (const auto it = ids_.find(name); it != ids_.end()) {
    return EventLabel{it->second};
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return EventLabel{id};
#else
  (void)name;
  return EventLabel{};
#endif
}

EventLabel event_label(std::string_view name) {
#ifdef SCION_MPR_OBS_ENABLED
  return EventProfiler::global().intern(name);
#else
  (void)name;
  return EventLabel{};
#endif
}

std::size_t EventProfiler::label_count() const {
  const util::MutexLock lock{mu_};
  return names_.empty() ? 1 : names_.size();
}

std::string EventProfiler::label_name(std::uint32_t id) const {
  const util::MutexLock lock{mu_};
  if (names_.empty() && id == 0) return "(unlabeled)";
  SCION_CHECK(id < names_.size(), "unknown event label id");
  return names_[id];
}

void EventProfiler::merge(const std::vector<LabelStats>& stats,
                          const std::vector<QueueSample>& samples) {
  const util::MutexLock lock{mu_};
  if (stats_.size() < stats.size()) stats_.resize(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats_[i].events += stats[i].events;
    stats_[i].allocs += stats[i].allocs;
    stats_[i].alloc_bytes += stats[i].alloc_bytes;
    stats_[i].wall_ns += stats[i].wall_ns;
  }
  for (const QueueSample& s : samples) {
    std::uint64_t& depth = queue_[s.t_ns];
    depth = std::max(depth, s.depth);
  }
}

void EventProfiler::set_enabled(bool on) {
#ifdef SCION_MPR_OBS_ENABLED
  detail::g_event_profiling_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

bool EventProfiler::enabled() const { return event_profiling_enabled(); }

void EventProfiler::reset_counters() {
  const util::MutexLock lock{mu_};
  for (LabelStats& s : stats_) s = LabelStats{};
  queue_.clear();
}

std::uint64_t EventProfiler::total_events() const {
  const util::MutexLock lock{mu_};
  std::uint64_t total = 0;
  for (const LabelStats& s : stats_) total += s.events;
  return total;
}

std::uint64_t EventProfiler::attributed_events() const {
  const util::MutexLock lock{mu_};
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < stats_.size(); ++i) total += stats_[i].events;
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
EventProfiler::top_allocating_labels(std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    const util::MutexLock lock{mu_};
    for (std::size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].allocs == 0) continue;
      out.emplace_back(i < names_.size() ? names_[i] : "(unlabeled)",
                       stats_[i].allocs);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::pair<std::string, LabelStats>>
EventProfiler::label_snapshot() const {
  std::vector<std::pair<std::string, LabelStats>> out;
  {
    const util::MutexLock lock{mu_};
    for (std::size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].events == 0) continue;
      out.emplace_back(i < names_.size() ? names_[i] : "(unlabeled)",
                       stats_[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<QueueSample> EventProfiler::queue_timeline() const {
  const util::MutexLock lock{mu_};
  std::vector<QueueSample> out;
  out.reserve(queue_.size());
  for (const auto& [t_ns, depth] : queue_) {
    out.push_back(QueueSample{t_ns, depth});
  }
  return out;
}

std::string EventProfiler::to_json() const {
  const auto labels = label_snapshot();
  const auto timeline = queue_timeline();
  std::uint64_t total = 0;
  std::uint64_t attributed = 0;
  for (const auto& [name, s] : labels) {
    total += s.events;
    if (name != "(unlabeled)") attributed += s.events;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("enabled", enabled());
  w.kv("total_events", total);
  w.kv("attributed_events", attributed);
  w.key("queue_samples").begin_array();
  for (const QueueSample& s : timeline) {
    w.begin_object();
    w.kv("t_ns", s.t_ns);
    w.kv("depth", s.depth);
    w.end_object();
  }
  w.end_array();
  w.key("labels").begin_array();
  for (const auto& [name, s] : labels) {
    w.begin_object();
    w.kv("label", std::string_view{name});
    w.kv("events", s.events);
    w.kv("allocs", s.allocs);
    w.kv("alloc_bytes", s.alloc_bytes);
    w.kv("wall_ns", s.wall_ns);
    w.kv("wall_s", static_cast<double>(s.wall_ns) / 1e9);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

#ifdef SCION_MPR_OBS_ENABLED

void EventShard::flush() {
  if (stats_.empty() && samples_.empty()) return;
  EventProfiler::global().merge(stats_, samples_);
  stats_.clear();
  samples_.clear();
}

#endif  // SCION_MPR_OBS_ENABLED

}  // namespace scion::obs
