#include "obs/session.hpp"

#include <iostream>

#include "obs/chrome_trace.hpp"
#include "obs/event_profile.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/flags.hpp"

namespace scion::obs {

ObsSession::ObsSession(std::string_view binary, const util::Flags& flags,
                       std::uint64_t seed)
    : manifest_{RunManifest::capture(binary, flags, seed)} {
  MetricsRegistry::global().reset();
  PhaseProfiler::global().reset();
  EventProfiler::global().reset_counters();

  metrics_path_ = flags.get("metrics-out", "");
  chrome_trace_path_ = flags.get("chrome-trace-out", "");

  const std::string trace_path = flags.get("trace-out", "");
  if (!trace_path.empty()) {
    trace_file_.open(trace_path);
    if (!trace_file_) {
      std::cerr << "obs: cannot open --trace-out file " << trace_path << '\n';
    } else {
      sink_ = std::make_unique<TraceSink>(trace_file_);
      const std::string filter = flags.get("trace-filter", "all");
      if (!sink_->set_filter(filter)) {
        std::cerr << "obs: unknown category in --trace-filter=" << filter
                  << " (known: simnet,beacon,bgp,scion,sig,experiment,"
                     "fault,event); tracing everything\n";
        sink_->enable_all();
      }
      set_trace_sink(sink_.get());
    }
  }
}

ObsSession::~ObsSession() { finish(); }

std::string ObsSession::metrics_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "scion-mpr-metrics-v1");
  w.key("manifest").begin_object();
  manifest_.append_fields(w);
  w.end_object();
  w.key("metrics").value_raw(MetricsRegistry::global().to_json());
  w.key("phases").value_raw(PhaseProfiler::global().to_json());
  w.key("event_profile").value_raw(EventProfiler::global().to_json());
  w.end_object();
  return std::move(w).take();
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;

  if (!chrome_trace_path_.empty()) {
    write_chrome_trace(chrome_trace_path_);
  }

  if (!metrics_path_.empty()) {
    std::ofstream out{metrics_path_};
    if (!out) {
      std::cerr << "obs: cannot open --metrics-out file " << metrics_path_
                << '\n';
    } else {
      out << metrics_json() << '\n';
    }
  }

  if (sink_) {
    if (trace_sink() == sink_.get()) set_trace_sink(nullptr);
    sink_.reset();
    trace_file_.close();
  }
}

}  // namespace scion::obs
