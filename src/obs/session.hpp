// ObsSession: one object that wires the whole telemetry layer into a
// harness binary (benches, the CLI, examples).
//
//   util::Flags flags{argc, argv};
//   obs::ObsSession session{"bench_fig5_overhead", flags, seed};
//   ... run the experiment ...
//   session.finish();   // also runs from the destructor
//
// Flags understood (all optional; telemetry stays silent without them):
//   --metrics-out=FILE   write the metrics document (manifest + registry +
//                        phase profile) as JSON on finish()
//   --trace-out=FILE     stream structured events as JSONL during the run
//   --trace-filter=CSV   category filter for the trace ("beacon,bgp";
//                        default "all")
//   --chrome-trace-out=FILE  write a Chrome-trace/Perfetto JSON (phases +
//                        top-K event labels + queue-depth counters) on
//                        finish()
//
// The session resets the global metrics registry and phase profiler on
// construction so each harness run starts from zero.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace scion::util {
class Flags;
}

namespace scion::obs {

class ObsSession {
 public:
  ObsSession(std::string_view binary, const util::Flags& flags,
             std::uint64_t seed);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  const RunManifest& manifest() const { return manifest_; }
  bool tracing() const { return sink_ != nullptr; }

  /// The full metrics document as a JSON string:
  /// {"schema": "scion-mpr-metrics-v1", "manifest": {...},
  ///  "metrics": {...}, "phases": [...], "event_profile": {...}}
  std::string metrics_json() const;

  /// Writes --metrics-out (if given), flushes and closes --trace-out, and
  /// uninstalls the global trace sink. Idempotent; also invoked by the
  /// destructor.
  void finish();

 private:
  RunManifest manifest_;
  std::string metrics_path_;
  std::string chrome_trace_path_;
  std::ofstream trace_file_;
  std::unique_ptr<TraceSink> sink_;
  bool finished_{false};
};

}  // namespace scion::obs
