#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace scion::obs {

namespace {

// Per-thread capture target; installed/uninstalled by the owning thread
// only (exec::TaskPool around each task). simlint:allow(mutable-global)
thread_local MetricShard* t_shard = nullptr;

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)}, counts_(bounds_.size() + 1, 0) {
  SCION_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be increasing");
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::absorb(const std::vector<std::uint64_t>& bucket_counts,
                       std::uint64_t count, double sum) {
  SCION_CHECK(bucket_counts.size() == counts_.size(),
              "histogram shard bucket layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += bucket_counts[i];
  }
  count_ += count;
  sum_ += sum;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock{mu_};
  const auto it = counter_map_.find(name);
  if (it != counter_map_.end()) return it->second;
  return counter_map_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const util::MutexLock lock{mu_};
  const auto it = gauge_map_.find(name);
  if (it != gauge_map_.end()) return it->second;
  return gauge_map_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const util::MutexLock lock{mu_};
  const auto it = histogram_map_.find(name);
  if (it != histogram_map_.end()) return it->second;
  return histogram_map_.emplace(std::string{name}, Histogram{std::move(bounds)})
      .first->second;
}

CounterHandle MetricsRegistry::intern_counter(std::string_view name) {
  const util::MutexLock lock{mu_};
  auto map_it = counter_map_.find(name);
  if (map_it == counter_map_.end()) {
    map_it = counter_map_.emplace(std::string{name}, Counter{}).first;
  }
  const auto id_it = counter_ids_.find(name);
  if (id_it != counter_ids_.end()) {
    return CounterHandle{id_it->second, &map_it->second};
  }
  const std::size_t id = counter_slots_.size();
  counter_slots_.push_back(&map_it->second);
  counter_ids_.emplace(std::string{name}, id);
  return CounterHandle{id, &map_it->second};
}

GaugeHandle MetricsRegistry::intern_gauge(std::string_view name) {
  const util::MutexLock lock{mu_};
  auto map_it = gauge_map_.find(name);
  if (map_it == gauge_map_.end()) {
    map_it = gauge_map_.emplace(std::string{name}, Gauge{}).first;
  }
  const auto id_it = gauge_ids_.find(name);
  if (id_it != gauge_ids_.end()) {
    return GaugeHandle{id_it->second, &map_it->second};
  }
  const std::size_t id = gauge_slots_.size();
  gauge_slots_.push_back(&map_it->second);
  gauge_ids_.emplace(std::string{name}, id);
  return GaugeHandle{id, &map_it->second};
}

HistogramHandle MetricsRegistry::intern_histogram(std::string_view name) {
  const util::MutexLock lock{mu_};
  auto map_it = histogram_map_.find(name);
  if (map_it == histogram_map_.end()) {
    map_it = histogram_map_
                 .emplace(std::string{name},
                          Histogram{Histogram::default_bounds()})
                 .first;
  }
  const auto id_it = histogram_ids_.find(name);
  if (id_it != histogram_ids_.end()) {
    return HistogramHandle{id_it->second, &map_it->second};
  }
  const std::size_t id = histogram_slots_.size();
  histogram_slots_.push_back(&map_it->second);
  histogram_ids_.emplace(std::string{name}, id);
  return HistogramHandle{id, &map_it->second};
}

void MetricsRegistry::reset() {
  const util::MutexLock lock{mu_};
  for (auto& [name, c] : counter_map_) c.reset();
  for (auto& [name, g] : gauge_map_) g.reset();
  for (auto& [name, h] : histogram_map_) h.reset();
}

std::string MetricsRegistry::to_json() const {
  const util::MutexLock lock{mu_};
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counter_map_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauge_map_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histogram_map_) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (const std::uint64_t c : h.bucket_counts()) w.value(c);
    w.end_array();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).take();
}

// --- MetricShard -------------------------------------------------------------

void MetricShard::count(std::size_t id, std::uint64_t delta) {
  if (counter_deltas_.size() <= id) counter_deltas_.resize(id + 1, 0);
  counter_deltas_[id] += delta;
}

void MetricShard::gauge_set(std::size_t id, std::int64_t v) {
  gauge_ops_.push_back(GaugeOp{id, v, /*is_max=*/false});
}

void MetricShard::gauge_max(std::size_t id, std::int64_t v) {
  gauge_ops_.push_back(GaugeOp{id, v, /*is_max=*/true});
}

void MetricShard::observe(const HistogramHandle& h, double v) {
  if (hists_.size() <= h.id) hists_.resize(h.id + 1);
  HistShard& hs = hists_[h.id];
  // h.root->bounds() is immutable after registration, so this concurrent
  // read needs no lock.
  const std::vector<double>& bounds = h.root->bounds();
  if (hs.counts.empty()) hs.counts.assign(bounds.size() + 1, 0);
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  ++hs.counts[static_cast<std::size_t>(it - bounds.begin())];
  ++hs.count;
  hs.sum += v;
}

void MetricShard::merge_into_shard(MetricShard& parent) const {
  for (std::size_t id = 0; id < counter_deltas_.size(); ++id) {
    if (counter_deltas_[id] != 0) parent.count(id, counter_deltas_[id]);
  }
  parent.gauge_ops_.insert(parent.gauge_ops_.end(), gauge_ops_.begin(),
                           gauge_ops_.end());
  for (std::size_t id = 0; id < hists_.size(); ++id) {
    const HistShard& hs = hists_[id];
    if (hs.count == 0) continue;
    if (parent.hists_.size() <= id) parent.hists_.resize(id + 1);
    HistShard& ps = parent.hists_[id];
    if (ps.counts.empty()) ps.counts.assign(hs.counts.size(), 0);
    for (std::size_t b = 0; b < hs.counts.size(); ++b) {
      ps.counts[b] += hs.counts[b];
    }
    ps.count += hs.count;
    ps.sum += hs.sum;
  }
}

void MetricShard::merge_into_registry() const {
  MetricsRegistry& reg = MetricsRegistry::global();
  // The lock orders this merge against concurrent interning from sibling
  // parallel regions; merges themselves are already serialized per context.
  const util::MutexLock lock{reg.mu_};
  for (std::size_t id = 0; id < counter_deltas_.size(); ++id) {
    if (counter_deltas_[id] != 0) reg.counter_slots_[id]->add(counter_deltas_[id]);
  }
  for (const GaugeOp& op : gauge_ops_) {
    Gauge* g = reg.gauge_slots_[op.id];
    if (op.is_max) {
      g->set_max(op.value);
    } else {
      g->set(op.value);
    }
  }
  for (std::size_t id = 0; id < hists_.size(); ++id) {
    const HistShard& hs = hists_[id];
    if (hs.count == 0) continue;
    reg.histogram_slots_[id]->absorb(hs.counts, hs.count, hs.sum);
  }
}

MetricShard* current_shard() { return t_shard; }

MetricShard* set_current_shard(MetricShard* shard) {
  MetricShard* prev = t_shard;
  t_shard = shard;
  return prev;
}

void record_count(const CounterHandle& h, std::uint64_t delta) {
  if (t_shard != nullptr) {
    t_shard->count(h.id, delta);
  } else {
    h.root->add(delta);
  }
}

void record_gauge_set(const GaugeHandle& h, std::int64_t v) {
  if (t_shard != nullptr) {
    t_shard->gauge_set(h.id, v);
  } else {
    h.root->set(v);
  }
}

void record_gauge_max(const GaugeHandle& h, std::int64_t v) {
  if (t_shard != nullptr) {
    t_shard->gauge_max(h.id, v);
  } else {
    h.root->set_max(v);
  }
}

void record_observe(const HistogramHandle& h, double v) {
  if (t_shard != nullptr) {
    t_shard->observe(h, v);
  } else {
    h.root->observe(v);
  }
}

}  // namespace scion::obs
