#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace scion::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)}, counts_(bounds_.size() + 1, 0) {
  SCION_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be increasing");
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_map_.find(name);
  if (it != counter_map_.end()) return it->second;
  return counter_map_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauge_map_.find(name);
  if (it != gauge_map_.end()) return it->second;
  return gauge_map_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const auto it = histogram_map_.find(name);
  if (it != histogram_map_.end()) return it->second;
  return histogram_map_.emplace(std::string{name}, Histogram{std::move(bounds)})
      .first->second;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counter_map_) c.reset();
  for (auto& [name, g] : gauge_map_) g.reset();
  for (auto& [name, h] : histogram_map_) h.reset();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counter_map_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauge_map_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histogram_map_) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (const std::uint64_t c : h.bucket_counts()) w.value(c);
    w.end_array();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).take();
}

}  // namespace scion::obs
