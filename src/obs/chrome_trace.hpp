// Chrome-trace / Perfetto JSON export of a run's profiling data.
//
// Renders three views into one `chrome://tracing`-loadable document
// ({"traceEvents": [...], "displayTimeUnit": "ms"}):
//  * pid 1 ("wall time"): every closed ProfilePhase interval as an "X"
//    (complete) slice on its recording thread's track — the flamegraph-style
//    view of where real time went;
//  * pid 1, tid 1000 ("event labels (top-K)"): the top-K event labels by
//    handler wall time laid end to end as aggregate slices, so the event
//    kinds dominating the run are visible next to the phases;
//  * pid 2 ("virtual time"): the queue-depth timeline as "C" (counter)
//    events on the deterministic sim-time grid.
//
// Wall-clock data only — the export is diagnostic output and is never
// determinism-compared (bench_diff ignores it; the deterministic counters
// live in the `event_profile` report section instead).
#pragma once

#include <cstddef>
#include <string>

namespace scion::obs {

class PhaseProfiler;
class EventProfiler;

struct ChromeTraceOptions {
  /// How many event labels (by handler wall time, descending) get aggregate
  /// slices; the rest still appear in the event_profile JSON section.
  std::size_t top_k_labels{12};
};

/// Renders the trace document from the two global profilers' current state.
std::string chrome_trace_json(const PhaseProfiler& phases,
                              const EventProfiler& events,
                              const ChromeTraceOptions& options = {});

/// Writes chrome_trace_json() to `path`; returns false (after printing to
/// stderr) if the file cannot be opened.
bool write_chrome_trace(const std::string& path,
                        const ChromeTraceOptions& options = {});

}  // namespace scion::obs
