#include "obs/alloc_track.hpp"

#include <cstdio>

#include "obs/event_profile.hpp"

#ifdef SCION_MPR_ALLOC_TRACK
#include <cstdlib>
#include <new>
#endif

#ifdef SCION_MPR_ALLOC_TRACK
namespace {

// Trivially-initialized TLS: safe to bump from the earliest allocation,
// including ones made while other thread_locals construct. File scope so
// both the scion::obs accessors and the global operator new can see them.
// Per-thread counters read back only by the owning thread
// (thread_allocs / thread_alloc_bytes).
thread_local std::uint64_t t_allocs = 0;       // simlint:allow(mutable-global)
thread_local std::uint64_t t_alloc_bytes = 0;  // simlint:allow(mutable-global)

void* counted_malloc(std::size_t size) noexcept {
  ++t_allocs;
  t_alloc_bytes += size;
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t align) noexcept {
  ++t_allocs;
  t_alloc_bytes += size;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) return nullptr;
  return p;
}

/// Standard throwing-new contract: retry through the installed new_handler
/// until it gives up.
template <typename Alloc>
void* alloc_or_throw(std::size_t size, Alloc alloc) {
  for (;;) {
    if (void* p = alloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

}  // namespace
#endif  // SCION_MPR_ALLOC_TRACK

namespace scion::obs {

std::uint64_t thread_allocs() {
#ifdef SCION_MPR_ALLOC_TRACK
  return t_allocs;
#else
  return 0;
#endif
}

std::uint64_t thread_alloc_bytes() {
#ifdef SCION_MPR_ALLOC_TRACK
  return t_alloc_bytes;
#else
  return 0;
#endif
}

AllocBudgetResult check_alloc_budget(std::string_view phase,
                                     std::uint64_t allocs,
                                     std::uint64_t events,
                                     double budget_per_event) {
  AllocBudgetResult out;
  out.per_event =
      events == 0 ? static_cast<double>(allocs)
                  : static_cast<double>(allocs) / static_cast<double>(events);
  out.ok = out.per_event <= budget_per_event;
  if (!out.ok) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "alloc budget exceeded in phase '%.*s': %.3f allocs/event "
                  "(%llu allocs / %llu events), budget %.3f",
                  static_cast<int>(phase.size()), phase.data(), out.per_event,
                  static_cast<unsigned long long>(allocs),
                  static_cast<unsigned long long>(events), budget_per_event);
    out.message = buf;
    // Point the breach at its handler: the event profiler knows which event
    // labels allocated the most during the measured run.
    const auto top = EventProfiler::global().top_allocating_labels(3);
    if (!top.empty()) {
      out.message += "; top allocating event labels:";
      for (std::size_t i = 0; i < top.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s %s (%llu allocs)",
                      i == 0 ? "" : ",", top[i].first.c_str(),
                      static_cast<unsigned long long>(top[i].second));
        out.message += buf;
      }
    }
  }
  return out;
}

}  // namespace scion::obs

#ifdef SCION_MPR_ALLOC_TRACK

// The global counting operator new/delete pair. Lives in scion_obs (which
// every binary links); the references to thread_allocs() from
// obs/profile.cpp and the budget tests pull this object file into each
// link, bringing the replacements along. Every new form counts; every
// delete form forwards straight to free (deallocation is not budgeted).

void* operator new(std::size_t size) {
  return alloc_or_throw(size, counted_malloc);
}
void* operator new[](std::size_t size) {
  return alloc_or_throw(size, counted_malloc);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return alloc_or_throw(size, [align](std::size_t n) {
    return counted_aligned(n, static_cast<std::size_t>(align));
  });
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return alloc_or_throw(size, [align](std::size_t n) {
    return counted_aligned(n, static_cast<std::size_t>(align));
  });
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // SCION_MPR_ALLOC_TRACK
