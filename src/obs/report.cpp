#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace scion::obs {

Table::Table(std::string title, std::vector<Column> columns)
    : title_{std::move(title)}, columns_{std::move(columns)} {}

Table& Table::row(std::vector<std::string> cells) {
  SCION_CHECK(cells.size() == columns_.size(),
              "table row must match column count");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = std::max<std::size_t>(
        static_cast<std::size_t>(std::max(columns_[c].min_width, 0)),
        columns_[c].header.size());
    for (const auto& cells : rows_) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  }

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  const auto emit_row = [&](const auto& cell_of) {
    std::string line = " ";  // two-space indent: " " + leading pad space
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = cell_of(c);
      const std::size_t pad = widths[c] > cell.size() ? widths[c] - cell.size() : 0;
      line += ' ';
      if (columns_[c].align == Align::kRight) line.append(pad, ' ');
      line += cell;
      if (columns_[c].align == Align::kLeft) line.append(pad, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  };
  emit_row([&](std::size_t c) -> const std::string& { return columns_[c].header; });
  for (const auto& cells : rows_) {
    emit_row([&](std::size_t c) -> const std::string& { return cells[c]; });
  }
  return out;
}

void Table::append_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("title", std::string_view{title_});
  w.key("columns").begin_array();
  for (const Column& c : columns_) w.value(std::string_view{c.header});
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& cells : rows_) {
    w.begin_object();
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      w.kv(columns_[c].header, std::string_view{cells[c]});
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }
std::string fmt_i64(std::int64_t v) { return std::to_string(v); }

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_g(double v, int sig) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", sig, v);
  return buf;
}

// The one place simulation-side code writes to stdout; everything routed
// here is also available as structured JSON, so raw prints elsewhere in
// src/ are flagged by simlint's raw-output rule.
void print(std::string_view text) {
  std::cout << text;  // simlint:allow(raw-output)
}

void print_line(std::string_view text) {
  std::cout << text << '\n';  // simlint:allow(raw-output)
}

void print_cdf(std::string_view name, const util::EmpiricalCdf& cdf,
               std::size_t points) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "  %-32s ", std::string{name}.c_str());
  std::string out = buf;
  out += cdf.summary();
  out += '\n';
  for (const auto& [x, f] : cdf.curve(points)) {
    std::snprintf(buf, sizeof buf, "    x=%-14.6g F(x)=%.3f\n", x, f);
    out += buf;
  }
  print(out);
}

void append_cdf_json(JsonWriter& w, const util::EmpiricalCdf& cdf,
                     std::size_t points) {
  w.begin_object();
  w.kv("summary", cdf.summary());
  w.key("curve").begin_array();
  for (const auto& [x, f] : cdf.curve(points)) {
    w.begin_array();
    w.value(x);
    w.value(f);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace scion::obs
