// Counting allocator for per-phase allocation budgets (the dynamic half of
// the hot-path cost layer; the static half is tools/simlint_hotpath.hpp).
//
// Under the SCION_MPR_ALLOC_TRACK build option, alloc_track.cpp replaces
// the global operator new/delete with a forwarding pair that bumps
// thread-local counters before delegating to malloc/free. ProfilePhase
// (obs/profile.hpp) snapshots the calling thread's counters at phase start
// and records the delta, so every BENCH_*.json "phases" entry carries
// "allocs"/"alloc_bytes" next to its wall time — the allocations-per-event
// budgets that tests/test_alloc_budget.cpp gates for the beaconing,
// control-plane, and BGP micro-runs.
//
// Determinism: counting is observational only. The counters never feed
// simulation state, virtual time, or RNG draws, so same-seed simulation
// output is byte-identical with tracking ON or OFF (tests/test_determinism
// runs either way). The counters are thread-local: a phase's delta counts
// the phase's own thread, which is exact for the single-threaded
// simulation loops the budgets gate (parallel-region workers profile their
// own task phases).
//
// Sanitizer note: -fsanitize=address intercepts the malloc this forwards
// to, so the two compose, but ASan's own new/delete hooks are shadowed;
// prefer SCION_MPR_ALLOC_TRACK=OFF for sanitizer CI legs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace scion::obs {

/// Whether the counting operator new/delete is compiled in.
constexpr bool alloc_tracking_enabled() {
#ifdef SCION_MPR_ALLOC_TRACK
  return true;
#else
  return false;
#endif
}

/// Operator-new calls (scalar/array, throwing/nothrow/aligned) made by the
/// calling thread so far. Monotonic; always 0 when tracking is compiled
/// out. Subtract two snapshots to cost a region.
std::uint64_t thread_allocs();

/// Bytes requested by those calls (requested, not malloc-rounded).
std::uint64_t thread_alloc_bytes();

struct AllocBudgetResult {
  bool ok{true};
  double per_event{0.0};
  /// On failure: names the phase, the per-event count, and the budget —
  /// the ctest gate prints this verbatim.
  std::string message;
};

/// Gates an allocations-per-event budget: ok iff allocs/events <= budget.
/// `events` of 0 passes only a zero-allocation phase. With tracking
/// compiled out the check degenerates to ok (allocs must be 0 then).
AllocBudgetResult check_alloc_budget(std::string_view phase,
                                     std::uint64_t allocs,
                                     std::uint64_t events,
                                     double budget_per_event);

}  // namespace scion::obs
