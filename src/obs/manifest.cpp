#include "obs/manifest.hpp"

#include "obs/json.hpp"
#include "util/flags.hpp"

// Build metadata is injected by src/obs/CMakeLists.txt; fall back to
// placeholders so the library still compiles standalone.
#ifndef SCION_MPR_GIT_SHA
#define SCION_MPR_GIT_SHA "unknown"
#endif
#ifndef SCION_MPR_BUILD_TYPE
#define SCION_MPR_BUILD_TYPE "unknown"
#endif
#ifndef SCION_MPR_SANITIZERS
#define SCION_MPR_SANITIZERS "off"
#endif

namespace scion::obs {

RunManifest RunManifest::capture(std::string_view binary,
                                 const util::Flags& flags,
                                 std::uint64_t seed) {
  RunManifest m;
  m.binary = std::string{binary};
  m.seed = seed;
  m.flags = flags.values();
  m.build_type = SCION_MPR_BUILD_TYPE;
  m.git_sha = SCION_MPR_GIT_SHA;
  m.sanitizers = SCION_MPR_SANITIZERS;
#ifdef SCION_MPR_CHECKED
  m.checked = true;
#else
  m.checked = false;
#endif
#ifdef SCION_MPR_OBS_ENABLED
  m.obs_enabled = true;
#else
  m.obs_enabled = false;
#endif
  return m;
}

void RunManifest::append_fields(JsonWriter& w) const {
  w.kv("binary", std::string_view{binary});
  w.kv("seed", seed);
  w.key("flags").begin_object();
  for (const auto& [k, v] : flags) w.kv(k, std::string_view{v});
  w.end_object();
  w.kv("build_type", std::string_view{build_type});
  w.kv("git_sha", std::string_view{git_sha});
  w.kv("sanitizers", std::string_view{sanitizers});
  w.kv("checked", checked);
  w.kv("obs_enabled", obs_enabled);
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  append_fields(w);
  w.end_object();
  return std::move(w).take();
}

}  // namespace scion::obs
