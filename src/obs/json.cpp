#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace scion::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.is_object) {
    SCION_CHECK(top.have_key, "JSON object value needs a preceding key()");
    top.have_key = false;
    return;  // key() already placed the comma
  }
  if (top.needs_comma) out_ += ',';
  top.needs_comma = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame{false, true, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SCION_CHECK(!stack_.empty() && stack_.back().is_object,
              "end_object without matching begin_object");
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame{false, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SCION_CHECK(!stack_.empty() && !stack_.back().is_object,
              "end_array without matching begin_array");
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SCION_CHECK(!stack_.empty() && stack_.back().is_object,
              "key() outside an object");
  Frame& top = stack_.back();
  SCION_CHECK(!top.have_key, "two key() calls without a value");
  if (top.needs_comma) out_ += ',';
  top.needs_comma = true;
  top.have_key = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters after document");
    }
    if (!error_.empty()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            const auto res = std::from_chars(text_.data() + pos_,
                                             text_.data() + pos_ + 4, code, 16);
            if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            pos_ += 4;
            // The writer only emits \u00xx for control characters.
            out += static_cast<char>(code & 0xFF);
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      JsonValue v;
      v.v = std::move(*s);
      return v;
    }
    if (literal("true")) return JsonValue{true};
    if (literal("false")) return JsonValue{false};
    if (literal("null")) return JsonValue{nullptr};
    // number
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return std::nullopt;
    }
    double num = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, num);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue{num};
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue{std::move(obj)};
    while (true) {
      skip_ws();
      auto k = parse_string();
      if (!k) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.emplace(std::move(*k), std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{std::move(obj)};
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue{std::move(arr)};
    while (true) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{std::move(arr)};
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = as_object();
  const auto it = obj.find(std::string{key});
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser{text}.parse(error);
}

}  // namespace scion::obs
