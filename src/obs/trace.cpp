#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace scion::obs {

namespace {

constexpr std::uint32_t kAllMask =
    (1u << static_cast<unsigned>(Category::kCount)) - 1;

// Process-wide sink pointer, installed once by ObsSession on the main
// thread before workers start and cleared after they join; workers only
// read it. simlint:allow(mutable-global)
TraceSink* g_sink = nullptr;
// Per-thread override for shard-local tracing; thread_local, so never
// shared between threads. simlint:allow(mutable-global)
thread_local TraceSink* t_sink_override = nullptr;

}  // namespace

const char* to_string(Category c) {
  switch (c) {
    case Category::kSimnet: return "simnet";
    case Category::kBeacon: return "beacon";
    case Category::kBgp: return "bgp";
    case Category::kScion: return "scion";
    case Category::kSig: return "sig";
    case Category::kExperiment: return "experiment";
    case Category::kFault: return "fault";
    case Category::kEvent: return "event";
    case Category::kCount: break;
  }
  return "?";
}

std::optional<Category> category_from_string(std::string_view name) {
  for (unsigned i = 0; i < static_cast<unsigned>(Category::kCount); ++i) {
    const auto c = static_cast<Category>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

TraceSink::TraceSink(std::ostream& out) : out_{out}, mask_{kAllMask} {}

void TraceSink::enable(Category c, bool on) {
  const std::uint32_t bit = 1u << static_cast<unsigned>(c);
  if (on) {
    mask_ |= bit;
  } else {
    mask_ &= ~bit;
  }
}

void TraceSink::enable_all() { mask_ = kAllMask; }
void TraceSink::disable_all() { mask_ = 0; }

bool TraceSink::set_filter(std::string_view csv) {
  if (csv.empty() || csv == "all") {
    enable_all();
    return true;
  }
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string_view::npos) end = csv.size();
    const std::string_view name = csv.substr(start, end - start);
    if (!name.empty()) {
      const std::optional<Category> c = category_from_string(name);
      if (!c) return false;
      mask |= 1u << static_cast<unsigned>(*c);
    }
    start = end + 1;
  }
  mask_ = mask;
  return true;
}

void TraceSink::event(util::TimePoint t, Category c, std::string_view name,
                      std::initializer_list<TraceField> fields) {
  if (!enabled(c)) return;
  JsonWriter w;
  w.begin_object();
  w.kv("t", t.ns());
  w.kv("cat", std::string_view{to_string(c)});
  w.kv("ev", name);
  for (const TraceField& f : fields) {
    w.key(f.key);
    switch (f.kind) {
      case TraceField::Kind::kInt: w.value(f.i); break;
      case TraceField::Kind::kUint: w.value(f.u); break;
      case TraceField::Kind::kDouble: w.value(f.d); break;
      case TraceField::Kind::kBool: w.value(f.b); break;
      case TraceField::Kind::kString: w.value(std::string_view{f.s}); break;
    }
  }
  w.end_object();
  out_ << w.str() << '\n';
  ++events_written_;
}

void TraceSink::write_raw(std::string_view text, std::uint64_t events) {
  out_ << text;
  events_written_ += events;
}

TraceSink* trace_sink() {
  return t_sink_override != nullptr ? t_sink_override : g_sink;
}

void set_trace_sink(TraceSink* sink) { g_sink = sink; }

TraceSink* set_thread_trace_override(TraceSink* sink) {
  TraceSink* prev = t_sink_override;
  t_sink_override = sink;
  return prev;
}

}  // namespace scion::obs
