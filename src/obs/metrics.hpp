// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// This is the write-only half of the telemetry layer (the Contrail-style
// registry-of-counters pattern): simulation code records through the
// SCION_METRIC_* macros below, and nothing in the simulation ever reads a
// metric back, so recording cannot perturb simulation state — the
// determinism property test_determinism proves end to end. When the build
// sets SCION_MPR_OBS=OFF the macros expand to empty statements and their
// argument expressions are not evaluated at all.
//
// Instances live in the process-wide registry (MetricsRegistry::global()).
// Names are dotted paths, subsystem first ("beacon.pcbs_sent"); the macro
// interns a dense handle per call site, so steady-state recording is one
// thread-local load plus an add on a 64-bit slot. reset() zeroes values but
// never removes a registration, which keeps interned handles valid.
//
// Parallel execution (src/exec): recording is routed through a thread-local
// MetricShard while a task capture is active (exec::TaskPool installs one
// around every task). Shards are merged into their parent context in task
// *index* order, never in worker or completion order, so the registry
// contents — including floating-point histogram sums — are byte-identical
// for any --jobs value. Registration itself is mutex-protected (it happens
// once per call site); the steady-state record path takes no lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_safety.hpp"

namespace scion::obs {

class Counter {
 public:
  void add(std::uint64_t delta) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// A last-written-wins (set) or high-water (set_max) instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void set_max(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_{0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with total count and sum (Prometheus-style cumulative export).
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Power-of-two bounds 1, 2, 4, ... 65536 — a serviceable default for
  /// message sizes, queue depths, and path lengths.
  static std::vector<double> default_bounds();

  void observe(double v);

  /// Folds pre-bucketed counts from a shard in (bucket layout must match).
  void absorb(const std::vector<std::uint64_t>& bucket_counts,
              std::uint64_t count, double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count per bucket; [bounds().size()] is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// Dense per-kind metric id plus the root object, interned once per macro
/// call site. The root pointer stays valid forever (std::map nodes are
/// stable; reset() keeps registrations).
struct CounterHandle {
  std::size_t id{0};
  Counter* root{nullptr};
};
struct GaugeHandle {
  std::size_t id{0};
  Gauge* root{nullptr};
};
struct HistogramHandle {
  std::size_t id{0};
  Histogram* root{nullptr};
};

class MetricShard;

class MetricsRegistry {
 public:
  /// The process-wide registry used by the SCION_METRIC_* macros.
  static MetricsRegistry& global();

  /// Finds or creates. References stay valid for the registry's lifetime
  /// (std::map nodes are stable; reset() keeps registrations). Thread-safe.
  Counter& counter(std::string_view name) SCION_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) SCION_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) SCION_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      SCION_EXCLUDES(mu_);

  /// Finds-or-creates *and* assigns a dense id usable in MetricShards.
  /// Thread-safe; called once per macro call site (magic static).
  CounterHandle intern_counter(std::string_view name) SCION_EXCLUDES(mu_);
  GaugeHandle intern_gauge(std::string_view name) SCION_EXCLUDES(mu_);
  HistogramHandle intern_histogram(std::string_view name) SCION_EXCLUDES(mu_);

  /// Read-side accessors; call from the owning (main) thread only, with no
  /// parallel region in flight — a quiescence argument the lock analysis
  /// cannot see, hence the explicit opt-out.
  const std::map<std::string, Counter, std::less<>>& counters() const
      SCION_NO_THREAD_SAFETY_ANALYSIS {
    return counter_map_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const
      SCION_NO_THREAD_SAFETY_ANALYSIS {
    return gauge_map_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const
      SCION_NO_THREAD_SAFETY_ANALYSIS {
    return histogram_map_;
  }

  /// Zeroes every value; registrations (ids, handles) survive.
  void reset() SCION_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys in
  /// name order.
  std::string to_json() const SCION_EXCLUDES(mu_);

 private:
  friend class MetricShard;

  // Guards registration (maps + slot vectors), not the metric values
  // themselves: value mutation goes through shards or happens
  // single-threaded. mutable so const reporting (to_json) can lock.
  mutable util::Mutex mu_;
  std::map<std::string, Counter, std::less<>> counter_map_
      SCION_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauge_map_ SCION_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histogram_map_
      SCION_GUARDED_BY(mu_);
  // id -> root object, for shard merges; appended under mu_ at intern time.
  std::vector<Counter*> counter_slots_ SCION_GUARDED_BY(mu_);
  std::vector<Gauge*> gauge_slots_ SCION_GUARDED_BY(mu_);
  std::vector<Histogram*> histogram_slots_ SCION_GUARDED_BY(mu_);
  std::map<std::string, std::size_t, std::less<>> counter_ids_
      SCION_GUARDED_BY(mu_);
  std::map<std::string, std::size_t, std::less<>> gauge_ids_
      SCION_GUARDED_BY(mu_);
  std::map<std::string, std::size_t, std::less<>> histogram_ids_
      SCION_GUARDED_BY(mu_);
};

/// One task's private metric buffer. All SCION_METRIC_* recording on a
/// thread goes to the installed shard (see set_current_shard); the task
/// pool merges shards in task-index order, so parallel runs accumulate
/// metrics in exactly the order a --jobs=1 run would.
class MetricShard {
 public:
  bool empty() const {
    return counter_deltas_.empty() && gauge_ops_.empty() && hists_.empty();
  }

  void count(std::size_t id, std::uint64_t delta);
  void gauge_set(std::size_t id, std::int64_t v);
  void gauge_max(std::size_t id, std::int64_t v);
  void observe(const HistogramHandle& h, double v);

  /// Folds this shard into an enclosing task's shard (nested parallelism),
  /// preserving gauge-op order.
  void merge_into_shard(MetricShard& parent) const;

  /// Folds this shard into the global registry's root objects.
  void merge_into_registry() const;

 private:
  struct GaugeOp {
    std::size_t id;
    std::int64_t value;
    bool is_max;
  };
  struct HistShard {
    std::vector<std::uint64_t> counts;  // empty until first observe
    std::uint64_t count{0};
    double sum{0.0};
  };

  std::vector<std::uint64_t> counter_deltas_;  // by id; delta accumulated
  std::vector<GaugeOp> gauge_ops_;       // in record order
  std::vector<HistShard> hists_;         // by id
};

/// The shard capturing this thread's recordings, nullptr when recording
/// goes straight to the registry roots (the single-threaded default).
MetricShard* current_shard();
/// Installs `shard` (nullptr to uninstall) and returns the previous one.
MetricShard* set_current_shard(MetricShard* shard);

/// Dispatchers behind the macros: shard if one is installed, root otherwise.
void record_count(const CounterHandle& h, std::uint64_t delta);
void record_gauge_set(const GaugeHandle& h, std::int64_t v);
void record_gauge_max(const GaugeHandle& h, std::int64_t v);
void record_observe(const HistogramHandle& h, double v);

}  // namespace scion::obs

// --- recording macros --------------------------------------------------------
//
// `name` must be a string literal (it keys the per-call-site handle cache).
#ifdef SCION_MPR_OBS_ENABLED

#define SCION_METRIC_COUNT(name, delta)                                        \
  do {                                                                         \
    static const ::scion::obs::CounterHandle scion_metric_handle_ =            \
        ::scion::obs::MetricsRegistry::global().intern_counter(name);          \
    ::scion::obs::record_count(scion_metric_handle_,                           \
                               static_cast<std::uint64_t>(delta));             \
  } while (0)

#define SCION_METRIC_GAUGE_SET(name, v)                                        \
  do {                                                                         \
    static const ::scion::obs::GaugeHandle scion_metric_handle_ =              \
        ::scion::obs::MetricsRegistry::global().intern_gauge(name);            \
    ::scion::obs::record_gauge_set(scion_metric_handle_,                       \
                                   static_cast<std::int64_t>(v));              \
  } while (0)

#define SCION_METRIC_GAUGE_MAX(name, v)                                        \
  do {                                                                         \
    static const ::scion::obs::GaugeHandle scion_metric_handle_ =              \
        ::scion::obs::MetricsRegistry::global().intern_gauge(name);            \
    ::scion::obs::record_gauge_max(scion_metric_handle_,                       \
                                   static_cast<std::int64_t>(v));              \
  } while (0)

#define SCION_METRIC_OBSERVE(name, v)                                         \
  do {                                                                        \
    static const ::scion::obs::HistogramHandle scion_metric_handle_ =         \
        ::scion::obs::MetricsRegistry::global().intern_histogram(name);       \
    ::scion::obs::record_observe(scion_metric_handle_,                        \
                                 static_cast<double>(v));                     \
  } while (0)

#else  // telemetry compiled out: no-ops, arguments never evaluated
       // (sizeof keeps them type-checked and their operands "used" without
       // generating any code)

#define SCION_METRIC_COUNT(name, delta) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(delta);                \
  } while (0)
#define SCION_METRIC_GAUGE_SET(name, v) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(v);                    \
  } while (0)
#define SCION_METRIC_GAUGE_MAX(name, v) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(v);                    \
  } while (0)
#define SCION_METRIC_OBSERVE(name, v) \
  do {                                \
    (void)sizeof(name);               \
    (void)sizeof(v);                  \
  } while (0)

#endif  // SCION_MPR_OBS_ENABLED
