// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// This is the write-only half of the telemetry layer (the Contrail-style
// registry-of-counters pattern): simulation code records through the
// SCION_METRIC_* macros below, and nothing in the simulation ever reads a
// metric back, so recording cannot perturb simulation state — the
// determinism property test_determinism proves end to end. When the build
// sets SCION_MPR_OBS=OFF the macros expand to empty statements and their
// argument expressions are not evaluated at all.
//
// Instances live in the process-wide registry (MetricsRegistry::global()).
// Names are dotted paths, subsystem first ("beacon.pcbs_sent"); the macro
// caches the resolved handle per call site, so steady-state recording is a
// single add on a 64-bit slot. reset() zeroes values but never removes a
// registration, which keeps cached handles valid. Single-threaded by
// design, like the simulator itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace scion::obs {

class Counter {
 public:
  void add(std::uint64_t delta) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// A last-written-wins (set) or high-water (set_max) instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void set_max(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_{0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with total count and sum (Prometheus-style cumulative export).
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Power-of-two bounds 1, 2, 4, ... 65536 — a serviceable default for
  /// message sizes, queue depths, and path lengths.
  static std::vector<double> default_bounds();

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count per bucket; [bounds().size()] is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  double sum_{0.0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry used by the SCION_METRIC_* macros.
  static MetricsRegistry& global();

  /// Finds or creates. References stay valid for the registry's lifetime
  /// (std::map nodes are stable; reset() keeps registrations).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counter_map_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauge_map_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histogram_map_;
  }

  /// Zeroes every value; registrations (and handles) survive.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys in
  /// name order.
  std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counter_map_;
  std::map<std::string, Gauge, std::less<>> gauge_map_;
  std::map<std::string, Histogram, std::less<>> histogram_map_;
};

}  // namespace scion::obs

// --- recording macros --------------------------------------------------------
//
// `name` must be a string literal (it keys the per-call-site handle cache).
#ifdef SCION_MPR_OBS_ENABLED

#define SCION_METRIC_COUNT(name, delta)                                        \
  do {                                                                         \
    static ::scion::obs::Counter& scion_metric_handle_ =                       \
        ::scion::obs::MetricsRegistry::global().counter(name);                 \
    scion_metric_handle_.add(static_cast<std::uint64_t>(delta));               \
  } while (0)

#define SCION_METRIC_GAUGE_SET(name, v)                                        \
  do {                                                                         \
    static ::scion::obs::Gauge& scion_metric_handle_ =                         \
        ::scion::obs::MetricsRegistry::global().gauge(name);                   \
    scion_metric_handle_.set(static_cast<std::int64_t>(v));                    \
  } while (0)

#define SCION_METRIC_GAUGE_MAX(name, v)                                        \
  do {                                                                         \
    static ::scion::obs::Gauge& scion_metric_handle_ =                         \
        ::scion::obs::MetricsRegistry::global().gauge(name);                   \
    scion_metric_handle_.set_max(static_cast<std::int64_t>(v));                \
  } while (0)

#define SCION_METRIC_OBSERVE(name, v)                                         \
  do {                                                                         \
    static ::scion::obs::Histogram& scion_metric_handle_ =                     \
        ::scion::obs::MetricsRegistry::global().histogram(name);               \
    scion_metric_handle_.observe(static_cast<double>(v));                      \
  } while (0)

#else  // telemetry compiled out: no-ops, arguments never evaluated
       // (sizeof keeps them type-checked and their operands "used" without
       // generating any code)

#define SCION_METRIC_COUNT(name, delta) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(delta);                \
  } while (0)
#define SCION_METRIC_GAUGE_SET(name, v) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(v);                    \
  } while (0)
#define SCION_METRIC_GAUGE_MAX(name, v) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(v);                    \
  } while (0)
#define SCION_METRIC_OBSERVE(name, v) \
  do {                                \
    (void)sizeof(name);               \
    (void)sizeof(v);                  \
  } while (0)

#endif  // SCION_MPR_OBS_ENABLED
