// Path-quality evaluation (Section 5.3): failure resilience and maximum
// capacity of a disseminated path set, compared to the optimum achievable
// on the full topology.
//
// As the paper notes, with unit link capacities the two metrics coincide on
// a given graph (max-flow = min-cut): the minimum number of failing links
// that disconnects a pair equals the maximum number of link-disjoint unit
// flows. The per-algorithm value is computed on the union of that
// algorithm's disseminated paths; the optimum on the full topology.
#pragma once

#include <span>
#include <vector>

#include "analysis/maxflow.hpp"

namespace scion::analysis {

class QualityEvaluator {
 public:
  explicit QualityEvaluator(const topo::Topology& topo)
      : topo_{topo}, full_{FlowGraph::from_topology(topo)} {}

  /// Optimal (full-topology) min-cut / max-flow between two ASes.
  ///
  /// NOT thread-safe: Dinic's search mutates the shared full-topology graph
  /// (levels, iterators, capacities). Parallel callers copy full_graph()
  /// into a task-local FlowGraph and run max_flow on the copy instead.
  int optimal(topo::AsIndex s, topo::AsIndex t) { return full_.max_flow(s, t); }

  /// Min-cut / max-flow restricted to the union of `paths`. Thread-safe:
  /// builds a fresh flow graph per call, so one evaluator may be shared by
  /// concurrent tasks.
  int of_paths(std::span<const std::vector<topo::LinkIndex>> paths,
               topo::AsIndex s, topo::AsIndex t) const;

  /// The full-topology flow network, for per-task copies (FlowGraph is a
  /// plain value type; a copy carries no shared state).
  const FlowGraph& full_graph() const { return full_; }

  /// Greedy count of mutually link-disjoint paths within `paths` — a lower
  /// bound on of_paths() that only uses whole disseminated paths (no
  /// crossover between path prefixes); exposed for the ablation comparing
  /// the two notions of resilience.
  static int disjoint_paths_greedy(
      std::span<const std::vector<topo::LinkIndex>> paths);

  const topo::Topology& topology() const { return topo_; }

 private:
  const topo::Topology& topo_;
  FlowGraph full_;
};

}  // namespace scion::analysis
