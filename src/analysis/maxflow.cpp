#include "analysis/maxflow.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace scion::analysis {

FlowGraph::FlowGraph(std::size_t n_nodes) : graph_(n_nodes) {}

void FlowGraph::add_undirected_unit_edge(std::uint32_t u, std::uint32_t v) {
  SCION_CHECK(u < graph_.size() && v < graph_.size() && u != v,
              "edge endpoints must be distinct existing nodes");
  // An undirected unit edge is the arc pair (u->v, v->u) with capacity 1
  // each, where each arc doubles as the other's residual.
  graph_[u].push_back(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{v, 1, 1});
  graph_[v].push_back(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{u, 1, 1});
}

void FlowGraph::add_directed_unit_edge(std::uint32_t u, std::uint32_t v) {
  SCION_CHECK(u < graph_.size() && v < graph_.size() && u != v,
              "edge endpoints must be distinct existing nodes");
  graph_[u].push_back(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{v, 1, 1});
  graph_[v].push_back(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{u, 0, 0});
}

void FlowGraph::reset_capacities() {
  for (Edge& e : edges_) e.capacity = e.initial_capacity;
}

bool FlowGraph::bfs(std::uint32_t s, std::uint32_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::uint32_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t idx : graph_[u]) {
      const Edge& e = edges_[idx];
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

int FlowGraph::dfs(std::uint32_t u, std::uint32_t t, int pushed) {
  if (u == t) return pushed;
  for (std::uint32_t& i = iter_[u]; i < graph_[u].size(); ++i) {
    const std::uint32_t idx = graph_[u][i];
    Edge& e = edges_[idx];
    if (e.capacity <= 0 || level_[e.to] != level_[u] + 1) continue;
    const int d = dfs(e.to, t, std::min(pushed, e.capacity));
    if (d > 0) {
      e.capacity -= d;
      edges_[idx ^ 1].capacity += d;  // paired arc is the residual
      return d;
    }
  }
  return 0;
}

int FlowGraph::max_flow(std::uint32_t s, std::uint32_t t) {
  SCION_CHECK(s < graph_.size() && t < graph_.size(), "terminal out of range");
  if (s == t) return 0;
  reset_capacities();
  int flow = 0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (const int pushed = dfs(s, t, 1 << 30)) flow += pushed;
  }
  return flow;
}

FlowGraph FlowGraph::from_topology(const topo::Topology& topo) {
  FlowGraph g{topo.as_count()};
  for (topo::LinkIndex l = 0; l < topo.link_count(); ++l) {
    const topo::Link& link = topo.link(l);
    g.add_undirected_unit_edge(link.a, link.b);
  }
  return g;
}

FlowGraph FlowGraph::from_link_paths(
    const topo::Topology& topo,
    std::span<const std::vector<topo::LinkIndex>> paths) {
  FlowGraph g{topo.as_count()};
  std::unordered_set<topo::LinkIndex> seen;
  for (const auto& path : paths) {
    for (topo::LinkIndex l : path) {
      if (!seen.insert(l).second) continue;
      const topo::Link& link = topo.link(l);
      g.add_undirected_unit_edge(link.a, link.b);
    }
  }
  return g;
}

}  // namespace scion::analysis
