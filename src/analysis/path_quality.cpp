#include "analysis/path_quality.hpp"

#include <algorithm>
#include <unordered_set>

namespace scion::analysis {

int QualityEvaluator::of_paths(
    std::span<const std::vector<topo::LinkIndex>> paths, topo::AsIndex s,
    topo::AsIndex t) const {
  if (paths.empty()) return 0;
  FlowGraph g = FlowGraph::from_link_paths(topo_, paths);
  return g.max_flow(s, t);
}

int QualityEvaluator::disjoint_paths_greedy(
    std::span<const std::vector<topo::LinkIndex>> paths) {
  // Order shortest-first, then greedily accept paths that share no link
  // with anything accepted so far.
  std::vector<const std::vector<topo::LinkIndex>*> order;
  order.reserve(paths.size());
  for (const auto& p : paths) order.push_back(&p);
  std::stable_sort(order.begin(), order.end(),
                   [](const auto* x, const auto* y) {
                     return x->size() < y->size();
                   });
  std::unordered_set<topo::LinkIndex> used;
  int count = 0;
  for (const auto* p : order) {
    const bool clash = std::any_of(p->begin(), p->end(), [&](topo::LinkIndex l) {
      return used.contains(l);
    });
    if (clash) continue;
    used.insert(p->begin(), p->end());
    ++count;
  }
  return count;
}

}  // namespace scion::analysis
