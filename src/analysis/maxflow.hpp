// Unit-capacity max-flow / min-cut on the AS-level multigraph (Dinic's
// algorithm).
//
// Both path-quality metrics of Section 5.3 reduce to s-t max-flow with unit
// edge capacities over inter-AS links:
//  - Failure resilience: the minimum number of link failures disconnecting
//    two ASes equals the min edge cut (Menger's theorem).
//  - Maximum capacity in multiples of inter-AS link capacity: the max number
//    of link-disjoint unit flows.
// The "optimum" series evaluates the full topology; the per-algorithm series
// evaluate the subgraph formed by the union of the disseminated paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/topology.hpp"

namespace scion::analysis {

/// A flow network over AS indices; edges are added individually (parallel
/// edges allowed, each a separate unit of capacity).
class FlowGraph {
 public:
  explicit FlowGraph(std::size_t n_nodes);

  /// Adds an undirected unit-capacity edge (both directions usable, but a
  /// physical link carries one unit total, matching a physical inter-AS
  /// link that can be part of one disjoint path).
  void add_undirected_unit_edge(std::uint32_t u, std::uint32_t v);

  /// Adds a directed unit-capacity edge.
  void add_directed_unit_edge(std::uint32_t u, std::uint32_t v);

  /// Max s-t flow; the graph is reset before computing, so the call is
  /// repeatable with different terminals.
  int max_flow(std::uint32_t s, std::uint32_t t);

  std::size_t node_count() const { return graph_.size(); }
  std::size_t edge_count() const { return edges_.size() / 2; }

  /// Builds a flow graph over all ASes of `topo` with one undirected unit
  /// edge per inter-AS link.
  static FlowGraph from_topology(const topo::Topology& topo);

  /// Builds a flow graph containing only the links in the union of `paths`
  /// (each path a sequence of LinkIndex values into `topo`); each distinct
  /// link contributes one unit edge.
  static FlowGraph from_link_paths(
      const topo::Topology& topo,
      std::span<const std::vector<topo::LinkIndex>> paths);

 private:
  struct Edge {
    std::uint32_t to;
    int capacity;
    int initial_capacity;
  };

  bool bfs(std::uint32_t s, std::uint32_t t);
  int dfs(std::uint32_t u, std::uint32_t t, int pushed);
  void reset_capacities();

  std::vector<Edge> edges_;
  std::vector<std::vector<std::uint32_t>> graph_;  // node -> edge indices
  std::vector<int> level_;
  std::vector<std::uint32_t> iter_;
};

}  // namespace scion::analysis
