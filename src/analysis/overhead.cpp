#include "analysis/overhead.hpp"

#include "obs/report.hpp"
#include "util/check.hpp"

namespace scion::analysis {

const char* to_string(Scope s) {
  switch (s) {
    case Scope::kIntraAs:
      return "AS";
    case Scope::kIntraIsd:
      return "ISD";
    case Scope::kGlobal:
      return "Global";
  }
  return "?";
}

const char* to_string(Frequency f) {
  switch (f) {
    case Frequency::kSeconds:
      return "Seconds";
    case Frequency::kMinutes:
      return "Minutes";
    case Frequency::kHours:
      return "Hours";
  }
  return "?";
}

void OverheadLedger::record(const std::string& component, Scope scope,
                            util::Bytes bytes, bool counts_as_operation) {
  Row& row = rows_[component];
  row.component = component;
  ++row.messages;
  if (counts_as_operation) ++row.operations;
  row.bytes += bytes;
  ++row.messages_by_scope[static_cast<std::size_t>(scope)];
}

void OverheadLedger::record_operation(const std::string& component) {
  Row& row = rows_[component];
  row.component = component;
  ++row.operations;
}

Scope OverheadLedger::Row::scope() const {
  if (messages_by_scope[static_cast<std::size_t>(Scope::kGlobal)] > 0)
    return Scope::kGlobal;
  if (messages_by_scope[static_cast<std::size_t>(Scope::kIntraIsd)] > 0)
    return Scope::kIntraIsd;
  return Scope::kIntraAs;
}

Frequency OverheadLedger::Row::frequency(util::Duration window,
                                         std::uint64_t participants) const {
  SCION_CHECK(window > util::Duration::zero(), "measurement window must be positive");
  if (participants == 0) participants = 1;
  const double per_participant_per_hour =
      static_cast<double>(operations) / static_cast<double>(participants) /
      window.as_hours();
  if (per_participant_per_hour > 60.0) return Frequency::kSeconds;
  if (per_participant_per_hour > 1.0) return Frequency::kMinutes;
  return Frequency::kHours;
}

std::vector<OverheadLedger::Row> OverheadLedger::rows() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [name, row] : rows_) out.push_back(row);
  return out;
}

util::Bytes OverheadLedger::total_bytes() const {
  util::Bytes total{};
  for (const auto& [name, row] : rows_) total += row.bytes;
  return total;
}

obs::Table OverheadLedger::table(const std::string& title,
                                 util::Duration window,
                                 std::uint64_t participants) const {
  obs::Table t{title + " (window " + window.to_string() + ", " +
                   std::to_string(participants) + " participants)",
               {obs::Column{"Component", obs::Align::kLeft, 28},
                obs::Column{"Scope", obs::Align::kLeft, 7},
                obs::Column{"Freq", obs::Align::kLeft, 8},
                obs::Column{"Messages", obs::Align::kRight, 12},
                obs::Column{"Bytes", obs::Align::kRight, 14}}};
  for (const Row& row : rows()) {
    t.row({row.component, to_string(row.scope()),
           to_string(row.frequency(window, participants)),
           obs::fmt_u64(row.messages), obs::fmt_u64(row.bytes.value())});
  }
  return t;
}

void OverheadLedger::print(const std::string& title, util::Duration window,
                           std::uint64_t participants) const {
  obs::print(table(title, window, participants).to_text());
}

double extrapolate_to_month(util::Bytes bytes, util::Duration window) {
  SCION_CHECK(window > util::Duration::zero(), "measurement window must be positive");
  const double month_hours = 30.0 * 24.0;
  return static_cast<double>(bytes.value()) * (month_hours / window.as_hours());
}

}  // namespace scion::analysis
