// Control-plane overhead accounting.
//
// The ledger records every control-plane message with its component label,
// scope (how far it travelled in the routing hierarchy) and wire size, and
// renders the scope x frequency table of the paper's Table 1 alongside
// absolute byte counts. The month-extrapolation helper implements the
// Fig. 5 methodology: beaconing is periodic, so a simulated window scales
// linearly to a month.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace scion::obs {
class Table;
}

namespace scion::analysis {

/// How far a control-plane message travels (Table 1 "Scope").
enum class Scope : std::uint8_t { kIntraAs, kIntraIsd, kGlobal };

const char* to_string(Scope s);

/// Order-of-magnitude message frequency (Table 1 "Frequency").
enum class Frequency : std::uint8_t { kSeconds, kMinutes, kHours };

const char* to_string(Frequency f);

class OverheadLedger {
 public:
  /// Records one message. By default the message also counts as one
  /// operation of the component; pass `counts_as_operation = false` for
  /// components whose operation granularity is coarser than its messages
  /// (one beaconing interval emits many PCBs) and use record_operation().
  void record(const std::string& component, Scope scope, util::Bytes bytes,
              bool counts_as_operation = true);

  /// Records one operation occurrence without bytes (e.g. one beaconing
  /// interval at one AS).
  void record_operation(const std::string& component);

  struct Row {
    std::string component;
    std::uint64_t messages{0};
    std::uint64_t operations{0};
    util::Bytes bytes{};
    std::uint64_t messages_by_scope[3]{0, 0, 0};
    /// Widest scope observed for this component.
    Scope scope() const;
    /// Frequency class (per participant) given the observation window,
    /// derived from operation occurrences.
    Frequency frequency(util::Duration window, std::uint64_t participants) const;
  };

  std::vector<Row> rows() const;
  util::Bytes total_bytes() const;

  /// The measured scope/frequency table, ready for text or JSON rendering.
  obs::Table table(const std::string& title, util::Duration window,
                   std::uint64_t participants) const;

  /// Prints the measured scope/frequency table.
  void print(const std::string& title, util::Duration window,
             std::uint64_t participants) const;

 private:
  std::map<std::string, Row> rows_;
};

/// Scales a byte count measured over `window` to a 30-day month (Fig. 5
/// leverages the periodicity of announcements the same way).
double extrapolate_to_month(util::Bytes bytes, util::Duration window);

}  // namespace scion::analysis
