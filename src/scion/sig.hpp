// SCION-IP Gateway (Section 3.4, deployment cases b and c).
//
// The SIG lets legacy IP hosts use SCION transparently: it maps the
// destination IP address to a SCION AS via the ASMap table, obtains paths
// from the control service, encapsulates the IP packet in a SCION header,
// and forwards it; revocations trigger immediate failover on the cached
// path set. A carrier-grade SIG (CGSIG) is the same machine placed in the
// provider's AS, aggregating traffic for customers that stay entirely
// SCION-unaware.
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <vector>

#include "scion/control_plane_sim.hpp"
#include "scion/scmp.hpp"

namespace scion::svc {

/// An IPv4 prefix (address/length).
struct IpPrefix {
  std::uint32_t address{0};
  std::uint8_t length{0};

  bool contains(std::uint32_t addr) const {
    if (length == 0) return true;
    const std::uint32_t mask = length >= 32 ? ~0u : ~0u << (32 - length);
    return (addr & mask) == (address & mask);
  }

  /// Parses dotted-quad/len, e.g. "10.1.0.0/16"; nullopt on bad input.
  static std::optional<IpPrefix> parse(const std::string& text);
};

/// Renders an IPv4 address dotted-quad.
std::string ip_to_string(std::uint32_t addr);

/// The ASMap table: IP prefix -> SCION AS (longest-prefix match), the
/// mapping database the SIG consults for every outgoing packet.
class AsMapTable {
 public:
  void add(IpPrefix prefix, topo::IsdAsId as);

  /// Longest-prefix match; nullopt when no mapping covers the address.
  std::optional<topo::IsdAsId> lookup(std::uint32_t addr) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    IpPrefix prefix;
    topo::IsdAsId as;
  };
  std::vector<Entry> entries_;  // kept sorted by descending prefix length
};

/// Encapsulation overhead the SIG adds to an IP packet: the SCION common
/// header and path (variable) plus the SIG framing (4-byte stream header).
inline constexpr util::Bytes kSigFramingBytes{4};

struct SigStats {
  std::uint64_t packets_in{0};
  std::uint64_t packets_delivered{0};
  std::uint64_t packets_dropped_no_mapping{0};
  std::uint64_t packets_dropped_no_path{0};
  util::Bytes bytes_in{};
  util::Bytes bytes_on_wire{};
  std::uint64_t path_resolutions{0};
  std::uint64_t failovers{0};
};

class Sig {
 public:
  /// `local_as` is where the SIG sits: the customer's own AS (CPE
  /// deployment, case b) or the provider's AS (carrier-grade, case c).
  Sig(ControlPlaneSim& control_plane, topo::AsIndex local_as)
      : control_plane_{control_plane}, local_as_{local_as} {}

  AsMapTable& asmap() { return asmap_; }

  /// Result of pushing one IP packet through the gateway.
  struct EncapResult {
    bool delivered{false};
    /// Total bytes on the SCION wire (payload + headers), 0 if dropped.
    util::Bytes wire_bytes{};
    /// The remote AS the packet was tunnelled to.
    topo::AsIndex remote_as{topo::kInvalidAsIndex};
    std::string error;
  };

  /// Encapsulates and forwards an IP packet of `payload_bytes` addressed
  /// to `dst_ip`. Paths are resolved on first use per remote AS and cached
  /// in a PathManager; forwarding honors current link state.
  EncapResult send_ip_packet(std::uint32_t dst_ip, util::Bytes payload_bytes);

  /// Processes an SCMP revocation: all cached path sets fail over away
  /// from the revoked link.
  void handle_revocation(topo::LinkIndex failed_link);

  /// Re-enables paths over a restored link in all cached path sets.
  void handle_restoration(topo::LinkIndex link);

  const SigStats& stats() const { return stats_; }

 private:
  PathManager* paths_for(topo::AsIndex remote_as);

  ControlPlaneSim& control_plane_;
  topo::AsIndex local_as_;
  AsMapTable asmap_;
  /// Ordered: handle_revocation()/handle_restoration() walk every manager
  /// and mutate failover state, so iteration order is output-relevant.
  std::map<topo::AsIndex, PathManager> path_cache_;
  SigStats stats_;
};

}  // namespace scion::svc
