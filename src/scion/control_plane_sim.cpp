#include "scion/control_plane_sim.hpp"

#include "obs/event_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

#include <algorithm>

namespace scion::svc {

namespace {

constexpr std::uint64_t kKeyDomain = crypto::kDefaultKeyDomainSeed;

/// Decorrelates the injector's RNG stream from the simulation's own when
/// both derive from the same config seed.
constexpr std::uint64_t kFaultSeedMix = 0x9E3779B97F4A7C15ULL;

// Event-cost attribution labels (interned once at static init).
const obs::EventLabel kPropagateLabel = obs::event_label("beacon.propagate");
const obs::EventLabel kIntervalLabel = obs::event_label("beacon.interval");
const obs::EventLabel kRegistrationLabel =
    obs::event_label("path.registration");
const obs::EventLabel kRegisterDownLabel =
    obs::event_label("path.register_down");
const obs::EventLabel kLookupLabel = obs::event_label("path.lookup");
const obs::EventLabel kReoriginLabel = obs::event_label("beacon.reorigin");

/// Folded into the sim seed for the reorigination jitter streams, so they
/// are decorrelated from every other use of the seed without consuming the
/// constructor RNG (which would shift all existing baselines).
constexpr std::uint64_t kReoriginSeedMix = 0xB5297A4D3C5B9BD5ULL;

}  // namespace

ControlPlaneSim::ControlPlaneSim(const topo::Topology& topology,
                                 ControlPlaneSimConfig config)
    : topology_{topology}, config_{config}, net_{sim_}, rng_{config.seed} {
  keys_ = std::make_unique<crypto::KeyStore>(kKeyDomain);
  dataplane_ = std::make_unique<DataPlane>(topology_, kKeyDomain);

  // Nodes + channels (NodeId == AsIndex, ChannelId == LinkIndex by
  // construction; node_of()/channel_of() spell the mapping out).
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    const sim::NodeId node = net_.add_node(topology_.as_id(i).to_string());
    SCION_CHECK(node == node_of(i), "node ids must mirror AS indices");
    (void)node;
  }
  for (topo::LinkIndex l = 0; l < topology_.link_count(); ++l) {
    const topo::Link& link = topology_.link(l);
    const auto latency =
        util::Duration::milliseconds(rng_.uniform_int(2, 30));
    const sim::ChannelId ch =
        net_.add_channel(node_of(link.a), node_of(link.b), latency);
    SCION_CHECK(ch == channel_of(l), "channel ids must mirror link indices");
    (void)ch;
  }

  // ISD structure. ISD numbers are 1-based; cores_by_isd_ is the dense
  // per-ISD index, so IsdId -> slot goes through isd_slot().
  topo::IsdId max_isd{};
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    max_isd = std::max(max_isd, topology_.as_id(i).isd());
  }
  cores_by_isd_.resize(max_isd.value());
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    if (topology_.is_core(i)) {
      cores_by_isd_[isd_slot(topology_.as_id(i).isd())].push_back(i);
    } else {
      leaves_.push_back(i);
    }
  }

  // Beacon servers: core-mode at core ASes, intra-mode everywhere (cores
  // originate towards customers, non-cores relay to theirs). PCB sends are
  // recorded in the ledger with the scope of the traversed link.
  ctrl::BeaconServerConfig base;
  base.interval = config_.beacon_interval;
  base.pcb_lifetime = config_.pcb_lifetime;
  base.dissemination_limit = config_.dissemination_limit;
  base.storage_limit = config_.storage_limit;
  base.algorithm = config_.algorithm;
  if (config_.algorithm == ctrl::AlgorithmKind::kDiversity) {
    base.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  base.stale_quarantine = config_.stale_quarantine;
  base.stale_timeout = config_.stale_timeout;
  base.reorigination = config_.reorigination;
  base.backoff_seed = config_.seed ^ kReoriginSeedMix;
  base.schedule = [this](util::Duration delay,
                         std::function<void(util::TimePoint)> fn) {
    sim_.schedule_after(delay, kReoriginLabel,
                        [this, fn = std::move(fn)] { fn(sim_.now()); });
  };

  core_servers_.resize(topology_.as_count());
  intra_servers_.resize(topology_.as_count());
  path_servers_.reserve(topology_.as_count());
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    path_servers_.push_back(std::make_unique<PathServer>(
        std::max<std::size_t>(8, config_.storage_limit)));

    auto make_send = [this, i](const char* comp) {
      return [this, i, comp](topo::LinkIndex egress, const ctrl::PcbRef& pcb) {
        const topo::AsIndex to = topology_.neighbor(egress, i);
        // One beaconing *operation* per interval is recorded by the
        // periodic driver; individual PCBs only contribute bytes.
        ledger_.record(comp, scope_between(i, to), pcb->wire_size(),
                       /*counts_as_operation=*/false);
        net_.send(channel_of(egress), node_of(i), pcb->wire_size(), pcb,
                  kPropagateLabel);
      };
    };

    if (topology_.is_core(i)) {
      ctrl::BeaconServerConfig cfg = base;
      cfg.mode = ctrl::BeaconingMode::kCore;
      core_servers_[i] = std::make_unique<ctrl::BeaconServer>(
          topology_, i, cfg, *keys_, kKeyDomain,
          make_send(component::kCoreBeaconing));
    }
    ctrl::BeaconServerConfig cfg = base;
    cfg.mode = ctrl::BeaconingMode::kIntraIsd;
    cfg.include_peer_entries = true;
    intra_servers_[i] = std::make_unique<ctrl::BeaconServer>(
        topology_, i, cfg, *keys_, kKeyDomain,
        make_send(component::kIntraIsdBeaconing));
  }

  // PCB delivery: dispatch on the link type the beacon arrived over.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    net_.set_handler(node_of(i), [this, i](const sim::Message& msg) {
      SCION_HOT_PATH_BEGIN(control_plane_delivery);
      const ctrl::PcbRef& pcb = msg.payload.get<ctrl::PcbRef>();
      const topo::LinkIndex link = link_of(msg.channel);
      if (topology_.link(link).type == topo::LinkType::kCore) {
        if (core_servers_[i]) core_servers_[i]->handle_pcb(pcb, link, sim_.now());
      } else {
        intra_servers_[i]->handle_pcb(pcb, link, sim_.now());
      }
      SCION_HOT_PATH_END();
    });
  }

  // Periodic drivers.
  for (topo::AsIndex i = 0; i < topology_.as_count(); ++i) {
    const auto offset = util::Duration::nanoseconds(
        rng_.uniform_int(0, config_.beacon_interval.ns() - 1));
    sim_.schedule_periodic(util::TimePoint::origin() + offset,
                           config_.beacon_interval, kIntervalLabel, [this, i] {
                             if (core_servers_[i]) {
                               ledger_.record_operation(component::kCoreBeaconing);
                               core_servers_[i]->on_interval(sim_.now());
                             }
                             ledger_.record_operation(
                                 component::kIntraIsdBeaconing);
                             intra_servers_[i]->on_interval(sim_.now());
                           });
  }
  for (topo::AsIndex leaf : leaves_) {
    // First registration only after beaconing had a chance to reach the
    // leaf (one interval in).
    const auto offset =
        config_.beacon_interval +
        util::Duration::nanoseconds(
            rng_.uniform_int(0, config_.registration_interval.ns() - 1));
    sim_.schedule_periodic(util::TimePoint::origin() + offset,
                           config_.registration_interval, kRegistrationLabel,
                           [this, leaf] { do_registration(leaf); });
  }

  // Fault injection. The legacy random link-failure knob becomes a flap
  // process in the plan; scheduled events/extra processes come from
  // config.faults. Both endpoint ASes of a downed link react (revocation
  // towards their ISD cores + beacon-store eviction).
  faults::FaultPlan plan = config_.faults;
  const bool legacy_only = config_.faults.empty();
  if (config_.link_failures_per_hour > 0.0) {
    faults::FlapProcess flap;
    flap.rate_per_hour = config_.link_failures_per_hour;
    flap.downtime_min = config_.failure_downtime;
    flap.downtime_max = config_.failure_downtime;
    flap.links = faults::LinkClass::kProviderCustomer;
    plan.flaps.push_back(flap);
  }
  if (legacy_only) plan.seed = config_.seed ^ kFaultSeedMix;
  faults::FaultInjector::Hooks hooks;
  hooks.on_link_down = [this](topo::LinkIndex l) { on_link_down(l); };
  hooks.on_link_up = [this](topo::LinkIndex l) { on_link_up(l); };
  injector_ = std::make_unique<faults::FaultInjector>(net_, std::move(plan),
                                                      &topology_,
                                                      std::move(hooks));
}

analysis::Scope ControlPlaneSim::scope_between(topo::AsIndex a,
                                               topo::AsIndex b) const {
  if (a == b) return analysis::Scope::kIntraAs;
  if (topology_.as_id(a).isd() == topology_.as_id(b).isd()) {
    return analysis::Scope::kIntraIsd;
  }
  return analysis::Scope::kGlobal;
}

void ControlPlaneSim::record_service_message(const char* comp,
                                             topo::AsIndex from,
                                             topo::AsIndex to,
                                             util::Bytes bytes) {
  ledger_.record(comp, scope_between(from, to), bytes);
}

topo::AsIndex ControlPlaneSim::core_of_isd(topo::IsdId isd,
                                           std::size_t salt) const {
  const auto& cores = cores_by_isd_[isd_slot(isd)];
  SCION_CHECK(!cores.empty(), "control plane needs at least one core AS");
  return cores[salt % cores.size()];
}

void ControlPlaneSim::do_registration(topo::AsIndex leaf) {
  const util::TimePoint now = sim_.now();
  const crypto::SigningKey& sign_key =
      keys_->key_for(topology_.as_id(leaf).value());
  const crypto::ForwardingKey fwd_key =
      crypto::ForwardingKey::derive(topology_.as_id(leaf).value(), kKeyDomain);

  const ctrl::BeaconStore& store = intra_servers_[leaf]->store();
  for (const topo::IsdAsId origin : store.origins()) {
    const auto origin_idx = topology_.find(origin);
    if (!origin_idx) continue;
    // Take the best few stored PCBs (they are already policy-filtered).
    std::vector<PathSegment> segments;
    for (const ctrl::StoredPcb& stored : store.for_origin(origin)) {
      if (stored.pcb->expired(now)) continue;
      segments.push_back(make_segment(topology_, stored, leaf,
                                      SegmentType::kDown, sign_key, fwd_key,
                                      /*include_peers=*/true));
      if (segments.size() >= config_.segments_per_registration) break;
    }
    if (segments.empty()) continue;

    // Up-segments stay local; down-segments go to the origin core's path
    // server (intra-ISD unicast).
    for (PathSegment& seg : segments) {
      PathSegment up = seg;
      up.type = SegmentType::kUp;
      path_servers_[leaf]->register_up_segment(std::move(up));
    }
    record_service_message(component::kRegistration, leaf, *origin_idx,
                           registration_bytes(segments));
    const topo::AsIndex origin_as = *origin_idx;
    sim_.schedule_after(util::Duration::milliseconds(10), kRegisterDownLabel,
                        [this, origin_as, segments = std::move(segments)] {
                          for (const PathSegment& seg : segments) {
                            path_servers_[origin_as]->register_down_segment(seg);
                          }
                        });
  }

  // Core path servers also absorb their beacon server's core segments
  // (AS-local operation).
  if (topology_.is_core(leaf)) return;
}

std::vector<PathSegment> ControlPlaneSim::fetch_core_segments(
    topo::AsIndex src, topo::AsIndex via, topo::IsdId dst_isd) {
  const util::TimePoint now = sim_.now();
  PathServer& ps = *path_servers_[src];
  // Synthetic cache key for the (via core, destination ISD) pair.
  const auto cache_key = static_cast<topo::AsIndex>(
      via * (cores_by_isd_.size() + 1) + dst_isd.value());
  if (auto cached = ps.cache_get(cache_key, now)) return *cached;

  // Ask the core AS our up-segments terminate at for core segments towards
  // dst ISD's cores (a core-path segment lookup, intra-ISD scope).
  record_service_message(component::kCoreSegmentLookup, src, via,
                         kSegmentRequestBytes);

  std::vector<PathSegment> result;
  if (const ctrl::BeaconServer* bs = core_servers_[via].get()) {
    const crypto::SigningKey& sign_key =
        keys_->key_for(topology_.as_id(via).value());
    const crypto::ForwardingKey fwd_key = crypto::ForwardingKey::derive(
        topology_.as_id(via).value(), kKeyDomain);
    for (const topo::AsIndex origin : cores_by_isd_[isd_slot(dst_isd)]) {
      if (origin == via) continue;
      for (const ctrl::StoredPcb& stored :
           bs->store().for_origin(topology_.as_id(origin))) {
        if (stored.pcb->expired(now)) continue;
        result.push_back(make_segment(topology_, stored, via,
                                      SegmentType::kCore, sign_key, fwd_key));
        if (result.size() >= 16) break;
      }
    }
  }
  util::Bytes total_bytes{};
  for (const PathSegment& s : result) total_bytes += s.wire_size();
  record_service_message(component::kCoreSegmentLookup, via, src,
                         segment_response_bytes(result.size(), total_bytes));
  ps.cache_put(cache_key, result, now, config_.cache_ttl);
  return result;
}

std::vector<PathSegment> ControlPlaneSim::fetch_down_segments(
    topo::AsIndex src, topo::AsIndex dst) {
  const util::TimePoint now = sim_.now();
  PathServer& ps = *path_servers_[src];
  if (auto cached = ps.cache_get(dst, now)) return *cached;

  // Down-segments are stored at the path server of the core AS that
  // originated them; the lookup queries the destination ISD's core path
  // servers and aggregates (multi-path wants segments from every core).
  const topo::IsdId dst_isd = topology_.as_id(dst).isd();
  std::vector<PathSegment> result;
  for (const topo::AsIndex responder : cores_by_isd_[isd_slot(dst_isd)]) {
    record_service_message(component::kDownSegmentLookup, src, responder,
                           kSegmentRequestBytes);
    std::vector<PathSegment> fetched =
        path_servers_[responder]->down_segments(dst, now);
    util::Bytes total_bytes{};
    for (const PathSegment& s : fetched) total_bytes += s.wire_size();
    record_service_message(component::kDownSegmentLookup, responder, src,
                           segment_response_bytes(fetched.size(), total_bytes));
    result.insert(result.end(), std::make_move_iterator(fetched.begin()),
                  std::make_move_iterator(fetched.end()));
  }
  ps.cache_put(dst, result, now, config_.cache_ttl);
  return result;
}

std::vector<EndToEndPath> ControlPlaneSim::resolve_paths(topo::AsIndex src,
                                                         topo::AsIndex dst) {
  const util::TimePoint now = sim_.now();
  // Endpoint asks its local path server (intra-AS).
  record_service_message(component::kEndpointLookup, src, src,
                         kSegmentRequestBytes);

  const std::vector<PathSegment> up = path_servers_[src]->up_segments(now);
  const std::vector<PathSegment> down = fetch_down_segments(src, dst);

  // Core segments must terminate at a core our up-segments reach, so we
  // query each distinct up-segment origin core for segments towards the
  // destination ISD's cores.
  const topo::IsdId dst_isd = topology_.as_id(dst).isd();
  std::vector<PathSegment> core;
  std::vector<topo::AsIndex> vias;
  if (topology_.is_core(src)) {
    // A core source (e.g. a carrier-grade SIG's AS) is its own "via": its
    // beacon server holds the core segments directly.
    vias.push_back(src);
  }
  for (const PathSegment& u : up) {
    const topo::AsIndex via = u.origin_as();
    if (std::find(vias.begin(), vias.end(), via) != vias.end()) continue;
    vias.push_back(via);
  }
  for (const topo::AsIndex via : vias) {
    const std::vector<PathSegment> fetched =
        fetch_core_segments(src, via, dst_isd);
    core.insert(core.end(), fetched.begin(), fetched.end());
  }

  std::vector<EndToEndPath> paths =
      combine_segments(topology_, src, dst, up, core, down);

  util::Bytes response_bytes{};
  for (const EndToEndPath& p : paths) response_bytes += packet_header_bytes(p);
  record_service_message(component::kEndpointLookup, src, src,
                         segment_response_bytes(paths.size(), response_bytes));
  paths_resolved_ += paths.size();
  SCION_METRIC_COUNT("scion.paths_resolved", paths.size());
  SCION_METRIC_OBSERVE("scion.paths_per_resolution", paths.size());
  return paths;
}

void ControlPlaneSim::do_lookup() {
  if (leaves_.size() < 2) return;
  ++lookups_performed_;
  SCION_METRIC_COUNT("scion.lookups_performed", 1);
  const topo::AsIndex src = leaves_[rng_.index(leaves_.size())];
  // Zipf-popular destinations (rank 1 = most popular), skipping src.
  topo::AsIndex dst = src;
  for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
    const std::uint64_t rank =
        rng_.zipf(leaves_.size(), config_.zipf_exponent);
    dst = leaves_[rank - 1];
  }
  if (dst == src) return;
  resolve_paths(src, dst);
}

void ControlPlaneSim::schedule_next_lookup() {
  if (config_.lookups_per_second <= 0.0) return;
  const auto gap = util::Duration::nanoseconds(static_cast<std::int64_t>(
      rng_.exponential(1.0 / config_.lookups_per_second) * 1e9));
  sim_.schedule_after(gap, kLookupLabel, [this] {
    do_lookup();
    schedule_next_lookup();
  });
}

void ControlPlaneSim::fail_link(topo::LinkIndex l, util::Duration downtime) {
  if (!injector_->link_up(l)) return;
  injector_->inject_link_down(l, downtime);
}

void ControlPlaneSim::on_link_down(topo::LinkIndex l) {
  const topo::Link& link = topology_.link(l);
  SCION_METRIC_COUNT("scion.link_failures", 1);
  SCION_TRACE(obs::Category::kScion, sim_.now(), "link_failure", {"link", l},
              {"a", topology_.as_id(link.a).to_string()},
              {"b", topology_.as_id(link.b).to_string()});

  // Both endpoint ASes see their interface go down. Each revokes affected
  // segments at the core path servers of *its* ISD (the ISDs differ for
  // cross-ISD links) and at its own path server, and evicts stored PCBs
  // traversing the link so they are neither registered nor re-propagated.
  for (const topo::AsIndex observer : {link.a, link.b}) {
    const topo::IsdId isd = topology_.as_id(observer).isd();
    for (const topo::AsIndex core : cores_by_isd_[isd_slot(isd)]) {
      record_service_message(component::kRevocation, observer, core,
                             Revocation::kWireBytes);
      path_servers_[core]->revoke_link(l);
    }
    path_servers_[observer]->revoke_link(l);
    if (core_servers_[observer]) {
      core_servers_[observer]->on_link_down(l, sim_.now());
    }
    intra_servers_[observer]->on_link_down(l, sim_.now());
  }
}

void ControlPlaneSim::on_link_up(topo::LinkIndex l) {
  const topo::Link& link = topology_.link(l);
  // Both endpoint ASes see the interface recover: quarantined PCBs are
  // revalidated, and core origination interfaces get a backoff-scheduled
  // re-beacon so downstream stores refill before the next interval.
  for (const topo::AsIndex observer : {link.a, link.b}) {
    if (core_servers_[observer]) {
      core_servers_[observer]->on_link_up(l, sim_.now());
    }
    intra_servers_[observer]->on_link_up(l, sim_.now());
  }
}

void ControlPlaneSim::run() {
  SCION_CHECK(!ran_, "run() is single-shot");
  ran_ = true;
  // Let beaconing populate stores before the workload starts.
  const util::Duration warmup = config_.beacon_interval * 2;
  sim_.run_until(util::TimePoint::origin() + warmup);
  schedule_next_lookup();
  const util::TimePoint end =
      util::TimePoint::origin() + warmup + config_.sim_duration;
  injector_->arm(end);
  sim_.run_until(end);
}

}  // namespace scion::svc
