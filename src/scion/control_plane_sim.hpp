// Full SCION control-plane simulation on a multi-ISD topology.
//
// Runs both levels of the beaconing hierarchy simultaneously (core
// beaconing over core links, intra-ISD beaconing over provider-customer
// links), path servers with registrations / lookups / caching, the Zipf
// lookup workload, and link-failure revocations — every control-plane
// component of Table 1, each recorded in an OverheadLedger with its scope.
// It also exposes the on-demand path resolution used by the examples: the
// endpoint-visible flow of up-segment + core-segment + down-segment lookup
// followed by path combination.
#pragma once

#include <memory>
#include <vector>

#include "analysis/overhead.hpp"
#include "core/beacon_server.hpp"
#include "faults/fault_injector.hpp"
#include "scion/dataplane.hpp"
#include "scion/path_server.hpp"
#include "scion/scmp.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace scion::svc {

struct ControlPlaneSimConfig {
  /// Beaconing parameters (shared by both hierarchy levels).
  util::Duration beacon_interval{util::Duration::minutes(10)};
  util::Duration pcb_lifetime{util::Duration::hours(6)};
  std::size_t dissemination_limit{5};
  std::size_t storage_limit{20};
  ctrl::AlgorithmKind algorithm{ctrl::AlgorithmKind::kBaseline};
  /// Leaf ASes register segments this often ("every tens of minutes").
  util::Duration registration_interval{util::Duration::minutes(20)};
  /// Segments registered per origin core AS.
  std::size_t segments_per_registration{5};
  /// Global endpoint lookup workload (Poisson).
  double lookups_per_second{2.0};
  /// Zipf exponent over destination popularity (Internet traffic follows a
  /// Zipf distribution of destinations, Section 4.1).
  double zipf_exponent{1.1};
  util::Duration cache_ttl{util::Duration::minutes(30)};
  /// Random provider-customer link failures per hour (drives revocations).
  /// Internally appended to `faults` as a FlapProcess; 0 disables.
  double link_failures_per_hour{2.0};
  util::Duration failure_downtime{util::Duration::minutes(2)};
  /// Robustness mechanisms, forwarded to every beacon server (default off;
  /// see BeaconServerConfig). With quarantine on, a link flap suspends the
  /// affected PCBs instead of evicting them; backoff re-beacons recovered
  /// origination interfaces without waiting a full interval.
  bool stale_quarantine{false};
  util::Duration stale_timeout{util::Duration::minutes(30)};
  ctrl::BeaconServerConfig::ReoriginationBackoff reorigination{};
  util::Duration sim_duration{util::Duration::hours(1)};
  std::uint64_t seed{5};
  /// Additional fault scenario, armed when the measurement window starts.
  /// When this is left empty, the injector's randomness (the legacy flap
  /// process above) is seeded from `seed`; an explicit scenario keeps its
  /// own seed so scenario files replay identically across binaries.
  faults::FaultPlan faults{};
};

/// Ledger component names (shared with the Table 1 bench).
namespace component {
inline constexpr const char* kCoreBeaconing = "Core Beaconing";
inline constexpr const char* kIntraIsdBeaconing = "Intra-ISD Beaconing";
inline constexpr const char* kDownSegmentLookup = "Down-Path Segment Lookup";
inline constexpr const char* kCoreSegmentLookup = "Core-Path Segment Lookup";
inline constexpr const char* kEndpointLookup = "Endpoint Path Lookup";
inline constexpr const char* kRegistration = "Path (De-)Registration";
inline constexpr const char* kRevocation = "Path Revocation";
}  // namespace component

class ControlPlaneSim {
 public:
  ControlPlaneSim(const topo::Topology& topology, ControlPlaneSimConfig config);

  /// Runs the configured duration (single-shot).
  void run();

  const analysis::OverheadLedger& ledger() const { return ledger_; }
  const topo::Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }
  const PathServer& path_server(topo::AsIndex as) const { return *path_servers_[as]; }
  const ctrl::BeaconServer* core_server(topo::AsIndex as) const {
    return core_servers_[as].get();
  }
  const ctrl::BeaconServer* intra_server(topo::AsIndex as) const {
    return intra_servers_[as].get();
  }
  const DataPlane& dataplane() const { return *dataplane_; }

  /// Whether a link is currently up (for data-plane forwarding).
  bool link_up(topo::LinkIndex l) const { return net_.channel_up(channel_of(l)); }

  /// Fails a link for `downtime` via the fault injector; both endpoint
  /// ASes revoke affected segments at the core path servers of their ISDs.
  void fail_link(topo::LinkIndex l, util::Duration downtime);

  /// The fault injector driving link failures (always present).
  const faults::FaultInjector& injector() const { return *injector_; }

  const sim::Network& network() const { return net_; }

  /// Endpoint-visible path resolution at the current simulated time:
  /// performs (and records) the lookups, then combines segments.
  std::vector<EndToEndPath> resolve_paths(topo::AsIndex src, topo::AsIndex dst);

  /// All leaf (non-core) ASes, the lookup workload population.
  const std::vector<topo::AsIndex>& leaves() const { return leaves_; }

  std::uint64_t lookups_performed() const { return lookups_performed_; }
  std::uint64_t paths_resolved() const { return paths_resolved_; }

 private:
  // The sim is built so node ids mirror AS indices and channel ids mirror
  // link indices (asserted at construction); these helpers make every
  // crossing between the two id spaces explicit.
  static sim::NodeId node_of(topo::AsIndex i) { return sim::NodeId{i}; }
  static sim::ChannelId channel_of(topo::LinkIndex l) {
    return sim::ChannelId{l};
  }
  static topo::LinkIndex link_of(sim::ChannelId ch) { return ch.value(); }

  analysis::Scope scope_between(topo::AsIndex a, topo::AsIndex b) const;
  void record_service_message(const char* comp, topo::AsIndex from,
                              topo::AsIndex to, util::Bytes bytes);
  void do_registration(topo::AsIndex leaf);
  void do_lookup();
  void schedule_next_lookup();
  void on_link_down(topo::LinkIndex l);
  void on_link_up(topo::LinkIndex l);
  topo::AsIndex core_of_isd(topo::IsdId isd, std::size_t salt) const;
  // ISD numbers are 1-based; dense per-ISD tables index from 0.
  static std::size_t isd_slot(topo::IsdId isd) { return isd.value() - 1u; }

  /// Fetches (with caching and ledger recording) the core segments
  /// terminating at core AS `via` (a core of src's ISD that src's
  /// up-segments reach) towards the cores of dst's ISD, and dst's down
  /// segments from a core of dst's ISD.
  std::vector<PathSegment> fetch_core_segments(topo::AsIndex src,
                                               topo::AsIndex via,
                                               topo::IsdId dst_isd);
  std::vector<PathSegment> fetch_down_segments(topo::AsIndex src,
                                               topo::AsIndex dst);

  const topo::Topology& topology_;
  ControlPlaneSimConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  util::Rng rng_;
  std::unique_ptr<crypto::KeyStore> keys_;
  std::vector<std::unique_ptr<ctrl::BeaconServer>> core_servers_;
  std::vector<std::unique_ptr<ctrl::BeaconServer>> intra_servers_;
  std::vector<std::unique_ptr<PathServer>> path_servers_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<DataPlane> dataplane_;
  analysis::OverheadLedger ledger_;
  std::vector<topo::AsIndex> leaves_;
  std::vector<std::vector<topo::AsIndex>> cores_by_isd_;  // [isd-1] -> cores
  std::uint64_t lookups_performed_{0};
  std::uint64_t paths_resolved_{0};
  bool ran_{false};
};

}  // namespace scion::svc
