// Path server (Section 2.2, "Path Segment Dissemination").
//
// Each AS's control service runs a path server. A core AS's path server
// stores the down-path segments registered by the leaf ASes of its ISD and
// the core-path segments its beacon server discovered; non-core path
// servers keep the AS's own up-segments and a TTL cache of remote lookup
// results (the infrastructure "bears similarities to DNS").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "scion/segment.hpp"

namespace scion::svc {

/// Wire size of a segment request: SCION/UDP headers + <ISD, AS> + type.
inline constexpr util::Bytes kSegmentRequestBytes{64};
/// Response framing on top of the segments themselves.
inline constexpr util::Bytes kSegmentResponseHeaderBytes{32};
/// Registration framing.
inline constexpr util::Bytes kRegistrationHeaderBytes{32};

util::Bytes segment_response_bytes(std::size_t n_segments,
                                   util::Bytes total_segment_bytes);
util::Bytes registration_bytes(std::span<const PathSegment> segments);

class PathServer {
 public:
  struct Stats {
    std::uint64_t registrations{0};
    std::uint64_t segments_registered{0};
    std::uint64_t lookups{0};
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
    std::uint64_t revocations{0};
  };

  /// `per_key_limit` caps stored segments per destination/origin key.
  explicit PathServer(std::size_t per_key_limit = 10)
      : per_key_limit_{per_key_limit} {}

  // --- core path server role ---
  /// Stores a down-path segment registered by leaf `segment.terminal_as()`.
  void register_down_segment(PathSegment segment);
  std::vector<PathSegment> down_segments(topo::AsIndex leaf,
                                         util::TimePoint now) const;

  /// Stores a core-path segment towards `segment.origin_as()`.
  void register_core_segment(PathSegment segment);
  std::vector<PathSegment> core_segments(topo::AsIndex origin_core,
                                         util::TimePoint now) const;

  // --- local path server role ---
  void register_up_segment(PathSegment segment);
  std::vector<PathSegment> up_segments(util::TimePoint now) const;

  /// Drops every stored segment containing `link` (triggered by a
  /// revocation); returns how many were dropped.
  std::size_t revoke_link(topo::LinkIndex link);

  // --- lookup cache (for fetched remote segments) ---
  void cache_put(topo::AsIndex key, std::vector<PathSegment> segments,
                 util::TimePoint now, util::Duration ttl);
  std::optional<std::vector<PathSegment>> cache_get(topo::AsIndex key,
                                                    util::TimePoint now);

  const Stats& stats() const { return stats_; }
  Stats& mutable_stats() { return stats_; }

 private:
  using SegmentMap = std::unordered_map<topo::AsIndex, std::vector<PathSegment>>;

  void insert_segment(SegmentMap& map, topo::AsIndex key, PathSegment segment);
  static std::vector<PathSegment> valid_of(const SegmentMap& map,
                                           topo::AsIndex key,
                                           util::TimePoint now);

  std::size_t per_key_limit_;
  SegmentMap down_by_leaf_;
  SegmentMap core_by_origin_;
  std::vector<PathSegment> up_;
  struct CacheEntry {
    std::vector<PathSegment> segments;
    util::TimePoint expires;
  };
  std::unordered_map<topo::AsIndex, CacheEntry> cache_;
  Stats stats_;
};

}  // namespace scion::svc
