// SCMP link revocations and endpoint fast failover (Sections 2.2 / 4.1).
//
// When a border router observes a failed link it emits SCMP revocations to
// the endpoints whose traffic used it, and the owning AS revokes affected
// segments at the core path server. Endpoints keep a set of end-to-end
// paths and switch away from revoked ones immediately — the multi-path
// fast-failover property the deployment section sells to leased-line
// customers.
#pragma once

#include <cstdint>
#include <vector>

#include "scion/path_combiner.hpp"

namespace scion::svc {

/// An SCMP "external interface down" revocation.
struct Revocation {
  topo::LinkIndex link{topo::kInvalidLinkIndex};
  util::TimePoint issued;
  util::Duration validity{util::Duration::seconds(10)};

  /// SCMP header (8) + revocation payload: ISD-AS (8), ifid (2), timestamps
  /// (12), MAC (16), quoted packet head (32).
  static constexpr util::Bytes kWireBytes{78};

  bool active_at(util::TimePoint now) const {
    return now >= issued && now < issued + validity;
  }
};

/// Endpoint-side path set with preference order and failover.
class PathManager {
 public:
  /// Installs the candidate paths in preference order (front = preferred).
  void set_paths(std::vector<EndToEndPath> paths);

  /// The currently active path, or nullptr when disconnected.
  const EndToEndPath* active() const;

  /// Processes a revocation: paths containing the link become unusable. If
  /// the active path was hit, fail over to the best surviving path.
  /// Returns true while connectivity survives.
  bool notify_revocation(topo::LinkIndex failed_link);

  /// Re-enables paths over a restored link.
  void notify_restored(topo::LinkIndex link);

  std::size_t usable_paths() const;
  std::size_t total_paths() const { return paths_.size(); }
  std::uint64_t failovers() const { return failovers_; }

 private:
  struct Entry {
    EndToEndPath path;
    bool usable{true};
  };
  bool uses_link(const EndToEndPath& path, topo::LinkIndex link) const;
  void pick_active();

  std::vector<Entry> paths_;
  std::size_t active_{0};
  bool connected_{false};
  std::uint64_t failovers_{0};
};

}  // namespace scion::svc
