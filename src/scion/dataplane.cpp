#include "scion/dataplane.hpp"

#include "util/check.hpp"


namespace scion::svc {

namespace {

std::uint32_t expiry_unix(util::TimePoint expiry) {
  return static_cast<std::uint32_t>(expiry.ns() / 1'000'000'000);
}

}  // namespace

util::Bytes packet_header_bytes(const EndToEndPath& path) {
  std::size_t segments = 0;
  if (path.up) ++segments;
  if (path.core) ++segments;
  if (path.down) ++segments;
  if (segments == 0) segments = 1;  // intra-AS delivery still has one
  return util::Bytes{kScionCommonHeaderBytes + segments * kInfoFieldBytes +
                     (path.ases.size()) * kHopFieldBytes};
}

bool DataPlane::verify_segment_chain(const PathSegment& seg,
                                     std::string* error) const {
  crypto::HopMac prev{};
  const std::uint32_t expiry = expiry_unix(seg.pcb->expiry());
  for (const ctrl::AsEntry& e : seg.pcb->entries()) {
    const crypto::ForwardingKey key =
        crypto::ForwardingKey::derive(e.isd_as.value(), key_domain_seed_);
    const crypto::HopMac expected =
        crypto::hop_mac(key, e.in_if.value(), e.out_if.value(), expiry, prev);
    if (expected != e.hop_mac) {
      if (error) {
        *error = "hop-field MAC rejected at AS " + e.isd_as.to_string();
      }
      return false;
    }
    prev = e.hop_mac;
  }
  return true;
}

bool DataPlane::verify_peer_hop(const PathSegment& seg,
                                std::size_t entry_index,
                                topo::LinkIndex peer_link,
                                std::string* error) const {
  const auto& entries = seg.pcb->entries();
  SCION_CHECK(entry_index > 0 && entry_index < entries.size(),
              "hop entry index out of path range");
  const ctrl::AsEntry& e = entries[entry_index];
  const topo::AsIndex self = seg.ases[entry_index];
  const topo::IfId peer_if = topology_.interface_of(peer_link, self);
  for (const ctrl::PeerEntry& p : e.peers) {
    if (p.peer_if != peer_if) continue;
    const crypto::ForwardingKey key =
        crypto::ForwardingKey::derive(e.isd_as.value(), key_domain_seed_);
    const crypto::HopMac expected =
        crypto::hop_mac(key, p.peer_if.value(), e.out_if.value(),
                        expiry_unix(seg.pcb->expiry()),
                        entries[entry_index - 1].hop_mac);
    if (expected == p.hop_mac) return true;
    if (error) {
      *error = "peer hop-field MAC rejected at AS " + e.isd_as.to_string();
    }
    return false;
  }
  if (error) {
    *error = "no peer hop field for the crossed peering link at AS " +
             e.isd_as.to_string();
  }
  return false;
}

bool DataPlane::verify(const EndToEndPath& path, std::string* error) const {
  for (const PathSegment* seg : {path.up.get(), path.core.get(), path.down.get()}) {
    if (seg != nullptr && !verify_segment_chain(*seg, error)) return false;
  }
  if (path.kind == EndToEndPath::Kind::kPeering) {
    SCION_CHECK(path.peer_link.has_value(), "peering path carries no peer link");
    if (!verify_peer_hop(*path.up, path.up_cut, *path.peer_link, error)) {
      return false;
    }
    if (!verify_peer_hop(*path.down, path.down_cut, *path.peer_link, error)) {
      return false;
    }
  }
  return true;
}

bool DataPlane::valid_at(const EndToEndPath& path, util::TimePoint now) const {
  for (const PathSegment* seg : {path.up.get(), path.core.get(), path.down.get()}) {
    if (seg != nullptr && now >= seg->expiry()) return false;
  }
  return true;
}

ForwardResult DataPlane::forward(
    const EndToEndPath& path,
    const std::function<bool(topo::LinkIndex)>& link_up) const {
  ForwardResult result;
  if (!verify(path, &result.error)) return result;
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const topo::LinkIndex l = path.links[i];
    // Sanity: the link must actually connect the consecutive ASes.
    const topo::Link& link = topology_.link(l);
    const bool matches = (link.a == path.ases[i] && link.b == path.ases[i + 1]) ||
                         (link.b == path.ases[i] && link.a == path.ases[i + 1]);
    if (!matches) {
      result.error = "link does not connect the path's ASes";
      return result;
    }
    if (link_up && !link_up(l)) {
      result.failed_link = l;
      result.error = "link down";
      return result;
    }
    ++result.links_traversed;
  }
  result.delivered = true;
  return result;
}

}  // namespace scion::svc
