// ISP and IXP deployment models (Sections 3.2-3.5, Figures 2 and 4).
//
// The ISP side quantifies the trade-offs of the three inter-ISP connection
// models: native cross-connect (Fig. 2a), Router-on-a-stick over an
// existing IP cross-connection (Fig. 2b, with a queuing discipline that
// guarantees SCION a minimum bandwidth share against hostile IP load), and
// the redundant combination (Fig. 2c).
//
// The IXP side builds the two interconnection fabrics of Section 3.5 — the
// "big switch" (one shared L2 fabric, transparent to SCION) and the
// enhanced model exposing the IXP's per-site internal topology as SCION
// ASes — so their member-to-member resilience and capacity can be compared
// with the same max-flow analysis the paper uses for Fig. 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace scion::svc {

// ---------------------------------------------------------------------------
// ISP deployment models (Fig. 2)
// ---------------------------------------------------------------------------

enum class InterIspModel : std::uint8_t {
  kNativeCrossConnect,  // Fig. 2a: dedicated layer-2 cross-connection
  kRouterOnAStick,      // Fig. 2b: IP encapsulation over a shared link
  kRedundant,           // Fig. 2c: both, combined into one logical link
};

const char* to_string(InterIspModel m);

/// IP/GRE encapsulation a Router-on-a-stick hop adds around each SCION
/// packet (outer IPv4 header + GRE).
inline constexpr util::Bytes kIpEncapOverheadBytes{20 + 8};

struct DeployedLinkConfig {
  InterIspModel model{InterIspModel::kNativeCrossConnect};
  double capacity_mbps{10'000.0};
  /// Fraction of the shared link's bandwidth the queuing discipline
  /// guarantees to SCION traffic (Router-on-a-stick / redundant models).
  double scion_min_share{0.5};
  /// Whether a queuing discipline is configured at all; without one,
  /// hostile IP traffic can crowd SCION out entirely (the availability
  /// risk Section 3.3 warns about).
  bool queuing_discipline{true};
};

/// Static properties and simple quantitative models of one inter-ISP link
/// under a deployment model.
class DeployedLink {
 public:
  explicit DeployedLink(DeployedLinkConfig config) : config_{config} {}

  const DeployedLinkConfig& config() const { return config_; }

  /// No dependency on BGP-routed infrastructure? (Both the native model
  /// and the short host-routed Router-on-a-stick cross-connection are
  /// BGP-free; see Section 3.3.)
  bool bgp_free() const { return true; }

  /// Bytes on the wire for a SCION packet of `scion_packet_bytes`.
  util::Bytes wire_bytes(util::Bytes scion_packet_bytes) const;

  /// SCION goodput when `offered_scion_mbps` of SCION traffic competes
  /// with `hostile_ip_load` (fraction of capacity) of IP traffic on a
  /// shared link. Native links never share; with a queuing discipline
  /// SCION keeps at least `scion_min_share`; without one, IP load eats
  /// into SCION's share directly.
  double scion_goodput_mbps(double offered_scion_mbps,
                            double hostile_ip_load) const;

  /// Probability the logical link is usable given independent failure
  /// probabilities of the physical fiber and of the IP underlay device
  /// chain (the redundant model survives either single failure).
  double availability(double fiber_failure_prob,
                      double ip_underlay_failure_prob) const;

 private:
  DeployedLinkConfig config_;
};

// ---------------------------------------------------------------------------
// IXP fabrics (Fig. 4)
// ---------------------------------------------------------------------------

enum class IxpModel : std::uint8_t {
  kBigSwitch,        // one shared L2 fabric; bilateral peering over it
  kExposedTopology,  // per-site SCION ASes with redundant inter-site links
};

const char* to_string(IxpModel m);

struct IxpConfig {
  /// Member ASes connecting to the IXP.
  std::size_t members{6};
  /// IXP sites (enhanced model only); each becomes a SCION AS.
  std::size_t sites{4};
  /// Redundant links between adjacent sites (enhanced model).
  std::size_t links_per_site_pair{2};
  /// In the enhanced model, each member homes onto this many sites.
  std::size_t member_homing{2};
  std::uint64_t seed{13};
};

/// Builds the member+fabric topology for an IXP model. Members are ASes
/// 0..members-1; in the enhanced model sites follow as further ASes. Big
/// switch: every member pair is connected by one peering link (the shared
/// fabric is a single failure domain — links_between() of any pair is 1).
/// Enhanced: members attach to `member_homing` sites and sites form a ring
/// with `links_per_site_pair` parallel links, so member pairs gain
/// multi-path and failover through the fabric.
topo::Topology build_ixp_fabric(IxpModel model, const IxpConfig& config);

/// Min-cut between two members of the fabric (unit link capacities) — the
/// resilience/capacity measure used to compare the two models.
int ixp_member_min_cut(const topo::Topology& fabric, topo::AsIndex a,
                       topo::AsIndex b);

}  // namespace scion::svc
