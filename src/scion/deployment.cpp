#include "scion/deployment.hpp"

#include "util/check.hpp"

#include <algorithm>

#include "analysis/maxflow.hpp"
#include "util/rng.hpp"

namespace scion::svc {

const char* to_string(InterIspModel m) {
  switch (m) {
    case InterIspModel::kNativeCrossConnect:
      return "native cross-connect";
    case InterIspModel::kRouterOnAStick:
      return "router-on-a-stick";
    case InterIspModel::kRedundant:
      return "redundant";
  }
  return "?";
}

util::Bytes DeployedLink::wire_bytes(util::Bytes scion_packet_bytes) const {
  switch (config_.model) {
    case InterIspModel::kNativeCrossConnect:
      return scion_packet_bytes;
    case InterIspModel::kRouterOnAStick:
      return scion_packet_bytes + kIpEncapOverheadBytes;
    case InterIspModel::kRedundant:
      // The native sub-link is preferred while it is up; accounting uses
      // the preferred path's framing.
      return scion_packet_bytes;
  }
  return scion_packet_bytes;
}

double DeployedLink::scion_goodput_mbps(double offered_scion_mbps,
                                        double hostile_ip_load) const {
  SCION_CHECK(hostile_ip_load >= 0.0 && hostile_ip_load <= 1.0,
              "hostile IP load is a fraction");
  const double capacity = config_.capacity_mbps;
  if (config_.model == InterIspModel::kNativeCrossConnect) {
    return std::min(offered_scion_mbps, capacity);
  }
  // Shared link: hostile IP traffic competes. With a queuing discipline,
  // SCION is guaranteed min_share of the capacity (and opportunistically
  // uses whatever IP leaves free); without one, IP load consumes capacity
  // first.
  double available = capacity * (1.0 - hostile_ip_load);
  if (config_.queuing_discipline) {
    available = std::max(available, capacity * config_.scion_min_share);
  }
  if (config_.model == InterIspModel::kRedundant) {
    // The native sub-link's full capacity is always available on top.
    available += capacity;
  }
  return std::min(offered_scion_mbps, available);
}

double DeployedLink::availability(double fiber_failure_prob,
                                  double ip_underlay_failure_prob) const {
  const double fiber_up = 1.0 - fiber_failure_prob;
  const double underlay_up =
      (1.0 - fiber_failure_prob) * (1.0 - ip_underlay_failure_prob);
  switch (config_.model) {
    case InterIspModel::kNativeCrossConnect:
      return fiber_up;
    case InterIspModel::kRouterOnAStick:
      return underlay_up;
    case InterIspModel::kRedundant:
      // Survives unless both sub-links are down (independent fibers).
      return 1.0 - (1.0 - fiber_up) * (1.0 - underlay_up);
  }
  return fiber_up;
}

const char* to_string(IxpModel m) {
  switch (m) {
    case IxpModel::kBigSwitch:
      return "big switch";
    case IxpModel::kExposedTopology:
      return "exposed topology";
  }
  return "?";
}

topo::Topology build_ixp_fabric(IxpModel model, const IxpConfig& config) {
  SCION_CHECK(config.members >= 2, "IXP model needs at least two members");
  topo::Topology fabric;
  util::Rng rng{config.seed};

  for (std::size_t m = 0; m < config.members; ++m) {
    fabric.add_as(topo::IsdAsId::make(1, 100 + m), /*is_core=*/false);
  }

  if (model == IxpModel::kBigSwitch) {
    // Bilateral peering rides one shared L2 fabric. For the resilience
    // analysis the fabric is a node every member hangs off with one port:
    // any member pair's connectivity has min-cut 1 (port or fabric), the
    // single failure domain the enhanced model eliminates.
    const topo::AsIndex fabric_switch =
        fabric.add_as(topo::IsdAsId::make(1, 999), /*is_core=*/false);
    for (topo::AsIndex m = 0; m < config.members; ++m) {
      fabric.add_link(m, fabric_switch, topo::LinkType::kPeer);
    }
    return fabric;
  }

  // Enhanced model: IXP sites are SCION ASes; sites form a ring with
  // redundant parallel links, members home onto several sites.
  SCION_CHECK(config.sites >= 2 && config.member_homing >= 1,
              "multi-site IXP needs two sites and homing >= 1");
  std::vector<topo::AsIndex> sites;
  for (std::size_t s = 0; s < config.sites; ++s) {
    sites.push_back(
        fabric.add_as(topo::IsdAsId::make(1, 900 + s), /*is_core=*/false));
  }
  for (std::size_t s = 0; s < config.sites; ++s) {
    const std::size_t next = (s + 1) % config.sites;
    if (config.sites == 2 && s == 1) break;
    for (std::size_t k = 0; k < config.links_per_site_pair; ++k) {
      fabric.add_link(sites[s], sites[next], topo::LinkType::kPeer);
    }
  }
  for (topo::AsIndex m = 0; m < config.members; ++m) {
    const std::size_t first = rng.index(config.sites);
    const std::size_t homing = std::min(config.member_homing, config.sites);
    for (std::size_t h = 0; h < homing; ++h) {
      fabric.add_link(m, sites[(first + h) % config.sites],
                      topo::LinkType::kPeer);
    }
  }
  return fabric;
}

int ixp_member_min_cut(const topo::Topology& fabric, topo::AsIndex a,
                       topo::AsIndex b) {
  analysis::FlowGraph graph = analysis::FlowGraph::from_topology(fabric);
  return graph.max_flow(a, b);
}

}  // namespace scion::svc
