// Data plane: Packet-Carried Forwarding State (Section 2.3).
//
// Hop fields carry chained MACs computed during beaconing; border routers
// verify their own hop field against the AS forwarding key and the previous
// hop field in the segment, so paths cannot be altered or spliced beyond
// the authorized combinations. forward() walks an end-to-end path across
// the topology, verifying MACs and honoring link state — the primitive the
// failover experiments and examples build on.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "scion/path_combiner.hpp"

namespace scion::svc {

struct ForwardResult {
  bool delivered{false};
  /// Links successfully traversed before delivery or failure.
  std::size_t links_traversed{0};
  /// The link whose failure stopped the packet, if any.
  std::optional<topo::LinkIndex> failed_link;
  std::string error;
};

/// SCION header size model: common header + address headers.
inline constexpr std::size_t kScionCommonHeaderBytes = 12 + 24;
/// Per path segment: an info field.
inline constexpr std::size_t kInfoFieldBytes = 8;
/// Per hop: a hop field (flags, expiry, two ifids, truncated MAC).
inline constexpr std::size_t kHopFieldBytes = 12;

/// Bytes of forwarding state a packet carries for `path` (PCFS replaces
/// router state entirely, Mechanism 4 of Section 4.1).
util::Bytes packet_header_bytes(const EndToEndPath& path);

class DataPlane {
 public:
  DataPlane(const topo::Topology& topology, std::uint64_t key_domain_seed)
      : topology_{topology}, key_domain_seed_{key_domain_seed} {}

  /// Verifies the hop-field MAC chains of every segment `path` uses, and
  /// the peer hop fields if the path crosses a peering link. On failure,
  /// `error` (if non-null) says which AS rejected the packet.
  bool verify(const EndToEndPath& path, std::string* error = nullptr) const;

  /// Checks that the path has not expired at `now`.
  bool valid_at(const EndToEndPath& path, util::TimePoint now) const;

  /// Sends a packet along the path; `link_up` gates each traversed link
  /// (default: all up). MAC verification failures stop the packet at the
  /// offending AS.
  ForwardResult forward(
      const EndToEndPath& path,
      const std::function<bool(topo::LinkIndex)>& link_up = {}) const;

 private:
  bool verify_segment_chain(const PathSegment& seg, std::string* error) const;
  bool verify_peer_hop(const PathSegment& seg, std::size_t entry_index,
                       topo::LinkIndex peer_link, std::string* error) const;

  const topo::Topology& topology_;
  std::uint64_t key_domain_seed_;
};

}  // namespace scion::svc
